"""Run-ledger tests: append-only JSONL semantics, schema-version
tolerance, batch aggregation (latency percentiles, per-phase histograms,
structured failures), and the CLI surfaces (`repro runs list/show`)."""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    RunRecord,
    new_run_id,
    render_run,
    render_runs_table,
)


def _batch_record(run_id="abc123def456", **kwargs):
    records = [
        {"target": "a", "status": "done", "cache_hit": False,
         "seconds": 0.1, "phase_seconds": {"slicing": 0.05, "setup": 0.01}},
        {"target": "b", "status": "done", "cache_hit": True, "seconds": 0.001},
        {"target": "c", "status": "failed", "cache_hit": False,
         "seconds": 0.2, "error": "ValueError: boom",
         "error_type": "ValueError", "error_message": "boom",
         "traceback": "Traceback ...\nValueError: boom"},
    ]
    defaults = dict(
        run_id=run_id,
        label="synth:transports*3",
        records=records,
        started_unix=1_700_000_000.0,
        wall_s=0.5,
        executor="process",
        workers=2,
    )
    defaults.update(kwargs)
    return RunRecord.from_batch(**defaults)


class TestRunRecord:
    def test_from_batch_tallies(self):
        record = _batch_record()
        assert record.kind == "batch"
        assert record.targets == 3
        assert record.done == 2
        assert record.failed == 1
        assert record.cache_hits == 1
        assert record.analyses_run == 1  # done and not a cache hit
        assert record.apps_per_sec == pytest.approx(6.0)
        # exact nearest-rank percentiles over [0.001, 0.1, 0.2]
        assert record.p50_s == pytest.approx(0.1)
        assert record.p99_s == pytest.approx(0.2)

    def test_from_batch_phase_histograms(self):
        record = _batch_record()
        assert set(record.phase_seconds) == {"slicing", "setup"}
        assert record.phase_seconds["slicing"]["count"] == 1
        assert record.phase_seconds["slicing"]["sum"] == pytest.approx(0.05)

    def test_from_batch_structured_failures(self):
        record = _batch_record()
        assert len(record.failures) == 1
        failure = record.failures[0]
        assert failure["target"] == "c"
        assert failure["error_type"] == "ValueError"
        assert failure["error_message"] == "boom"
        assert "Traceback" in failure["traceback"]

    def test_to_dict_carries_schema_and_host(self):
        data = _batch_record().to_dict()
        assert data["schema"] == LEDGER_SCHEMA_VERSION
        assert data["host"]["usable_cpus"] >= 1

    def test_new_run_id_is_fresh(self):
        assert new_run_id() != new_run_id()


class TestRunLedger:
    def test_append_and_read_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_batch_record("run-one-0001"))
        ledger.append(_batch_record("run-two-0002"))
        records = ledger.records()
        assert [r["run_id"] for r in records] == [
            "run-one-0001", "run-two-0002"
        ]
        assert ledger.path == tmp_path / "runs" / "ledger.jsonl"

    def test_records_skip_corrupt_and_future_schema_lines(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_batch_record("keep-me-00001"))
        with open(ledger.path, "a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({
                "schema": LEDGER_SCHEMA_VERSION + 1, "run_id": "future"
            }) + "\n")
        assert [r["run_id"] for r in ledger.records()] == ["keep-me-00001"]

    def test_get_exact_and_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_batch_record("aabbccddeeff"))
        ledger.append(_batch_record("aabb00112233"))
        assert ledger.get("aabbccddeeff")["run_id"] == "aabbccddeeff"
        assert ledger.get("aabbcc")["run_id"] == "aabbccddeeff"
        assert ledger.get("aabb") is None  # ambiguous prefix
        assert ledger.get("zzz") is None

    def test_tail(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i in range(5):
            ledger.append(_batch_record(f"run-{i:08d}xxxx"))
        assert [r["run_id"] for r in ledger.tail(2)] == [
            "run-00000003xxxx", "run-00000004xxxx"
        ]

    def test_missing_file_is_empty(self, tmp_path):
        assert RunLedger(tmp_path / "nowhere").records() == []


class TestRendering:
    def test_table_lists_newest_first(self, tmp_path):
        first = _batch_record("first0000000").to_dict()
        second = _batch_record("second000000").to_dict()
        table = render_runs_table([first, second])
        assert table.index("second000000") < table.index("first0000000")
        assert "synth:transports*3" in table

    def test_show_explains_failures(self):
        text = render_run(_batch_record().to_dict())
        assert "c: ValueError: boom" in text
        assert "| ValueError: boom" in text  # traceback lines indented
        assert "p50=0.1000s" in text
        assert "slicing" in text

    def test_show_includes_warnings_and_telemetry(self):
        record = _batch_record(
            warnings=["process executor unavailable (no fork)"],
            telemetry_dir="/tmp/t/run", fleet_trace="/tmp/t/run/fleet.jsonl",
        ).to_dict()
        text = render_run(record)
        assert "warning   process executor unavailable" in text
        assert "telemetry /tmp/t/run" in text
        assert "trace     /tmp/t/run/fleet.jsonl" in text


class TestCli:
    def test_runs_list_and_show(self, tmp_path, capsys):
        from repro.cli import main

        ledger = RunLedger(tmp_path)
        ledger.append(_batch_record("cli0run00001"))
        assert main(["runs", "list", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cli0run00001" in out
        assert main(["runs", "show", "cli0run", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ValueError: boom" in out

    def test_runs_show_json(self, tmp_path, capsys):
        from repro.cli import main

        RunLedger(tmp_path).append(_batch_record("json0run0001"))
        assert main([
            "runs", "show", "json0run0001", "--store", str(tmp_path), "--json"
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["run_id"] == "json0run0001"
        assert data["failed"] == 1

    def test_runs_show_unknown_exits(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["runs", "show", "nope", "--store", str(tmp_path)])

    def test_batch_records_a_run(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "store"
        code = main([
            "batch", "diode", "ted", "--store", str(store), "--workers", "2",
        ])
        assert code == 0
        records = RunLedger(store).records()
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "batch"
        assert record["label"] == "diode ted"
        assert record["targets"] == 2
        assert record["failed"] == 0
        assert record["telemetry_dir"] is not None

    def test_analyze_ledger_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "analyze", "ted", "--ledger", str(tmp_path), "--json"
        ]) == 0
        records = RunLedger(tmp_path).records()
        assert len(records) == 1
        assert records[0]["kind"] == "analyze"
        assert records[0]["label"] == "ted"
        assert records[0]["phase_seconds"]  # phases recorded


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
