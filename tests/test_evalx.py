"""Evaluation-harness tests: the tables/figures regenerate with the
paper's qualitative shape."""

from __future__ import annotations

import pytest

from repro.evalx import (
    count_trace,
    evaluate_app,
    figure1_chain,
    figure3,
    figure6,
    figure7,
    figure8,
    generate_table1,
    render_table1,
    render_table2,
    render_table4,
    render_table5,
    render_table6,
    row_for,
    row_for_app,
    table2,
    table5,
    table6,
    total_pairs,
)


@pytest.fixture(scope="module", autouse=True)
def warm_cache():
    # evaluate_app caches; warm it once for the whole module
    yield


class TestTable1:
    def test_open_rows_match_paper_exactly(self):
        """Open-source Table 1 rows are calibrated to the paper's values."""
        mismatches = []
        for key in ("adblock", "anarxiv", "blippex", "diaspora", "diode",
                    "ifixit", "lightning", "radioreddit", "reddinator",
                    "twister", "tzm", "wallabag", "weather"):
            row = row_for_app(key)
            paper = row_for(key)
            for field in ("get", "post", "put", "delete", "query", "xml"):
                measured = getattr(row, field).extractocol
                expected = getattr(paper, field)[0]
                if measured != expected:
                    mismatches.append((key, field, measured, expected))
            if row.pairs != paper.pairs:
                mismatches.append((key, "pairs", row.pairs, paper.pairs))
        assert not mismatches, mismatches

    def test_closed_method_counts_match_paper(self):
        """Closed-source Extractocol method columns equal the paper row
        (the corpus encodes them); fuzz columns agree within tolerance."""
        for key in ("fivemiles", "linkedin", "pinterest", "tophatter",
                    "wishlocal", "pandora", "geek"):
            row = row_for_app(key)
            paper = row_for(key)
            for field in ("get", "post", "put", "delete"):
                assert getattr(row, field).extractocol == getattr(paper, field)[0], (
                    key, field)
                # manual fuzzing within ±2 of the paper cell
                assert abs(
                    getattr(row, field).manual - getattr(paper, field)[1]
                ) <= 2, (key, field)

    def test_total_pairs_scale(self):
        """Paper: 971 reconstructed pairs; the corpus lands within 10%."""
        measured = total_pairs()
        assert abs(measured - 971) / 971 < 0.10

    def test_render_is_complete(self):
        text = render_table1()
        assert text.count("\n") >= 35
        for app in ("Diode", "Pinterest", "KAYAK", "radio reddit"):
            assert app in text


class TestFigures:
    def test_figure6_closed_ordering(self):
        f6 = figure6("closed")
        e, m, a = f6.extractocol, f6.manual, f6.third
        assert e.uris > m.uris > a.uris
        assert e.response_bodies > m.response_bodies > a.response_bodies
        assert e.request_bodies > m.request_bodies > a.request_bodies

    def test_figure6_open_agreement(self):
        f6 = figure6("open")
        # open-source: Extractocol ≈ source-code analysis ≈ manual fuzzing
        assert f6.extractocol.uris == pytest.approx(f6.third.uris, abs=3)
        assert f6.extractocol.response_bodies == f6.third.response_bodies

    def test_figure7_open_one_request_keyword_class_missing(self):
        """Extractocol (heuristics off) misses the async-built request
        keywords — 'identifies all but one' in the paper, three here (the
        radio reddit dir= pair and weather's lat/lon)."""
        f7 = figure7("open")
        missing = f7.third.request_keywords - f7.extractocol.request_keywords
        assert 1 <= missing <= 3

    def test_figure7_traffic_shows_more_response_keywords(self):
        """Apps don't inspect all response keys: traffic keyword counts
        exceed signature counts (paper: 616 vs 372 ≈ 60%)."""
        f7 = figure7("open")
        ratio = f7.extractocol.response_keywords / f7.manual.response_keywords
        assert 0.4 < ratio < 0.8

    def test_figure7_closed_extractocol_beats_manual_requests(self):
        f7 = figure7("closed")
        # paper: 7793 identified vs 3507 in traffic — same direction here
        assert f7.extractocol.request_keywords > f7.manual.request_keywords
        assert f7.manual.request_keywords > f7.third.request_keywords
        # and response keywords slightly exceed the traffic's
        # (paper: 14120 vs 13554)
        assert f7.extractocol.response_keywords >= f7.manual.response_keywords


class TestTable2:
    def test_request_bytes_nearly_fully_explained(self):
        for kind in ("open", "closed"):
            rk, rv, rn = table2(kind).request
            assert rk + rv > 0.75, (kind, rk, rv, rn)
            assert rk > 0.2

    def test_response_bytes_half_wildcarded(self):
        for kind in ("open", "closed"):
            rk, rv, rn = table2(kind).response
            assert 0.2 < rn < 0.8, (kind, rn)

    def test_render(self):
        text = render_table2()
        assert "open" in text and "closed" in text


class TestCaseStudies:
    def test_table5_totals(self):
        rows = table5()
        assert sum(r.apis for r in rows) == 43
        by_cat = {r.category: r.apis for r in rows}
        assert by_cat["Travel Planner"] == 11
        assert by_cat["Mobile Specific"] == 12
        assert by_cat["Flight"] == 6
        json_cats = {r.category for r in rows if r.response_json}
        assert {"Flight", "Car", "Advertising"} <= json_cats

    def test_table6_signatures(self):
        sigs = table6()
        assert "action=registerandroid" in sigs["/k/authajax"]
        for key in ("uuid=", "hash=", "platform=android", "tz="):
            assert key in sigs["/k/authajax"].replace("\\", "")
        start = sigs["/api/search/V8/flight/start"].replace("\\", "")
        for key in ("cabin=", "travelers=", "origin=", "destination=",
                    "depart_date", "_sid_="):
            assert key in start
        poll = sigs["/api/search/V8/flight/poll"].replace("\\", "")
        for key in ("searchid=", "nc=", "currency=", "includeopaques=true"):
            assert key in poll

    def test_figure8_sixteen_of_eighteen(self):
        result = figure8()
        assert result.total_traffic_keywords == 18
        assert result.matched_keywords == 16
        assert set(result.unmatched) == {"album", "score"}

    def test_figure1_prefetch_chain(self):
        chain = figure1_chain()
        assert len(chain) >= 3  # android_ad.json -> ad query -> ad video
        assert "media_player" in " ".join(chain)

    def test_figure3_slice_fraction_small(self):
        result = figure3()
        assert result.slice_fraction < 0.35  # paper: 6.3% of a real APK
        assert result.uri_patterns >= 3
        assert result.search_regex_matches

    def test_tables_render(self):
        assert "radio reddit" in __import__("repro.evalx", fromlist=["table3"]).table3()
        assert "TED" in render_table4()
        assert "KAYAK" in render_table5()
        assert "authajax" in render_table6()


class TestReverseEngineering:
    def test_signature_driven_replay(self):
        """§5.3: a client generated from the signatures retrieves flight
        fares, and the User-Agent header is load-bearing."""
        from repro.corpus import get_spec
        from repro.runtime.httpstack import HttpRequest

        spec = get_spec("kayak")
        network = spec.build_network()
        sigs = table6()
        ua = {"User-Agent": "kayakandroidphone/8.1"}
        r1 = network.send(HttpRequest(
            "POST", "https://www.kayak.com/k/authajax",
            headers=ua, body="action=registerandroid&uuid=u&hash=h"))
        sid = r1.json()["sid"]
        r2 = network.send(HttpRequest(
            "GET",
            f"https://www.kayak.com/api/search/V8/flight/start?cabin=e&origin=ICN&destination=SFO&_sid_={sid}",
            headers=ua))
        searchid = r2.json()["searchid"]
        r3 = network.send(HttpRequest(
            "GET",
            f"https://www.kayak.com/api/search/V8/flight/poll?searchid={searchid}&currency=USD",
            headers=ua))
        assert r3.json()["tripset"][0]["price"]
        # without the app-specific header, access is denied
        r4 = network.send(HttpRequest(
            "GET",
            f"https://www.kayak.com/api/search/V8/flight/poll?searchid={searchid}",
        ))
        assert r4.status == 403
