"""End-to-end HTTP service tests: start the server, submit concurrent
jobs, and verify dedup, cached re-submission (byte-identical to a fresh
run), metrics, health and bundle upload."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import Extractocol
from repro.core.report import report_to_dict
from repro.service import resolve_target
from repro.service.api import AnalysisService
from repro.service.store import canonical_json


@pytest.fixture()
def service(tmp_path):
    svc = AnalysisService(tmp_path / "store", port=0, workers=4).start()
    yield svc
    svc.stop()


def _request(svc, method, path, body=None, headers=None):
    req = urllib.request.Request(
        svc.url + path, data=body, method=method,
        headers=headers or ({"Content-Type": "application/json"} if body else {}),
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(svc, path):
    return _request(svc, "GET", path)


def post(svc, path, payload):
    return _request(svc, "POST", path, json.dumps(payload).encode())


def wait_done(svc, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, data = get(svc, f"/jobs/{job_id}")
        assert status == 200
        if data["job"]["status"] in ("done", "failed", "cancelled"):
            return data["job"]
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


class TestAnalyzeLifecycle:
    def test_submit_poll_fetch_report(self, service):
        status, data = post(service, "/analyze", {"target": "diode"})
        assert status == 202
        job = wait_done(service, data["job"]["id"])
        assert job["status"] == "done" and not job["cache_hit"]

        status, envelope = get(service, f"/report/{job['result_key']}")
        assert status == 200
        apk, config, _ = resolve_target("diode")
        fresh = Extractocol(config).analyze(apk)
        # the cached report is byte-identical to a fresh analysis
        assert canonical_json(envelope["report"]) == canonical_json(
            report_to_dict(fresh)
        )

    def test_cached_resubmission_served_without_reanalysis(self, service):
        _, data = post(service, "/analyze", {"target": "tzm"})
        wait_done(service, data["job"]["id"])
        status, data = post(service, "/analyze", {"target": "tzm"})
        assert status == 200  # answered synchronously from the store
        assert data["job"]["cache_hit"] and data["job"]["status"] == "done"
        _, metrics = get(service, "/metrics")
        assert metrics["counters"]["analyses_run"] == 1

    def test_config_overrides_shard_results(self, service):
        _, a = post(service, "/analyze", {"target": "wallabag"})
        _, b = post(service, "/analyze",
                    {"target": "wallabag", "config": {"rounds": 1}})
        ja = wait_done(service, a["job"]["id"])
        jb = wait_done(service, b["job"]["id"])
        assert ja["config_key"] != jb["config_key"]
        assert ja["apk_digest"] == jb["apk_digest"]

    def test_concurrent_posts_trigger_exactly_one_analysis(self, tmp_path):
        def slow_analyzer(apk, config):
            time.sleep(0.5)  # hold the job in-flight while posts race in
            return Extractocol(config).analyze(apk)

        svc = AnalysisService(
            tmp_path / "store", port=0, workers=4, analyzer=slow_analyzer
        ).start()
        try:
            results = []

            def submit():
                results.append(
                    post(svc, "/analyze", {"target": "radioreddit"})
                )

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            ids = {data["job"]["id"] for _, data in results}
            assert len(ids) == 1, f"expected one deduplicated job, got {ids}"
            wait_done(svc, ids.pop())
            _, metrics = get(svc, "/metrics")
            assert metrics["counters"]["analyses_run"] == 1
            assert metrics["counters"]["jobs_deduplicated"] == 7
        finally:
            svc.stop()

    def test_upload_sapk_bundle(self, service, tmp_path):
        from repro.apk.loader import save_apk
        from repro.corpus import build_app

        path = save_apk(build_app("blippex"), tmp_path / "b.zip")
        status, data = _request(
            service, "POST", "/analyze", path.read_bytes(),
            headers={
                "Content-Type": "application/zip",
                # match the corpus default for open-source apps so the
                # upload and the corpus key land on the same cache entry
                "X-Repro-Config": json.dumps({"async_heuristic": False}),
            },
        )
        assert status == 202
        job = wait_done(service, data["job"]["id"])
        assert job["status"] == "done"
        # same content + same semantic config ⇒ same cache entry
        status, data = post(service, "/analyze", {"target": "blippex"})
        assert status == 200 and data["job"]["cache_hit"]


class TestOperationalEndpoints:
    def test_healthz_and_jobs_listing(self, service):
        status, health = get(service, "/healthz")
        assert status == 200 and health["status"] == "ok"
        _, data = post(service, "/analyze", {"target": "diode"})
        wait_done(service, data["job"]["id"])
        status, listing = get(service, "/jobs")
        assert status == 200 and len(listing["jobs"]) == 1

    def test_metrics_shape(self, service):
        _, data = post(service, "/analyze", {"target": "diode"})
        wait_done(service, data["job"]["id"])
        _, metrics = get(service, "/metrics")
        assert {"counters", "gauges", "histograms", "store"} <= metrics.keys()
        assert metrics["counters"]["jobs_done"] == 1
        assert metrics["gauges"]["queue_depth"] == 0
        assert metrics["histograms"]["analyze_seconds"]["count"] == 1
        assert metrics["store"]["writes"] == 1

    def test_error_paths(self, service):
        assert post(service, "/analyze", {"target": "not-an-app"})[0] == 404
        assert post(service, "/analyze", {})[0] == 400
        assert post(service, "/analyze",
                    {"target": "diode", "config": {"bogus": 1}})[0] == 400
        assert get(service, "/jobs/j99999")[0] == 404
        assert get(service, "/report/deadbeef")[0] == 404
        assert get(service, "/nope")[0] == 404
        status, _ = _request(service, "POST", "/analyze", b"not json",
                             headers={"Content-Type": "application/json"})
        assert status == 400


class TestFleetTelemetryEndpoints:
    def _get_text(self, svc, path):
        with urllib.request.urlopen(svc.url + path, timeout=30) as resp:
            return resp.status, resp.read().decode()

    def test_status_shape(self, service):
        _, data = post(service, "/analyze", {"target": "diode"})
        wait_done(service, data["job"]["id"])
        status, body = get(service, "/status")
        assert status == 200
        assert body["status"] == "ok"
        assert body["run_id"] == service.run_id
        assert body["uptime_s"] >= 0
        assert body["jobs"]["total"] == 1
        assert body["jobs"]["done"] == 1
        workers = body["workers"]
        assert len(workers) == 4
        assert all(w["alive"] for w in workers)
        assert "recent_runs" in body

    def test_status_lists_recent_ledger_runs(self, service):
        from repro.obs.ledger import RunLedger, RunRecord

        record = RunRecord.from_batch(
            run_id="recent0run01", label="synth:transports*2",
            records=[{"target": "a", "status": "done", "cache_hit": False,
                      "seconds": 0.1}],
            started_unix=0.0, wall_s=0.1,
        )
        RunLedger(service.store.root).append(record)
        _, body = get(service, "/status")
        runs = {r["run_id"] for r in body["recent_runs"]}
        assert "recent0run01" in runs

    def test_prometheus_exposes_worker_liveness_and_phases(self, service):
        _, data = post(service, "/analyze", {"target": "diode"})
        wait_done(service, data["job"]["id"])
        status, text = self._get_text(service, "/metrics?format=prometheus")
        assert status == 200
        lines = text.splitlines()
        up = [l for l in lines if l.startswith("repro_worker_up{")]
        assert len(up) == 4
        assert all(l.endswith(" 1") for l in up)
        # per-phase histograms folded by the scheduler worker
        phases = [
            l for l in lines
            if l.startswith("repro_phase_seconds_count{")
        ]
        assert any('phase="slicing"' in l for l in phases)
        # and the per-family app latency histogram
        assert any(
            l.startswith("repro_app_seconds_count{") and 'family="corpus"' in l
            for l in lines
        )

    def test_stop_writes_serve_ledger_record(self, tmp_path):
        from repro.obs.ledger import RunLedger

        svc = AnalysisService(tmp_path / "store", port=0, workers=2).start()
        try:
            _, data = post(svc, "/analyze", {"target": "tzm"})
            wait_done(svc, data["job"]["id"])
        finally:
            svc.stop()
        records = RunLedger(tmp_path / "store").records()
        serve = [r for r in records if r["kind"] == "serve"]
        assert len(serve) == 1
        assert serve[0]["run_id"] == svc.run_id
        assert serve[0]["targets"] == 1
        assert serve[0]["done"] == 1
        assert serve[0]["failed"] == 0


class TestReportsAndDiff:
    def _store_one(self, service, target):
        _, data = post(service, "/analyze", {"target": target})
        return wait_done(service, data["job"]["id"])["result_key"]

    def test_reports_listing(self, service):
        status, data = get(service, "/reports")
        assert status == 200 and data["reports"] == []
        key_tzm = self._store_one(service, "tzm")
        key_diode = self._store_one(service, "diode")
        status, data = get(service, "/reports")
        assert status == 200
        assert {e["key"] for e in data["reports"]} == {key_tzm, key_diode}
        for entry in data["reports"]:
            assert {"key", "app", "apk_digest", "config_key", "schema",
                    "transactions", "stored_at"} <= entry.keys()
            assert "report" not in entry

    def test_diff_endpoint_computes_then_caches(self, service):
        key = self._store_one(service, "tzm")
        status, data = get(service, f"/diff/{key}/{key}")
        assert status == 200
        assert data["cached"] is False
        assert data["diff"]["verdict"] == "identical"
        assert data["diff"]["breaking"] is False

        status, again = get(service, f"/diff/{key}/{key}")
        assert status == 200 and again["cached"] is True
        assert again["diff"] == data["diff"]
        _, metrics = get(service, "/metrics")
        assert metrics["counters"]["diffs_computed"] == 1
        assert metrics["counters"]["diffs_cached"] == 1
        # the diff cache entry never shows up as a report
        _, listing = get(service, "/reports")
        assert [e["key"] for e in listing["reports"]] == [key]

    def test_diff_error_paths(self, service):
        key = self._store_one(service, "tzm")
        assert get(service, f"/diff/{key}/missing")[0] == 404
        assert get(service, "/diff/onlyone")[0] == 400
