"""Cross-check our dominator implementation against networkx on random
control-flow graphs built from random branchy IR programs."""

from __future__ import annotations

import networkx as nx
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cfg import cfg_of, immediate_dominators, natural_loops
from repro.ir import ProgramBuilder


@st.composite
def branchy_methods(draw):
    """A random method: a sequence of blocks with random forward/backward
    branches (labels always exist, so the program is valid by construction)."""
    n_blocks = draw(st.integers(2, 8))
    pb = ProgramBuilder()
    m = pb.class_("r.App").method("go", params=["int"], static=False)
    x = m.let("x", "int", 0)
    labels = [f"B{i}" for i in range(n_blocks)]
    for i in range(n_blocks):
        m.label(labels[i])
        nxt = m.binop("+", x, i)
        m.assign(x, nxt)
        kind = draw(st.sampled_from(["fall", "if", "goto"]))
        if kind == "if":
            target = draw(st.sampled_from(labels))
            m.if_goto(m.param(0), ">", i, target)
        elif kind == "goto" and i + 1 < n_blocks:
            target = draw(st.sampled_from(labels[i + 1:]))
            m.goto(target)
    m.ret_void()
    program = pb.build()
    return program.class_of("r.App").find_methods("go")[0]


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(branchy_methods())
def test_idom_matches_networkx(method):
    cfg = cfg_of(method)
    g = nx.DiGraph()
    g.add_nodes_from(b.bid for b in cfg.blocks)
    for src, dests in cfg.succ.items():
        for d in dests:
            g.add_edge(src, d)
    entry = cfg.blocks[0].bid
    expected = dict(nx.immediate_dominators(g, entry))
    expected[entry] = entry  # networkx ≥3.6 omits the start self-mapping
    ours = immediate_dominators(cfg)
    reachable = set(expected)
    assert set(ours) == reachable
    for node in reachable:
        assert ours[node] == expected[node], (node, ours, expected)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(branchy_methods())
def test_natural_loops_are_dominated_cycles(method):
    cfg = cfg_of(method)
    idom = immediate_dominators(cfg)
    from repro.cfg import dominates

    for loop in natural_loops(cfg):
        # header dominates every block of the loop
        for bid in loop.body:
            assert dominates(idom, loop.header, bid)
        # the latch has a back edge to the header
        assert loop.header in cfg.succ[loop.latch]


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(branchy_methods())
def test_rpo_is_topological_on_dag_edges(method):
    from repro.cfg import reverse_postorder

    cfg = cfg_of(method)
    rpo = reverse_postorder(cfg)
    position = {bid: i for i, bid in enumerate(rpo)}
    loops = natural_loops(cfg)
    back_edges = {(l.latch, l.header) for l in loops}
    for src, dests in cfg.succ.items():
        if src not in position:
            continue
        for d in dests:
            if (src, d) in back_edges:
                continue
            # forward (non-back) edges respect the RPO ordering unless the
            # target also closes some other cycle through retreating edges
            if position[src] > position[d]:
                # must be a retreating edge into an ancestor in the DFS —
                # only legal when d reaches src (a cycle exists)
                g = nx.DiGraph()
                for s2, ds in cfg.succ.items():
                    for d2 in ds:
                        g.add_edge(s2, d2)
                assert nx.has_path(g, d, src)
