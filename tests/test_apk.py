"""Unit tests for the APK model: resources, manifest, loader, obfuscation."""

from __future__ import annotations

import pytest

from repro.apk import (
    Apk,
    EntryPoint,
    Manifest,
    RenameMap,
    Resources,
    TriggerKind,
    build_deobfuscation_map,
    load_apk,
    obfuscate,
    plan_renames,
    rename_program,
    save_apk,
)
from repro.ir import ProgramBuilder, validate_program
from repro.ir.printer import print_program


def make_apk(program=None) -> Apk:
    if program is None:
        pb = ProgramBuilder()
        cb = pb.class_("com.demo.Main", superclass="android.app.Activity")
        cb.field("mToken", "java.lang.String")
        m = cb.method("onCreate")
        m.call_this("fetch", ["seed"])
        m.ret_void()
        f = cb.method("fetch", params=["java.lang.String"])
        f.putfield(f.this, "mToken", f.param(0), cls="com.demo.Main")
        f.ret_void()
        program = pb.build()
    res = Resources()
    res.add_string("api_key", "k-123")
    return Apk(
        manifest=Manifest(
            package="com.demo",
            activities=["com.demo.Main"],
            permissions=["android.permission.INTERNET"],
        ),
        program=program,
        resources=res,
        entrypoints=[
            EntryPoint(
                method_id="<com.demo.Main: void onCreate()>",
                kind=TriggerKind.LIFECYCLE,
                name="launch",
            )
        ],
    )


class TestResources:
    def test_ids_are_stable_and_resolvable(self):
        res = Resources()
        rid = res.add_string("base_url", "https://api.example.com")
        assert res.get_string(rid) == "https://api.example.com"
        assert res.get_string("base_url") == "https://api.example.com"
        assert res.string_id("base_url") == rid
        assert res.has_id(rid)

    def test_reregistering_same_value_is_idempotent(self):
        res = Resources()
        a = res.add_string("k", "v")
        b = res.add_string("k", "v")
        assert a == b
        with pytest.raises(ValueError):
            res.add_string("k", "other")

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            Resources().get_string(0x7F0E0000)

    def test_roundtrip_dict(self):
        res = Resources()
        res.add_string("a", "1")
        res.add_string("b", "2")
        again = Resources.from_dict(res.to_dict())
        assert again.get_string("a") == "1"
        assert len(again) == 2


class TestManifest:
    def test_label_defaults_to_package_tail(self):
        assert Manifest(package="com.x.myapp").label == "myapp"

    def test_internet_permission(self):
        m = Manifest(package="p", permissions=["android.permission.INTERNET"])
        assert m.uses_internet
        assert not Manifest(package="p").uses_internet

    def test_dict_roundtrip(self):
        m = Manifest(package="com.a", activities=["com.a.M"], version_name="2.1")
        again = Manifest.from_dict(m.to_dict())
        assert again == m


class TestLoader:
    def test_save_load_directory(self, tmp_path):
        apk = make_apk()
        bundle = save_apk(apk, tmp_path / "demo.sapk")
        loaded = load_apk(bundle)
        assert loaded.package == "com.demo"
        assert loaded.resources.get_string("api_key") == "k-123"
        assert loaded.entrypoints == apk.entrypoints
        assert print_program(loaded.program) == print_program(apk.program)

    def test_save_load_zip(self, tmp_path):
        apk = make_apk()
        bundle = save_apk(apk, tmp_path / "demo.zip")
        loaded = load_apk(bundle)
        assert loaded.package == "com.demo"

    def test_missing_bundle_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_apk(tmp_path / "nope.sapk")


class TestObfuscation:
    def test_app_classes_renamed_framework_names_kept(self):
        apk = make_apk()
        result = obfuscate(apk)
        prog = result.apk.program
        assert "com.demo.Main" not in prog.classes
        renamed = next(iter(prog.classes.values()))
        # onCreate is a framework callback — kept; fetch is renamed.
        names = {m.name for m in renamed.methods()}
        assert "onCreate" in names
        assert "fetch" not in names
        assert validate_program(prog) == []
        assert result.apk.obfuscated

    def test_entrypoints_remapped(self):
        apk = make_apk()
        result = obfuscate(apk)
        ep = result.apk.entrypoints[0]
        cls_name = next(iter(result.apk.program.classes))
        assert cls_name in ep.method_id
        # the remapped entrypoint resolves in the renamed program
        assert result.apk.program.method_by_id(ep.method_id) is not None

    def test_library_calls_untouched(self):
        pb = ProgramBuilder()
        cb = pb.class_("com.demo.Net")
        m = cb.method("go")
        sb = m.new("java.lang.StringBuilder")
        m.vcall(sb, "append", ["x"], returns="java.lang.StringBuilder")
        m.ret_void()
        apk = make_apk(pb.build())
        apk.entrypoints.clear()
        result = obfuscate(apk)
        text = print_program(result.apk.program)
        assert "java.lang.StringBuilder" in text
        assert "append" in text

    def test_obfuscation_is_deterministic(self):
        a = obfuscate(make_apk()).renames
        b = obfuscate(make_apk()).renames
        assert a.class_map == b.class_map
        assert a.method_map == b.method_map

    def test_plan_skips_kept_classes(self):
        apk = make_apk()
        renames = plan_renames(apk.program, keep_classes=frozenset({"com.demo.Main"}))
        assert "com.demo.Main" not in renames.class_map


class TestRename:
    def test_rename_program_updates_field_refs(self):
        apk = make_apk()
        renames = RenameMap(
            class_map={"com.demo.Main": "o.a"},
            field_map={"mToken": "f0"},
        )
        prog = rename_program(apk.program, renames)
        text = print_program(prog)
        assert "mToken" not in text
        assert "f0" in text
        assert validate_program(prog) == []

    def test_inverted_roundtrips(self):
        apk = make_apk()
        renames = plan_renames(apk.program)
        forward = rename_program(apk.program, renames)
        back = rename_program(forward, renames.inverted())
        assert print_program(back) == print_program(apk.program)


class TestDeobfuscation:
    def _library_program(self):
        pb = ProgramBuilder()
        cb = pb.class_("okio.BufferTool")
        cb.field("size", "int")
        m = cb.method("writeUtf8", params=["java.lang.String"], returns="okio.BufferTool")
        m.ret(m.this)
        m2 = cb.method("flush")
        m2.ret_void()
        return pb.build()

    def test_map_recovers_original_names(self):
        reference = self._library_program()
        apk = Apk(manifest=Manifest(package="lib"), program=self._library_program())
        result = obfuscate(apk, rename_libraries=True, library_prefixes=("okio.",))
        mapping = build_deobfuscation_map(result.apk.program, reference)
        assert mapping.matched_classes == 1
        obf_name = next(iter(result.apk.program.classes))
        assert mapping.renames.class_map.get(obf_name) == "okio.BufferTool"
        assert "writeUtf8" in mapping.renames.method_map.values()

    def test_unmatched_class_counted(self):
        reference = self._library_program()
        pb = ProgramBuilder()
        other = pb.class_("o.z")
        mm = other.method("x", params=["int", "int"], returns="int")
        mm.ret(mm.param(0))
        mapping = build_deobfuscation_map(pb.build(), reference)
        assert mapping.unmatched_classes == 1
