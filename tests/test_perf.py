"""Tests for the memoized parallel engine (`repro.perf`).

The contract under test: ``workers >= 2`` selects the ProgramIndex-backed
engine, whose reports must be byte-identical to the serial reference engine
(``workers=1`` — the seed's exact code path), and whose memoized artifacts
must equal the freshly computed ones they replace.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cfg.callgraph import build_callgraph
from repro.cfg.cfg import cfg_of
from repro.cli import report_to_dict
from repro.core.config import AnalysisConfig
from repro.core.extractocol import Extractocol, _dedupe
from repro.corpus import build_app, get_spec
from repro.deps.transactions import Dependency, RequestSig, ResponseSig, Transaction
from repro.evalx import runner
from repro.ir.statements import AssignStmt, StmtRef
from repro.ir.values import InstanceFieldRef, Local, StaticFieldRef, walk_values
from repro.perf.index import ProgramIndex, compute_reach_masks, field_key
from repro.perf.parallel import fanout_width, ordered_map, resolve_workers
from repro.signature.lang import Const
from repro.slicing.slicer import NetworkSlicer
from repro.taint.defuse import LazyDefUse, compute_defuse

DETERMINISM_APPS = ["diode", "ted", "kayak"]


def _config(spec, workers: int, executor: str = "thread") -> AnalysisConfig:
    return AnalysisConfig(
        async_heuristic=(spec.kind == "closed"),
        scope_prefixes=spec.scope_prefixes,
        workers=workers,
        executor=executor,
    )


def _report_json(key: str, workers: int, executor: str = "thread") -> str:
    spec = get_spec(key)
    report = Extractocol(_config(spec, workers, executor)).analyze(spec.build_apk())
    return json.dumps(report_to_dict(report), sort_keys=True)


# --------------------------------------------------------------- determinism
@pytest.mark.parametrize("key", DETERMINISM_APPS)
def test_parallel_engine_report_identical_to_serial(key):
    """workers=4 (memoized engine + thread fan-out) must reproduce the
    serial reference report byte-for-byte."""
    assert _report_json(key, 4) == _report_json(key, 1)


def test_parallel_engine_preserves_scalar_report_fields():
    spec = get_spec("ted")
    serial = Extractocol(_config(spec, 1)).analyze(spec.build_apk())
    parallel = Extractocol(_config(spec, 4)).analyze(spec.build_apk())
    assert parallel.slice_fraction == serial.slice_fraction
    assert parallel.demarcation_points == serial.demarcation_points
    assert [str(d) for d in parallel.dependencies] == [
        str(d) for d in serial.dependencies
    ]
    assert len(parallel.transactions) == len(serial.transactions)


def test_process_executor_matches_serial():
    """The opt-in fork-based pool must also be deterministic (it degrades
    to threads on platforms without fork, which is equally deterministic)."""
    assert _report_json("ted", 2, executor="process") == _report_json("ted", 1)


def test_auto_workers_matches_serial():
    """workers=0 auto-sizes to the CPU count; still identical output."""
    assert _report_json("diode", 0) == _report_json("diode", 1)


# -------------------------------------------------- index artifact equality
def _brute_reach_sets(method):
    """Reference forward reachability as sets (the serial engine's shape)."""
    cfg = cfg_of(method)
    n = len(method.body.statements) if method.body else 0
    succ = cfg.stmt_succ
    reach = [{i} for i in range(n)]
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            acc = set(reach[i])
            for s in succ.get(i, ()):
                acc |= reach[s]
            if acc != reach[i]:
                reach[i] = acc
                changed = True
    return reach


def _bits(mask: int) -> set[int]:
    out = set()
    while mask:
        low = mask & -mask
        out.add(low.bit_length() - 1)
        mask ^= low
    return out


@pytest.fixture(scope="module")
def indexed_program():
    apk = build_app("diode")
    callgraph = build_callgraph(apk.program)
    return apk.program, ProgramIndex(apk.program, callgraph)


def _bodied_methods(program):
    return [m for m in program.methods() if m.body is not None]


def test_reach_masks_equal_reference_sets(indexed_program):
    program, index = indexed_program
    for method in _bodied_methods(program):
        masks = index.reach_masks(method)
        expected = _brute_reach_sets(method)
        assert [_bits(m) for m in masks] == expected, method.method_id


def test_reach_to_masks_are_exact_transpose(indexed_program):
    program, index = indexed_program
    for method in _bodied_methods(program):
        fwd = index.reach_masks(method)
        to = index.reach_to_masks(method)
        n = len(fwd)
        assert len(to) == n
        for j in range(n):
            expected = {i for i in range(n) if (fwd[i] >> j) & 1}
            assert _bits(to[j]) == expected, (method.method_id, j)


def test_mention_sites_and_masks_match_statement_walk(indexed_program):
    program, index = indexed_program
    for method in _bodied_methods(program):
        brute: dict[Local, set[int]] = {}
        for idx, stmt in enumerate(method.body.statements):
            touched = {d for d in stmt.defs() if isinstance(d, Local)}
            for use in stmt.uses():
                touched |= {v for v in walk_values(use) if isinstance(v, Local)}
            for local in touched:
                brute.setdefault(local, set()).add(idx)
        sites = index.mention_sites(method)
        assert {loc: set(s) for loc, s in sites.items()} == brute
        masks = index.mention_masks(method)
        assert {loc: _bits(m) for loc, m in masks.items()} == brute


def test_lazy_defuse_answers_equal_full_computation(indexed_program):
    program, index = indexed_program
    lazy_seen = 0
    for method in _bodied_methods(program):
        full = compute_defuse(method)
        du = index.defuse_of(method)
        if isinstance(du, LazyDefUse):
            lazy_seen += 1
        assert du.def_sites == full.def_sites
        assert du.use_sites == full.use_sites
        for local, uses in full.use_sites.items():
            for use_idx in uses:
                stmt = method.body.statements[use_idx]
                assert du.reaching_defs(stmt, local) == full.reaching_defs(
                    stmt, local
                ), (method.method_id, use_idx, local.name)
    assert lazy_seen > 0  # the lazy path is actually exercised


def test_field_index_matches_statement_scan(indexed_program):
    program, index = indexed_program
    stores: dict[tuple[str, str], list[StmtRef]] = {}
    loads: dict[tuple[str, str], list[StmtRef]] = {}
    for method in _bodied_methods(program):
        for stmt in method.body:
            if not isinstance(stmt, AssignStmt):
                continue
            if isinstance(stmt.target, (InstanceFieldRef, StaticFieldRef)):
                stores.setdefault(field_key(stmt.target.field), []).append(
                    method.stmt_ref(stmt)
                )
            if isinstance(stmt.rhs, (InstanceFieldRef, StaticFieldRef)):
                loads.setdefault(field_key(stmt.rhs.field), []).append(
                    method.stmt_ref(stmt)
                )
    assert index.field_stores == stores
    assert index.field_loads == loads


def test_compute_reach_masks_empty_method():
    class _Cfg:
        stmt_succ: dict = {}

    assert compute_reach_masks(_Cfg(), 0) == []


# --------------------------------------------- call graph reverse adjacency
def test_caller_methods_consistent_with_caller_sites(indexed_program):
    program, index = indexed_program
    callgraph = index.callgraph
    for method in program.methods():
        mid = method.method_id
        assert callgraph.caller_methods_of(mid) == {
            site.method_id for site in callgraph.callers_of(mid)
        }


def test_relevant_methods_bfs_equals_fixpoint_closure():
    apk = build_app("diode")
    callgraph = build_callgraph(apk.program)
    slicer = NetworkSlicer(apk.program, callgraph)
    slicing = slicer.slice_all()
    assert slicing.slices  # the closure below must not be vacuous

    bfs = Extractocol()._relevant_methods(slicing, callgraph)

    expected: set[str] = set()
    for s in slicing.slices:
        expected |= s.methods
    changed = True
    while changed:  # the seed's re-scan-until-fixpoint formulation
        changed = False
        for mid in list(expected):
            for site in callgraph.callers_of(mid):
                if site.method_id not in expected:
                    expected.add(site.method_id)
                    changed = True
    assert bfs == expected


# ----------------------------------------------------------- _dedupe repair
def _txn(txn_id: int, uri: str, deps: list[Dependency]) -> Transaction:
    return Transaction(
        txn_id=txn_id,
        site=StmtRef(f"<C: void m{txn_id}()>", 0),
        root="<C: void onCreate()>",
        request=RequestSig(method="GET", uri=Const(uri)),
        response=ResponseSig(kind="json"),
        depends_on=deps,
    )


def test_dedupe_three_contexts_sharing_a_dependency_list():
    """Regression: three contexts collapsing onto one representative while
    literally sharing a ``depends_on`` list must not double-count edges or
    mutate the shared input list."""
    shared = [Dependency(src_txn=0, src_path="$.token", dst_txn=1, dst_field="uri")]
    source = _txn(0, "http://x/login", [])
    contexts = [_txn(i, "http://x/feed", shared) for i in (1, 2, 3)]

    out = _dedupe([source] + contexts)

    assert len(shared) == 1  # input list untouched
    assert sorted(t.txn_id for t in out) == [0, 1]
    rep = next(t for t in out if t.txn_id == 1)
    assert [str(d) for d in rep.depends_on] == ["txn0[$.token] -> txn1.uri"]


def test_dedupe_remaps_edges_onto_representatives():
    """An edge pointing at a collapsed duplicate must be remapped onto the
    duplicate's representative."""
    a1 = _txn(1, "http://x/feed", [])
    a2 = _txn(2, "http://x/feed", [])  # collapses onto txn 1
    consumer = _txn(
        3,
        "http://x/item",
        [Dependency(src_txn=2, src_path="$.id", dst_txn=3, dst_field="uri")],
    )
    out = _dedupe([a1, a2, consumer])
    assert sorted(t.txn_id for t in out) == [1, 3]
    rep = next(t for t in out if t.txn_id == 3)
    assert [str(d) for d in rep.depends_on] == ["txn1[$.id] -> txn3.uri"]


# ------------------------------------------------------- evalx single build
def test_evaluate_app_builds_apk_once(monkeypatch):
    real_spec = get_spec("diode")
    calls = {"n": 0}

    class CountingSpec:
        def __getattr__(self, name):
            return getattr(real_spec, name)

        def build_apk(self):
            calls["n"] += 1
            return real_spec.build_apk()

    counting = CountingSpec()
    monkeypatch.setattr(runner, "get_spec", lambda key: counting)
    runner.clear_cache()
    try:
        evaluation = runner.evaluate_app("diode")
        assert calls["n"] == 1
        assert evaluation.report.transactions
    finally:
        runner.clear_cache()


# ------------------------------------------------------------ worker knobs
def test_resolve_workers_normalisation():
    cpus = os.cpu_count() or 1
    assert resolve_workers(None) == cpus
    assert resolve_workers(0) == cpus
    assert resolve_workers(1) == 1
    assert resolve_workers(-3) == 1
    assert resolve_workers(7) == 7


def test_fanout_width_clamps_to_core_count():
    cpus = os.cpu_count() or 1
    assert fanout_width(1) == 1
    assert 1 <= fanout_width(64) <= cpus
    assert fanout_width(0) == min(resolve_workers(0), cpus)


def test_ordered_map_preserves_input_order():
    items = list(range(23))
    assert ordered_map(lambda x: x * x, items, workers=4) == [x * x for x in items]
    assert ordered_map(lambda x: x + 1, items, workers=1) == [x + 1 for x in items]
