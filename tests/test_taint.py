"""Tests for def-use chains, demarcation scanning and the taint engine."""

from __future__ import annotations

from fixtures_http import CLS, build_mini_reddit

from repro.cfg import build_callgraph
from repro.ir import ProgramBuilder
from repro.slicing import DemarcationRegistry, scan_demarcation_points
from repro.taint import TaintConfig, TaintEngine, compute_defuse
from repro.taint.defuse import defuse_of


def _method(program, name, cls=CLS):
    return program.class_of(cls).find_methods(name)[0]


class TestDefUse:
    def test_straightline_chain(self):
        pb = ProgramBuilder()
        m = pb.class_("t.A").method("m", static=True)
        a = m.let("a", "int", 1)
        b = m.binop("+", a, 2, into="b")
        c = m.binop("+", b, 3, into="c")
        m.ret_void()
        prog = pb.build()
        method = prog.class_of("t.A").find_methods("m")[0]
        du = compute_defuse(method)
        # use of `a` in the def of `b` reaches exactly a's definition
        b_def = du.def_sites[b][0]
        assert du.defs_reaching[(b_def, a)] == (du.def_sites[a][0],)

    def test_branch_merges_definitions(self):
        pb = ProgramBuilder()
        m = pb.class_("t.B").method("m", params=["int"], static=True)
        x = m.local("x", "int")
        m.if_goto(m.param(0), "==", 0, "ELSE")
        m.assign(x, 1)
        m.goto("JOIN")
        m.label("ELSE")
        m.assign(x, 2)
        m.label("JOIN")
        m.binop("+", x, 0, into="y")
        m.ret_void()
        prog = pb.build()
        method = prog.class_of("t.B").find_methods("m")[0]
        du = compute_defuse(method)
        use_idx = du.use_sites[x][-1]
        assert len(du.defs_reaching[(use_idx, x)]) == 2

    def test_redefinition_kills(self):
        pb = ProgramBuilder()
        m = pb.class_("t.C").method("m", static=True)
        x = m.let("x", "int", 1)
        m.assign(x, 2)
        m.binop("+", x, 0, into="y")
        m.ret_void()
        prog = pb.build()
        method = prog.class_of("t.C").find_methods("m")[0]
        du = compute_defuse(method)
        use_idx = du.use_sites[x][-1]
        reaching = du.defs_reaching[(use_idx, x)]
        assert len(reaching) == 1
        assert reaching[0] == du.def_sites[x][1]

    def test_loop_def_reaches_header_use(self, branchy_program):
        method = branchy_program.class_of("com.example.Branchy").find_methods("run")[0]
        du = defuse_of(method)
        i_local = method.body.locals["i"]
        # `i` at the loop condition sees both the init def and the increment.
        cond_use = [
            u for u in du.use_sites[i_local]
        ][0]
        assert len(du.defs_reaching[(cond_use, i_local)]) == 2


class TestDemarcationScan:
    def test_finds_both_execute_sites(self):
        apk = build_mini_reddit()
        cg = build_callgraph(apk.program)
        dps = scan_demarcation_points(apk.program, cg)
        execs = [d for d in dps if d.spec.method_name == "execute"]
        assert len(execs) == 2
        for dp in execs:
            assert dp.request_seeds, "request seed missing"
            assert dp.response_seeds, "synchronous DP must seed from return"

    def test_registry_shape_matches_paper(self):
        reg = DemarcationRegistry()
        # §4: "39 demarcation points from 16 classes" — our registry is the
        # same order of magnitude and covers the same library families.
        assert len(reg) >= 20
        assert reg.class_count() >= 14
        assert reg.lookup("org.apache.http.client.HttpClient", "execute")
        assert reg.lookup("android.media.MediaPlayer", "setDataSource")


class TestBackwardSlicing:
    def test_request_slice_contains_uri_construction(self):
        apk = build_mini_reddit()
        cg = build_callgraph(apk.program)
        dps = scan_demarcation_points(apk.program, cg)
        dp = next(
            d
            for d in dps
            if d.site.method_id.endswith("doInBackground()>")
            and d.spec.method_name == "execute"
        )
        engine = TaintEngine(apk.program, cg)
        sl = engine.backward_slice(dp.request_seeds)
        texts = [
            str(apk.program.method_by_id(r.method_id).stmt_at(r.index))
            for r in sl.stmts
        ]
        joined = "\n".join(texts)
        assert "http://www.reddit.com" in joined
        assert "append" in joined
        assert "'/r/'" in joined  # branch A
        assert "'&after='" in joined  # branch B
        # the field read feeding the subreddit name is included
        assert "mSubreddit" in joined

    def test_request_slice_excludes_response_parsing(self):
        apk = build_mini_reddit()
        cg = build_callgraph(apk.program)
        dps = scan_demarcation_points(apk.program, cg)
        dp = next(
            d
            for d in dps
            if d.site.method_id.endswith("doInBackground()>")
            and d.spec.method_name == "execute"
        )
        engine = TaintEngine(apk.program, cg)
        sl = engine.backward_slice(dp.request_seeds)
        # The slice may cross into parseListing *only* through the mAfter
        # store (a genuine inter-transaction dependency); the unrelated
        # title-logging loop must stay out.
        texts = [
            str(apk.program.method_by_id(r.method_id).stmt_at(r.index))
            for r in sl.stmts
        ]
        joined = "\n".join(texts)
        assert "'title'" not in joined
        assert "Log" not in joined

    def test_field_store_chased_across_methods(self):
        apk = build_mini_reddit()
        cg = build_callgraph(apk.program)
        dps = scan_demarcation_points(apk.program, cg)
        dp = next(d for d in dps if d.site.method_id.endswith("loadMore()>"))
        engine = TaintEngine(apk.program, cg)
        sl = engine.backward_slice(dp.request_seeds)
        # loadMore's URI embeds this.mAfter, stored in parseListing
        assert any("parseListing" in r.method_id for r in sl.stmts)
        assert any(f.name == "mAfter" for f in sl.fields)

    def test_slice_is_fraction_of_program(self):
        apk = build_mini_reddit()
        cg = build_callgraph(apk.program)
        dps = scan_demarcation_points(apk.program, cg)
        dp = next(d for d in dps if d.site.method_id.endswith("loadMore()>"))
        engine = TaintEngine(apk.program, cg)
        sl = engine.backward_slice(dp.request_seeds)
        assert 0 < len(sl) < apk.program.statement_count()


class TestForwardSlicing:
    def _forward(self, apk):
        cg = build_callgraph(apk.program)
        dps = scan_demarcation_points(apk.program, cg)
        dp = next(
            d
            for d in dps
            if d.site.method_id.endswith("doInBackground()>")
            and d.spec.method_name == "execute"
        )
        engine = TaintEngine(apk.program, cg)
        return engine.forward_slice(dp.response_seeds)

    def test_response_slice_reaches_parser(self):
        apk = build_mini_reddit()
        sl = self._forward(apk)
        assert any("parseListing" in r.method_id for r in sl.stmts)
        texts = [
            str(apk.program.method_by_id(r.method_id).stmt_at(r.index))
            for r in sl.stmts
        ]
        joined = "\n".join(texts)
        assert "getString" in joined
        assert "getJSONArray" in joined

    def test_response_taints_field_store(self):
        apk = build_mini_reddit()
        sl = self._forward(apk)
        assert any(f.name == "mAfter" for f in sl.fields)

    def test_noflow_call_not_propagated(self):
        apk = build_mini_reddit()
        sl = self._forward(apk)
        # Log.d uses the tainted title: the *call* joins the slice (it uses
        # tainted data) but nothing flows out of it.
        tainted_names = {l.name for (_, l) in sl.tainted_locals}
        assert "title" in tainted_names


class TestAsyncHops:
    def _two_hop_program(self):
        """server push stores token -> timer copies it -> request uses copy."""
        pb = ProgramBuilder()
        cb = pb.class_("t.Hoppy", superclass="android.app.Activity")
        cb.field("stage1", "java.lang.String")
        cb.field("stage2", "java.lang.String")
        on_push = cb.method("onPush", params=["java.lang.String"])
        on_push.putfield(on_push.this, "stage1", on_push.param(0), cls="t.Hoppy")
        on_push.ret_void()
        on_timer = cb.method("onTimer")
        v = on_timer.getfield(on_timer.this, "stage1", cls="t.Hoppy")
        on_timer.putfield(on_timer.this, "stage2", v, cls="t.Hoppy")
        on_timer.ret_void()
        send = cb.method("send")
        token = send.getfield(send.this, "stage2", cls="t.Hoppy")
        url = send.concat("http://x.test/", token, into="url")
        req = send.new("org.apache.http.client.methods.HttpGet", [url], into="req")
        client = send.local("client", "org.apache.http.client.HttpClient")
        send.assign(client, None)
        send.vcall(
            client,
            "execute",
            [req],
            returns="org.apache.http.HttpResponse",
            on="org.apache.http.client.HttpClient",
        )
        send.ret_void()
        return pb.build()

    def _slice_with(self, max_hops):
        prog = self._two_hop_program()
        cg = build_callgraph(prog)
        dps = scan_demarcation_points(prog, cg)
        dp = dps[0]
        roots = {
            "<t.Hoppy: void onPush(java.lang.String)>": frozenset({"push"}),
            "<t.Hoppy: void onTimer()>": frozenset({"timer"}),
            "<t.Hoppy: void send()>": frozenset({"ui"}),
        }
        engine = TaintEngine(
            prog, cg, TaintConfig(max_async_hops=max_hops), event_roots=roots
        )
        return engine.backward_slice(dp.request_seeds)

    def test_one_hop_reaches_timer_but_not_push(self):
        sl = self._slice_with(1)
        assert any("onTimer" in r.method_id for r in sl.stmts)
        assert not any("onPush" in r.method_id for r in sl.stmts)
        assert sl.missed_async_flows, "second hop should be recorded as missed"

    def test_zero_hops_stops_at_first_boundary(self):
        sl = self._slice_with(0)
        assert not any("onTimer" in r.method_id for r in sl.stmts)

    def test_two_hops_reaches_push(self):
        sl = self._slice_with(2)
        assert any("onPush" in r.method_id for r in sl.stmts)


class TestLinkedReturns:
    def test_asynctask_result_flows_to_onpostexecute(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.Task", superclass="android.os.AsyncTask")
        do = cb.method("doInBackground", returns="java.lang.String")
        client = do.local("client", "org.apache.http.client.HttpClient")
        do.assign(client, None)
        req = do.new("org.apache.http.client.methods.HttpGet", ["http://a.test/x"])
        resp = do.vcall(
            client,
            "execute",
            [req],
            returns="org.apache.http.HttpResponse",
            on="org.apache.http.client.HttpClient",
            into="resp",
        )
        body = do.scall(
            "org.apache.http.util.EntityUtils",
            "toString",
            [resp],
            returns="java.lang.String",
            into="body",
        )
        do.ret(body)
        post = cb.method("onPostExecute", params=["java.lang.String"])
        j = post.new("org.json.JSONObject", [post.param(0)], into="j")
        post.vcall(j, "getString", ["token"], returns="java.lang.String")
        post.ret_void()
        prog = pb.build()
        cg = build_callgraph(prog)
        dps = scan_demarcation_points(prog, cg)
        do_id = "<t.Task: java.lang.String doInBackground()>"
        post_id = "<t.Task: void onPostExecute(java.lang.String)>"
        engine = TaintEngine(
            prog, cg, linked_returns={do_id: [(post_id, 0)]}
        )
        sl = engine.forward_slice(dps[0].response_seeds)
        assert any("onPostExecute" in r.method_id for r in sl.stmts)
