"""The whole shipped corpus is lint-clean: ``repro lint`` must find zero
error-severity findings on every app (the CI ``lint-corpus`` gate), and
lint output must be byte-deterministic across runs."""

from __future__ import annotations

import pytest

from repro.corpus import app_keys, build_app
from repro.lint import findings_to_jsonl, lint_apk


@pytest.mark.parametrize("key", app_keys())
def test_corpus_app_has_no_lint_errors(key):
    lint = lint_apk(build_app(key))
    assert lint.errors == [], (
        f"{key} has lint errors:\n" + "\n".join(str(f) for f in lint.errors)
    )


def test_corpus_is_currently_finding_free():
    """Stronger than the gate: today the corpus carries zero findings of
    *any* severity — a new warning/info means either a corpus regression
    or an overeager rule, and both deserve a look."""
    noisy = {}
    for key in app_keys():
        lint = lint_apk(build_app(key))
        if lint.findings:
            noisy[key] = [str(f) for f in lint.findings]
    assert noisy == {}


def test_lint_is_deterministic_across_runs():
    first = lint_apk(build_app("radioreddit"))
    second = lint_apk(build_app("radioreddit"))
    assert first.findings == second.findings
    assert findings_to_jsonl(first.findings) == findings_to_jsonl(second.findings)
