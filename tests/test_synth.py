"""repro.synth: grid compilation, determinism, ground-truth soundness.

The three contracts of the synthesized corpus:

1. **Determinism** — a ``(families, scale, seed)`` triple fully determines
   the population: byte-identical ``.sapk`` bundles across fresh compiles
   and byte-identical analysis reports serial vs the process engine;
   different seeds yield distinct populations.
2. **Soundness** — every synthesized app analyzes without error, each
   discovery method's yield exactly matches the generated
   :class:`~repro.corpus.base.GroundTruth`, lineage mutations diff to
   their known drift class, and the population is lint-clean at
   ``lint_level=error``.
3. **Addressing** — keys and population specs are self-describing: any
   process can rebuild any app from its key alone, and malformed keys or
   specs fail loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.corpus import build_version, get_spec
from repro.corpus.lineage import lineage
from repro.synth import (
    FAMILIES,
    app_key,
    expand_targets,
    family_keys,
    get_family,
    grid_point,
    normalize_coords,
    parse_app_key,
    parse_population,
    population_manifest,
    synth_genapp,
    synth_lineage,
    synth_spec,
)

SMOKE_SPEC = "synth:all*21@3"


# ----------------------------------------------------------- addressing
class TestKeys:
    def test_key_roundtrip(self):
        key = app_key("transports", 7, 41)
        assert key == "syn-transports-s7-0041"
        assert parse_app_key(key) == ("transports", 7, 41)

    def test_malformed_keys_raise(self):
        for bad in ("syn-transports-0041", "syn-nofamily-s7-0001",
                    "syn--s7-0001", "transports-s7-0001", "syn-mega-sx-01"):
            with pytest.raises(KeyError):
                parse_app_key(bad)

    def test_get_spec_routes_synth_keys(self):
        spec = get_spec("syn-mega-s7-0002")
        assert spec.key == "syn-mega-s7-0002"
        assert spec.truth.count() > 0

    def test_population_spec_roundtrip(self):
        pop = parse_population("synth:transports,mega*10@7")
        assert pop.families == ("transports", "mega")
        assert pop.scale == 10 and pop.seed == 7
        assert pop.spec == "synth:transports,mega*10@7"
        assert parse_population(pop.spec) == pop

    def test_population_all_and_default_seed(self):
        pop = parse_population("synth:all*14")
        assert pop.families == tuple(family_keys())
        assert pop.seed == 0
        assert pop.spec == "synth:all*14@0"

    def test_population_counts_front_load_remainder(self):
        pop = parse_population("synth:all*10@0")
        counts = pop.counts()
        assert sum(counts.values()) == 10
        sizes = list(counts.values())
        # 7 families, 10 apps: first three get 2, the rest 1
        assert sizes == [2, 2, 2, 1, 1, 1, 1]
        assert len(pop.keys()) == 10

    def test_malformed_population_specs_raise(self):
        for bad in ("synth:all", "synth:*10", "synth:all*0@1",
                    "synth:all*ten", "all*10@1", "synth:ghost*10"):
            with pytest.raises((ValueError, KeyError)):
                parse_population(bad)

    def test_expand_targets_mixes_specs_and_keys(self):
        out = expand_targets(["diode", "synth:mega*2@5", "ted"])
        assert out == ["diode", "syn-mega-s5-0000", "syn-mega-s5-0001", "ted"]


# ------------------------------------------------------------- the grid
class TestGrid:
    def test_scale_at_grid_size_covers_every_cell(self):
        family = get_family("mega")
        points = {
            tuple(sorted(grid_point(family, 5, i).items()))
            for i in range(family.grid_size)
        }
        assert len(points) == family.grid_size

    def test_seed_rotates_but_preserves_coverage(self):
        family = get_family("hazards")
        for seed in (0, 1, 99):
            points = [grid_point(family, seed, i)
                      for i in range(family.grid_size)]
            assert len({tuple(sorted(p.items())) for p in points}) \
                == family.grid_size

    def test_grid_sizes(self):
        assert get_family("transports").grid_size == 144
        assert get_family("mega").grid_size == 9
        for family in FAMILIES.values():
            assert family.grid_size >= 9

    def test_normalize_constraints(self):
        for key in parse_population("synth:all*70@11").keys():
            gen = synth_genapp(key)
            for ep in gen.endpoints:
                if ep.body:
                    assert ep.method in ("POST", "PUT"), (key, ep.name)
                if gen.transport == "volley" and not ep.via_intent:
                    assert ep.method in ("GET", "POST")
                    assert ep.body_format in (None, "json")
                if gen.transport == "urlconn":
                    assert ep.body_format != "form"
                if ep.via_intent:
                    # the intent emitter carries none of these shapes;
                    # truth computed from them would lie
                    assert not ep.query and not ep.body and not ep.reads

    def test_volley_and_intent_apps_are_closed(self):
        for key in parse_population("synth:all*35@2").keys():
            gen = synth_genapp(key)
            has_intent = any(ep.via_intent for ep in gen.endpoints)
            expect = "closed" if (gen.transport == "volley" or has_intent) \
                else "open"
            assert gen.kind == expect, key


# --------------------------------------------------------- determinism
class TestDeterminism:
    def test_same_seed_byte_identical_bundles(self):
        from repro.apk.loader import bundle_contents

        keys = parse_population(SMOKE_SPEC).keys()
        first = {}
        for key in keys:
            first[key] = bundle_contents(synth_spec(key).build_apk())
        synth_spec.cache_clear()
        for key in keys:
            again = bundle_contents(synth_spec(key).build_apk())
            assert again == first[key], key

    def test_manifest_digest_stable_and_seed_sensitive(self):
        m7a = population_manifest(parse_population("synth:all*14@7"))
        m7b = population_manifest(parse_population("synth:all*14@7"))
        m8 = population_manifest(parse_population("synth:all*14@8"))
        assert m7a["digest"] == m7b["digest"]
        assert m7a["digest"] != m8["digest"]

    def test_different_seeds_distinct_populations(self):
        from repro.apk.loader import apk_digest

        d3 = {apk_digest(synth_spec(k).build_apk())
              for k in parse_population("synth:all*14@3").keys()}
        d4 = {apk_digest(synth_spec(k).build_apk())
              for k in parse_population("synth:all*14@4").keys()}
        assert d3 != d4

    def test_serial_vs_process_reports_identical(self, tmp_path):
        """The batch engines (in-process serial vs sharded processes) must
        store byte-identical report payloads for a synthesized population."""
        from repro.service import JobScheduler, ResultStore

        targets = ["synth:transports,mega*6@7"]
        payloads = {}
        for executor in ("serial", "process"):
            store = ResultStore(tmp_path / executor)
            scheduler = JobScheduler(store, workers=2, executor=executor)
            try:
                records = scheduler.run_batch(list(targets))
            finally:
                scheduler.shutdown(drain=True)
            assert all(r["status"] == "done" for r in records)
            payloads[executor] = {
                r["target"]: json.dumps(
                    store.load(r["result_key"])["report"], sort_keys=True
                )
                for r in records
            }
        assert payloads["serial"] == payloads["process"]


# ----------------------------------------------- ground-truth soundness
class TestSoundness:
    @pytest.fixture(scope="class")
    def scores(self):
        from repro.evalx.syntheval import score_population

        return score_population(SMOKE_SPEC)

    def test_every_family_represented(self, scores):
        assert sorted(s.family for s in scores) == sorted(family_keys())

    def test_static_analysis_matches_truth(self, scores):
        for fam in scores:
            assert fam.static_ok == len(fam.apps), [
                (a.key, a.static_found, a.static_expected)
                for a in fam.apps if not a.static_ok
            ]

    def test_fuzzing_matches_truth(self, scores):
        for fam in scores:
            assert fam.manual_ok == len(fam.apps)
            assert fam.auto_ok == len(fam.apps)

    def test_drift_verdicts_match_truth(self, scores):
        evolution = next(s for s in scores if s.family == "evolution")
        assert evolution.drift_pairs == len(evolution.apps)
        assert evolution.drift_ok == evolution.drift_pairs

    def test_population_lint_clean_at_error_level(self):
        from repro.core.config import AnalysisConfig
        from repro.core.extractocol import Extractocol

        for key in parse_population(SMOKE_SPEC).keys():
            spec = synth_spec(key)
            config = AnalysisConfig(
                async_heuristic=(spec.kind == "closed"),
                lint_level="error",
            )
            Extractocol(config).analyze(spec.build_apk())  # must not raise


# -------------------------------------------------------------- lineage
class TestLineage:
    def test_every_app_has_v1(self):
        versions = synth_lineage("syn-transports-s7-0000")
        assert [v.version for v in versions] == [1]

    def test_evolution_apps_ship_v2_with_expectations(self):
        key = next(
            k for k in parse_population("synth:evolution*5@7").keys()
            if "cut_dependency" in synth_lineage(k)[-1].description
        )
        versions = synth_lineage(key)
        assert [v.version for v in versions] == [1, 2]
        assert versions[1].expect_breaking
        assert versions[1].expected_breaking_kinds == ("dependency-removed",)

    def test_breaking_mutation_diffs_breaking(self):
        from repro.diff import diff_targets

        key = next(
            k for k in parse_population("synth:evolution*5@7").keys()
            if "rename_query_key" in synth_lineage(k)[-1].description
        )
        diff = diff_targets(f"{key}@v1", f"{key}@v2")
        assert diff.verdict == "breaking"
        assert {c.kind for c in diff.breaking_changes()} \
            == {"query-key-removed"}

    def test_obfuscated_rebuild_diffs_identical(self):
        from repro.diff import diff_targets

        key = next(
            k for k in parse_population("synth:evolution*5@7").keys()
            if "obfuscate_rebuild" in synth_lineage(k)[-1].description
        )
        diff = diff_targets(f"{key}@v1", f"{key}@v2")
        assert diff.verdict == "identical"

    def test_build_version_routes_synth_labels(self):
        built = build_version("syn-mega-s7-0001@v1")
        assert built.apk.program.classes

    def test_lineage_routes_synth_families(self):
        assert [v.version for v in lineage("syn-mega-s7-0001")] == [1]

    def test_unknown_version_raises(self):
        with pytest.raises(LookupError):
            build_version("syn-transports-s7-0000@v9")


# ------------------------------------------------------------- manifest
class TestManifest:
    def test_manifest_totals_consistent(self):
        pop = parse_population("synth:all*14@7")
        manifest = population_manifest(pop)
        assert manifest["totals"]["apps"] == 14
        assert manifest["totals"]["endpoints"] \
            == sum(a["endpoints"] for a in manifest["apps"])
        assert manifest["totals"]["truth_endpoints"] \
            == sum(a["truth"]["total"] for a in manifest["apps"])
        assert manifest["spec"] == "synth:all*14@7"
        # manifests are JSON round-trippable (they back --json and CI)
        assert json.loads(json.dumps(manifest)) == manifest

    def test_truth_visibility_partition(self):
        manifest = population_manifest(parse_population("synth:all*21@7"))
        for app in manifest["apps"]:
            truth = app["truth"]
            assert truth["static"] <= truth["total"]
            assert truth["manual"] <= truth["total"]
            assert truth["auto"] <= truth["manual"]
