"""Corpus-wide differential test of the process-sharded analysis engine.

The hard contract of this repo's parallelism story: whatever executor runs
the slicing fan-out, the serialized report is byte-identical to the serial
reference engine's.  This file pins that corpus-wide for the fork pool and
on a subset for the (much slower to start) spawn pool — together with the
thread coverage in ``test_perf.py``/``test_trace_determinism.py``, every
executor × start-method combination is differentially tested against the
same serial baseline.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import report_to_dict
from repro.core.config import AnalysisConfig
from repro.core.extractocol import Extractocol
from repro.corpus import app_keys, get_spec
from repro.perf.procpool import available_start_methods

SPAWN_APPS = ["diode", "ted", "kayak"]


def _report_json(key: str, workers: int, executor: str = "serial",
                 start_method: str | None = None) -> str:
    spec = get_spec(key)
    config = AnalysisConfig(
        async_heuristic=(spec.kind == "closed"),
        scope_prefixes=spec.scope_prefixes,
        workers=workers,
        executor=executor,
    )
    engine = Extractocol(config)
    if start_method is not None:
        # reach through to the slicing phase's pool construction
        import repro.slicing.slicer as slicer_mod

        original = slicer_mod.NetworkSlicer.__init__

        def patched(self, *a, **kw):
            kw["start_method"] = start_method
            original(self, *a, **kw)

        slicer_mod.NetworkSlicer.__init__ = patched
        try:
            report = engine.analyze(spec.build_apk())
        finally:
            slicer_mod.NetworkSlicer.__init__ = original
    else:
        report = engine.analyze(spec.build_apk())
    return json.dumps(report_to_dict(report), sort_keys=True)


@pytest.fixture(scope="module")
def serial_reports():
    cache: dict[str, str] = {}

    def get(key: str) -> str:
        if key not in cache:
            cache[key] = _report_json(key, 1)
        return cache[key]

    return get


@pytest.mark.skipif(
    "fork" not in available_start_methods(), reason="fork unavailable"
)
@pytest.mark.parametrize("key", app_keys())
def test_fork_pool_matches_serial_corpus_wide(key, serial_reports):
    """Every corpus app, analyzed through the fork-based ProcPool with
    workers=2, must serialize byte-identically to the serial engine."""
    assert _report_json(
        key, 2, executor="process", start_method="fork"
    ) == serial_reports(key)


@pytest.mark.skipif(
    "spawn" not in available_start_methods(), reason="spawn unavailable"
)
@pytest.mark.parametrize("key", SPAWN_APPS)
def test_spawn_pool_matches_serial(key, serial_reports):
    """The spawn path exercises the pickle-the-payload-once shipment; the
    report must still be byte-identical."""
    assert _report_json(
        key, 2, executor="process", start_method="spawn"
    ) == serial_reports(key)


def test_serial_executor_matches_reference(serial_reports):
    """executor="serial" with workers>1 isolates the memoized engine from
    any fan-out; still the same bytes."""
    assert _report_json("kayak", 4, executor="serial") == serial_reports("kayak")
