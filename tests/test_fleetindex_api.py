"""Fleet search over the service surfaces: HTTP ``/search`` + ``/catalog``
+ paginated ``/reports``, the MCP-style stdio catalog server, and the
``repro index`` / ``repro search`` CLI verbs."""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.fleetindex import build_index
from repro.fleetindex.mcp import McpCatalogServer, serve
from repro.service.api import AnalysisService
from repro.service.jobs import (
    _default_analyzer,
    compute_apk_digest,
    resolve_target,
)
from repro.service.store import ResultStore
from repro.synth import expand_targets
from repro.synth.compile import synth_genapp

SPEC = "synth:transports*3@5"


def fill_store(root) -> ResultStore:
    store = ResultStore(root)
    for target in expand_targets([SPEC]):
        apk, config, _ = resolve_target(target)
        store.put(
            compute_apk_digest(apk), config.cache_key(),
            _default_analyzer(apk, config),
        )
    return store


def known_host() -> str:
    return synth_genapp(expand_targets([SPEC])[0]).host


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-api") / "store"
    fill_store(root)
    svc = AnalysisService(root, port=0, workers=1).start()
    yield svc
    svc.stop()


def get(svc, path):
    try:
        with urllib.request.urlopen(svc.url + path, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHttpSearch:
    def test_search_finds_known_host(self, service):
        status, data = get(service, f"/search?q=host:{known_host()}")
        assert status == 200
        assert data["total"] >= 1 and data["apps"]
        assert all(h["label"] for h in data["hits"])

    def test_search_requires_query(self, service):
        status, data = get(service, "/search")
        assert status == 400 and "q" in data["error"]

    def test_search_bad_query_is_400(self, service):
        status, data = get(service, "/search?q=like:broken")
        assert status == 400

    def test_search_metrics_observed(self, service):
        get(service, f"/search?q=host:{known_host()}")
        _, metrics = get(service, "/metrics")
        assert metrics["counters"]["search_queries"] >= 1
        assert metrics["histograms"]["search_latency"]["count"] >= 1

    def test_catalog_pagination(self, service):
        status, page1 = get(service, "/catalog?limit=2")
        assert status == 200
        assert page1["total"] == 3 and len(page1["apps"]) == 2
        _, page2 = get(service, f"/catalog?limit=2&cursor={page1['next_cursor']}")
        names = [e["app"] for e in page1["apps"] + page2["apps"]]
        assert names == sorted(names) and len(set(names)) == 3

    def test_reports_paginated_with_summaries(self, service):
        _, page1 = get(service, "/reports?limit=2")
        assert page1["total"] == 3 and len(page1["reports"]) == 2
        assert all(e["summary"]["hosts"] for e in page1["reports"])
        _, page2 = get(service, f"/reports?limit=2&cursor={page1['next_cursor']}")
        assert len(page2["reports"]) == 1 and page2["next_cursor"] is None
        keys = {e["key"] for e in page1["reports"] + page2["reports"]}
        assert keys == set(service.store.entries())

    def test_search_deterministic_ordering(self, service):
        a = get(service, "/search?q=post")[1]
        b = get(service, "/search?q=post")[1]
        assert a == b


class TestMcpServer:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        store = fill_store(tmp_path_factory.mktemp("mcp") / "store")
        build_index(store)
        return McpCatalogServer(store)

    def rpc(self, server, method, params=None, id=1):
        return server.handle({
            "jsonrpc": "2.0", "id": id, "method": method,
            **({"params": params} if params else {}),
        })

    def tool(self, server, name, arguments):
        resp = self.rpc(server, "tools/call",
                        {"name": name, "arguments": arguments})
        result = resp["result"]
        return result["isError"], json.loads(result["content"][0]["text"]) \
            if not result["isError"] else result["content"][0]["text"]

    def test_initialize_and_tools_list(self, server):
        resp = self.rpc(server, "initialize")
        assert resp["result"]["serverInfo"]["name"] == "repro-fleet-catalog"
        tools = self.rpc(server, "tools/list")["result"]["tools"]
        assert [t["name"] for t in tools] == [
            "list_collections", "search", "get_file",
        ]
        assert all("inputSchema" in t for t in tools)

    def test_list_collections(self, server):
        is_error, payload = self.tool(server, "list_collections", {})
        assert not is_error and payload["total"] == 3
        assert all(e["hosts"] for e in payload["apps"])

    def test_search_tool(self, server):
        is_error, payload = self.tool(
            server, "search", {"query": f"host:{known_host()}"}
        )
        assert not is_error and payload["total"] >= 1

    def test_get_file_by_app_and_key(self, server):
        _, collections = self.tool(server, "list_collections", {})
        app = collections["apps"][0]["app"]
        key = collections["apps"][0]["keys"][0]
        for arguments in ({"app": app}, {"key": key}):
            is_error, envelope = self.tool(server, "get_file", arguments)
            assert not is_error and envelope["key"] == key

    def test_errors_and_notifications(self, server):
        is_error, message = self.tool(server, "get_file", {"key": "nope"})
        assert is_error and "nope" in message
        resp = self.rpc(server, "no/such/method")
        assert resp["error"]["code"] == -32601
        assert server.handle({"jsonrpc": "2.0",
                              "method": "notifications/initialized"}) is None

    def test_stdio_loop(self, server):
        lines = "\n".join([
            json.dumps({"jsonrpc": "2.0", "id": 1, "method": "initialize"}),
            "not json",
            json.dumps({"jsonrpc": "2.0", "id": 2, "method": "ping"}),
        ]) + "\n"
        out = io.StringIO()
        serve(server.store, stdin=io.StringIO(lines), stdout=out)
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        assert responses[0]["id"] == 1 and "result" in responses[0]
        assert responses[1]["error"]["code"] == -32700
        assert responses[2] == {"jsonrpc": "2.0", "id": 2, "result": {}}


class TestCliVerbs:
    @pytest.fixture(scope="class")
    def store_root(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli") / "store"
        fill_store(root)
        return str(root)

    def test_index_then_search(self, store_root, capsys):
        assert cli_main(["index", "--store", store_root, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["docs"] == 3 and stats["rebuilt"]

        code = cli_main([
            "search", f"host:{known_host()}", "--store", store_root, "--json",
        ])
        result = json.loads(capsys.readouterr().out)
        assert code == 0 and result["total"] >= 1

    def test_search_no_hits_exits_nonzero(self, store_root, capsys):
        code = cli_main([
            "search", "host:no.such.host", "--store", store_root,
        ])
        capsys.readouterr()
        assert code == 1

    def test_search_pagination_cursor(self, store_root, capsys):
        cli_main(["search", "post", "--store", store_root, "--limit", "1",
                  "--json"])
        first = json.loads(capsys.readouterr().out)
        if first["next_cursor"]:
            cli_main(["search", "post", "--store", store_root, "--limit", "1",
                      "--cursor", first["next_cursor"], "--json"])
            second = json.loads(capsys.readouterr().out)
            assert second["hits"] != first["hits"]

    def test_bad_query_exits_with_message(self, store_root):
        with pytest.raises(SystemExit, match="bad query"):
            cli_main(["search", "like:oops", "--store", store_root])
