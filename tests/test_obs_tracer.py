"""Tests for the span tracer and the trace exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    collapsed_stacks,
    span_events,
    to_jsonl,
    validate_jsonl,
)
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Span, Tracer
from repro.perf.parallel import forked_map, ordered_map, thread_map


class TestSpan:
    def test_nesting_and_path(self):
        root = Span("root")
        a = root.child("a")
        b = a.child("b")
        assert b.path == "root/a/b"
        assert root.children == [a]
        assert a.children == [b]

    def test_sibling_name_collisions_get_suffixes(self):
        root = Span("root")
        first = root.child("dp")
        second = root.child("dp")
        third = root.child("dp")
        assert first.name == "dp"
        assert second.name == "dp#2"
        assert third.name == "dp#3"
        assert len({s.path for s in root.walk()}) == 4

    def test_span_id_is_stable_content_hash(self):
        one = Span("root").child("phase:slicing")
        two = Span("root").child("phase:slicing")
        assert one.span_id == two.span_id
        assert len(one.span_id) == 16
        assert one.span_id != Span("root").child("phase:setup").span_id

    def test_counters_and_attrs(self):
        span = Span("s")
        span.count("stmts", 3)
        span.count("stmts")
        span.set("app", "diode")
        assert span.counters == {"stmts": 4}
        assert span.attrs == {"app": "diode"}

    def test_timing_context_manager(self):
        span = Span("s")
        with span:
            pass
        assert span.seconds >= 0.0
        child = span.child("c")
        child.seconds = 0.5
        # self time never goes negative even if children overlap oddly
        assert span.self_seconds >= 0.0

    def test_walk_is_depth_first_creation_order(self):
        root = Span("r")
        a = root.child("a")
        a.child("a1")
        root.child("b")
        assert [s.name for s in root.walk()] == ["r", "a", "a1", "b"]
        assert root.find("a1") is not None
        assert root.find("zzz") is None


class TestNullSpan:
    def test_falsy_and_inert(self):
        assert not NULL_SPAN
        assert NULL_SPAN.child("x") is NULL_SPAN
        NULL_SPAN.count("n")
        NULL_SPAN.set("k", 1)
        with NULL_SPAN as s:
            assert s is NULL_SPAN
        assert NULL_SPAN.seconds == 0.0
        assert list(NULL_SPAN.walk()) == []
        assert NULL_SPAN.children == []

    def test_null_tracer(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.span("anything") is NULL_SPAN
        assert Tracer().enabled
        assert Tracer("top").root.name == "top"


class TestWorkerSpans:
    def test_thread_map_emits_per_worker_spans(self):
        root = Span("root")
        results = thread_map(lambda x: x * 2, [1, 2, 3], workers=3, span=root)
        assert results == [2, 4, 6]
        names = [c.name for c in root.children]
        assert names == ["worker-1", "worker-2", "worker-3"]
        assert all(c.seconds >= 0.0 for c in root.children)

    def test_thread_map_without_span_unchanged(self):
        assert thread_map(lambda x: x + 1, [1, 2], workers=2) == [2, 3]

    def test_ordered_map_serial_path_with_span(self):
        root = Span("root")
        out = ordered_map(lambda x: -x, [5, 6], workers=1, span=root, label="w")
        assert out == [-5, -6]
        assert [c.name for c in root.children] == ["w-1", "w-2"]

    def test_forked_map_with_span(self):
        root = Span("root")
        try:
            out = forked_map(abs, [-1, -2], workers=2, span=root)
        except ValueError:
            pytest.skip("no fork start method on this platform")
        assert out == [1, 2]
        assert [c.name for c in root.children] == ["worker-1", "worker-2"]


class TestExport:
    def _sample(self) -> Span:
        root = Span("repro")
        app = root.child("analyze:app")
        with app.child("phase:slicing") as sp:
            sp.count("dps", 2)
            sp.set("engine", "serial")
        app.child("phase:signatures")
        return root

    def test_jsonl_roundtrip_validates(self):
        text = to_jsonl(self._sample())
        events = validate_jsonl(text)
        assert [e["name"] for e in events] == [
            "repro", "analyze:app", "phase:slicing", "phase:signatures"
        ]
        meta = json.loads(text.splitlines()[0])
        assert meta["schema"] == TRACE_SCHEMA_VERSION

    def test_jsonl_omits_seconds_by_default(self):
        root = self._sample()
        assert '"seconds"' not in to_jsonl(root)
        timed = to_jsonl(root, timings=True)
        assert '"seconds"' in timed
        validate_jsonl(timed)  # timings do not break the schema

    def test_jsonl_is_deterministic_for_same_tree(self):
        assert to_jsonl(self._sample()) == to_jsonl(self._sample())

    def test_events_parents_precede_children(self):
        events = span_events(self._sample())
        seen: set[str] = set()
        for e in events:
            assert e["parent"] is None or e["parent"] in seen
            seen.add(e["id"])

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_jsonl("")
        with pytest.raises(ValueError):
            validate_jsonl('{"type":"meta","schema":999,"root":"x"}\n')
        good = to_jsonl(self._sample()).splitlines()
        # child before parent
        with pytest.raises(ValueError):
            validate_jsonl("\n".join([good[0], good[2]]))
        # duplicate id
        with pytest.raises(ValueError):
            validate_jsonl("\n".join([good[0], good[1], good[1]]))
        # non-integer counters
        bad = json.loads(good[1])
        bad["counters"] = {"x": 1.5}
        with pytest.raises(ValueError):
            validate_jsonl("\n".join([good[0], json.dumps(bad)]))

    def test_collapsed_stacks_shape(self):
        text = collapsed_stacks(self._sample())
        lines = text.strip().splitlines()
        assert lines[0].startswith("repro ")
        assert any(
            line.startswith("repro;analyze:app;phase:slicing ")
            for line in lines
        )
        for line in lines:
            frames, value = line.rsplit(" ", 1)
            assert int(value) >= 0
