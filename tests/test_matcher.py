"""Tests for signature↔traffic matching and Rk/Rv/Rn byte accounting."""

from __future__ import annotations

import json

import pytest
from fixtures_http import build_mini_reddit
from test_runtime import reddit_network

from repro import Extractocol
from repro.runtime import ManualUiFuzzer
from repro.signature.lang import Const, JsonArray, JsonObject, Unknown, concat
from repro.signature.matcher import (
    ByteAccount,
    account_json,
    account_query_string,
    account_request,
    body_matches,
    match_trace,
    traffic_keywords,
    transaction_matches,
)


class TestEndToEndMatching:
    """§5.1: every statically derived signature matches the real traffic."""

    @pytest.fixture(scope="class")
    def setup(self):
        apk = build_mini_reddit()
        report = Extractocol().analyze(apk)
        fuzz = ManualUiFuzzer().fuzz(build_mini_reddit(), reddit_network())
        return report, fuzz

    def test_every_trace_entry_matched_by_some_signature(self, setup):
        report, fuzz = setup
        for captured in fuzz.trace:
            assert any(
                transaction_matches(
                    t, captured.request.method, captured.request.url,
                    captured.request.body,
                )
                for t in report.transactions
            ), f"no signature matches {captured}"

    def test_match_trace_maps_signatures(self, setup):
        report, fuzz = setup
        mapping = match_trace(report.transactions, fuzz.trace)
        matched = [tid for tid, hits in mapping.items() if hits]
        assert len(matched) == 2


class TestBodyMatching:
    def test_json_keys_subset_matches(self):
        sig = JsonObject(((Const("after"), Unknown("str")),), open_=True)
        body = json.dumps({"after": "x", "extra": 1})
        assert body_matches(sig, body, "json")

    def test_missing_key_fails(self):
        sig = JsonObject(((Const("token"), Unknown("str")),))
        assert not body_matches(sig, json.dumps({"other": 1}), "json")

    def test_none_signature_matches_anything(self):
        assert body_matches(None, None, None)

    def test_regex_body(self):
        sig = concat(Const("user="), Unknown("str"))
        assert body_matches(sig, "user=bob", "query")
        assert not body_matches(sig, "name=bob", "query")


class TestByteAccounting:
    def test_query_string_full_match(self):
        acct = account_query_string({"id", "uh"}, "id=t3_a&uh=hash1")
        rk, rv, rn = acct.fractions()
        assert acct.rn == 0
        assert rk + rv == pytest.approx(1.0)

    def test_query_string_unknown_key_counts_rn(self):
        acct = account_query_string({"id"}, "id=1&zz=unknownvalue")
        assert acct.rn == len("zz") + 1 + len("unknownvalue")

    def test_json_accounting_known_and_unknown(self):
        sig = JsonObject(
            (
                (Const("relay"), Unknown("str")),
                (Const("songs"), JsonArray(elem=JsonObject(((Const("title"), Unknown("str")),), open_=True))),
            ),
            open_=True,
        )
        body = json.dumps(
            {
                "relay": "http://cdn.test/x",
                "songs": [{"title": "a", "album": "zz"}],
                "listeners": "999",
            }
        )
        acct = account_json(sig, body)
        assert acct.rk > 0
        assert acct.rv > 0
        assert acct.rn > 0  # album + listeners unobserved by the app

    def test_account_request_combines_query_and_body(self):
        apk = build_mini_reddit()
        from repro import Extractocol

        report = Extractocol().analyze(apk)
        txn = next(
            t for t in report.transactions
            if "doInBackground" in t.root
        )
        acct = account_request(
            txn, "http://www.reddit.com/r/pics.json?limit=25", None
        )
        rk, rv, rn = acct.fractions()
        assert rn == 0.0
        assert rk > 0


class TestTrafficKeywords:
    def test_query_and_json(self):
        req_kws, resp_kws = traffic_keywords(
            ("GET", "http://a.test/x?user=1&sort=top", None),
            response_body=json.dumps({"after": "x", "children": [{"title": "t"}]}),
        )
        assert req_kws == {"user", "sort"}
        assert resp_kws == {"after", "children", "title"}

    def test_xml_body(self):
        _, resp = traffic_keywords(
            ("GET", "http://a.test/x", None),
            response_body='<weather city="Seoul"><temp unit="C">21</temp></weather>',
        )
        assert {"weather", "temp", "city", "unit"} <= resp

    def test_form_body(self):
        req, _ = traffic_keywords(
            ("POST", "http://a.test/login", "user=bob&passwd=x"),
        )
        assert req == {"user", "passwd"}
