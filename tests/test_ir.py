"""Unit tests for the IR substrate: types, values, builder, validation."""

from __future__ import annotations

import pytest

from repro.ir import (
    AssignStmt,
    BinOpExpr,
    ClassDef,
    IdentityStmt,
    IntConst,
    InvokeExpr,
    InvokeStmt,
    Local,
    Method,
    MethodSig,
    NULL,
    ProgramBuilder,
    ReturnStmt,
    StringConst,
    array_t,
    class_t,
    make_sig,
    parse_type,
    validate_program,
    walk_values,
)
from repro.ir.builder import as_value, static_type_of
from repro.ir.printer import print_class, print_program
from repro.ir.validate import validate_method


class TestTypes:
    def test_parse_primitives(self):
        assert parse_type("int").name == "int"
        assert parse_type("void").is_primitive
        assert not parse_type("int").is_reference

    def test_parse_class(self):
        t = parse_type("java.lang.String")
        assert t.is_reference
        assert t.simple_name == "String"
        assert t.package == "java.lang"

    def test_parse_array(self):
        t = parse_type("byte[]")
        assert t.name == "byte[]"
        assert t.element.name == "byte"
        assert t.dimensions == 1
        assert parse_type("int[][]").dimensions == 2

    def test_interning(self):
        assert parse_type("com.a.B") is parse_type("com.a.B")
        assert array_t("int") is array_t(parse_type("int"))
        assert class_t("x.Y") == parse_type("x.Y")

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            parse_type("")


class TestValues:
    def test_as_value_lifting(self):
        assert as_value("x") == StringConst("x")
        assert as_value(3) == IntConst(3)
        assert as_value(True) == IntConst(1)
        assert as_value(None) is NULL
        local = Local("a", parse_type("int"))
        assert as_value(local) is local

    def test_as_value_rejects_unknown(self):
        with pytest.raises(TypeError):
            as_value(object())

    def test_static_type_inference(self):
        assert static_type_of(StringConst("s")).name == "java.lang.String"
        assert static_type_of(IntConst(1)).name == "int"
        assert static_type_of(Local("v", parse_type("a.B"))).name == "a.B"

    def test_invoke_expr_validation(self):
        sig = MethodSig.of("a.B", "m", (), "void")
        with pytest.raises(ValueError):
            InvokeExpr("static", sig, Local("x", parse_type("a.B")))
        with pytest.raises(ValueError):
            InvokeExpr("virtual", sig, None)
        with pytest.raises(ValueError):
            InvokeExpr("bogus", sig, None)

    def test_walk_values(self):
        a = Local("a", parse_type("int"))
        b = Local("b", parse_type("int"))
        expr = BinOpExpr("+", a, b)
        assert set(walk_values(expr)) == {expr, a, b}


class TestMethodSig:
    def test_of_and_str(self):
        sig = MethodSig.of("com.a.B", "go", ("int", "java.lang.String"), "boolean")
        assert sig.qualified_name == "com.a.B.go"
        assert "go(int,java.lang.String)" in str(sig)
        assert sig.subsignature == ("go", sig.param_types)

    def test_make_sig_matches(self):
        assert make_sig("c.D", "m", ["int"], "void") == MethodSig.of(
            "c.D", "m", ("int",), "void"
        )


class TestBuilder:
    def test_identity_statements_bind_this_and_params(self, branchy_program):
        cls = branchy_program.class_of("com.example.Branchy")
        run = cls.find_methods("run")[0]
        stmts = run.body.statements
        assert isinstance(stmts[0], IdentityStmt)  # this
        assert isinstance(stmts[1], IdentityStmt)  # p0
        assert run.this_local is not None
        assert len(run.param_locals) == 1

    def test_new_emits_alloc_and_init(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.C")
        m = cb.method("mk")
        sb = m.new("java.lang.StringBuilder")
        m.ret_void()
        prog = pb.build()
        body = prog.class_of("t.C").find_methods("mk")[0].body
        inits = [
            s
            for s in body
            if isinstance(s, InvokeStmt) and s.expr.sig.name == "<init>"
        ]
        assert len(inits) == 1
        assert inits[0].expr.base == sb

    def test_local_redeclaration_same_type_ok(self):
        pb = ProgramBuilder()
        m = pb.class_("t.C").method("m")
        a1 = m.local("a", "int")
        a2 = m.local("a", "int")
        assert a1 == a2
        with pytest.raises(ValueError):
            m.local("a", "long")

    def test_concat_builds_chain(self):
        pb = ProgramBuilder()
        m = pb.class_("t.C").method("m")
        out = m.concat("http://", "host", "/path")
        m.ret_void()
        pb.build()
        assert out.type.name == "java.lang.String"

    def test_duplicate_class_rejected(self):
        pb = ProgramBuilder()
        pb.class_("t.C")
        with pytest.raises(ValueError):
            pb.class_("t.C")

    def test_duplicate_method_rejected(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.C")
        cb.method("m", params=["int"])
        with pytest.raises(ValueError):
            cb.method("m", params=["int"])

    def test_overloads_allowed(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.C")
        cb.method("m", params=["int"])
        cb.method("m", params=["java.lang.String"])
        assert len(pb.program.class_of("t.C").find_methods("m")) == 2

    def test_auto_seal_adds_return(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.C")
        m = cb.method("m")
        m.assign(m.local("x", "int"), 1)
        prog = pb.build()  # no explicit ret
        body = prog.class_of("t.C").find_methods("m")[0].body
        assert isinstance(body.statements[-1], ReturnStmt)


class TestHierarchy:
    def _prog(self):
        pb = ProgramBuilder()
        pb.class_("a.Base")
        pb.class_("a.Mid", superclass="a.Base")
        pb.class_("a.Leaf", superclass="a.Mid")
        mid = pb.program.class_of("a.Mid")
        mid.add_method(Method(make_sig("a.Mid", "go")))
        leaf = pb.program.class_of("a.Leaf")
        leaf.add_method(Method(make_sig("a.Leaf", "go")))
        return pb.build()

    def test_superclasses(self):
        prog = self._prog()
        chain = list(prog.superclasses("a.Leaf"))
        assert chain[:3] == ["a.Leaf", "a.Mid", "a.Base"]

    def test_subclasses(self):
        prog = self._prog()
        assert prog.subclasses("a.Base") == {"a.Mid", "a.Leaf"}
        assert prog.subclasses("a.Leaf") == set()

    def test_dispatch_picks_most_derived(self):
        prog = self._prog()
        sig = make_sig("a.Base", "go")
        assert prog.resolve_dispatch("a.Leaf", sig).class_name == "a.Leaf"
        assert prog.resolve_dispatch("a.Mid", sig).class_name == "a.Mid"
        assert prog.resolve_dispatch("a.Base", sig) is None

    def test_library_ancestors(self):
        pb = ProgramBuilder()
        pb.class_("b.Task", superclass="android.os.AsyncTask")
        prog = pb.build()
        assert "android.os.AsyncTask" in prog.library_ancestors("b.Task")


class TestValidation:
    def test_valid_program_has_no_errors(self, branchy_program):
        assert validate_program(branchy_program) == []

    def test_undefined_label_detected(self):
        pb = ProgramBuilder()
        m = pb.class_("t.C").method("m", params=["int"])
        m.if_goto(m.param(0), "==", 0, "NOWHERE")
        m.ret_void()
        method = pb.program.class_of("t.C").find_methods("m")[0]
        method.body.seal()
        errors = validate_method(method)
        assert any("NOWHERE" in str(e) for e in errors)

    def test_undeclared_local_detected(self):
        method = Method(make_sig("t.C", "m"), is_static=True)
        ghost = Local("ghost", parse_type("int"))
        method.body.add(AssignStmt(ghost, IntConst(1)))
        method.body.declare_local(Local("ok", parse_type("int")))
        method.body.add(ReturnStmt())
        method.body.seal()
        errors = validate_method(method)
        assert any("ghost" in str(e) for e in errors)

    def test_fallthrough_detected(self):
        method = Method(make_sig("t.C", "m"), is_static=True)
        local = method.body.declare_local(Local("x", parse_type("int")))
        method.body.add(AssignStmt(local, IntConst(1)))
        method.body._sealed = True  # bypass seal's auto-return
        errors = validate_method(method)
        assert any("falls off" in str(e) for e in errors)


class TestPrinter:
    def test_print_contains_structure(self, branchy_program):
        text = print_program(branchy_program)
        assert "class com.example.Branchy" in text
        assert "goto LOOP" in text
        assert "run(int)" in text

    def test_print_class_fields(self):
        cls = ClassDef("p.Q")
        cls.add_field("count", "int")
        assert "int count;" in print_class(cls)
