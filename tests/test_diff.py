"""Protocol-evolution analysis (``repro.diff``).

Covers the normaliser/matcher/classifier units, the corpus-wide self-diff
property (every app diffs empty against itself, deterministically, under
both engines), and the generated lineages' ground truth: compatible
drifts stay compatible, the removed-dependency-source lineage reports
exactly the removed edge as breaking, and an obfuscated rebuild diffs
clean through its rename lineage.
"""

from __future__ import annotations

import json
from functools import lru_cache

import pytest

from repro.core.extractocol import Extractocol
from repro.core.report import report_to_dict
from repro.corpus import app_keys, build_version
from repro.diff import (
    BREAKING_KINDS,
    Change,
    ProtocolDiff,
    diff_dicts,
    diff_from_dict,
    diff_reports,
    diff_targets,
    render_markdown,
)
from repro.diff.classify import KIND_SEVERITY
from repro.diff.match import MATCH_THRESHOLD, match_transactions, similarity
from repro.diff.normal import (
    WILDCARD,
    body_keys,
    parse_uri,
    report_views,
    untokenize,
)
from repro.service import resolve_target


@lru_cache(maxsize=None)
def _corpus_report_dict(key: str, workers: int = 1) -> dict:
    apk, config, _ = resolve_target(key)
    config.workers = workers
    return report_to_dict(Extractocol(config).analyze(apk))


@lru_cache(maxsize=None)
def _lineage_report(label: str, workers: int = 1):
    built = build_version(label)
    built.config.workers = workers
    report = Extractocol(built.config).analyze(built.apk)
    return report, built.renames_from_base


# ---------------------------------------------------------------- units
class TestUntokenize:
    def test_literals_survive(self):
        assert untokenize(r"^https://a\.example\.com/api$") == (
            "https://a.example.com/api"
        )

    def test_wildcards_collapse(self):
        text = untokenize(r"^https://x\.net/item/(.*)$")
        assert text == "https://x.net/item/" + WILDCARD

    def test_adjacent_wildcards_merge(self):
        assert untokenize(r"(.*)[0-9]+") == WILDCARD

    def test_char_class_and_quantifier(self):
        assert untokenize(r"/v[0-9]+/x") == "/v" + WILDCARD + "/x"

    def test_group_with_nesting(self):
        assert untokenize(r"/a/(?:b|(?:c|d))/e") == "/a/" + WILDCARD + "/e"


class TestParseUri:
    def test_segments_and_query(self):
        shape = parse_uri(r"^https://h\.io/api/v1/items\?q=(.*)&page=1$")
        assert shape.scheme == "https"
        assert shape.host == "h.io"
        assert shape.segments == ("api", "v1", "items")
        assert shape.query_keys == ("page", "q")

    def test_opaque_uri(self):
        shape = parse_uri(r"^(.*)$")
        assert shape.is_opaque

    def test_dynamic_segment_kept_as_wildcard(self):
        shape = parse_uri(r"^http://h/a/(.*)/c$")
        assert shape.segments == ("a", WILDCARD, "c")


class TestBodyKeys:
    def test_json_term_keys(self):
        body = "{(id): (t3_1), (dir): (1), (uh): <?str:response:3:json>}"
        assert body_keys(body, "json") == ("dir", "id", "uh")

    def test_query_body_keys(self):
        assert body_keys("user=(.*)&passwd=(.*)", "query") == (
            "passwd", "user",
        )

    def test_empty(self):
        assert body_keys(None, "json") == ()
        assert body_keys("", None) == ()


class TestMatching:
    def _views(self, key: str):
        return report_views(_corpus_report_dict(key))

    def test_self_match_is_total_and_exact(self):
        views = self._views("reddinator")
        result = match_transactions(views, views)
        assert not result.unmatched_old and not result.unmatched_new
        assert all(score == 1.0 for _, _, score in result.pairs)
        assert [(o.txn_id, n.txn_id) for o, n, _ in result.pairs] == [
            (v.txn_id, v.txn_id) for v in views
        ]

    def test_similarity_bounds(self):
        views = self._views("ifixit")
        for a in views[:5]:
            for b in views[:5]:
                s = similarity(a, b)
                assert 0.0 <= s <= 1.0 + 1e-9
            assert similarity(a, a) > MATCH_THRESHOLD

    def test_unrelated_transactions_stay_unmatched(self):
        old = self._views("reddinator")
        new = self._views("twister")
        result = match_transactions(old, new)
        # reddit's JSON API and twister's RPC share nothing above threshold
        assert all(score < 0.9 for _, _, score in result.pairs)


class TestTaxonomy:
    def test_severities_are_closed_set(self):
        assert set(KIND_SEVERITY.values()) <= {
            "breaking", "compatible", "info",
        }

    def test_breaking_kinds_derived(self):
        assert "dependency-removed" in BREAKING_KINDS
        assert "query-key-added" not in BREAKING_KINDS

    def test_change_sorting_puts_breaking_first(self):
        a = Change("query-key-added", "compatible", "query", new="x")
        b = Change("query-key-removed", "breaking", "query", old="y")
        assert sorted([a, b], key=Change.sort_key)[0] is b


# ------------------------------------------------- corpus-wide self-diff
@pytest.mark.parametrize("key", app_keys())
def test_self_diff_is_empty_for_every_corpus_app(key):
    d = _corpus_report_dict(key)
    diff = diff_dicts(d, d)
    assert diff.is_empty, [str(c) for c in diff.all_changes()]
    assert diff.verdict == "identical"
    assert not diff.breaking
    assert diff.matched and not diff.added and not diff.removed
    # deterministic serialisation: two runs, byte-identical JSON
    j1 = json.dumps(diff.to_dict(), sort_keys=True)
    j2 = json.dumps(diff_dicts(d, d).to_dict(), sort_keys=True)
    assert j1 == j2


def test_diff_json_identical_across_engines():
    """The diff of parallel-engine reports is byte-identical to the diff
    of serial-engine reports (workers is not a semantic knob)."""
    for key in ("reddinator", "diode", "ted"):
        serial = _corpus_report_dict(key)
        parallel = _corpus_report_dict(key, workers=4)
        j1 = json.dumps(diff_dicts(serial, serial).to_dict(), sort_keys=True)
        j2 = json.dumps(
            diff_dicts(parallel, parallel).to_dict(), sort_keys=True
        )
        assert j1 == j2
        # and across the engine boundary: serial vs parallel diffs empty
        cross = diff_dicts(serial, parallel)
        assert cross.is_empty


# ------------------------------------------------------ lineage truth
class TestLineages:
    def _diff(self, old_label: str, new_label: str) -> ProtocolDiff:
        from repro.diff.engine import _relative_renames

        old_report, old_renames = _lineage_report(old_label)
        new_report, new_renames = _lineage_report(new_label)
        return diff_reports(
            old_report, new_report,
            renames=_relative_renames(old_renames, new_renames),
        )

    def test_compatible_drift_is_not_breaking(self):
        diff = self._diff("reddinator@v1", "reddinator@v2")
        assert diff.verdict == "compatible"
        kinds = {c.kind for c in diff.all_changes()}
        assert kinds == {
            "query-key-added", "header-added", "transaction-added",
        }

    def test_removed_dependency_source_is_the_only_breaking_change(self):
        """The acceptance case: reddinator v3 caches the modhash, so the
        login->vote dependency edge disappears — and *only* that edge."""
        diff = self._diff("reddinator@v1", "reddinator@v3")
        assert diff.breaking
        breaking = diff.breaking_changes()
        assert [c.kind for c in breaking] == ["dependency-removed"]
        assert breaking[0].old == "txn3[$.json] -> txn4.body"
        # the save flow (txn3 -> txn5) survives untouched
        assert all(
            "txn5" not in (c.old or "") for c in breaking
        )

    def test_query_key_rename_is_breaking(self):
        diff = self._diff("wallabag@v1", "wallabag@v2")
        assert diff.breaking
        assert {c.kind for c in diff.breaking_changes()} == {
            "query-key-removed",
        }

    def test_pure_addition_is_compatible(self):
        diff = self._diff("twister@v1", "twister@v2")
        assert diff.verdict == "compatible"
        assert len(diff.added) == 1 and not diff.removed

    def test_obfuscated_rebuild_diffs_clean_via_rename_lineage(self):
        diff = self._diff("tzm@v1", "tzm@v2")
        assert diff.is_empty, [str(c) for c in diff.all_changes()]

    def test_lineage_diff_deterministic_across_engines(self):
        j = []
        for workers in (1, 4):
            old, _ = _lineage_report("reddinator@v1", workers)
            new, _ = _lineage_report("reddinator@v3", workers)
            j.append(json.dumps(
                diff_reports(old, new).to_dict(), sort_keys=True
            ))
        assert j[0] == j[1]


# ------------------------------------------------- targets, cache, model
class TestDiffTargets:
    def test_lineage_labels_resolve(self):
        diff = diff_targets("wallabag@v1", "wallabag@v2")
        assert diff.breaking

    def test_corpus_key_resolves(self):
        diff = diff_targets("tzm", "tzm")
        assert diff.is_empty

    def test_unknown_target_raises(self):
        with pytest.raises(LookupError):
            diff_targets("no-such-app", "tzm")
        with pytest.raises(LookupError):
            diff_targets("tzm@v9", "tzm")


class TestStoreCache:
    def test_cached_diff_round_trip(self, tmp_path):
        from repro.core.report import report_from_dict
        from repro.diff.engine import cached_diff, diff_cache_key
        from repro.service.store import ResultStore

        store = ResultStore(tmp_path)
        apk, config, _ = resolve_target("tzm")
        report = Extractocol(config).analyze(apk)
        from repro.apk.loader import apk_digest

        key = store.put(apk_digest(apk), config.cache_key(), report)

        first = cached_diff(store, key, key)
        assert first is not None
        diff_dict, was_cached = first
        assert not was_cached
        assert diff_dict["verdict"] == "identical"

        second = cached_diff(store, key, key)
        assert second == (diff_dict, True)
        # the cache entry is a real store object, not a report
        assert diff_cache_key(key, key) in store.entries()
        assert all(
            e["key"] != diff_cache_key(key, key)
            for e in store.list_entries()
        )

    def test_missing_keys_return_none(self, tmp_path):
        from repro.diff.engine import cached_diff
        from repro.service.store import ResultStore

        store = ResultStore(tmp_path)
        assert cached_diff(store, "nope", "nada") is None


class TestModel:
    def test_dict_round_trip_preserves_verdict(self):
        old_report, _ = _lineage_report("reddinator@v1")
        new_report, _ = _lineage_report("reddinator@v3")
        diff = diff_reports(old_report, new_report)
        rebuilt = diff_from_dict(json.loads(json.dumps(diff.to_dict())))
        assert rebuilt.verdict == diff.verdict
        assert [c.to_dict() for c in rebuilt.breaking_changes()] == [
            c.to_dict() for c in diff.breaking_changes()
        ]
        assert rebuilt.to_dict()["changed"] == diff.to_dict()["changed"]

    def test_markdown_rendering_mentions_verdict_and_edge(self):
        old_report, _ = _lineage_report("reddinator@v1")
        new_report, _ = _lineage_report("reddinator@v3")
        text = render_markdown(diff_reports(old_report, new_report))
        assert "Verdict: breaking" in text
        assert "txn3[$.json] -> txn4.body" in text

    def test_summary_of_identical_diff(self):
        d = _corpus_report_dict("tzm")
        text = diff_dicts(d, d).summary()
        assert "identical" in text
