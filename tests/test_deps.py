"""Unit tests for the dependency-analysis layer: transactions, inter-
transaction inference and the networkx dependency graph."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import AnalysisConfig, Extractocol
from repro.corpus import build_app
from repro.deps import (
    Dependency,
    RequestSig,
    ResponseSig,
    Transaction,
    dependency_graph,
    infer_dependencies,
    render_graph,
)
from repro.ir.statements import StmtRef
from repro.signature.lang import Const, JsonObject, Unknown, concat


def make_txn(txn_id: int, uri, *, method="GET", body=None,
             headers=(), resp_body=None, consumers=frozenset()) -> Transaction:
    return Transaction(
        txn_id=txn_id,
        site=StmtRef(f"<t.App: void m{txn_id}()>", 0),
        root="<t.App: void root()>",
        request=RequestSig(method=method, uri=uri, body=body, headers=headers),
        response=ResponseSig(kind="json" if resp_body is not None else "unknown",
                             body=resp_body, consumers=consumers),
    )


class TestInferDependencies:
    def test_uri_dependency(self):
        t0 = make_txn(0, Const("https://a.test/login"),
                      resp_body=JsonObject(((Const("token"), Unknown("str")),),
                                           open_=True))
        t1 = make_txn(1, concat(Const("https://a.test/feed?auth="),
                                Unknown("str", origin="response:0:token")))
        edges = infer_dependencies([t0, t1])
        assert len(edges) == 1
        assert edges[0].src_txn == 0 and edges[0].dst_txn == 1
        assert edges[0].dst_field == "uri"
        assert edges[0].src_path == "$.token"

    def test_header_and_body_dependencies(self):
        t0 = make_txn(0, Const("https://a.test/login"))
        t1 = make_txn(
            1, Const("https://a.test/act"), method="POST",
            body=concat(Const("uh="), Unknown("str", origin="response:0:uh")),
            headers=(("Cookie", Unknown("str", origin="response:0:cookie")),),
        )
        edges = infer_dependencies([t0, t1])
        fields = {e.dst_field for e in edges}
        assert fields == {"body", "header:Cookie"}

    def test_self_and_unknown_sources_ignored(self):
        t0 = make_txn(
            0, concat(Const("https://a.test/x?p="),
                      Unknown("str", origin="response:0:self"),
                      Unknown("str", origin="response:99:ghost")),
        )
        assert infer_dependencies([t0]) == []

    def test_multi_acc_origin_produces_multiple_edges(self):
        t0 = make_txn(0, Const("https://a.test/a"))
        t1 = make_txn(1, Const("https://a.test/b"))
        t2 = make_txn(
            2, concat(Const("https://a.test/c?v="),
                      Unknown("str", origin="response:0,1:merged")),
        )
        edges = infer_dependencies([t0, t1, t2])
        assert {e.src_txn for e in edges} == {0, 1}


class TestDependencyGraph:
    def test_graph_structure_for_radioreddit(self):
        report = Extractocol(AnalysisConfig()).analyze(build_app("radioreddit"))
        g = dependency_graph(report.transactions)
        assert isinstance(g, nx.MultiDiGraph)
        assert g.number_of_nodes() == len(report.transactions)
        assert g.number_of_edges() == len(report.dependencies)
        # login is the hub: it feeds both save|unsave and vote
        login = next(t.txn_id for t in report.transactions
                     if "login" in t.request.uri_regex)
        assert g.out_degree(login) >= 2
        assert nx.is_directed_acyclic_graph(nx.DiGraph(g))

    def test_edge_labels(self):
        report = Extractocol(AnalysisConfig()).analyze(build_app("radioreddit"))
        g = dependency_graph(report.transactions)
        labels = {d.get("src_path") for _, _, d in g.edges(data=True)}
        assert any("modhash" in (l or "") for l in labels)

    def test_render_graph_text(self):
        report = Extractocol(AnalysisConfig()).analyze(build_app("radioreddit"))
        text = render_graph(report.transactions)
        assert "media_player" in text
        assert "<-" in text


class TestTransactionViews:
    def test_describe_mentions_everything(self):
        t = make_txn(
            3, concat(Const("https://a.test/q?x="), Unknown("str")),
            method="POST",
            body=JsonObject(((Const("k"), Unknown("str")),)),
            resp_body=JsonObject(((Const("v"), Unknown("int")),), open_=True),
            consumers=frozenset({"media_player"}),
        )
        t.depends_on = [Dependency(0, "$.tok", 3, "uri")]
        text = t.describe()
        assert "POST" in text
        assert "body[json]" in text
        assert "media_player" in text
        assert "txn0[$.tok] -> txn3.uri" in text

    def test_is_dynamic_classification(self):
        dynamic = make_txn(0, Unknown("str", origin="response:9:url"))
        static = make_txn(1, concat(Const("https://a.test/"),
                                    Unknown("str", origin="response:9:id")))
        assert dynamic.request.is_dynamic
        assert not static.request.is_dynamic

    def test_is_identified_rules(self):
        assert make_txn(0, Const("https://a.test/x")).is_identified
        assert not make_txn(1, Unknown("any")).is_identified
        # wholly response-derived URIs count: the dependency is the info
        assert make_txn(2, Unknown("str", origin="response:0:u")).is_identified
