"""Every corpus app survives the ``.sapk`` save→load round trip with its
analysis output intact — the printer/parser exercised at corpus scale."""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Extractocol, load_apk
from repro.apk.loader import save_apk
from repro.corpus import app_keys, get_spec
from repro.ir.printer import print_program

# a representative cross-section (all transports, both kinds, all body types)
KEYS = ["diode", "radioreddit", "weather", "anarxiv", "qbittorrent",
        "ted", "kayak", "aol", "watchespn", "linkedin"]


@pytest.mark.parametrize("key", KEYS)
def test_sapk_roundtrip_preserves_analysis(key, tmp_path):
    spec = get_spec(key)
    original = spec.build_apk()
    bundle = save_apk(original, tmp_path / f"{key}.sapk")
    loaded = load_apk(bundle)

    assert print_program(loaded.program) == print_program(original.program)
    assert loaded.entrypoints == original.entrypoints
    assert loaded.resources.names() == original.resources.names()

    cfg = AnalysisConfig(async_heuristic=(spec.kind == "closed"),
                         scope_prefixes=spec.scope_prefixes)
    report_orig = Extractocol(cfg).analyze(original)
    report_load = Extractocol(cfg).analyze(loaded)
    assert report_orig.unique_uri_signatures() == report_load.unique_uri_signatures()
    assert len(report_orig.transactions) == len(report_load.transactions)
    assert {str(d) for d in report_orig.dependencies} == {
        str(d) for d in report_load.dependencies
    }


def test_zip_bundle_roundtrip(tmp_path):
    spec = get_spec("blippex")
    bundle = save_apk(spec.build_apk(), tmp_path / "blippex.zip")
    loaded = load_apk(bundle)
    report = Extractocol(AnalysisConfig()).analyze(loaded)
    assert len(report.transactions) == 1
