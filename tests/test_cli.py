"""CLI tests (in-process via cli.main, plus one subprocess smoke test)."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.cli import main, report_to_dict


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCli:
    def test_corpus_listing(self, capsys):
        out = run_cli(capsys, "corpus")
        assert "diode" in out and "pinterest" in out
        open_only = run_cli(capsys, "corpus", "--kind", "open")
        assert "pinterest" not in open_only

    def test_analyze_corpus_key(self, capsys):
        out = run_cli(capsys, "analyze", "radioreddit")
        assert "transactions: 6" in out
        assert "api/vote" in out

    def test_analyze_json_output(self, capsys):
        out = run_cli(capsys, "analyze", "blippex", "--json")
        data = json.loads(out)
        assert data["app"] == "blippex"
        assert data["stats"]["GET"] == 1
        assert data["transactions"][0]["uri_regex"].startswith("^")

    def test_analyze_sapk_bundle(self, capsys, tmp_path):
        run_cli(capsys, "export", "wallabag", str(tmp_path / "w.sapk"))
        out = run_cli(capsys, "analyze", str(tmp_path / "w.sapk"))
        assert "transactions: 1" in out

    def test_analyze_unknown_target_exits(self):
        with pytest.raises(SystemExit):
            main(["analyze", "not-an-app"])

    def test_fuzz_modes(self, capsys):
        manual = run_cli(capsys, "fuzz", "radioreddit", "--mode", "manual")
        assert "6 transactions" in manual
        auto = run_cli(capsys, "fuzz", "radioreddit", "--mode", "auto")
        assert "4 transactions" in auto
        assert "[skipped]" in auto

    def test_no_async_heuristic_flag(self, capsys):
        with_h = json.loads(
            run_cli(capsys, "analyze", "weather", "--json", "--async-heuristic")
        )
        without = json.loads(
            run_cli(capsys, "analyze", "weather", "--json",
                    "--no-async-heuristic")
        )
        uri_with = next(t["uri_regex"] for t in with_h["transactions"]
                        if "forecast" in t["uri_regex"])
        uri_without = next(t["uri_regex"] for t in without["transactions"]
                           if "forecast" in t["uri_regex"])
        assert "lat" in uri_with
        assert "lat" not in uri_without

    def test_async_flags_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "weather", "--async-heuristic",
                  "--no-async-heuristic"])
        capsys.readouterr()  # swallow argparse's usage message

    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "corpus"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "diode" in result.stdout


class TestBatch:
    def test_batch_cold_then_warm(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        cold = run_cli(capsys, "batch", "diode", "tzm", "--store", store,
                       "--workers", "2")
        assert "2 jobs: 2 done (0 cached), 0 failed" in cold
        assert "analyses run: 2" in cold
        warm = run_cli(capsys, "batch", "diode", "tzm", "--store", store,
                       "--workers", "2")
        assert "2 jobs: 2 done (2 cached), 0 failed" in warm
        assert "analyses run: 0" in warm

    def test_batch_json_summary(self, capsys, tmp_path):
        out = run_cli(capsys, "batch", "wallabag", "--store",
                      str(tmp_path / "store"), "--json")
        data = json.loads(out)
        assert data["analyses_run"] == 1 and data["failed"] == 0
        assert data["jobs"][0]["target"] == "wallabag"
        assert data["jobs"][0]["status"] == "done"

    def test_batch_unknown_target_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["batch", "not-an-app", "--store", str(tmp_path / "s")])


class TestDiff:
    def test_self_diff_exits_zero(self, capsys, tmp_path):
        out = run_cli(capsys, "diff", "tzm", "tzm",
                      "--store", str(tmp_path / "s"))
        assert "verdict: identical" in out

    def test_breaking_lineage_exits_one(self, capsys, tmp_path):
        rc = main(["diff", "reddinator@v1", "reddinator@v3",
                   "--store", str(tmp_path / "s")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "verdict: breaking" in out
        assert "txn3[$.json] -> txn4.body" in out

    def test_json_output_is_canonical_and_stable(self, capsys, tmp_path):
        argv = ["diff", "wallabag@v1", "wallabag@v2", "--json",
                "--store", str(tmp_path / "s")]
        assert main(argv) == 1
        first = capsys.readouterr().out
        data = json.loads(first)
        assert data["verdict"] == "breaking"
        assert main(argv) == 1
        assert capsys.readouterr().out == first  # byte-identical rerun

    def test_markdown_output(self, capsys, tmp_path):
        rc = main(["diff", "reddinator@v1", "reddinator@v2", "--markdown",
                   "--store", str(tmp_path / "s")])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("# Protocol diff:")
        assert "Verdict: compatible" in out

    def test_latest_two_store_versions(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        # store v1 and v3 of the lineage as if they were two releases
        from repro.apk.loader import apk_digest
        from repro.core.extractocol import Extractocol
        from repro.corpus import build_version
        from repro.service.store import ResultStore

        rs = ResultStore(store)
        for label in ("reddinator@v1", "reddinator@v3"):
            built = build_version(label)
            report = Extractocol(built.config).analyze(built.apk)
            rs.put(apk_digest(built.apk), built.config.cache_key(), report)

        rc = main(["diff", "--latest", "Reddinator", "--store", store])
        out = capsys.readouterr().out
        assert rc == 1
        assert "dependency-removed" in out

    def test_latest_needs_two_versions(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["diff", "--latest", "ghost", "--store", str(tmp_path / "s")])

    def test_missing_targets_exit(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["diff", "--store", str(tmp_path / "s")])
        with pytest.raises(SystemExit):
            main(["diff", "tzm", "no-such-app",
                  "--store", str(tmp_path / "s")])


class TestReportDict:
    def test_roundtrips_through_json(self):
        from repro import AnalysisConfig, Extractocol
        from repro.corpus import build_app

        report = Extractocol(AnalysisConfig()).analyze(build_app("ted"))
        data = json.loads(json.dumps(report_to_dict(report)))
        assert len(data["transactions"]) == len(report.transactions)
        media = [t for t in data["transactions"]
                 if "media_player" in t["consumers"]]
        assert media
        assert any(t["dynamic_uri"] for t in data["transactions"])


class TestSynthCli:
    def test_corpus_listing_includes_lineage_versions(self, capsys):
        out = run_cli(capsys, "corpus")
        # discoverable labels match what build_version() accepts
        for label in ("reddinator@v1", "reddinator@v3", "wallabag@v2",
                      "twister@v2", "tzm@v2"):
            assert label in out

    def test_corpus_synth_listing(self, capsys):
        out = run_cli(capsys, "corpus", "--synth", "synth:mega*3@7")
        assert "synth:mega*3@7" in out
        assert "syn-mega-s7-0000" in out and "syn-mega-s7-0002" in out

    def test_corpus_synth_summary_and_digest_stable(self, capsys):
        argv = ("corpus", "synth", "--families", "transports,evolution",
                "--scale", "8", "--seed", "7")
        first = run_cli(capsys, *argv)
        assert "population synth:transports,evolution*8@7" in first
        assert "population digest:" in first
        assert run_cli(capsys, *argv) == first  # deterministic rerun

    def test_corpus_synth_json_manifest(self, capsys):
        out = run_cli(capsys, "corpus", "synth", "synth:hazards*2@5",
                      "--json")
        manifest = json.loads(out)
        assert manifest["totals"]["apps"] == 2
        assert manifest["apps"][0]["key"] == "syn-hazards-s5-0000"
        assert manifest["apps"][0]["truth"]["total"] >= 1

    def test_corpus_synth_export(self, capsys, tmp_path):
        run_cli(capsys, "corpus", "synth", "synth:mega*2@7",
                "--export", str(tmp_path))
        bundles = sorted(p.name for p in tmp_path.glob("*.sapk"))
        assert bundles == ["syn-mega-s7-0000.sapk", "syn-mega-s7-0001.sapk"]

    def test_analyze_synth_key(self, capsys):
        out = run_cli(capsys, "analyze", "syn-transports-s7-0003")
        assert "transactions: 1" in out

    def test_analyze_malformed_synth_key_exits(self):
        with pytest.raises(SystemExit):
            main(["analyze", "syn-ghost-s7-0000"])

    def test_batch_population_spec(self, capsys, tmp_path):
        out = run_cli(capsys, "batch", "--corpus", "synth:mega*3@7",
                      "--store", str(tmp_path / "store"), "--workers", "2")
        assert "3 jobs: 3 done (0 cached), 0 failed" in out

    def test_eval_synth_scores_against_truth(self, capsys):
        out = run_cli(capsys, "eval", "synth",
                      "--corpus", "synth:transports,evolution*6@7")
        assert "Synthesized-corpus evaluation" in out
        assert "6/6" in out.splitlines()[-1]  # total row: all exact

    def test_lint_synth_population(self, capsys):
        out = run_cli(capsys, "lint", "--corpus", "synth:payloads*2@7")
        assert "0 error(s)" in out

    def test_diff_synth_lineage(self, capsys, tmp_path):
        from repro.synth import parse_population, synth_lineage

        key = next(
            k for k in parse_population("synth:evolution*5@7").keys()
            if "rename_query_key" in synth_lineage(k)[-1].description
        )
        rc = main(["diff", f"{key}@v1", f"{key}@v2",
                   "--store", str(tmp_path / "s")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "query-key-removed" in out
