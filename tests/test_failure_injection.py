"""Failure injection: the dynamic substrate degrades gracefully when
servers misbehave, apps crash, or inputs are malformed."""

from __future__ import annotations

import pytest

from fixtures_http import CLS, build_mini_reddit

from repro import AnalysisConfig, Extractocol
from repro.runtime import (
    HttpResponse,
    ManualUiFuzzer,
    Network,
    Runtime,
    RuntimeError_,
    ScriptedServer,
)
from repro.runtime.httpstack import HttpRequest


def network_with(handler) -> Network:
    network = Network()
    server = ScriptedServer("www.reddit.com")
    server.add("GET", r".*", handler)
    network.register("www.reddit.com", server)
    return network


class TestServerFailures:
    def test_http_500_recorded_and_app_fault_contained(self):
        apk = build_mini_reddit()
        network = network_with(
            lambda req, state: HttpResponse(status=500, body="oops")
        )
        result = ManualUiFuzzer().fuzz(apk, network)
        # the app crashed parsing "oops" as JSON — contained as a fault,
        # and the traffic was still captured
        assert result.faults
        assert len(result.trace) >= 1
        assert result.trace.transactions[0].response.status == 500

    def test_malformed_json_body(self):
        apk = build_mini_reddit()
        network = network_with(
            lambda req, state: HttpResponse.json_response({"wrong": "shape"})
        )
        result = ManualUiFuzzer().fuzz(apk, network)
        assert any("after" in f or "KeyError" in f or "library fault" in f
                   for f in result.faults)

    def test_unroutable_host_does_not_crash_fuzzer(self):
        apk = build_mini_reddit()
        result = ManualUiFuzzer().fuzz(apk, Network())  # no servers at all
        assert len(result.trace) >= 1
        assert all(t.response.status == 502 for t in result.trace)

    def test_handler_exception_becomes_500(self):
        def exploding(req, state):
            raise ValueError("server bug")

        network = network_with(exploding)
        with pytest.raises(ValueError):
            network.send(HttpRequest("GET", "http://www.reddit.com/x"))


class TestRuntimeGuards:
    def test_step_budget_stops_infinite_loop(self):
        from repro.apk import Apk, EntryPoint, Manifest, TriggerKind
        from repro.ir import ProgramBuilder

        pb = ProgramBuilder()
        m = pb.class_("t.Spin").method("spin")
        m.label("LOOP")
        m.goto("LOOP")
        apk = Apk(manifest=Manifest(package="t"), program=pb.build(),
                  entrypoints=[EntryPoint("<t.Spin: void spin()>",
                                          TriggerKind.UI, "spin")])
        rt = Runtime(apk, Network())
        with pytest.raises(RuntimeError_, match="step budget"):
            rt.fire_entrypoint(apk.entrypoints[0])

    def test_recursion_depth_guard(self):
        from repro.apk import Apk, EntryPoint, Manifest, TriggerKind
        from repro.ir import ProgramBuilder

        pb = ProgramBuilder()
        cb = pb.class_("t.Rec")
        m = cb.method("recurse")
        m.call_this("recurse", [])
        m.ret_void()
        apk = Apk(manifest=Manifest(package="t"), program=pb.build(),
                  entrypoints=[EntryPoint("<t.Rec: void recurse()>",
                                          TriggerKind.UI, "rec")])
        rt = Runtime(apk, Network())
        with pytest.raises(RuntimeError_, match="depth"):
            rt.fire_entrypoint(apk.entrypoints[0])

    def test_null_field_read_is_reported(self):
        from repro.apk import Apk, EntryPoint, Manifest, TriggerKind
        from repro.ir import ProgramBuilder

        pb = ProgramBuilder()
        cb = pb.class_("t.Npe")
        cb.field("obj", "t.Npe")
        m = cb.method("boom")
        other = m.getfield(m.this, "obj", cls="t.Npe")
        m.getfield(other, "obj", cls="t.Npe")
        m.ret_void()
        apk = Apk(manifest=Manifest(package="t"), program=pb.build(),
                  entrypoints=[EntryPoint("<t.Npe: void boom()>",
                                          TriggerKind.UI, "boom")])
        rt = Runtime(apk, Network())
        with pytest.raises(RuntimeError_, match="null field read"):
            rt.fire_entrypoint(apk.entrypoints[0])


class TestStaticAnalysisRobustness:
    def test_analysis_is_independent_of_server_behavior(self):
        """Static analysis never touches the network: identical output
        whether or not any server exists."""
        report = Extractocol(AnalysisConfig()).analyze(build_mini_reddit())
        assert len(report.transactions) == 2

    def test_missing_entrypoint_method_skipped(self):
        from repro.apk import EntryPoint, TriggerKind

        apk = build_mini_reddit()
        apk.entrypoints.append(
            EntryPoint("<ghost.Cls: void nothere()>", TriggerKind.UI, "ghost")
        )
        report = Extractocol(AnalysisConfig()).analyze(apk)
        assert len(report.transactions) == 2

    def test_empty_program(self):
        from repro.apk import Apk, Manifest
        from repro.ir import Program

        report = Extractocol(AnalysisConfig()).analyze(
            Apk(manifest=Manifest(package="empty"), program=Program())
        )
        assert report.transactions == []
        assert report.demarcation_points == 0

    def test_worklist_budget_caps_pathological_slicing(self):
        from repro.taint import TaintConfig, TaintEngine
        from repro.cfg import build_callgraph

        apk = build_mini_reddit()
        cg = build_callgraph(apk.program)
        engine = TaintEngine(apk.program, cg,
                             TaintConfig(max_worklist_items=3))
        from repro.slicing import scan_demarcation_points

        dp = scan_demarcation_points(apk.program, cg)[0]
        sl = engine.backward_slice(dp.request_seeds)  # truncated, not hung
        assert len(sl) < apk.program.statement_count()
