"""Tests for the unified metrics registry: thread-safety under concurrent
observers, the Prometheus text renderer, and the service re-export shim."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)


class TestHistogramConcurrency:
    def test_concurrent_observe_and_summary_consistent(self):
        """observe() and summary() share one lock: a summary taken while
        observers hammer the histogram is internally consistent — its
        bucket counts always sum to its count and sum/min/max agree."""
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        n_threads, per_thread = 8, 500
        inconsistencies: list[str] = []
        start = threading.Barrier(n_threads + 1)

        def observer(seed: int) -> None:
            start.wait()
            for i in range(per_thread):
                h.observe((seed + i) % 20)

        def reader() -> None:
            start.wait()
            for _ in range(200):
                s = h.summary()
                if sum(s["buckets"].values()) != s["count"]:
                    inconsistencies.append("buckets != count")
                if s["count"] and not (s["min"] <= s["max"]):
                    inconsistencies.append("min > max")

        threads = [
            threading.Thread(target=observer, args=(t,)) for t in range(n_threads)
        ] + [threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not inconsistencies
        final = h.summary()
        assert final["count"] == n_threads * per_thread
        assert sum(final["buckets"].values()) == final["count"]

    def test_snapshot_matches_summary(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        bounds, counts, count, total = h.snapshot()
        assert bounds == (1.0, 2.0)
        assert counts == [1, 1, 1]
        assert count == 3
        assert total == pytest.approx(7.0)


class TestPrometheusRendering:
    def test_counter_gauge_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.counter("analyses_run").inc(3)
        reg.gauge("queue_depth").set(2)
        h = reg.histogram("analysis_seconds")
        h.observe(0.02)
        h.observe(0.5)
        h.observe(400.0)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE repro_analyses_run_total counter" in lines
        assert "repro_analyses_run_total 3" in lines
        assert "repro_queue_depth 2" in lines
        # histogram buckets are cumulative and end at +Inf == count
        assert 'repro_analysis_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_analysis_seconds_count 3" in lines
        sum_line = next(
            l for l in lines if l.startswith("repro_analysis_seconds_sum ")
        )
        assert float(sum_line.split()[-1]) == pytest.approx(400.52)
        cumulative = [
            int(l.split()[-1])
            for l in lines
            if l.startswith("repro_analysis_seconds_bucket")
        ]
        assert cumulative == sorted(cumulative)

    def test_metric_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits-by route").inc()
        text = render_prometheus(reg)
        assert "repro_cache_hits_by_route_total 1" in text

    def test_render_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.gauge("z").set(1)
        assert render_prometheus(reg) == render_prometheus(reg)
        # names render sorted
        text = render_prometheus(reg)
        assert text.index("repro_a_total") < text.index("repro_b_total")


class TestLabeledHistogramExposition:
    """The labeled-histogram text format, scraped by real Prometheus:
    cumulative monotone buckets, a terminal +Inf bucket equal to _count,
    _sum/_count consistency, and label-value escaping."""

    @staticmethod
    def _labeled_registry() -> MetricsRegistry:
        reg = MetricsRegistry()
        for phase, values in (
            ("slicing", (0.002, 0.04, 0.8)),
            ("setup", (0.0005, 500.0)),
        ):
            h = reg.histogram("phase_seconds", labels={"phase": phase})
            for v in values:
                h.observe(v)
        return reg

    def _series(self, text: str, label: str) -> list[str]:
        return [l for l in text.splitlines() if f'phase="{label}"' in l]

    def test_each_label_series_is_cumulative_and_monotone(self):
        text = render_prometheus(self._labeled_registry())
        for phase in ("slicing", "setup"):
            buckets = [
                int(l.split()[-1])
                for l in self._series(text, phase)
                if "_bucket{" in l
            ]
            assert buckets, f"no bucket series for phase={phase}"
            assert buckets == sorted(buckets)

    def test_inf_bucket_terminates_and_equals_count(self):
        text = render_prometheus(self._labeled_registry())
        for phase, expected in (("slicing", 3), ("setup", 2)):
            series = self._series(text, phase)
            buckets = [l for l in series if "_bucket{" in l]
            # +Inf is the last bucket and swallows out-of-range samples
            assert 'le="+Inf"' in buckets[-1]
            assert int(buckets[-1].split()[-1]) == expected
            count = next(l for l in series if "phase_seconds_count{" in l)
            assert int(count.split()[-1]) == expected

    def test_sum_matches_observations_per_series(self):
        text = render_prometheus(self._labeled_registry())
        sums = {
            phase: float(
                next(
                    l
                    for l in self._series(text, phase)
                    if "phase_seconds_sum{" in l
                ).split()[-1]
            )
            for phase in ("slicing", "setup")
        }
        assert sums["slicing"] == pytest.approx(0.842)
        assert sums["setup"] == pytest.approx(500.0005)

    def test_one_type_line_per_family(self):
        text = render_prometheus(self._labeled_registry())
        type_lines = [
            l for l in text.splitlines()
            if l.startswith("# TYPE repro_phase_seconds")
        ]
        assert type_lines == ["# TYPE repro_phase_seconds histogram"]

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter(
            "odd", labels={"path": 'C:\\tmp\\"x"\nend'}
        ).inc()
        text = render_prometheus(reg)
        assert (
            'repro_odd_total{path="C:\\\\tmp\\\\\\"x\\"\\nend"} 1'
            in text.splitlines()
        )

    def test_labeled_and_unlabeled_series_coexist(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(5)
        reg.counter("jobs", labels={"status": "failed"}).inc(2)
        text = render_prometheus(reg)
        assert "repro_jobs_total 5" in text.splitlines()
        assert 'repro_jobs_total{status="failed"} 2' in text.splitlines()

    def test_labels_render_sorted_regardless_of_insertion_order(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_a.gauge("up", labels={"b": "2", "a": "1"}).set(1)
        reg_b.gauge("up", labels={"a": "1", "b": "2"}).set(1)
        assert render_prometheus(reg_a) == render_prometheus(reg_b)
        assert 'repro_up{a="1",b="2"} 1' in render_prometheus(reg_a)


class TestServiceShim:
    def test_service_metrics_reexports_obs_metrics(self):
        from repro.obs import metrics as obs_metrics
        from repro.service import metrics as service_metrics

        assert service_metrics.MetricsRegistry is obs_metrics.MetricsRegistry
        assert service_metrics.Counter is obs_metrics.Counter
        assert service_metrics.Gauge is Gauge
        assert service_metrics.Histogram is Histogram
        assert service_metrics.render_prometheus is render_prometheus

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)
