"""Tests for the unified metrics registry: thread-safety under concurrent
observers, the Prometheus text renderer, and the service re-export shim."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)


class TestHistogramConcurrency:
    def test_concurrent_observe_and_summary_consistent(self):
        """observe() and summary() share one lock: a summary taken while
        observers hammer the histogram is internally consistent — its
        bucket counts always sum to its count and sum/min/max agree."""
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        n_threads, per_thread = 8, 500
        inconsistencies: list[str] = []
        start = threading.Barrier(n_threads + 1)

        def observer(seed: int) -> None:
            start.wait()
            for i in range(per_thread):
                h.observe((seed + i) % 20)

        def reader() -> None:
            start.wait()
            for _ in range(200):
                s = h.summary()
                if sum(s["buckets"].values()) != s["count"]:
                    inconsistencies.append("buckets != count")
                if s["count"] and not (s["min"] <= s["max"]):
                    inconsistencies.append("min > max")

        threads = [
            threading.Thread(target=observer, args=(t,)) for t in range(n_threads)
        ] + [threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not inconsistencies
        final = h.summary()
        assert final["count"] == n_threads * per_thread
        assert sum(final["buckets"].values()) == final["count"]

    def test_snapshot_matches_summary(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        bounds, counts, count, total = h.snapshot()
        assert bounds == (1.0, 2.0)
        assert counts == [1, 1, 1]
        assert count == 3
        assert total == pytest.approx(7.0)


class TestPrometheusRendering:
    def test_counter_gauge_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.counter("analyses_run").inc(3)
        reg.gauge("queue_depth").set(2)
        h = reg.histogram("analysis_seconds")
        h.observe(0.02)
        h.observe(0.5)
        h.observe(400.0)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE repro_analyses_run_total counter" in lines
        assert "repro_analyses_run_total 3" in lines
        assert "repro_queue_depth 2" in lines
        # histogram buckets are cumulative and end at +Inf == count
        assert 'repro_analysis_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_analysis_seconds_count 3" in lines
        sum_line = next(
            l for l in lines if l.startswith("repro_analysis_seconds_sum ")
        )
        assert float(sum_line.split()[-1]) == pytest.approx(400.52)
        cumulative = [
            int(l.split()[-1])
            for l in lines
            if l.startswith("repro_analysis_seconds_bucket")
        ]
        assert cumulative == sorted(cumulative)

    def test_metric_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits-by route").inc()
        text = render_prometheus(reg)
        assert "repro_cache_hits_by_route_total 1" in text

    def test_render_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.gauge("z").set(1)
        assert render_prometheus(reg) == render_prometheus(reg)
        # names render sorted
        text = render_prometheus(reg)
        assert text.index("repro_a_total") < text.index("repro_b_total")


class TestServiceShim:
    def test_service_metrics_reexports_obs_metrics(self):
        from repro.obs import metrics as obs_metrics
        from repro.service import metrics as service_metrics

        assert service_metrics.MetricsRegistry is obs_metrics.MetricsRegistry
        assert service_metrics.Counter is obs_metrics.Counter
        assert service_metrics.Gauge is Gauge
        assert service_metrics.Histogram is Histogram
        assert service_metrics.render_prometheus is render_prometheus

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)
