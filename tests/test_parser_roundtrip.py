"""Printer ↔ parser round-trip tests for the textual IR format."""

from __future__ import annotations

import pytest

from repro.ir import ProgramBuilder, validate_program
from repro.ir.parser import ParseError, parse_program
from repro.ir.printer import print_program

from conftest import build_branchy_program


def roundtrip(program):
    text = print_program(program)
    reparsed = parse_program(text)
    text2 = print_program(reparsed)
    assert text == text2, "printer/parser round-trip diverged"
    return reparsed


class TestRoundTrip:
    def test_branchy_program(self, branchy_program):
        reparsed = roundtrip(branchy_program)
        assert validate_program(reparsed) == []
        cls = reparsed.class_of("com.example.Branchy")
        assert cls is not None
        run = cls.find_methods("run")[0]
        assert run.this_local is not None
        assert len(run.param_locals) == 1

    def test_fields_and_statics(self):
        pb = ProgramBuilder()
        cb = pb.class_("a.App", superclass="android.app.Activity")
        cb.field("token", "java.lang.String")
        m = cb.method("save", params=["java.lang.String"])
        m.putfield(m.this, "token", m.param(0), cls="a.App")
        m.putstatic("a.App", "last", m.param(0))
        got = m.getfield(m.this, "token", cls="a.App")
        m.call_this("save", [got])
        m.ret_void()
        reparsed = roundtrip(pb.build())
        assert "token" in reparsed.class_of("a.App").fields

    def test_invokes_and_constants(self):
        pb = ProgramBuilder()
        cb = pb.class_("a.B")
        m = cb.method("go", static=True)
        sb = m.new("java.lang.StringBuilder")
        m.vcall(sb, "append", ["x, y"], returns="java.lang.StringBuilder")
        m.vcall(sb, "append", [42], returns="java.lang.StringBuilder")
        s = m.vcall(sb, "toString", [], returns="java.lang.String")
        m.scall("a.B", "use", [s])
        m.ret_void()
        use = cb.method("use", params=["java.lang.String"], static=True)
        use.ret_void()
        roundtrip(pb.build())

    def test_arrays_casts_instanceof(self):
        pb = ProgramBuilder()
        cb = pb.class_("a.C")
        m = cb.method("go", params=["java.lang.Object"])
        arr = m.new_array("java.lang.String", 3)
        m.astore(arr, 0, "hello")
        elem = m.aload(arr, 0)
        m.length(arr)
        m.cast(m.param(0), "java.lang.String")
        flag = m.fresh("boolean", "is")
        from repro.ir import InstanceOfExpr, parse_type

        m.assign(flag, InstanceOfExpr(m.param(0), parse_type("java.lang.String")))
        m.ret_void()
        roundtrip(pb.build())

    def test_string_escapes(self):
        pb = ProgramBuilder()
        cb = pb.class_("a.D")
        m = cb.method("go", static=True)
        m.let("s", "java.lang.String", 'quote " and \' and \\ and, comma')
        m.ret_void()
        reparsed = roundtrip(pb.build())
        body = reparsed.class_of("a.D").find_methods("go")[0].body
        from repro.ir import AssignStmt, StringConst

        consts = [
            s.rhs.value
            for s in body
            if isinstance(s, AssignStmt) and isinstance(s.rhs, StringConst)
        ]
        assert 'quote " and \' and \\ and, comma' in consts

    def test_abstract_method(self):
        pb = ProgramBuilder()
        cb = pb.class_("a.E", is_interface=True)
        cb.abstract_method("onDone", params=["java.lang.String"])
        reparsed = roundtrip(pb.build())
        m = reparsed.class_of("a.E").find_methods("onDone")[0]
        assert m.is_abstract

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError):
            parse_program("class a.B {\n  ???\n}")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_program("not a class at all")
