"""Tests for the §4 extensions: intent modeling and direct-socket support.

Both are sketched as future work in the paper ("Extractocol can be extended
to support most of them"); here they exist behind config flags, off by
default so the baseline reproduces the paper's misses.
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Extractocol
from repro.apk import Apk, EntryPoint, Manifest, TriggerKind
from repro.ir import ProgramBuilder


# ------------------------------------------------------------------ intents
def intent_app() -> Apk:
    """SenderActivity packs a city name into an Intent; DetailActivity's
    onNewIntent builds the request URL from the extra."""
    pb = ProgramBuilder()
    sender = pb.class_("com.intents.SenderActivity",
                       superclass="android.app.Activity")
    m = sender.method("onPickCity", params=["java.lang.String"])
    intent = m.local("intent", "android.content.Intent")
    from repro.ir import ClassConst, NewExpr, class_t, InvokeExpr, MethodSig, parse_type
    m.assign(intent, NewExpr(class_t("android.content.Intent")))
    from repro.ir import InvokeStmt

    init_sig = MethodSig(
        "android.content.Intent", "<init>",
        (parse_type("java.lang.Object"), parse_type("java.lang.Class")),
        parse_type("void"),
    )
    m.emit(InvokeStmt(InvokeExpr(
        "special", init_sig, intent,
        (m.this, ClassConst("com.intents.DetailActivity")),
    )))
    m.vcall(intent, "putExtra", ["city", m.param(0)],
            returns="android.content.Intent")
    m.vcall(m.this, "startActivity", [intent], on="android.app.Activity")
    m.ret_void()

    detail = pb.class_("com.intents.DetailActivity",
                       superclass="android.app.Activity")
    h = detail.method("onNewIntent", params=["android.content.Intent"])
    city = h.vcall(h.param(0), "getStringExtra", ["city"],
                   returns="java.lang.String", into="city")
    url = h.concat("http://weather.intents.test/city/", city, into="url")
    req = h.new("org.apache.http.client.methods.HttpGet", [url])
    client = h.local("client", "org.apache.http.client.HttpClient")
    h.assign(client, None)
    h.vcall(client, "execute", [req], returns="org.apache.http.HttpResponse",
            on="org.apache.http.client.HttpClient")
    h.ret_void()

    program = pb.build()
    return Apk(
        manifest=Manifest(package="com.intents",
                          permissions=["android.permission.INTERNET"]),
        program=program,
        entrypoints=[
            EntryPoint(
                method_id="<com.intents.SenderActivity: void onPickCity(java.lang.String)>",
                kind=TriggerKind.UI,
                name="pick city",
            )
        ],
    )


class TestIntentExtension:
    def test_baseline_misses_intent_flow(self):
        """Without the extension, the intent-delivered URL part is lost and
        the handler's request never surfaces from the sender's context."""
        report = Extractocol(AnalysisConfig(model_intents=False)).analyze(
            intent_app()
        )
        all_txns = report.transactions + report.unidentified
        assert not any(
            "weather.intents.test" in t.request.uri_regex.replace("\\", "")
            for t in all_txns
        )

    def test_extension_resolves_intent_flow(self):
        report = Extractocol(AnalysisConfig(model_intents=True)).analyze(
            intent_app()
        )
        txn = next(
            t for t in report.transactions
            if "weather.intents.test" in t.request.uri_regex.replace("\\", "")
        )
        assert txn.request.method == "GET"
        # the extra's provenance (user input) survives the intent hop
        assert "user_input" in txn.request.origins

    def test_extension_off_by_default(self):
        assert AnalysisConfig().model_intents is False
        assert AnalysisConfig().model_sockets is False


# ------------------------------------------------------------------ sockets
def socket_app() -> Apk:
    """A text-protocol client over a raw java.net.Socket (IRC-ish)."""
    pb = ProgramBuilder()
    cb = pb.class_("com.sockets.Client", superclass="android.app.Activity")
    m = cb.method("sendCommand", params=["java.lang.String"])
    sock = m.new("java.net.Socket", ["irc.sockets.test", 6667], into="sock")
    out = m.vcall(sock, "getOutputStream", [], returns="java.io.OutputStream",
                  into="out")
    writer = m.new("java.io.OutputStreamWriter", [out], into="writer")
    line = m.concat("NICK ", m.param(0), "\r\n", into="line")
    m.vcall(writer, "write", [line])
    m.vcall(writer, "flush", [])
    stream = m.vcall(sock, "getInputStream", [], returns="java.io.InputStream",
                     into="stream")
    reader = m.new("java.io.BufferedReader", [stream], into="reader")
    m.vcall(reader, "readLine", [], returns="java.lang.String")
    m.vcall(sock, "close", [])
    m.ret_void()
    program = pb.build()
    return Apk(
        manifest=Manifest(package="com.sockets",
                          permissions=["android.permission.INTERNET"]),
        program=program,
        entrypoints=[
            EntryPoint(
                method_id="<com.sockets.Client: void sendCommand(java.lang.String)>",
                kind=TriggerKind.UI,
                name="send command",
            )
        ],
    )


class TestSocketExtension:
    def test_baseline_does_not_reconstruct_sockets(self):
        """The paper's prototype 'does not handle direct use of
        java.net.socket' — without the flag no meaningful signature exists."""
        report = Extractocol(AnalysisConfig(model_sockets=False)).analyze(
            socket_app()
        )
        assert not any(
            "irc.sockets.test" in t.request.uri_regex.replace("\\", "")
            for t in report.transactions
        )

    def test_extension_reconstructs_text_protocol(self):
        report = Extractocol(AnalysisConfig(model_sockets=True)).analyze(
            socket_app()
        )
        txn = next(
            t for t in report.transactions
            if "socket://irc.sockets.test:6667" in
            t.request.uri_regex.replace("\\", "")
        )
        assert txn.request.method == "RAW"
        body = (txn.request.body_regex or "").replace("\\", "")
        assert "NICK " in body
        assert "user_input" in txn.request.origins

    def test_socket_runs_dynamically(self):
        from repro.runtime import Network, Runtime, ScriptedServer
        from repro.runtime.httpstack import HttpResponse

        apk = socket_app()
        network = Network()
        server = ScriptedServer("irc.sockets.test:6667")
        server.add("RAW", r"", lambda req, state: HttpResponse.text(
            ":server 001 welcome"))
        network.register("irc.sockets.test:6667", server)
        rt = Runtime(apk, network)
        rt.fire_entrypoint(apk.entrypoints[0])
        assert len(network.trace) == 1
        captured = network.trace.transactions[0]
        assert captured.request.method == "RAW"
        assert captured.request.body.startswith("NICK ")
        assert captured.response.body.startswith(":server")
