"""Fleet index contract tests: determinism (independent builds and
incremental fold-in are byte-identical), crash recovery (stale pending
deltas), executor equivalence (thread vs process builds), zero-rebuild
freshness via the pending overlay, the query grammar, and pagination."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fleetindex import (
    FleetIndex,
    build_index,
    decode_cursor,
    encode_cursor,
    index_root,
    parse_query,
    run_search,
)
from repro.fleetindex.docs import envelope_summary, report_summary
from repro.fleetindex.index import pending_dir
from repro.fleetindex.query import QueryError, catalog, paginate
from repro.obs.tracer import Tracer
from repro.service.jobs import (
    _default_analyzer,
    compute_apk_digest,
    resolve_target,
)
from repro.service.store import ResultStore
from repro.synth import expand_targets
from repro.synth.compile import synth_genapp

SPEC = "synth:transports*4@3"


def fill_store(root) -> ResultStore:
    """Analyze the test population into a fresh store."""
    store = ResultStore(root)
    for target in expand_targets([SPEC]):
        apk, config, _ = resolve_target(target)
        report = _default_analyzer(apk, config)
        store.put(compute_apk_digest(apk), config.cache_key(), report)
    return store


def index_tree(root) -> dict[str, bytes]:
    """Every index file's bytes, keyed by relative path."""
    base = index_root(root)
    return {
        str(p.relative_to(base)): p.read_bytes()
        for p in sorted(base.rglob("*.json"))
    }


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-store")
    s = fill_store(root)
    build_index(s)
    return s


@pytest.fixture(scope="module")
def index(store):
    return FleetIndex(store).refresh()


class TestDeterminism:
    def test_independent_builds_byte_identical(self, store, tmp_path):
        other = fill_store(tmp_path / "other")
        build_index(other)
        assert index_tree(tmp_path / "other") == index_tree(store.root)

    def test_rebuild_is_idempotent(self, store):
        before = index_tree(store.root)
        build_index(store, rebuild=True)
        assert index_tree(store.root) == before

    def test_incremental_fold_equals_full_rebuild(self, tmp_path):
        # build over the first half, then put the rest (landing pending
        # deltas) and fold incrementally
        targets = expand_targets([SPEC])
        grown = ResultStore(tmp_path / "grown")
        for target in targets[:2]:
            apk, config, _ = resolve_target(target)
            grown.put(
                compute_apk_digest(apk), config.cache_key(),
                _default_analyzer(apk, config),
            )
        build_index(grown)
        for target in targets[2:]:
            apk, config, _ = resolve_target(target)
            grown.put(
                compute_apk_digest(apk), config.cache_key(),
                _default_analyzer(apk, config),
            )
        stats = build_index(grown)
        assert not stats["rebuilt"] and stats["folded"] == 2

        full = fill_store(tmp_path / "full")
        build_index(full, rebuild=True)
        assert index_tree(tmp_path / "grown") == index_tree(tmp_path / "full")

    def test_thread_and_process_builds_identical(self, store, tmp_path):
        for executor, name in (("thread", "t"), ("process", "p")):
            other = fill_store(tmp_path / name)
            build_index(other, rebuild=True, executor=executor, workers=2)
            assert index_tree(tmp_path / name) == index_tree(store.root), (
                f"{executor} build diverged from serial"
            )

    def test_query_results_identical_across_builds(self, store, tmp_path):
        other = fill_store(tmp_path / "q")
        build_index(other, rebuild=True, executor="thread", workers=2)
        host = synth_genapp(expand_targets([SPEC])[0]).host
        a = run_search(FleetIndex(store).refresh(), f"host:{host}")
        b = run_search(FleetIndex(ResultStore(tmp_path / "q")).refresh(),
                       f"host:{host}")
        assert a == b


class TestFreshness:
    def test_search_after_put_with_zero_rebuild(self, tmp_path):
        # the acceptance criterion: puts land pending deltas, the reader
        # overlays them — no build_index call anywhere
        store = fill_store(tmp_path / "fresh")
        targets = expand_targets([SPEC])
        index = FleetIndex(store).refresh()
        assert index.manifest() is None  # nothing durable exists
        for target in targets:
            host = synth_genapp(target).host
            result = run_search(index, f"host:{host}")
            assert result["total"] >= 1, f"{target} host {host} not found"

    def test_refresh_sees_new_puts(self, tmp_path):
        store = ResultStore(tmp_path / "grow")
        build_index(store)
        index = FleetIndex(store).refresh()
        assert index.stats()["docs"] == 0

        target = expand_targets([SPEC])[0]
        apk, config, _ = resolve_target(target)
        store.put(
            compute_apk_digest(apk), config.cache_key(),
            _default_analyzer(apk, config),
        )
        assert index.refresh().stats()["docs"] == 1

    def test_fold_consumes_pending(self, tmp_path):
        store = fill_store(tmp_path / "consume")
        assert len(list(pending_dir(store.root).iterdir())) == 4
        build_index(store)
        assert list(pending_dir(store.root).iterdir()) == []


class TestCrashRecovery:
    def test_corrupt_pending_recovered_from_envelope(self, tmp_path):
        store = fill_store(tmp_path / "crash")
        # a writer died mid-put: torn delta file, but the envelope landed
        victim = sorted(pending_dir(store.root).iterdir())[0]
        victim.write_text('{"schema": 1, "key": ')
        stats = build_index(store)
        assert stats["docs"] == 4  # recovered, nothing lost

        clean = fill_store(tmp_path / "clean")
        build_index(clean)
        assert index_tree(tmp_path / "crash") == index_tree(tmp_path / "clean")

    def test_orphan_pending_without_envelope_dropped(self, tmp_path):
        store = fill_store(tmp_path / "orphan")
        bogus = pending_dir(store.root) / "deadbeef-cafe.json"
        bogus.write_text("not json at all")
        build_index(store)
        assert not bogus.exists()
        assert FleetIndex(store).refresh().stats()["docs"] == 4

    def test_foreign_schema_index_rebuilt(self, tmp_path):
        store = fill_store(tmp_path / "foreign")
        build_index(store)
        manifest = index_root(store.root) / "MANIFEST.json"
        data = json.loads(manifest.read_text())
        data["schema"] = 999
        manifest.write_text(json.dumps(data))
        stats = build_index(store)
        assert stats["rebuilt"]

        clean = fill_store(tmp_path / "foreignclean")
        build_index(clean)
        assert index_tree(store.root) == index_tree(tmp_path / "foreignclean")


class TestQueryGrammar:
    def test_clause_kinds(self):
        clauses = parse_query("host:API.Example.com path:login free like:app/3")
        assert ("term", "host:api.example.com") in clauses
        assert ("term", "path:login") in clauses
        assert ("term", "text:free") in clauses
        assert ("like", "app", 3) in clauses

    @pytest.mark.parametrize("bad", ["", "  ", "host:", "like:app", "like:/x"])
    def test_malformed_queries_raise(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)

    def test_clauses_and_together(self, index):
        host = synth_genapp(expand_targets([SPEC])[0]).host
        broad = run_search(index, "post")
        narrowed = run_search(index, f"post host:{host}")
        assert narrowed["total"] <= broad["total"]
        assert all(h in broad["hits"] or True for h in narrowed["hits"])
        assert run_search(index, f"host:{host} nosuchtoken")["total"] == 0

    def test_unknown_prefix_is_free_text(self):
        assert parse_query("weird:thing") == [("term", "text:weird:thing")]

    def test_like_scores_sorted_and_reference_excluded(self, index):
        key = sorted(index.docs)[0]
        txn = sorted(int(t) for t in index.docs[key]["txns"])[0]
        result = run_search(index, f"like:{key[:12]}/{txn}")
        scores = [h["score"] for h in result["hits"]]
        assert scores == sorted(scores, reverse=True)
        assert (index.docs[key]["app"], key, txn) not in [
            (h["app"], h["key"], h["txn"]) for h in result["hits"]
        ]

    def test_like_unresolvable_raises(self, index):
        with pytest.raises(QueryError):
            run_search(index, "like:nosuchapp/0")

    def test_search_span_emitted(self, index):
        tracer = Tracer()
        run_search(index, "post", tracer=tracer)
        span = tracer.root.children[0]
        assert span.name == "search:text:post"
        assert span.counters["clauses"] == 1
        assert span.counters["matches"] == span.counters["returned"]


class TestPagination:
    def test_cursor_roundtrip(self):
        parts = ["app", 1.5, "key", 3]
        assert decode_cursor(encode_cursor(parts)) == parts
        assert decode_cursor(None) is None
        assert decode_cursor("!!garbage!!") is None

    def test_full_walk_covers_everything_once(self, index):
        full = run_search(index, "post", limit=500)
        seen, cursor = [], None
        while True:
            page = run_search(index, "post", limit=1, cursor=cursor)
            assert len(page["hits"]) <= 1
            seen.extend(page["hits"])
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert seen == full["hits"]

    def test_paginate_clamps_limit(self):
        items = [{"k": i} for i in range(10)]
        page, cursor = paginate(
            items, limit=-5, cursor=None, sort_key=lambda x: [x["k"]]
        )
        assert len(page) == 1 and cursor is not None

    def test_catalog_paginates_by_app(self, index):
        first = catalog(index, limit=3)
        assert first["total"] == 4 and len(first["apps"]) == 3
        rest = catalog(index, limit=3, cursor=first["next_cursor"])
        names = [e["app"] for e in first["apps"] + rest["apps"]]
        assert names == sorted(names) and len(names) == 4


class TestSummaries:
    def test_new_envelopes_carry_summary(self, store):
        key = store.entries()[0]
        envelope = store.load(key)
        summary = envelope["summary"]
        assert summary["schema"] == 1
        assert summary["hosts"] and summary["transactions"] > 0
        assert summary == report_summary(envelope["report"])

    def test_backfill_recomputes_missing_summary(self, store):
        envelope = dict(store.load(store.entries()[0]))
        stamped = envelope.pop("summary")
        assert envelope_summary(envelope) == stamped
        # foreign summary schema is also recomputed, not trusted
        envelope["summary"] = {"schema": 999, "hosts": ["bogus"]}
        assert envelope_summary(envelope) == stamped

    def test_iter_entries_streams_with_summaries(self, store):
        entries = list(store.iter_entries())
        assert len(entries) == 4
        assert all(e["summary"]["hosts"] for e in entries)
        assert store.list_entries() == sorted(
            entries, key=lambda e: (e["app"], e["stored_at"], e["key"])
        )
