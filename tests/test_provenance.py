"""Taint provenance: `repro explain` must walk a request field back to the
concrete statement chain that produced it.

Covers the ISSUE acceptance bar: a simple corpus app (blippex — the
corpus has no literal "simple" key) and radioreddit with exact known
chains, plus every closed-source corpus app resolving at least one
request field to a non-empty chain ending at the demarcation point.
"""

from __future__ import annotations

import json

import pytest

from repro import AnalysisConfig, Extractocol
from repro.corpus import app_keys, get_spec
from repro.obs.provenance import FieldProvenance, ProvenanceStep, explain


def _spec_config(key: str) -> tuple[object, AnalysisConfig]:
    spec = get_spec(key)
    return spec.build_apk(), AnalysisConfig(
        async_heuristic=(spec.kind == "closed"),
        scope_prefixes=spec.scope_prefixes,
    )


class TestSimpleApp:
    def test_blippex_uri_provenance(self):
        apk, config = _spec_config("blippex")
        result = explain(apk, config, request="0", field="uri")
        assert isinstance(result, FieldProvenance)
        assert result.app == "blippex"
        assert result.field == "uri"
        assert result.steps, "uri must trace back to a producing statement"
        assert all(isinstance(s, ProvenanceStep) for s in result.steps)
        # the chain starts at a concrete string constant and ends at the DP
        assert "blippex" in result.steps[0].text
        described = result.describe()
        assert "uri" in described

    def test_unknown_request_raises_lookup_error(self):
        apk, config = _spec_config("blippex")
        with pytest.raises(LookupError):
            explain(apk, config, request="999", field="uri")

    def test_unknown_field_raises_lookup_error(self):
        apk, config = _spec_config("blippex")
        with pytest.raises(LookupError):
            explain(apk, config, request="0", field="no-such-field")


class TestRadioreddit:
    def test_known_chain_fetch_status(self):
        """The paper's running example: the GET uri is assembled in
        MainActivity.fetchStatus via StringBuilder → toString → HttpGet
        ctor → HttpClient.execute (the demarcation point)."""
        apk, config = _spec_config("radioreddit")
        result = explain(apk, config, request="1", field="uri")
        assert len(result.steps) == 4
        assert all("fetchStatus" in s.method_id for s in result.steps)
        texts = [s.text for s in result.steps]
        assert "'http://www.radioreddit.com/'" in texts[0]
        assert "StringBuilder" in texts[0]
        assert "toString" in texts[1]
        assert "HttpGet: void <init>" in texts[2]
        assert "HttpClient" in texts[3] and "execute" in texts[3]
        # indices are increasing within the single producing method
        indices = [s.index for s in result.steps]
        assert indices == sorted(indices)

    def test_substring_request_selector(self):
        apk, config = _spec_config("radioreddit")
        by_id = explain(apk, config, request="1", field="uri")
        by_sub = explain(apk, config, request="radioreddit", field="uri")
        assert by_sub.txn_id == by_id.txn_id
        assert [s.text for s in by_sub.steps] == [s.text for s in by_id.steps]

    def test_to_dict_is_json_serialisable(self):
        apk, config = _spec_config("radioreddit")
        result = explain(apk, config, request="1", field="uri")
        data = json.loads(json.dumps(result.to_dict(), sort_keys=True))
        assert data["app"] == "radio reddit"  # the apk's display name
        assert len(data["steps"]) == 4


class TestClosedCorpus:
    @pytest.mark.parametrize("key", app_keys("closed"))
    def test_resolves_a_request_field_to_a_chain(self, key):
        """Acceptance: for every closed-source corpus app at least one
        request field resolves to a concrete statement chain."""
        apk, config = _spec_config(key)
        report = Extractocol(config).analyze(apk)
        txns = list(report.transactions) or list(report.unidentified)
        assert txns, f"{key}: no transactions reconstructed"
        for txn in txns:
            result = explain(apk, config, request=str(txn.txn_id), field="uri")
            if result.steps:
                break
        else:
            pytest.fail(f"{key}: no transaction's uri resolved to a chain")
        # the chain ends at the transaction's demarcation point method
        assert result.steps[-1].method_id
        assert result.value


class TestExplainCli:
    def test_explain_human_output(self, capsys):
        from repro.cli import main

        assert main(["explain", "radioreddit", "1", "uri"]) == 0
        out = capsys.readouterr().out
        assert "radioreddit" in out
        assert "fetchStatus" in out

    def test_explain_json_output(self, capsys):
        from repro.cli import main

        assert main(["explain", "radioreddit", "1", "uri", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["field"] == "uri"
        assert len(data["steps"]) == 4

    def test_explain_bad_request_exits_nonzero(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["explain", "radioreddit", "999", "uri"])


class TestProvenanceInvariance:
    def test_report_unchanged_by_recording(self):
        """record_provenance must not perturb the analysis result (it is
        an execution field: excluded from cache keys, invisible in the
        report)."""
        from repro.core.report import report_to_dict

        apk, config = _spec_config("radioreddit")
        plain = Extractocol(config).analyze(apk)
        from dataclasses import replace

        traced = Extractocol(replace(config, record_provenance=True)).analyze(apk)
        assert report_to_dict(plain) == report_to_dict(traced)
