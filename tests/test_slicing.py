"""Tests for the slicing orchestration layer: DP scanning for every
transport, object-aware augmentation, and slicing-report statistics."""

from __future__ import annotations

import pytest

from repro.cfg import build_callgraph
from repro.ir import ProgramBuilder
from repro.slicing import DemarcationRegistry, NetworkSlicer, scan_demarcation_points


class TestListenerSeeds:
    def test_okhttp_enqueue_listener_resolved(self):
        pb = ProgramBuilder()
        cb_listener = pb.class_("t.Cb", interfaces=("okhttp3.Callback",))
        lm = cb_listener.method(
            "onResponse", params=["okhttp3.Call", "okhttp3.Response"]
        )
        body = lm.vcall(lm.param(1), "body", [], returns="okhttp3.ResponseBody")
        lm.vcall(body, "string", [], returns="java.lang.String")
        lm.ret_void()
        cb = pb.class_("t.App")
        m = cb.method("go")
        rb = m.new("okhttp3.Request$Builder", [], into="rb")
        m.vcall(rb, "url", ["https://ok.test/x"], returns="okhttp3.Request$Builder")
        req = m.vcall(rb, "build", [], returns="okhttp3.Request")
        client = m.new("okhttp3.OkHttpClient", [], into="client")
        call = m.vcall(client, "newCall", [req], returns="okhttp3.Call")
        listener = m.new("t.Cb", [], into="cb")
        m.vcall(call, "enqueue", [listener])
        m.ret_void()
        program = pb.build()
        cg = build_callgraph(program)
        dps = scan_demarcation_points(program, cg)
        enqueue = next(d for d in dps if d.spec.method_name == "enqueue")
        assert enqueue.listener_class == "t.Cb"
        # the response seed is onResponse's second parameter
        assert enqueue.response_seeds
        ref, value = enqueue.response_seeds[0]
        assert "onResponse" in ref.method_id
        assert value.name == "p1"

    def test_volley_listener_found_via_request_ctor(self):
        pb = ProgramBuilder()
        cb_listener = pb.class_(
            "t.L", interfaces=("com.android.volley.Response$Listener",)
        )
        lm = cb_listener.method("onResponse", params=["org.json.JSONObject"])
        lm.vcall(lm.param(0), "getString", ["k"], returns="java.lang.String")
        lm.ret_void()
        cb = pb.class_("t.App", superclass="android.app.Activity")
        m = cb.method("go")
        listener = m.new("t.L", [], into="l")
        req = m.new("com.android.volley.toolbox.JsonObjectRequest",
                    [0, "https://v.test/x", listener])
        q = m.scall("com.android.volley.toolbox.Volley", "newRequestQueue",
                    [m.this], returns="com.android.volley.RequestQueue")
        m.vcall(q, "add", [req], returns="com.android.volley.Request")
        m.ret_void()
        program = pb.build()
        cg = build_callgraph(program)
        dps = scan_demarcation_points(program, cg)
        add = next(d for d in dps if d.spec.method_name == "add")
        assert add.listener_class == "t.L"
        # the scan registered the implicit listener edge on the call graph
        assert any(
            "onResponse" in target
            for targets in cg.implicit.values()
            for target, _ in targets
        )


class TestAugmentation:
    def test_forward_slice_pulls_initialization(self):
        """§3.1: 'if an object used in a forward slice is initialized before
        the demarcation point, the slice does not contain the initialization
        parameters' — augmentation pulls them in from the request slice."""
        pb = ProgramBuilder()
        cb = pb.class_("t.App")
        m = cb.method("go")
        # an object initialised BEFORE the DP, then used in response handling
        tag = m.let("tag", "java.lang.String", "prefix-")
        req = m.new("org.apache.http.client.methods.HttpGet",
                    ["https://aug.test/x"])
        client = m.local("client", "org.apache.http.client.HttpClient")
        m.assign(client, None)
        resp = m.vcall(client, "execute", [req],
                       returns="org.apache.http.HttpResponse",
                       on="org.apache.http.client.HttpClient")
        body = m.scall("org.apache.http.util.EntityUtils", "toString", [resp],
                       returns="java.lang.String")
        labeled = m.concat(tag, body)  # uses pre-DP object in the response slice
        m.scall("android.util.Log", "d", ["t", labeled])
        m.ret_void()
        program = pb.build()
        cg = build_callgraph(program)
        slicer = NetworkSlicer(program, cg)
        dp_slices = slicer.slice_dp(slicer.scan()[0])
        texts = [
            str(program.method_by_id(r.method_id).stmt_at(r.index))
            for r in dp_slices.response.stmts
        ]
        assert any("'prefix-'" in t for t in texts), texts


class TestSlicingReport:
    def test_fraction_and_missed_flows_aggregate(self):
        from repro.corpus import build_app

        apk = build_app("linkedin")
        cg = build_callgraph(apk.program)
        from repro.semantics import compute_event_roots, discover_callbacks
        from repro.taint import TaintConfig

        info = discover_callbacks(apk.program, cg)
        roots = compute_event_roots(
            apk.program, cg, [ep.method_id for ep in apk.entrypoints],
            info.boundary_methods,
        )
        slicer = NetworkSlicer(
            apk.program, cg, config=TaintConfig(max_async_hops=1),
            event_roots=roots, linked_returns=info.linked_returns,
        )
        report = slicer.slice_all()
        assert 0 < report.slice_fraction < 1
        # LinkedIn carries intent-fed ad endpoints: the second async hop of
        # each chain is recorded as missed
        assert report.missed_async_flows
        assert len(report.slices) == report.total_statements * 0 + len(report.slices)
        assert all(s.request.stmts or s.response.stmts for s in report.slices)

    def test_custom_registry_restricts_scan(self):
        from repro.corpus import build_app
        from repro.slicing import DPSpec

        apk = build_app("radioreddit")
        cg = build_callgraph(apk.program)
        media_only = DemarcationRegistry(
            (DPSpec("android.media.MediaPlayer", "setDataSource",
                    request="arg0", response="none", method_hint="GET",
                    consumer="media_player"),)
        )
        slicer = NetworkSlicer(apk.program, cg, registry=media_only)
        dps = slicer.scan()
        assert len(dps) == 1
        assert dps[0].spec.class_name == "android.media.MediaPlayer"
