"""The content-addressed result store and the config cache key."""

from __future__ import annotations

import json

import pytest

from repro import AnalysisConfig, Extractocol
from repro.apk.loader import apk_digest, load_apk, save_apk
from repro.core.report import report_to_dict
from repro.service import MetricsRegistry, ResultStore, result_key
from repro.service.store import SCHEMA_VERSION, canonical_json


@pytest.fixture(scope="module")
def diode_report():
    from repro.corpus import build_app

    apk = build_app("diode")
    config = AnalysisConfig()
    return apk, config, Extractocol(config).analyze(apk)


class TestCacheKey:
    def test_stable_across_processes(self):
        # a literal, so a refactor that silently changes key derivation
        # (and would orphan every stored entry) fails loudly here
        assert AnalysisConfig().cache_key() == "46d980e323c1c169"

    def test_execution_knobs_do_not_shard_the_cache(self):
        base = AnalysisConfig()
        for variant in (
            AnalysisConfig(workers=8),
            AnalysisConfig(workers=0),
            AnalysisConfig(executor="process"),
            AnalysisConfig(workers=4, executor="process"),
        ):
            assert variant.cache_key() == base.cache_key()

    def test_semantic_fields_do_shard_the_cache(self):
        base = AnalysisConfig()
        for variant in (
            AnalysisConfig(async_heuristic=False),
            AnalysisConfig(rounds=1),
            AnalysisConfig(use_slicing=False),
            AnalysisConfig(scope_prefixes=("com.kayak",)),
            AnalysisConfig(max_async_hops_override=3),
            AnalysisConfig(model_intents=True),
        ):
            assert variant.cache_key() != base.cache_key()

    def test_worker_count_does_not_change_the_report(self):
        """The contract the shared cache key rests on: serial and parallel
        engines produce byte-identical reports."""
        from repro.corpus import build_app

        apk = build_app("radioreddit")
        serial = Extractocol(AnalysisConfig(workers=1)).analyze(apk)
        parallel = Extractocol(AnalysisConfig(workers=4)).analyze(apk)
        assert json.dumps(report_to_dict(serial), sort_keys=True) == json.dumps(
            report_to_dict(parallel), sort_keys=True
        )


class TestApkDigest:
    def test_digest_stable_across_save_load(self, tmp_path, diode_report):
        apk, _, _ = diode_report
        save_apk(apk, tmp_path / "d.sapk")
        assert apk_digest(load_apk(tmp_path / "d.sapk")) == apk_digest(apk)

    def test_different_apps_different_digests(self):
        from repro.corpus import build_app

        assert apk_digest(build_app("diode")) != apk_digest(build_app("tzm"))


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path, diode_report):
        apk, config, report = diode_report
        store = ResultStore(tmp_path / "store")
        digest, ckey = apk_digest(apk), config.cache_key()
        assert store.get(digest, ckey) is None  # cold miss
        key = store.put(digest, ckey, report)
        assert key == result_key(digest, ckey)
        envelope = store.get(digest, ckey)
        assert envelope["schema"] == SCHEMA_VERSION
        assert envelope["report"] == report_to_dict(report)
        assert envelope["analysis_seconds"] > 0
        assert store.stats() == {
            "hits": 1, "misses": 1, "writes": 1, "entries": 1,
            "schema": SCHEMA_VERSION,
        }

    def test_stored_bytes_identical_to_fresh_serialisation(
        self, tmp_path, diode_report
    ):
        apk, config, report = diode_report
        store = ResultStore(tmp_path / "store")
        key = store.put(apk_digest(apk), config.cache_key(), report)
        on_disk = json.loads(store.path_for(key).read_text())
        fresh = Extractocol(config).analyze(apk)
        assert canonical_json(on_disk["report"]) == canonical_json(
            report_to_dict(fresh)
        )

    def test_get_report_rebuilds_view(self, tmp_path, diode_report):
        apk, config, report = diode_report
        store = ResultStore(tmp_path / "store")
        store.put(apk_digest(apk), config.cache_key(), report)
        rebuilt = store.get_report(apk_digest(apk), config.cache_key())
        assert rebuilt.summary() == report.summary()

    def test_schema_mismatch_is_a_miss(self, tmp_path, diode_report):
        apk, config, report = diode_report
        store = ResultStore(tmp_path / "store")
        key = store.put(apk_digest(apk), config.cache_key(), report)
        envelope = json.loads(store.path_for(key).read_text())
        envelope["schema"] = SCHEMA_VERSION + 1
        store.path_for(key).write_text(json.dumps(envelope))
        assert store.get(apk_digest(apk), config.cache_key()) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, diode_report):
        apk, config, report = diode_report
        store = ResultStore(tmp_path / "store")
        key = store.put(apk_digest(apk), config.cache_key(), report)
        store.path_for(key).write_text("{ torn write")
        assert store.get(apk_digest(apk), config.cache_key()) is None

    def test_no_temp_file_residue(self, tmp_path, diode_report):
        apk, config, report = diode_report
        store = ResultStore(tmp_path / "store")
        store.put(apk_digest(apk), config.cache_key(), report)
        residue = [
            p for p in (tmp_path / "store").rglob("*") if p.suffix == ".tmp"
        ]
        assert residue == []

    def test_list_entries_metadata(self, tmp_path, diode_report):
        apk, config, report = diode_report
        store = ResultStore(tmp_path / "store")
        assert store.list_entries() == []
        key = store.put(apk_digest(apk), config.cache_key(), report)
        entries = store.list_entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["key"] == key
        assert entry["app"] == report.app
        assert entry["apk_digest"] == apk_digest(apk)
        assert entry["config_key"] == config.cache_key()
        assert entry["schema"] == SCHEMA_VERSION
        assert entry["transactions"] == len(report.transactions)
        assert entry["stored_at"] > 0

    def test_list_entries_skips_non_report_envelopes(
        self, tmp_path, diode_report
    ):
        apk, config, report = diode_report
        store = ResultStore(tmp_path / "store")
        store.put(apk_digest(apk), config.cache_key(), report)
        store.put_envelope("diff-cafe", {"diff_schema": 1, "diff": {}})
        (store.objects / "zz").mkdir()
        (store.objects / "zz" / "zz.json").write_text("{ torn")
        assert len(store.entries()) == 3
        assert [e["key"] for e in store.list_entries()] == [
            f"{apk_digest(apk)}-{config.cache_key()}"
        ]

    def test_put_envelope_atomic_and_counted(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = store.put_envelope("diff-beef", {"x": 1})
        assert key == "diff-beef"
        assert json.loads(store.path_for(key).read_text()) == {"x": 1}
        assert store.stats()["writes"] == 1
        assert not [
            p for p in (tmp_path / "store").rglob("*") if p.suffix == ".tmp"
        ]

    def test_metrics_mirrored(self, tmp_path, diode_report):
        apk, config, report = diode_report
        metrics = MetricsRegistry()
        store = ResultStore(tmp_path / "store", metrics=metrics)
        store.get(apk_digest(apk), config.cache_key())
        store.put(apk_digest(apk), config.cache_key(), report)
        store.get(apk_digest(apk), config.cache_key())
        counters = metrics.to_dict()["counters"]
        assert counters["cache_misses"] == 1
        assert counters["cache_hits"] == 1
        assert counters["store_writes"] == 1
