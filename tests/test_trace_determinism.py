"""Trace determinism and pipeline coverage.

The JSONL exporter must be byte-deterministic for a deterministic workload
(span ids hash span paths; timings are opt-in), the parallel engine must
produce the same span *set* as the serial one, and every corpus app's
trace must cover the paper's three phases plus one span per demarcation
point.
"""

from __future__ import annotations

import json

import pytest

from repro import AnalysisConfig, Extractocol
from repro.apk.loader import load_apk, save_apk
from repro.corpus import app_keys, build_app, get_spec
from repro.obs.export import to_jsonl, validate_jsonl
from repro.obs.phases import PHASES, PhaseStats
from repro.obs.tracer import Tracer

PHASE_SPANS = tuple(f"phase:{p}" for p in PHASES)


def _traced_run(apk, config) -> tuple[Tracer, object]:
    tracer = Tracer()
    report = Extractocol(config, tracer=tracer).analyze(apk)
    return tracer, report


class TestDeterminism:
    def test_same_sapk_twice_is_byte_identical(self, tmp_path):
        path = save_apk(build_app("radioreddit"), tmp_path / "rr.sapk")
        texts = []
        for _ in range(2):
            tracer, _ = _traced_run(load_apk(path), AnalysisConfig(workers=1))
            texts.append(to_jsonl(tracer.root))
        assert texts[0] == texts[1]
        validate_jsonl(texts[0])

    def test_workers4_produces_equal_span_set(self, tmp_path):
        path = save_apk(build_app("diode"), tmp_path / "d.sapk")
        serial, _ = _traced_run(load_apk(path), AnalysisConfig(workers=1))
        parallel, _ = _traced_run(load_apk(path), AnalysisConfig(workers=4))
        serial_paths = {s.path for s in serial.root.walk()}
        parallel_paths = {
            s.path
            for s in parallel.root.walk()
            # worker fan-out spans depend on the executor's width (clamped
            # to the core count), not on what was analysed
            if not s.name.startswith("worker-")
        }
        assert serial_paths == parallel_paths

    def test_timings_excluded_by_default(self):
        tracer, _ = _traced_run(
            get_spec("blippex").build_apk(), AnalysisConfig()
        )
        text = to_jsonl(tracer.root)
        assert '"seconds"' not in text
        assert '"seconds"' in to_jsonl(tracer.root, timings=True)


class TestCorpusCoverage:
    @pytest.mark.parametrize("key", app_keys())
    def test_trace_covers_all_phases_and_dps(self, key):
        spec = get_spec(key)
        config = AnalysisConfig(
            async_heuristic=(spec.kind == "closed"),
            scope_prefixes=spec.scope_prefixes,
        )
        tracer, report = _traced_run(spec.build_apk(), config)
        app_span = tracer.root.children[0]
        assert app_span.name == f"analyze:{spec.build_apk().name}" or (
            app_span.name.startswith("analyze:")
        )
        names = [c.name for c in app_span.children]
        for phase_span in PHASE_SPANS:
            assert phase_span in names, f"{key}: missing {phase_span}"
        slicing = next(c for c in app_span.children if c.name == "phase:slicing")
        dp_children = [c for c in slicing.children if c.name.startswith("dp:")]
        assert len(dp_children) == report.demarcation_points
        validate_jsonl(to_jsonl(tracer.root))


class TestPhaseStats:
    def test_report_carries_phase_stats(self):
        _, report = _traced_run(get_spec("blippex").build_apk(), AnalysisConfig())
        stats = report.phase_stats
        assert stats is not None
        assert set(PHASES) <= set(stats.seconds)
        assert stats.total_seconds == pytest.approx(sum(stats.seconds.values()))
        assert stats.counters["demarcation_points"] == report.demarcation_points

    def test_phase_stats_dict_roundtrip_exact(self):
        stats = PhaseStats(
            seconds={"setup": 0.125, "slicing": 1.5},
            counters={"demarcation_points": 3, "taint_stmts": 42},
        )
        rebuilt = PhaseStats.from_dict(stats.to_dict())
        assert rebuilt == stats
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            stats.to_dict(), sort_keys=True
        )

    def test_report_to_dict_omits_phase_stats_by_default(self):
        from repro.core.report import report_from_dict, report_to_dict

        _, report = _traced_run(get_spec("blippex").build_apk(), AnalysisConfig())
        default = report_to_dict(report)
        assert "phase_stats" not in default
        opted = report_to_dict(report, include_phase_stats=True)
        assert opted["phase_stats"] == report.phase_stats.to_dict()
        rebuilt = report_from_dict(opted)
        assert rebuilt.phase_stats == report.phase_stats

    def test_store_envelope_carries_phase_stats(self, tmp_path):
        from repro.service.store import ResultStore

        _, report = _traced_run(get_spec("blippex").build_apk(), AnalysisConfig())
        store = ResultStore(tmp_path)
        key = store.put("digest", "cfg", report)
        envelope = store.load(key)
        assert envelope["phase_stats"] == report.phase_stats.to_dict()
        # the report payload itself stays profile-free (byte-identity
        # contract of the content-addressed store)
        assert "phase_stats" not in envelope["report"]


class TestCliTrace:
    def test_analyze_trace_flag_writes_valid_jsonl(self, capsys, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "trace.jsonl"
        assert main(["analyze", "blippex", "--trace", str(out_file)]) == 0
        events = validate_jsonl(out_file.read_text())
        assert any(e["name"] == "phase:slicing" for e in events)

    def test_trace_verb_flame_output(self, capsys):
        from repro.cli import main

        assert main(["trace", "blippex", "--flame"]) == 0
        out = capsys.readouterr().out
        assert any(
            ";phase:signatures" in line for line in out.splitlines()
        )
