"""Property-based tests (hypothesis) on core invariants:

* random generated apps: IR validity, printer↔parser round-trip,
  obfuscation invariance, static analysis ↔ ground truth ↔ fuzzing,
* signature language: strings sampled from a term always match its regex,
* abstract-value merging is idempotent and commutative,
* byte accounting fractions always partition the byte count.
"""

from __future__ import annotations

import random
import re
import string

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import AnalysisConfig, Extractocol
from repro.apk import obfuscate
from repro.apk.model import TriggerKind
from repro.corpus.generator import GenApp, GenEndpoint, build_generated_app
from repro.ir import validate_program
from repro.ir.parser import parse_program
from repro.ir.printer import print_program
from repro.runtime import ManualUiFuzzer
from repro.semantics.avals import NumAV, canon, merge_avals
from repro.signature.lang import Alt, Concat, Const, Rep, Term, Unknown, alt, concat, rep
from repro.signature.matcher import ByteAccount, account_query_string
from repro.signature.regex import compile_regex

# --------------------------------------------------------------- strategies
_names = st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=8)
_paths = st.lists(_names, min_size=1, max_size=3).map(
    lambda parts: "/" + "/".join(parts)
)
_value_kinds = st.sampled_from(
    ["const:fixed", "int:7", "input", "clock", "device", "field:token"]
)


@st.composite
def endpoints(draw, index: int = 0):
    name = f"ep{draw(st.integers(0, 10**6))}"
    method = draw(st.sampled_from(["GET", "GET", "POST", "PUT", "DELETE"]))
    query = tuple(
        (draw(_names), draw(_value_kinds))
        for _ in range(draw(st.integers(0, 2)))
    )
    has_body = method != "GET" and draw(st.booleans())
    body = (
        tuple((draw(_names), draw(_value_kinds)) for _ in range(2))
        if has_body
        else ()
    )
    reads = tuple({draw(_names) for _ in range(draw(st.integers(0, 2)))})
    response = {k: f"value-{k}" for k in reads} if reads else None
    return GenEndpoint(
        name=name,
        method=method,
        path=draw(_paths),
        query=query,
        body=body,
        body_format="form" if body else None,
        response=response,
        reads=reads,
        trigger=draw(st.sampled_from([TriggerKind.UI, TriggerKind.UI,
                                      TriggerKind.TIMER])),
        side_effect=draw(st.booleans()) and draw(st.booleans()),
    )


@st.composite
def gen_apps(draw):
    # names become method names (ep_<name>), so they must be unique too
    eps = draw(st.lists(endpoints(), min_size=1, max_size=4,
                        unique_by=(lambda e: e.path, lambda e: e.name)))
    return GenApp(
        key="prop",
        name="PropApp",
        kind="open",
        package="com.prop.app",
        host="api.prop.test",
        endpoints=eps,
        filler_methods=draw(st.integers(0, 3)),
    )


_slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestGeneratedAppProperties:
    @_slow
    @given(gen_apps())
    def test_ir_valid_and_roundtrips(self, gen):
        spec = build_generated_app(gen)
        apk = spec.build_apk()
        assert validate_program(apk.program) == []
        text = print_program(apk.program)
        assert print_program(parse_program(text)) == text

    @_slow
    @given(gen_apps())
    def test_static_analysis_matches_truth(self, gen):
        spec = build_generated_app(gen)
        report = Extractocol(AnalysisConfig(async_heuristic=False)).analyze(
            spec.build_apk()
        )
        assert len(report.transactions) == spec.truth.count(visible_to="static")

    @_slow
    @given(gen_apps())
    def test_obfuscation_invariance(self, gen):
        spec = build_generated_app(gen)
        cfg = AnalysisConfig(async_heuristic=False)
        plain = Extractocol(cfg).analyze(spec.build_apk())
        obf = Extractocol(cfg).analyze(obfuscate(spec.build_apk()).apk)
        assert plain.unique_uri_signatures() == obf.unique_uri_signatures()

    @_slow
    @given(gen_apps())
    def test_fuzz_traffic_matches_signatures(self, gen):
        from repro.signature.matcher import transaction_matches

        spec = build_generated_app(gen)
        report = Extractocol(AnalysisConfig(async_heuristic=False)).analyze(
            spec.build_apk()
        )
        result = ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
        assert not result.faults, result.faults
        for captured in result.trace:
            assert any(
                transaction_matches(t, captured.request.method,
                                    captured.request.url,
                                    captured.request.body)
                for t in report.transactions
            ), str(captured)


# ------------------------------------------------------- term sampling/regex
def sample_term(term: Term, rng: random.Random) -> str:
    """Draw a concrete string from a signature term's language."""
    if isinstance(term, Const):
        return term.text
    if isinstance(term, Unknown):
        return {
            "int": str(rng.randrange(1000)),
            "float": f"{rng.randrange(100)}.{rng.randrange(10)}",
            "bool": rng.choice(["true", "false"]),
        }.get(term.kind, "sampled-" + str(rng.randrange(100)))
    if isinstance(term, Concat):
        return "".join(sample_term(p, rng) for p in term.parts)
    if isinstance(term, Alt):
        return sample_term(rng.choice(term.options), rng)
    if isinstance(term, Rep):
        return "".join(
            sample_term(term.body, rng) for _ in range(rng.randrange(3))
        )
    raise TypeError(type(term))


string_terms = st.deferred(
    lambda: st.one_of(
        st.builds(Const, st.text(alphabet="ab/?=&.x", max_size=6)),
        st.builds(Unknown, st.sampled_from(["str", "int", "bool"])),
        st.builds(lambda a, b: concat(a, b), string_terms, string_terms),
        st.builds(lambda a, b: alt(a, b), string_terms, string_terms),
        st.builds(rep, st.builds(Const, st.text(alphabet="xy", min_size=1,
                                                max_size=3))),
    )
)


class TestSignatureSampling:
    @settings(max_examples=200, deadline=None)
    @given(string_terms, st.integers(0, 2**32))
    def test_sampled_strings_match_their_regex(self, term, seed):
        rng = random.Random(seed)
        text = sample_term(term, rng)
        assert compile_regex(term).match(text), (str(term), text)


class TestMergeProperties:
    avals = st.one_of(
        st.builds(Const, st.text(alphabet="abc", max_size=4)),
        st.builds(Unknown, st.sampled_from(["str", "int", "any"])),
        st.builds(NumAV, st.integers(-5, 5)),
    )

    @settings(max_examples=100, deadline=None)
    @given(avals)
    def test_merge_idempotent(self, a):
        assert canon(merge_avals(a, a)) == canon(a)

    @settings(max_examples=100, deadline=None)
    @given(avals, avals)
    def test_merge_commutative_in_language(self, a, b):
        """merge(a,b) and merge(b,a) denote the same set of strings (Alt
        option order may differ, so compare canonical option sets)."""

        def parts(v):
            term = merge_avals(a, b) if v == 0 else merge_avals(b, a)
            if isinstance(term, Alt):
                return frozenset(str(o) for o in term.options)
            return frozenset({canon(term)})

        assert parts(0) == parts(1)


class TestByteAccountProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.tuples(st.text(alphabet="abc", min_size=1, max_size=4),
                           st.text(alphabet="xyz", max_size=6)),
                 max_size=5),
        st.sets(st.text(alphabet="abc", min_size=1, max_size=4), max_size=4),
    )
    def test_fractions_partition(self, pairs, known):
        qs = "&".join(f"{k}={v}" for k, v in pairs)
        acct = account_query_string(known, qs)
        rk, rv, rn = acct.fractions()
        if acct.total:
            assert abs(rk + rv + rn - 1.0) < 1e-9
        else:
            assert (rk, rv, rn) == (0.0, 0.0, 0.0)

    def test_add_accumulates(self):
        a = ByteAccount(1, 2, 3)
        b = ByteAccount(4, 5, 6)
        a.add(b)
        assert (a.rk, a.rv, a.rn) == (5, 7, 9)
