"""End-to-end pipeline tests: Extractocol.analyze on fixture APKs."""

from __future__ import annotations

import pytest
from fixtures_http import CLS, build_mini_reddit

from repro import AnalysisConfig, Extractocol
from repro.apk import obfuscate


class TestAnalyze:
    @pytest.fixture(scope="class")
    def report(self):
        return Extractocol().analyze(build_mini_reddit())

    def test_transactions_found(self, report):
        assert len(report.transactions) == 2
        assert report.demarcation_points == 2

    def test_stats_row(self, report):
        stats = report.stats()
        assert stats.get == 2
        assert stats.post == 0
        assert stats.pairs == 1  # only the first txn's response is parsed

    def test_dependency_edge(self, report):
        assert len(report.dependencies) == 1
        dep = report.dependencies[0]
        assert dep.dst_field == "uri"
        assert dep.src_path.endswith("after")

    def test_slice_fraction_is_positive_fraction(self, report):
        assert 0 < report.slice_fraction <= 1

    def test_summary_renders(self, report):
        text = report.summary()
        assert "transactions: 2" in text

    def test_uri_signatures_match_traffic_shapes(self, report):
        import re

        sigs = report.unique_uri_signatures()
        assert any(
            re.match(s, "http://www.reddit.com/r/pics.json?limit=25") for s in sigs
        )


class TestObfuscationInvariance:
    def test_same_signatures_after_proguard(self):
        """§5.1: 'we obfuscate their APKs using ProGuard and verify that the
        same results hold as non-obfuscated APKs.'"""
        plain = Extractocol().analyze(build_mini_reddit())
        obfuscated = obfuscate(build_mini_reddit()).apk
        obf_report = Extractocol().analyze(obfuscated)
        assert plain.unique_uri_signatures() == obf_report.unique_uri_signatures()
        assert len(plain.transactions) == len(obf_report.transactions)
        assert len(plain.dependencies) == len(obf_report.dependencies)


class TestScoping:
    def test_scope_prefix_filters_foreign_transactions(self):
        report = Extractocol(
            AnalysisConfig(scope_prefixes=("com.example.reddit",))
        ).analyze(build_mini_reddit())
        assert len(report.transactions) == 2
        report2 = Extractocol(
            AnalysisConfig(scope_prefixes=("com.other",))
        ).analyze(build_mini_reddit())
        assert len(report2.transactions) == 0


class TestAblation:
    def test_no_slicing_gives_same_transactions(self):
        with_slicing = Extractocol(AnalysisConfig(use_slicing=True)).analyze(
            build_mini_reddit()
        )
        without = Extractocol(AnalysisConfig(use_slicing=False)).analyze(
            build_mini_reddit()
        )
        assert with_slicing.unique_uri_signatures() == without.unique_uri_signatures()

    def test_single_round_misses_cross_event_dependency(self):
        """With one global round and an adversarial entry-point order —
        loadMore evaluated before parseListing has populated mAfter — the
        dependency tag is absent; a second round recovers it (§3.4:
        'multiple iterations until it does not discover new dependencies')."""
        apk = build_mini_reddit()
        apk.entrypoints.reverse()  # loadMore first
        report1 = Extractocol(AnalysisConfig(rounds=1)).analyze(apk)
        assert len(report1.dependencies) == 0
        apk2 = build_mini_reddit()
        apk2.entrypoints.reverse()
        report2 = Extractocol(AnalysisConfig(rounds=2)).analyze(apk2)
        assert len(report2.dependencies) == 1
