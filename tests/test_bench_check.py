"""Bench regression-gate tests: structural shape detection, metric
extraction with better-directions, threshold semantics (the acceptance
case — an injected >=25% latency regression must fail), host-fingerprint
warnings including the legacy-meta fallback, and the CLI exit codes."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.benchcheck import (
    bench_fingerprint,
    bench_kind,
    candidate_from_run,
    compare_benches,
    extract_metrics,
    load_bench,
    render_check,
)
from repro.obs.fleet import host_fingerprint

BATCH = {
    "meta": {"host": host_fingerprint(), "targets": ["diode", "ted"]},
    "by_workers": {
        "1": {"wall_s": 10.0, "apps_per_sec": 3.4, "p50_s": 0.25,
              "p99_s": 0.5, "work_steals": 0, "analyses_run": 34},
        "2": {"wall_s": 6.0, "apps_per_sec": 5.6, "p50_s": 0.26,
              "p99_s": 0.55, "work_steals": 3, "analyses_run": 34},
    },
}

CORPUS = {
    "meta": {"host": host_fingerprint()},
    "by_size": {
        "100": {"corpus": "synth:all*100@7", "gen_apps_per_sec": 200.0,
                "apps_per_sec": 12.0, "p50_ms": 40.0, "p99_ms": 90.0},
    },
}

PIPELINE = {
    "meta": {"host": host_fingerprint()},
    "apps": {"ted": {"serial_s": 1.0, "parallel_s": 0.5, "speedup": 2.0,
                     "identical_reports": True}},
    "aggregate": {"serial_s": 1.0, "parallel_s": 0.5, "speedup": 2.0,
                  "all_identical": True},
}


SEARCH = {
    "meta": {"host": host_fingerprint(), "spec": "synth:all*500@7",
             "queries": {"host": "host:api.example.test"}, "repeats": 200},
    "by_query": {
        "host": {"query": "host:api.example.test", "hits": 6,
                 "p50_ms": 0.01, "p99_ms": 0.03, "qps": 100000.0},
        "like": {"query": "like:abcd1234/0", "hits": 280,
                 "p50_ms": 3.5, "p99_ms": 5.2, "qps": 280.0},
    },
}


class TestShapes:
    def test_bench_kind(self):
        assert bench_kind(BATCH) == "batch_scale"
        assert bench_kind(CORPUS) == "corpus_scale"
        assert bench_kind(PIPELINE) == "pipeline"
        assert bench_kind(SEARCH) == "search"
        assert bench_kind({"nope": 1}) is None

    def test_extract_search_metrics(self):
        metrics = extract_metrics(SEARCH)
        assert metrics["by_query.host.p50_ms"] == (0.01, "lower")
        assert metrics["by_query.like.qps"] == (280.0, "higher")
        # hits is a workload property, not a performance metric
        assert "by_query.host.hits" not in metrics

    def test_search_latency_regression_fails(self):
        worse = copy.deepcopy(SEARCH)
        worse["by_query"]["like"]["p99_ms"] = 5.2 * 1.5
        result = compare_benches(SEARCH, worse)
        assert not result.ok
        assert [c.metric for c in result.regressions] == [
            "by_query.like.p99_ms"
        ]

    def test_extract_batch_metrics(self):
        metrics = extract_metrics(BATCH)
        assert metrics["by_workers.1.apps_per_sec"] == (3.4, "higher")
        assert metrics["by_workers.2.p99_s"] == (0.55, "lower")
        # wall_s has no better-direction (load-dependent); not extracted
        assert "by_workers.1.wall_s" not in metrics

    def test_extract_corpus_metrics(self):
        metrics = extract_metrics(CORPUS)
        assert metrics["by_size.100.gen_apps_per_sec"] == (200.0, "higher")
        assert metrics["by_size.100.p50_ms"] == (40.0, "lower")

    def test_extract_pipeline_metrics(self):
        metrics = extract_metrics(PIPELINE)
        assert metrics["aggregate.speedup"] == (2.0, "higher")
        assert metrics["apps.ted.parallel_s"] == (0.5, "lower")

    def test_load_bench_rejects_unknown_shape(self, tmp_path):
        good = tmp_path / "ok.json"
        good.write_text(json.dumps(BATCH))
        assert bench_kind(load_bench(good)) == "batch_scale"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError):
            load_bench(bad)


class TestCompare:
    def test_self_compare_is_clean(self):
        result = compare_benches(BATCH, copy.deepcopy(BATCH))
        assert result.ok
        assert result.kind == "batch_scale"
        assert len(result.checks) == 6  # 2 rows x 3 gated metrics
        assert result.fingerprint_warnings == []

    def test_injected_latency_regression_fails(self):
        # The acceptance case: latency inflated by >=25% must regress.
        candidate = copy.deepcopy(BATCH)
        for row in candidate["by_workers"].values():
            row["p50_s"] = round(row["p50_s"] * 1.35, 4)
            row["p99_s"] = round(row["p99_s"] * 1.35, 4)
        result = compare_benches(BATCH, candidate)
        assert not result.ok
        regressed = {c.metric for c in result.regressions}
        assert regressed == {
            "by_workers.1.p50_s", "by_workers.1.p99_s",
            "by_workers.2.p50_s", "by_workers.2.p99_s",
        }

    def test_latency_within_threshold_passes(self):
        candidate = copy.deepcopy(BATCH)
        for row in candidate["by_workers"].values():
            row["p50_s"] = round(row["p50_s"] * 1.2, 4)
        assert compare_benches(BATCH, candidate).ok

    def test_throughput_drop_fails(self):
        candidate = copy.deepcopy(BATCH)
        candidate["by_workers"]["2"]["apps_per_sec"] = 5.6 * 0.6
        result = compare_benches(BATCH, candidate)
        assert [c.metric for c in result.regressions] == [
            "by_workers.2.apps_per_sec"
        ]

    def test_throughput_improvement_never_regresses(self):
        candidate = copy.deepcopy(BATCH)
        candidate["by_workers"]["1"]["apps_per_sec"] = 340.0
        candidate["by_workers"]["1"]["p50_s"] = 0.0001
        assert compare_benches(BATCH, candidate).ok

    def test_custom_threshold(self):
        candidate = copy.deepcopy(BATCH)
        candidate["by_workers"]["1"]["p50_s"] = 0.25 * 1.1
        assert compare_benches(BATCH, candidate, threshold=0.25).ok
        assert not compare_benches(BATCH, candidate, threshold=0.05).ok

    def test_metric_intersection_only(self):
        # A candidate with just one worker row compares only that row.
        candidate = {
            "meta": {"host": host_fingerprint()},
            "by_workers": {"2": dict(BATCH["by_workers"]["2"])},
        }
        result = compare_benches(BATCH, candidate)
        assert {c.metric.split(".")[1] for c in result.checks} == {"2"}


class TestFingerprints:
    def test_mismatch_warns_loudly(self):
        candidate = copy.deepcopy(BATCH)
        candidate["meta"]["host"] = dict(
            host_fingerprint(), usable_cpus=64, python="3.99.0"
        )
        result = compare_benches(BATCH, candidate)
        assert len(result.fingerprint_warnings) == 2
        text = render_check(result)
        assert "!! HOST FINGERPRINT MISMATCH" in text
        assert "usable_cpus" in text

    def test_legacy_meta_fallback(self):
        legacy = {
            "meta": {"python": "3.11.7", "platform": "Linux-old",
                     "cpu_count": 1, "usable_cpus": 1},
            "by_workers": {"1": {"apps_per_sec": 3.0}},
        }
        fp = bench_fingerprint(legacy)
        assert fp["python"] == "3.11.7"
        assert "machine" not in fp  # legacy meta never had it
        # the missing key must not count as a mismatch
        result = compare_benches(legacy, copy.deepcopy(legacy))
        assert result.fingerprint_warnings == []

    def test_no_meta_at_all(self):
        bare = {"by_workers": {"1": {"apps_per_sec": 3.0}}}
        assert bench_fingerprint(bare) == {}
        assert compare_benches(bare, bare).fingerprint_warnings == []


class TestCandidateFromRun:
    def test_ledger_record_becomes_batch_shape(self):
        record = {
            "run_id": "abc123", "workers": 2, "host": host_fingerprint(),
            "wall_s": 5.0, "apps_per_sec": 4.0, "p50_s": 0.3, "p99_s": 0.6,
            "work_steals": 1, "analyses_run": 20,
        }
        candidate = candidate_from_run(record)
        assert bench_kind(candidate) == "batch_scale"
        assert candidate["by_workers"]["2"]["apps_per_sec"] == 4.0
        assert candidate["meta"]["source"] == "run-ledger:abc123"
        # comparable against the baseline's matching worker row
        result = compare_benches(BATCH, candidate)
        assert {c.metric.split(".")[1] for c in result.checks} == {"2"}


class TestCli:
    def _write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_candidate_file_pass_and_fail(self, tmp_path, capsys):
        from repro.cli import main

        baseline = self._write(tmp_path, "BENCH_batch_scale.json", BATCH)
        good = self._write(tmp_path, "cand_ok.json", BATCH)
        assert main(["bench", "check", baseline, "--candidate", good]) == 0
        capsys.readouterr()

        slow = copy.deepcopy(BATCH)
        for row in slow["by_workers"].values():
            row["p50_s"] *= 1.5
            row["p99_s"] *= 1.5
        bad = self._write(tmp_path, "cand_bad.json", slow)
        assert main(["bench", "check", baseline, "--candidate", bad]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_warn_only_downgrades_exit(self, tmp_path, capsys):
        from repro.cli import main

        baseline = self._write(tmp_path, "base.json", BATCH)
        slow = copy.deepcopy(BATCH)
        for row in slow["by_workers"].values():
            row["p99_s"] *= 2.0
        bad = self._write(tmp_path, "cand.json", slow)
        assert main([
            "bench", "check", baseline, "--candidate", bad, "--warn-only"
        ]) == 0
        assert "WARN-ONLY" in capsys.readouterr().err

    def test_run_ledger_candidate(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.ledger import RunLedger, RunRecord

        record = RunRecord.from_batch(
            run_id="ledger0cand1",
            label="x",
            records=[{"target": "a", "status": "done", "cache_hit": False,
                      "seconds": 0.25}],
            started_unix=0.0,
            wall_s=0.294,  # ~3.4 apps/s for 1 target: matches baseline row 1
            workers=1,
        )
        RunLedger(tmp_path).append(record)
        baseline = self._write(tmp_path, "base.json", BATCH)
        code = main([
            "bench", "check", baseline,
            "--run", "ledger0cand1", "--store", str(tmp_path), "--json",
        ])
        data = json.loads(capsys.readouterr().out)
        assert data["results"][0]["kind"] == "batch_scale"
        assert code in (0, 1)  # verdict depends on synthetic numbers

    def test_json_output_shape(self, tmp_path, capsys):
        from repro.cli import main

        baseline = self._write(tmp_path, "base.json", BATCH)
        cand = self._write(tmp_path, "cand.json", BATCH)
        assert main([
            "bench", "check", baseline, "--candidate", cand, "--json"
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        result = data["results"][0]
        assert result["ok"] is True
        assert {c["metric"] for c in result["checks"]} >= {
            "by_workers.1.apps_per_sec"
        }


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
