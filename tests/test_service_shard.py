"""Tests for the process-sharded batch engine (`repro.service.shard`), the
store's lease protocol, and the scheduler's non-blocking retry.

Contracts: a sharded batch writes byte-identical envelopes to a
thread-mode batch; every batch entry is reported exactly once no matter
which worker steals it; concurrent analyses of the same result key are
deduplicated through lease files; and a retrying job never head-of-line
blocks the jobs queued behind its backoff.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.service import JobScheduler, JobStatus, ResultStore
from repro.service.shard import ShardRecord, run_sharded_batch, shard_of
from repro.service.store import canonical_json

TARGETS = ["diode", "ted", "tzm"]


# ------------------------------------------------------------------ sharding
def test_shards_partition_the_targets():
    targets = [f"t{i}" for i in range(11)]
    seen: list[tuple[int, object]] = []
    for w in range(4):
        shard = shard_of(targets, w, 4)
        assert all(i % 4 == w for i, _ in shard)
        seen.extend(shard)
    assert sorted(seen) == list(enumerate(targets))


def test_sharded_batch_matches_thread_batch_byte_identically(tmp_path):
    records = run_sharded_batch(tmp_path / "proc", TARGETS, workers=2)
    assert [r.status for r in records] == ["done"] * len(TARGETS)
    assert [r.target for r in records] == TARGETS  # input order
    assert not any(r.cache_hit for r in records)

    sched = JobScheduler(ResultStore(tmp_path / "thread"), workers=2,
                         executor="thread")
    try:
        sched.run_batch(TARGETS)
    finally:
        sched.shutdown()

    proc_store = ResultStore(tmp_path / "proc")
    thread_store = ResultStore(tmp_path / "thread")
    assert proc_store.entries() == thread_store.entries()
    for key in proc_store.entries():
        a, b = proc_store.load(key), thread_store.load(key)
        assert canonical_json(a["report"]) == canonical_json(b["report"]), key


def test_warm_sharded_batch_is_all_cache_hits(tmp_path):
    run_sharded_batch(tmp_path / "s", TARGETS, workers=2)
    metrics = MetricsRegistry()
    records = run_sharded_batch(tmp_path / "s", TARGETS, workers=2,
                                metrics=metrics)
    assert all(r.cache_hit and r.status == "done" for r in records)
    counters = metrics.to_dict()["counters"]
    assert counters.get("analyses_run", 0) == 0
    assert counters["cache_hits_batch"] == len(TARGETS)


def test_duplicate_targets_share_one_analysis(tmp_path):
    """Two batch entries for the same app resolve to the same result key;
    the lease protocol must collapse them onto one analysis."""
    metrics = MetricsRegistry()
    records = run_sharded_batch(tmp_path / "s", ["diode", "diode"],
                                workers=2, metrics=metrics)
    assert [r.status for r in records] == ["done", "done"]
    assert records[0].result_key == records[1].result_key
    assert metrics.to_dict()["counters"]["analyses_run"] == 1
    assert sum(r.cache_hit for r in records) == 1
    assert len(ResultStore(tmp_path / "s").entries()) == 1


def test_unresolvable_target_fails_its_record_only(tmp_path):
    records = run_sharded_batch(
        tmp_path / "s", ["diode", "no-such-app"], workers=2
    )
    by_target = {r.target: r for r in records}
    assert by_target["diode"].status == "done"
    assert by_target["no-such-app"].status == "failed"
    assert "LookupError" in by_target["no-such-app"].error


def test_failed_record_carries_structured_error_detail(tmp_path):
    """Beyond the legacy one-line ``error`` string, failures expose the
    exception class, its message, and the worker-side traceback — what a
    fleet operator needs to triage without re-running the target."""
    records = run_sharded_batch(tmp_path / "s", ["no-such-app"], workers=1)
    record = records[0]
    assert record.error_type == "LookupError"
    assert record.error_message  # human text, no class prefix
    assert not record.error_message.startswith("LookupError")
    assert record.error == f"LookupError: {record.error_message}"
    assert "Traceback (most recent call last)" in (record.traceback or "")
    assert "LookupError" in record.traceback
    payload = record.to_dict()
    assert payload["error_type"] == "LookupError"
    assert payload["error_message"] == record.error_message
    assert payload["traceback"] == record.traceback


def test_done_record_carries_phase_seconds(tmp_path):
    """Successful analyses report per-phase wall seconds so the fleet can
    aggregate phase histograms without reopening stored reports."""
    records = run_sharded_batch(tmp_path / "s", ["diode"], workers=1)
    record = records[0]
    assert record.status == "done"
    assert "slicing" in record.phase_seconds
    assert all(v >= 0 for v in record.phase_seconds.values())
    assert record.error_type is None and record.error_message is None
    assert record.to_dict()["phase_seconds"] == record.phase_seconds


def test_sharded_batch_replays_job_spans(tmp_path):
    tracer = Tracer()
    root = tracer.span("batch")
    run_sharded_batch(tmp_path / "s", TARGETS, workers=2, span=root)
    names = [c.name for c in root.children]
    assert names == [f"job:{t}" for t in TARGETS]
    assert all(c.attrs["status"] == "done" for c in root.children)


def test_sharded_batch_leaves_no_leases(tmp_path):
    run_sharded_batch(tmp_path / "s", TARGETS, workers=2)
    store = ResultStore(tmp_path / "s")
    assert not list(store.leases.glob("*.lease"))


def test_run_batch_routes_by_executor(tmp_path):
    """JobScheduler.run_batch must produce equivalent record dicts from
    both engines (the CLI renders either shape)."""
    keys = {"target", "label", "status", "cache_hit", "attempts",
            "seconds", "result_key", "error"}
    for executor in ("process", "thread"):
        sched = JobScheduler(ResultStore(tmp_path / executor), workers=2,
                             executor=executor)
        try:
            records = sched.run_batch(["diode", "ted"])
        finally:
            sched.shutdown()
        assert [r["target"] for r in records] == ["diode", "ted"]
        assert all(keys <= set(r) for r in records), executor
        assert all(r["status"] == "done" for r in records)
        assert sched.metrics.counter("analyses_run").value == 2


def test_run_batch_rejects_unknown_target_upfront(tmp_path):
    sched = JobScheduler(ResultStore(tmp_path / "s"), executor="thread")
    try:
        with pytest.raises(LookupError):
            sched.run_batch(["diode", "definitely-not-an-app"])
    finally:
        sched.shutdown()


# -------------------------------------------------------------------- leases
class TestLeases:
    def test_claim_is_exclusive_then_released(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        assert store.claim("k1", owner="a")
        assert not store.claim("k1", owner="b")
        holder = store.lease_holder("k1")
        assert holder["owner"] == "a"
        store.release("k1")
        assert store.lease_holder("k1") is None
        assert store.claim("k1", owner="b")

    def test_release_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.release("never-claimed")
        assert store.claim("never-claimed")

    def test_dead_holder_lease_is_broken(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "s")
        assert store.claim("k", owner="dead-process")

        import os as os_mod

        def dead(pid, sig):
            raise ProcessLookupError(pid)

        monkeypatch.setattr(os_mod, "kill", dead)
        assert store.claim("k", owner="successor")
        assert store.lease_holder("k")["owner"] == "successor"

    def test_expired_lease_is_broken_by_ttl(self, tmp_path):
        store = ResultStore(tmp_path / "s", lease_ttl=0.05)
        assert store.claim("k", owner="slow")
        time.sleep(0.1)
        assert store.claim("k", owner="successor")

    def test_live_lease_is_not_stolen(self, tmp_path):
        store = ResultStore(tmp_path / "s")  # default 600s TTL, our pid
        assert store.claim("k")
        assert not store.claim("k")

    def test_corrupt_lease_respects_settle_window(self, tmp_path):
        store = ResultStore(tmp_path / "s", lease_ttl=0.05)
        store.leases.mkdir(parents=True, exist_ok=True)
        store.lease_path("k").write_text("not json at all")
        assert not store.claim("k")  # too fresh to judge
        time.sleep(0.1)
        assert store.claim("k")  # settled past the TTL: stale

    def test_concurrent_claimants_exactly_one_winner(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        wins: list[int] = []
        barrier = threading.Barrier(8)

        def contend(i: int) -> None:
            barrier.wait()
            if store.claim("hot", owner=f"t{i}"):
                wins.append(i)

        threads = [threading.Thread(target=contend, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


# --------------------------------------------------- non-blocking retry/backoff
class FlakyOnce:
    """Fails the first call for a chosen app, succeeds otherwise."""

    def __init__(self, flaky_app: str):
        self.flaky_app = flaky_app
        self.failed = False

    def __call__(self, apk, config):
        if apk.name and self.flaky_app in apk.name.lower() and not self.failed:
            self.failed = True
            raise ValueError("injected transient failure")
        from repro import Extractocol

        return Extractocol(config).analyze(apk)


def test_retry_backoff_does_not_block_the_queue(tmp_path):
    """Regression for the head-of-line blocking retry: with ONE worker and
    a long backoff, a job queued behind a failing job must complete while
    the failure waits out its backoff, not after it."""
    backoff = 1.5
    sched = JobScheduler(
        ResultStore(tmp_path / "s"),
        workers=1,
        retries=1,
        backoff=backoff,
        analyzer=FlakyOnce("diode"),
    )
    try:
        t0 = time.monotonic()
        flaky = sched.submit_target("diode")
        behind = sched.submit_target("tzm")
        assert behind.wait(timeout=backoff)  # finishes DURING the backoff
        behind_done = time.monotonic() - t0
        assert behind.status is JobStatus.DONE
        assert behind_done < backoff, (
            f"queued job waited {behind_done:.2f}s — head-of-line blocked "
            f"by the {backoff}s retry backoff"
        )
        assert flaky.wait(timeout=30)
        assert flaky.status is JobStatus.DONE
        assert flaky.attempts == 2
        assert sched.metrics.to_dict()["counters"]["jobs_retried"] == 1
    finally:
        sched.shutdown()


def test_drain_shutdown_still_finishes_backed_off_retry(tmp_path):
    """shutdown(drain=True) must not strand a job waiting out its backoff:
    the pending retry is requeued immediately and completes."""
    sched = JobScheduler(
        ResultStore(tmp_path / "s"),
        workers=1,
        retries=1,
        backoff=30.0,  # far longer than the test: drain must skip it
        analyzer=FlakyOnce("diode"),
    )
    flaky = sched.submit_target("diode")
    # wait until the first attempt failed and the retry timer is armed
    deadline = time.monotonic() + 10
    while not sched._retry_pending and time.monotonic() < deadline:
        time.sleep(0.01)
    assert sched._retry_pending
    sched.shutdown(drain=True, timeout=30)
    assert flaky.status is JobStatus.DONE
    assert flaky.attempts == 2


def test_no_drain_shutdown_cancels_backed_off_retry(tmp_path):
    sched = JobScheduler(
        ResultStore(tmp_path / "s"),
        workers=1,
        retries=1,
        backoff=30.0,
        analyzer=FlakyOnce("diode"),
    )
    flaky = sched.submit_target("diode")
    deadline = time.monotonic() + 10
    while not sched._retry_pending and time.monotonic() < deadline:
        time.sleep(0.01)
    assert sched._retry_pending
    sched.shutdown(drain=False, timeout=30)
    assert flaky.status is JobStatus.CANCELLED


def test_shard_record_round_trips_through_queue_payload():
    record = ShardRecord(index=3, target="ted", shard=1, worker=0,
                        stolen=True, label="ted", attempts=2, seconds=0.5)
    payload = json.loads(json.dumps(record.to_dict()))
    clone = ShardRecord(**payload)
    assert clone == record
