"""Every lint rule id is provably reachable: one deliberately broken IR
fixture per rule in :data:`repro.lint.diagnostics.RULES`, plus the
machine-readability contract (deterministic order, dict round-trip, JSONL
schema validation)."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.classes import ClassDef
from repro.ir.method import Method, make_sig
from repro.ir.program import Program
from repro.ir.statements import AssignStmt, IdentityStmt, InvokeStmt, ReturnStmt
from repro.ir.types import INT, VOID, class_t
from repro.ir.values import IntConst, InvokeExpr, Local, MethodSig, NewExpr, ParamRef
from repro.lint import (
    RULES,
    Diagnostic,
    Severity,
    findings_to_jsonl,
    lint_program,
    make_finding,
    sort_findings,
    validate_findings_jsonl,
)
from repro.lint.dataflow import dataflow_program
from repro.lint.signature import signature_report
from repro.lint.soundness import soundness_program
from repro.lint.typecheck import typecheck_program


def _typecheck(pb: ProgramBuilder):
    findings, _ = typecheck_program(pb.build())
    return findings


def _dataflow(pb: ProgramBuilder):
    program = pb.build()
    _, cfg_unsafe = typecheck_program(program)
    return dataflow_program(program, cfg_unsafe)


# ---------------------------------------------------------------------------
# IR0xx — structural + typechecker fixtures.


def fx_ir001():
    # An empty, unsealed body (seal() would pad it with a return).
    program = Program()
    cls = ClassDef("app.A")
    program.add_class(cls)
    cls.add_method(Method(make_sig("app.A", "empty", (), "void"), is_static=True))
    findings, _ = typecheck_program(program)
    return findings


def fx_ir002():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", static=True)
    m.goto("nowhere")
    m.ret_void()
    return _typecheck(pb)


def fx_ir003():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", static=True)
    m.goto("X")
    m.label("X")
    m.ret_void()
    program = pb.build()
    body = program.classes["app.A"].find_methods("go")[0].body
    body.labels["X"] = 999
    findings, _ = typecheck_program(program)
    return findings


def fx_ir004():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", params=["int"], static=True)
    x = m.local("x", "int")
    m.assign(x, 1)
    m.emit(IdentityStmt(m.local("late", "int"), ParamRef(0, INT)))
    m.ret_void()
    return _typecheck(pb)


def fx_ir005():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", static=True)
    m.emit(IdentityStmt(m.local("x", "int"), IntConst(7)))
    m.ret_void()
    return _typecheck(pb)


def fx_ir006():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", static=True)
    x = m.local("x", "int")
    m.emit(AssignStmt(x, Local("ghost", INT)))  # never declared
    m.ret_void()
    return _typecheck(pb)


def fx_ir007():
    # Unsealed body ending in a falls-through statement.
    program = Program()
    cls = ClassDef("app.A")
    program.add_class(cls)
    method = Method(make_sig("app.A", "go", (), "void"), is_static=True)
    cls.add_method(method)
    x = method.body.declare_local(Local("x", INT))
    method.body.add(AssignStmt(x, IntConst(1)))
    findings, _ = typecheck_program(program)
    return findings


def fx_ir008():
    pb = ProgramBuilder()
    pb.class_("app.A", superclass="app.B")
    pb.class_("app.B", superclass="app.A")
    return _typecheck(pb)


def fx_ir010():
    pb = ProgramBuilder()
    pb.class_("app.B")
    m = pb.class_("app.A").method("go", static=True)
    a = m.local("a", "app.A")
    m.assign(a, NewExpr(class_t("app.B")))
    m.ret_void()
    return _typecheck(pb)


def fx_ir011():
    pb = ProgramBuilder()
    pb.class_("app.B")
    m = pb.class_("app.A").method("go")
    m.cast(m.this, "app.B")
    m.ret_void()
    return _typecheck(pb)


def fx_ir012():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", static=True)
    sig = MethodSig("app.A", "takes", (INT,), VOID)
    m.emit(InvokeStmt(InvokeExpr("static", sig, None, ())))
    m.ret_void()
    return _typecheck(pb)


def fx_ir013():
    pb = ProgramBuilder()
    pb.class_("app.B")
    m = pb.class_("app.A").method("go")
    sig = MethodSig("app.A", "takes", (class_t("app.B"),), VOID)
    m.emit(InvokeStmt(InvokeExpr("virtual", sig, m.this, (m.this,))))
    m.ret_void()
    return _typecheck(pb)


def fx_ir014():
    pb = ProgramBuilder()
    pb.class_("app.B")
    m = pb.class_("app.A").method("get", returns="app.B")
    m.ret(m.this)  # app.A is unrelated to the declared app.B
    return _typecheck(pb)


def fx_ir015():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("get", returns="int", static=True)
    m.ret_void()
    return _typecheck(pb)


def fx_ir016():
    pb = ProgramBuilder()
    pb.class_("app.B")
    cb = pb.class_("app.A")
    cb.field("f", "app.B")
    m = cb.method("go")
    m.putfield(m.this, "f", m.this)
    m.ret_void()
    return _typecheck(pb)


def fx_ir017():
    pb = ProgramBuilder()
    pb.class_("app.B")
    cb = pb.class_("app.A")
    callee = cb.method("get", returns="app.A", static=True)
    a = callee.new("app.A")
    callee.ret(a)
    m = cb.method("go", static=True)
    # Call site lies about the return type of a resolvable app target.
    sig = MethodSig("app.A", "get", (), class_t("app.B"))
    r = m.local("r", "app.B")
    m.assign(r, InvokeExpr("static", sig, None, ()))
    m.ret_void()
    return _typecheck(pb)


# ---------------------------------------------------------------------------
# DF0xx — CFG dataflow fixtures.


def fx_df001():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", params=["int"], static=True)
    x = m.local("x", "int")
    m.if_goto(m.param(0), "==", 0, "SKIP")
    m.assign(x, 1)
    m.label("SKIP")
    m.binop("+", x, 1)  # x unassigned on the branch-taken path
    m.ret_void()
    return _dataflow(pb)


def fx_df002():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", static=True)
    x = m.local("x", "int")
    m.ret_void()
    m.assign(x, 1)  # unreachable
    m.ret_void()
    return _dataflow(pb)


def fx_df003():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", static=True)
    m.let("waste", "int", 1)  # named local, never read
    m.ret_void()
    return _dataflow(pb)


# ---------------------------------------------------------------------------
# SEM0xx — pipeline-soundness fixtures.


def fx_sem001():
    pb = ProgramBuilder()
    m = pb.class_("app.Net").method("ping", static=True)
    m.scall(
        "java.net.NetworkInterface", "getHardwareAddress", [], "java.lang.Object"
    )
    m.ret_void()
    return soundness_program(pb.build())


def fx_sem002():
    pb = ProgramBuilder()
    m = pb.class_("app.A").method("go", static=True)
    t = m.new("android.widget.Toast")
    m.vcall(t, "show", [], "void")
    m.ret_void()
    return soundness_program(pb.build())


def fx_sem003():
    pb = ProgramBuilder()
    cb = pb.class_("app.Main")
    main = cb.method("onCreate")
    main.ret_void()
    fetch = cb.method("fetch")  # nothing calls this
    client = fetch.new("org.apache.http.impl.client.DefaultHttpClient")
    req = fetch.new("org.apache.http.client.methods.HttpGet", ["http://x/"])
    fetch.vcall(client, "execute", [req], "org.apache.http.HttpResponse")
    fetch.ret_void()
    return soundness_program(pb.build(), [main.method.method_id])


def fx_sem004():
    pb = ProgramBuilder()
    m = pb.class_("app.Main").method("go")
    q = m.new("com.android.volley.RequestQueue")
    req = m.new("com.android.volley.Request")  # no app listener class
    m.vcall(q, "add", [req], "java.lang.Object")
    m.ret_void()
    return soundness_program(pb.build(), [m.method.method_id])


def fx_sem005():
    pb = ProgramBuilder()
    m = pb.class_("app.Main").method("go")
    m.ret_void()
    return soundness_program(pb.build(), ["<app.Ghost: void gone()>"])


def fx_sem006():
    pb = ProgramBuilder()
    m = pb.class_("app.Main").method("go")
    client = m.new("org.apache.http.client.HttpClient")
    req = m.new("org.apache.http.client.methods.HttpGet", ["http://x/"])
    # The invoke's static signature names an unregistered subclass; only
    # the receiver local's declared type matches the registry, which the
    # targeted-mode seed index never consults.
    m.vcall(
        client, "execute", [req], "org.apache.http.HttpResponse",
        on="app.StealthClient",
    )
    m.ret_void()
    return soundness_program(pb.build())


# ---------------------------------------------------------------------------
# SIG0xx — post-analysis signature fixtures (report-shaped stand-ins).


def fx_sig001():
    report = SimpleNamespace(
        unidentified=[
            SimpleNamespace(
                txn_id=1,
                request=SimpleNamespace(method="GET", uri_regex="(.*)"),
                site=None,
            )
        ],
        transactions=[],
        demarcation_points=1,
    )
    return signature_report(report)


def fx_sig002():
    slicing = SimpleNamespace(
        slices=[
            SimpleNamespace(
                request=SimpleNamespace(stmts=set()),
                response=SimpleNamespace(stmts=set()),
                dp=SimpleNamespace(
                    spec=SimpleNamespace(class_name="C", method_name="m"),
                    site=SimpleNamespace(method_id="<app.C: void go()>", index=3),
                ),
            )
        ]
    )
    report = SimpleNamespace(
        unidentified=[], transactions=[object()], demarcation_points=1
    )
    return signature_report(report, slicing)


def fx_sig003():
    report = SimpleNamespace(
        unidentified=[], transactions=[], demarcation_points=2
    )
    return signature_report(report)


#: One fixture per registered rule — the collection-time completeness
#: assertion below is the acceptance criterion "every rule id provably
#: reachable".
FIXTURES = {
    "IR001": fx_ir001, "IR002": fx_ir002, "IR003": fx_ir003,
    "IR004": fx_ir004, "IR005": fx_ir005, "IR006": fx_ir006,
    "IR007": fx_ir007, "IR008": fx_ir008, "IR010": fx_ir010,
    "IR011": fx_ir011, "IR012": fx_ir012, "IR013": fx_ir013,
    "IR014": fx_ir014, "IR015": fx_ir015, "IR016": fx_ir016,
    "IR017": fx_ir017,
    "DF001": fx_df001, "DF002": fx_df002, "DF003": fx_df003,
    "SEM001": fx_sem001, "SEM002": fx_sem002, "SEM003": fx_sem003,
    "SEM004": fx_sem004, "SEM005": fx_sem005, "SEM006": fx_sem006,
    "SIG001": fx_sig001, "SIG002": fx_sig002, "SIG003": fx_sig003,
}

assert set(FIXTURES) == set(RULES), (
    "fixture table out of sync with the rule registry: "
    f"missing {set(RULES) - set(FIXTURES)}, stale {set(FIXTURES) - set(RULES)}"
)


@pytest.mark.parametrize("rule", sorted(RULES))
def test_rule_is_reachable(rule):
    findings = FIXTURES[rule]()
    hits = [f for f in findings if f.rule == rule]
    assert hits, (
        f"fixture for {rule} produced no {rule} finding; got "
        f"{[str(f) for f in findings]}"
    )
    for f in hits:
        assert f.severity == RULES[rule].severity
        assert f.message
        assert isinstance(f.index, int)


class TestDeterminism:
    def test_sort_is_canonical_and_stable(self):
        findings = fx_ir008() + fx_df001() + fx_sem005() + fx_sig003()
        assert sort_findings(list(reversed(findings))) == sort_findings(findings)
        ordered = sort_findings(findings)
        keys = [(f.rule, f.class_name, f.method_id, f.index) for f in ordered]
        assert keys == sorted(keys)

    def test_two_runs_are_byte_identical(self):
        a = findings_to_jsonl(fx_df001())
        b = findings_to_jsonl(fx_df001())
        assert a == b

    def test_lint_program_output_is_sorted(self):
        pb = ProgramBuilder()
        pb.class_("app.B")
        m = pb.class_("app.A").method("get", returns="app.B")
        m.ret(m.this)
        findings = lint_program(pb.build())
        assert findings == sort_findings(findings)


class TestSerialisation:
    def test_to_dict_round_trip(self):
        for fixture in (fx_ir010, fx_df003, fx_sem005, fx_sig001):
            for finding in fixture():
                assert Diagnostic.from_dict(finding.to_dict()) == finding

    def test_fingerprint_excludes_the_message(self):
        a = make_finding("DF001", "one wording", method_id="<m>", index=3)
        b = make_finding("DF001", "another wording", method_id="<m>", index=3)
        assert a.fingerprint() == b.fingerprint()
        c = make_finding("DF001", "one wording", method_id="<m>", index=4)
        assert a.fingerprint() != c.fingerprint()

    def test_make_finding_uses_registered_severity(self):
        assert make_finding("DF003", "x").severity == Severity.INFO
        assert make_finding("IR001", "x").severity == Severity.ERROR
        with pytest.raises(KeyError):
            make_finding("IR999", "no such rule")


class TestJsonlSchema:
    def test_round_trip_validates(self):
        findings = sort_findings(fx_ir008() + fx_df002())
        events = validate_findings_jsonl(findings_to_jsonl(findings))
        assert len(events) == len(findings)
        assert [e["rule"] for e in events] == [f.rule for f in findings]

    def test_empty_findings_still_has_meta(self):
        text = findings_to_jsonl([])
        assert validate_findings_jsonl(text) == []

    def test_rejects_empty_document(self):
        with pytest.raises(ValueError):
            validate_findings_jsonl("")

    def test_rejects_bad_meta(self):
        good = findings_to_jsonl(fx_df003())
        lines = good.splitlines()
        with pytest.raises(ValueError):
            validate_findings_jsonl("\n".join(lines[1:]))  # meta dropped

    def test_rejects_unknown_rule(self):
        text = findings_to_jsonl(fx_df003()).replace("DF003", "ZZ999")
        with pytest.raises(ValueError):
            validate_findings_jsonl(text)

    def test_rejects_unknown_severity(self):
        text = findings_to_jsonl(fx_df003()).replace('"info"', '"fatal"')
        with pytest.raises(ValueError):
            validate_findings_jsonl(text)

    def test_rejects_count_mismatch(self):
        text = findings_to_jsonl(fx_df003()).replace(
            '"findings":1', '"findings":7'
        )
        with pytest.raises(ValueError):
            validate_findings_jsonl(text)

    def test_rejects_missing_key(self):
        import json

        lines = findings_to_jsonl(fx_df003()).splitlines()
        event = json.loads(lines[1])
        del event["method"]
        with pytest.raises(ValueError):
            validate_findings_jsonl(
                "\n".join([lines[0], json.dumps(event)]) + "\n"
            )
