"""Incremental re-analysis: manifest-driven slice reuse across version
lineages — byte-identity with cold runs, the corpus-level reuse floor,
RenameMap-composed reuse for obfuscated re-releases, hierarchy-sensitive
fingerprints, and the cache-poisoning guard."""

from __future__ import annotations

import json

import pytest

from repro.cfg.callgraph import CallGraph
from repro.core.extractocol import Extractocol
from repro.core.report import report_to_dict
from repro.corpus.lineage import build_version
from repro.diff.engine import _relative_renames
from repro.incr.manifest import MANIFEST_SCHEMA
from repro.ir.builder import ProgramBuilder
from repro.ir.fingerprint import fingerprint_program
from repro.service.store import ResultStore, manifest_key

#: every non-base corpus lineage version, warmed from its predecessor
LINEAGE_PAIRS = [
    ("reddinator@v1", "reddinator@v2"),
    ("reddinator@v2", "reddinator@v3"),
    ("wallabag@v1", "wallabag@v2"),
    ("twister@v1", "twister@v2"),
    ("tzm@v1", "tzm@v2"),
]


def warm_pair(store_root, prev_label: str, label: str):
    """Analyze ``prev_label`` full-with-store, then ``label`` both cold and
    warm-incremental; returns (cold report, warm report)."""
    store = ResultStore(store_root)
    prev = build_version(prev_label)
    Extractocol(prev.config, store=store).analyze(prev.apk)

    cur = build_version(label)
    cold = Extractocol(cur.config).analyze(cur.apk)

    warm_v = build_version(label)
    warm_v.config.mode = "incremental"
    renames = _relative_renames(
        prev.renames_from_base, warm_v.renames_from_base
    )
    warm = Extractocol(warm_v.config, store=store).analyze(
        warm_v.apk, renames=renames
    )
    return cold, warm


@pytest.fixture(scope="module")
def lineage_runs(tmp_path_factory):
    root = tmp_path_factory.mktemp("incr-stores")
    out = {}
    for i, (prev_label, label) in enumerate(LINEAGE_PAIRS):
        out[label] = warm_pair(root / str(i), prev_label, label)
    return out


class TestLineageReuse:
    @pytest.mark.parametrize("label", [p[1] for p in LINEAGE_PAIRS])
    def test_warm_report_byte_identical_to_cold(self, lineage_runs, label):
        cold, warm = lineage_runs[label]
        assert report_to_dict(warm) == report_to_dict(cold)

    @pytest.mark.parametrize("label", [p[1] for p in LINEAGE_PAIRS])
    def test_counters_present_and_consistent(self, lineage_runs, label):
        _, warm = lineage_runs[label]
        counters = warm.phase_stats.incremental
        assert counters is not None
        assert set(counters) == {"reused", "reanalyzed", "dirty_methods"}
        assert (
            counters["reused"] + counters["reanalyzed"]
            == warm.demarcation_points
        )

    def test_corpus_reuse_floor(self, lineage_runs):
        """Across the five lineage versions, at least half of all DP
        slices replay from cache.  (Per-version floors are impossible:
        wallabag has exactly one endpoint and its v2 rewrites it, so its
        lone slice is legitimately dirty.)"""
        reused = analyzed = 0
        for _, warm in lineage_runs.values():
            counters = warm.phase_stats.incremental
            reused += counters["reused"]
            analyzed += counters["reused"] + counters["reanalyzed"]
        assert analyzed > 0
        assert reused / analyzed >= 0.5, (reused, analyzed)

    def test_compatible_drift_reuses_untouched_endpoints(self, lineage_runs):
        for label in ("reddinator@v2", "reddinator@v3", "twister@v2"):
            counters = lineage_runs[label][1].phase_stats.incremental
            assert counters["reused"] > 0, label
            assert counters["reanalyzed"] > 0, label  # the drift itself

    def test_obfuscated_rerelease_reuses_everything(self, lineage_runs):
        """tzm v2 renames every identifier but changes no behavior: with
        the RenameMap composed in, every fingerprint matches in the base
        namespace and every slice replays."""
        counters = lineage_runs["tzm@v2"][1].phase_stats.incremental
        assert counters["reanalyzed"] == 0
        assert counters["reused"] > 0
        assert counters["dirty_methods"] == 0


class TestSelfWarm:
    def test_unchanged_app_reuses_every_slice(self, tmp_path):
        store = ResultStore(tmp_path)
        v1 = build_version("reddinator@v1")
        cold = Extractocol(v1.config, store=store).analyze(v1.apk)

        again = build_version("reddinator@v1")
        again.config.mode = "incremental"
        warm = Extractocol(again.config, store=store).analyze(again.apk)
        counters = warm.phase_stats.incremental
        assert counters["dirty_methods"] == 0
        assert counters["reanalyzed"] == 0
        assert counters["reused"] == cold.demarcation_points > 0
        assert report_to_dict(warm) == report_to_dict(cold)

    def test_cold_incremental_run_has_zero_reuse(self, tmp_path):
        """mode=incremental with an empty store degrades to a full run."""
        store = ResultStore(tmp_path)
        v1 = build_version("reddinator@v1")
        v1.config.mode = "incremental"
        warm = Extractocol(v1.config, store=store).analyze(v1.apk)
        counters = warm.phase_stats.incremental
        assert counters["reused"] == 0
        assert counters["reanalyzed"] == warm.demarcation_points

        cold = Extractocol(build_version("reddinator@v1").config).analyze(
            build_version("reddinator@v1").apk
        )
        assert report_to_dict(warm) == report_to_dict(cold)


class TestHierarchyDirtying:
    """A superclass change dirties every method of every subclass, even
    when no subclass body changed — the hierarchy slice is a fingerprint
    input."""

    @staticmethod
    def _program(superclass: str):
        pb = ProgramBuilder()
        pb.class_("app.Lib")
        pb.class_("app.OtherLib")
        pb.class_("app.Base", superclass=superclass)
        sub = pb.class_("app.Sub", superclass="app.Base")
        m = sub.method("go", static=False)
        m.ret_void()
        other = pb.class_("app.Unrelated")
        u = other.method("stay", static=False)
        u.ret_void()
        return pb.build()

    def test_superclass_change_dirties_subclass_methods(self):
        before = self._program("app.Lib")
        after = self._program("app.OtherLib")
        fp_before, _ = fingerprint_program(before, CallGraph(before))
        fp_after, _ = fingerprint_program(after, CallGraph(after))
        sub = "<app.Sub: void go()>"
        unrelated = "<app.Unrelated: void stay()>"
        assert fp_before[sub] != fp_after[sub]
        assert fp_before[unrelated] == fp_after[unrelated]


class TestCachePoisoning:
    """A manifest written under a different schema or config hash must be
    invisible — the engine falls back to full analysis, never stale reuse."""

    @staticmethod
    def _seed_store(tmp_path):
        store = ResultStore(tmp_path)
        v1 = build_version("reddinator@v1")
        Extractocol(v1.config, store=store).analyze(v1.apk)
        app, key = v1.apk.name, v1.config.cache_key()
        assert store.get_manifest(app, key) is not None
        return store, app, key

    @staticmethod
    def _poison(store, app, key, **changes):
        path = store.manifest_path(manifest_key(app, key))
        envelope = json.loads(path.read_text())
        envelope["manifest"].update(changes)
        path.write_text(json.dumps(envelope))

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store, app, key = self._seed_store(tmp_path)
        self._poison(store, app, key, schema=MANIFEST_SCHEMA + 1)
        assert store.get_manifest(app, key) is None

    def test_config_hash_mismatch_is_a_miss(self, tmp_path):
        store, app, key = self._seed_store(tmp_path)
        self._poison(store, app, key, config_key="0" * 16)
        assert store.get_manifest(app, key) is None

    def test_poisoned_manifest_forces_full_reanalysis(self, tmp_path):
        store, app, key = self._seed_store(tmp_path)
        self._poison(store, app, key, schema=MANIFEST_SCHEMA + 1)

        v2 = build_version("reddinator@v2")
        v2.config.mode = "incremental"
        warm = Extractocol(v2.config, store=store).analyze(v2.apk)
        counters = warm.phase_stats.incremental
        assert counters["reused"] == 0
        assert counters["reanalyzed"] == warm.demarcation_points

        cold = Extractocol(build_version("reddinator@v2").config).analyze(
            build_version("reddinator@v2").apk
        )
        assert report_to_dict(warm) == report_to_dict(cold)

    def test_semantic_config_change_misses_the_manifest(self, tmp_path):
        """A different semantic config has a different cache key — the old
        manifest is simply never consulted."""
        store, app, key = self._seed_store(tmp_path)
        v1 = build_version("reddinator@v1")
        v1.config.rounds += 1
        assert v1.config.cache_key() != key
        assert store.get_manifest(app, v1.config.cache_key()) is None
