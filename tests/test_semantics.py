"""Direct unit tests for the semantic models (§3.2's API semantics),
exercised through small single-method programs."""

from __future__ import annotations

import pytest

from repro.cfg import build_callgraph
from repro.ir import ProgramBuilder
from repro.signature import SignatureInterpreter
from repro.signature.lang import Alt, Const, JsonArray, JsonObject, Rep, Unknown
from repro.signature.regex import to_regex


def interp_single(build_method, *, resources=None, params=None, returns="void"):
    """Build a one-method app, run the interpreter, return its transactions."""
    pb = ProgramBuilder()
    cb = pb.class_("t.App", superclass="android.app.Activity")
    m = cb.method("go", params=params or [])
    build_method(m)
    m.ret_void()
    program = pb.build()
    cg = build_callgraph(program)
    interp = SignatureInterpreter(program, cg, resources=resources)
    sig = program.class_of("t.App").find_methods("go")[0].sig
    result = interp.run([(str(sig), "ui")])
    return result


def http_get(m, url):
    req = m.new("org.apache.http.client.methods.HttpGet", [url])
    client = m.local("client", "org.apache.http.client.HttpClient")
    m.assign(client, None)
    return m.vcall(client, "execute", [req],
                   returns="org.apache.http.HttpResponse",
                   on="org.apache.http.client.HttpClient")


class TestStringModels:
    def _uri(self, build):
        result = interp_single(build)
        assert len(result.transactions) == 1
        return result.transactions[0].request.uri

    def test_string_format(self):
        def build(m):
            url = m.scall("java.lang.String", "format",
                          ["https://api.test/u/%s/p/%d", "alice", 7],
                          returns="java.lang.String")
            http_get(m, url)

        uri = self._uri(build)
        assert str(uri) == "(https://api.test/u/alice/p/7)"

    def test_case_folding_on_constants(self):
        def build(m):
            s = m.vcall(m.let("x", "java.lang.String", "MiXeD"), "toLowerCase",
                        [], returns="java.lang.String")
            url = m.concat("https://api.test/", s)
            http_get(m, url)

        assert "mixed" in str(self._uri(build))

    def test_urlencoder_keeps_constants(self):
        def build(m):
            enc = m.scall("java.net.URLEncoder", "encode", ["a b", "UTF-8"],
                          returns="java.lang.String")
            http_get(m, m.concat("https://api.test/?q=", enc))

        assert "a+b" in str(self._uri(build))

    def test_valueof_and_boxing(self):
        def build(m):
            n = m.scall("java.lang.Integer", "toString", [42],
                        returns="java.lang.String")
            http_get(m, m.concat("https://api.test/item/", n))

        assert "item/42" in str(self._uri(build))

    def test_clock_and_random_are_wildcards_with_origin(self):
        def build(m):
            now = m.scall("java.lang.System", "currentTimeMillis", [],
                          returns="long")
            http_get(m, m.concat("https://api.test/?t=", now))

        uri = self._uri(build)
        unknowns = [t for t in uri.walk() if isinstance(t, Unknown)]
        assert unknowns and unknowns[0].origin == "clock"
        assert unknowns[0].kind == "int"

    def test_substring_on_constants(self):
        def build(m):
            s = m.let("s", "java.lang.String", "prefix-middle-suffix")
            cut = m.vcall(s, "substring", [7, 13], returns="java.lang.String")
            http_get(m, m.concat("https://api.test/", cut))

        assert "middle" in str(self._uri(build))


class TestContainerModels:
    def test_list_tracks_items_for_form_entity(self):
        def build(m):
            pairs = m.new("java.util.ArrayList")
            p1 = m.new("org.apache.http.message.BasicNameValuePair",
                       ["user", "bob"])
            m.vcall(pairs, "add", [p1], returns="boolean")
            p2 = m.new("org.apache.http.message.BasicNameValuePair",
                       ["mode", "full"])
            m.vcall(pairs, "add", [p2], returns="boolean")
            entity = m.new("org.apache.http.client.entity.UrlEncodedFormEntity",
                           [pairs])
            req = m.new("org.apache.http.client.methods.HttpPost",
                        ["https://api.test/login"])
            m.vcall(req, "setEntity", [entity])
            client = m.local("client", "org.apache.http.client.HttpClient")
            m.assign(client, None)
            m.vcall(client, "execute", [req],
                    returns="org.apache.http.HttpResponse",
                    on="org.apache.http.client.HttpClient")

        result = interp_single(build)
        body = result.transactions[0].request.body
        assert str(body) == "(user=bob&mode=full)"

    def test_map_put_get(self):
        def build(m):
            params = m.new("java.util.HashMap")
            m.vcall(params, "put", ["region", "kr"], returns="java.lang.Object")
            region = m.vcall(params, "get", ["region"],
                             returns="java.lang.String")
            http_get(m, m.concat("https://api.test/?r=", region))

        result = interp_single(build)
        assert "r=kr" in str(result.transactions[0].request.uri)


class TestJsonModels:
    def test_nested_put_builds_tree(self):
        def build(m):
            inner = m.new("org.json.JSONObject", [], into="inner")
            m.vcall(inner, "put", ["lat", 37], returns="org.json.JSONObject")
            outer = m.new("org.json.JSONObject", [], into="outer")
            m.vcall(outer, "put", ["loc", inner], returns="org.json.JSONObject")
            body = m.vcall(outer, "toString", [], returns="java.lang.String")
            entity = m.new("org.apache.http.entity.StringEntity", [body])
            req = m.new("org.apache.http.client.methods.HttpPost",
                        ["https://api.test/x"])
            m.vcall(req, "setEntity", [entity])
            client = m.local("client", "org.apache.http.client.HttpClient")
            m.assign(client, None)
            m.vcall(client, "execute", [req],
                    returns="org.apache.http.HttpResponse",
                    on="org.apache.http.client.HttpClient")

        result = interp_single(build)
        body = result.transactions[0].request.body
        assert isinstance(body, JsonObject)
        loc = body.get("loc")
        assert isinstance(loc, JsonObject)
        assert loc.get("lat") is not None

    def test_json_array_request_body(self):
        def build(m):
            arr = m.new("org.json.JSONArray", [], into="arr")
            m.vcall(arr, "put", ["first"], returns="org.json.JSONArray")
            m.vcall(arr, "put", ["second"], returns="org.json.JSONArray")
            body = m.vcall(arr, "toString", [], returns="java.lang.String")
            entity = m.new("org.apache.http.entity.StringEntity", [body])
            req = m.new("org.apache.http.client.methods.HttpPost",
                        ["https://api.test/batch"])
            m.vcall(req, "setEntity", [entity])
            client = m.local("client", "org.apache.http.client.HttpClient")
            m.assign(client, None)
            m.vcall(client, "execute", [req],
                    returns="org.apache.http.HttpResponse",
                    on="org.apache.http.client.HttpClient")

        result = interp_single(build)
        body = result.transactions[0].request.body
        assert isinstance(body, JsonArray)
        assert len(body.fixed) == 2

    def test_gson_reflection_serialization(self):
        pb = ProgramBuilder()
        dto = pb.class_("t.LoginDto")
        dto.field("username", "java.lang.String")
        dto.field("passwd", "java.lang.String")
        cb = pb.class_("t.App", superclass="android.app.Activity")
        m = cb.method("go", params=["java.lang.String"])
        obj = m.new("t.LoginDto", [], into="dto")
        m.putfield(obj, "username", m.param(0), cls="t.LoginDto")
        m.putfield(obj, "passwd", "hunter2", cls="t.LoginDto")
        gson = m.new("com.google.gson.Gson", [], into="gson")
        body = m.vcall(gson, "toJson", [obj], returns="java.lang.String")
        entity = m.new("org.apache.http.entity.StringEntity", [body])
        req = m.new("org.apache.http.client.methods.HttpPost",
                    ["https://api.test/login"])
        m.vcall(req, "setEntity", [entity])
        client = m.local("client", "org.apache.http.client.HttpClient")
        m.assign(client, None)
        m.vcall(client, "execute", [req],
                returns="org.apache.http.HttpResponse",
                on="org.apache.http.client.HttpClient")
        m.ret_void()
        program = pb.build()
        cg = build_callgraph(program)
        interp = SignatureInterpreter(program, cg)
        result = interp.run(
            [("<t.App: void go(java.lang.String)>", "ui")]
        )
        body = result.transactions[0].request.body
        assert isinstance(body, JsonObject)
        keys = {k.text for k, _ in body.entries}
        assert keys == {"username", "passwd"}

    def test_gson_reflection_binding_records_access_tree(self):
        pb = ProgramBuilder()
        dto = pb.class_("t.ProfileDto")
        dto.field("name", "java.lang.String")
        dto.field("karma", "int")
        cb = pb.class_("t.App", superclass="android.app.Activity")
        m = cb.method("go")
        resp = http_get(m, "https://api.test/profile")
        body = m.scall("org.apache.http.util.EntityUtils", "toString", [resp],
                       returns="java.lang.String")
        gson = m.new("com.google.gson.Gson", [], into="gson")
        from repro.ir import ClassConst

        bound = m.fresh("t.ProfileDto", "bound")
        from repro.ir import AssignStmt, InvokeExpr, MethodSig, parse_type

        sig = MethodSig("com.google.gson.Gson", "fromJson",
                        (parse_type("java.lang.String"),
                         parse_type("java.lang.Class")),
                        parse_type("t.ProfileDto"))
        m.emit(AssignStmt(bound, InvokeExpr("virtual", sig, gson,
                                            (body, ClassConst("t.ProfileDto")))))
        m.ret_void()
        program = pb.build()
        cg = build_callgraph(program)
        interp = SignatureInterpreter(program, cg)
        result = interp.run([("<t.App: void go()>", "ui")])
        txn = result.transactions[0]
        assert txn.acc.kind == "json"
        assert ("name",) in txn.acc.paths()
        assert ("karma",) in txn.acc.paths()


class TestAndroidModels:
    def test_resources_resolve_to_constants(self):
        from repro.apk import Resources

        res = Resources()
        rid = res.add_string("base_url", "https://cfg.test/api")

        def build(m):
            r = m.vcall(m.this, "getResources", [],
                        returns="android.content.res.Resources",
                        on="android.app.Activity")
            base = m.vcall(r, "getString", [rid], returns="java.lang.String")
            http_get(m, m.concat(base, "/v1/feed"))

        result = interp_single(build, resources=res)
        assert "cfg.test/api/v1/feed" in str(result.transactions[0].request.uri)

    def test_shared_preferences_flow(self):
        def build(m):
            prefs = m.vcall(m.this, "getSharedPreferences", ["auth", 0],
                            returns="android.content.SharedPreferences",
                            on="android.app.Activity")
            editor = m.vcall(prefs, "edit", [],
                             returns="android.content.SharedPreferences$Editor")
            m.vcall(editor, "putString", ["token", "tok-99"],
                    returns="android.content.SharedPreferences$Editor")
            m.vcall(editor, "apply", [])
            token = m.vcall(prefs, "getString", ["token", ""],
                            returns="java.lang.String")
            http_get(m, m.concat("https://api.test/?auth=", token))

        result = interp_single(build)
        assert "auth=tok-99" in str(result.transactions[0].request.uri)

    def test_location_origin(self):
        def build(m):
            lm = m.local("lm", "android.location.LocationManager")
            m.assign(lm, None)
            loc = m.vcall(lm, "getLastKnownLocation", ["gps"],
                          returns="android.location.Location",
                          on="android.location.LocationManager")
            lat = m.vcall(loc, "getLatitude", [], returns="double")
            http_get(m, m.concat("https://api.test/?lat=", lat))

        result = interp_single(build)
        uri = result.transactions[0].request.uri
        origins = {t.origin for t in uri.walk() if isinstance(t, Unknown)}
        assert "location" in origins

    def test_webview_loadurl_is_a_transaction(self):
        def build(m):
            view = m.local("view", "android.webkit.WebView")
            m.assign(view, None)
            m.vcall(view, "loadUrl", ["https://m.site.test/page"],
                    on="android.webkit.WebView")

        result = interp_single(build)
        assert len(result.transactions) == 1
        txn = result.transactions[0]
        assert "webview" in txn.acc.consumers


class TestOkHttpModels:
    def test_builder_chain(self):
        def build(m):
            fb = m.new("okhttp3.FormBody$Builder", [], into="fb")
            m.vcall(fb, "add", ["grant", "password"],
                    returns="okhttp3.FormBody$Builder")
            form = m.vcall(fb, "build", [], returns="okhttp3.FormBody")
            rb = m.new("okhttp3.Request$Builder", [], into="rb")
            m.vcall(rb, "url", ["https://api.test/oauth"],
                    returns="okhttp3.Request$Builder")
            m.vcall(rb, "header", ["Accept", "application/json"],
                    returns="okhttp3.Request$Builder")
            m.vcall(rb, "post", [form], returns="okhttp3.Request$Builder")
            req = m.vcall(rb, "build", [], returns="okhttp3.Request")
            client = m.new("okhttp3.OkHttpClient", [], into="client")
            call = m.vcall(client, "newCall", [req], returns="okhttp3.Call")
            resp = m.vcall(call, "execute", [], returns="okhttp3.Response")
            rbody = m.vcall(resp, "body", [], returns="okhttp3.ResponseBody")
            text = m.vcall(rbody, "string", [], returns="java.lang.String")
            j = m.new("org.json.JSONObject", [text])
            m.vcall(j, "getString", ["access_token"],
                    returns="java.lang.String")

        result = interp_single(build)
        txn = result.transactions[0]
        assert txn.request.method == "POST"
        assert "oauth" in str(txn.request.uri)
        assert "grant=password" in str(txn.request.body)
        assert dict(txn.request.headers)["Accept"] == Const("application/json")
        assert ("access_token",) in txn.acc.paths()
