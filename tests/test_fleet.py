"""Fleet telemetry tests: heartbeats, cross-process trace aggregation
(determinism, span-set equality with the per-worker streams), host
fingerprints, live progress, and the shard engine's telemetry wiring."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.obs.export import validate_jsonl
from repro.obs.fleet import (
    BatchProgress,
    WorkerTelemetry,
    family_of,
    fingerprint_mismatches,
    host_fingerprint,
    merge_worker_traces,
    percentile,
    read_heartbeats,
    run_telemetry_dir,
    worker_liveness,
)
from repro.obs.tracer import Span
from repro.service.shard import run_sharded_batch

TARGETS = ["diode", "ted", "tzm", "kayak"]


# ------------------------------------------------------------ fingerprints
class TestHostFingerprint:
    def test_fields(self):
        fp = host_fingerprint()
        assert set(fp) == {
            "python", "platform", "machine", "cpu_count", "usable_cpus"
        }
        assert fp["usable_cpus"] >= 1

    def test_mismatches_lists_differing_keys(self):
        a = host_fingerprint()
        b = dict(a, usable_cpus=a["usable_cpus"] + 8, python="2.7.0")
        notes = fingerprint_mismatches(a, b)
        assert len(notes) == 2
        assert any("usable_cpus" in n for n in notes)
        assert any("python" in n for n in notes)

    def test_missing_keys_are_not_mismatches(self):
        # legacy bench reports may lack newer fingerprint fields
        assert fingerprint_mismatches({"python": "3.11"}, {}) == []

    def test_family_of(self):
        assert family_of("syn-transports-s7-0041") == "transports"
        assert family_of("syn-pag-s0-0000") == "pag"
        assert family_of("pinterest") == "corpus"
        assert family_of("") == "corpus"

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 3.0  # round(0.5*3)=2
        assert percentile([], 0.5) == 0.0


# -------------------------------------------------------------- heartbeats
class TestHeartbeats:
    def test_write_read_roundtrip(self, tmp_path):
        telemetry = WorkerTelemetry(tmp_path, 3, "run-x")
        telemetry.heartbeat(status="running", in_flight="ted", processed=2)
        beats = read_heartbeats(tmp_path)
        assert len(beats) == 1
        beat = beats[0]
        assert beat["worker"] == 3
        assert beat["run_id"] == "run-x"
        assert beat["status"] == "running"
        assert beat["in_flight"] == "ted"
        assert beat["processed"] == 2
        assert beat["pid"] > 0

    def test_corrupt_beacon_skipped(self, tmp_path):
        (tmp_path / "heartbeat-0.json").write_text("{torn")
        WorkerTelemetry(tmp_path, 1, "r").heartbeat(status="idle")
        beats = read_heartbeats(tmp_path)
        assert [b["worker"] for b in beats] == [1]

    def test_liveness_fresh_and_exited(self, tmp_path):
        WorkerTelemetry(tmp_path, 0, "r").heartbeat(status="running")
        WorkerTelemetry(tmp_path, 1, "r").heartbeat(status="exited")
        live = worker_liveness(read_heartbeats(tmp_path))
        assert [b["alive"] for b in live] == [True, False]

    def test_liveness_stale_dead_pid(self, tmp_path):
        (tmp_path / "heartbeat-0.json").write_text(json.dumps({
            "worker": 0, "status": "running", "pid": 2 ** 22 + 12345,
            "updated_unix": time.time() - 3600,
        }))
        live = worker_liveness(read_heartbeats(tmp_path), stale_after=1.0)
        assert live[0]["alive"] is False
        assert live[0]["age_s"] > 1000


# ------------------------------------------------------------ trace merge
def _worker_stream(tmp_path, worker_id, jobs):
    """Write a worker trace with the given (index, name) job spans."""
    root = Span(f"worker-{worker_id}")
    for index, name in jobs:
        job = root.child(f"job:{name}")
        job.set("index", index)
        job.set("app_key", name)
        job.set("worker", worker_id)
        job.set("stolen", worker_id != index % 2)
        inner = job.child("analyze")
        inner.count("slices", index + 1)
    WorkerTelemetry(tmp_path, worker_id, "r").write_trace(root)


class TestMergeWorkerTraces:
    def test_merge_is_schedule_independent(self, tmp_path):
        # the same 4 jobs split two different ways across workers
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir(), b.mkdir()
        _worker_stream(a, 0, [(0, "x"), (2, "y")])
        _worker_stream(a, 1, [(1, "z"), (3, "w")])
        _worker_stream(b, 0, [(0, "x"), (1, "z"), (2, "y"), (3, "w")])
        assert merge_worker_traces(a) == merge_worker_traces(b)

    def test_merged_span_set_is_union_of_workers(self, tmp_path):
        _worker_stream(tmp_path, 0, [(0, "x")])
        _worker_stream(tmp_path, 1, [(1, "y")])
        events = validate_jsonl(merge_worker_traces(tmp_path))
        assert events[0]["name"] == "fleet"
        assert events[0]["counters"] == {"jobs": 2}
        names = sorted(e["name"] for e in events[1:])
        assert names == ["analyze", "analyze", "job:x", "job:y"]
        # worker-level counters survive the merge
        analyze = [e for e in events if e["name"] == "analyze"]
        assert sorted(e["counters"]["slices"] for e in analyze) == [1, 2]

    def test_run_specific_attrs_stripped(self, tmp_path):
        _worker_stream(tmp_path, 0, [(0, "x")])
        events = validate_jsonl(merge_worker_traces(tmp_path))
        job = next(e for e in events if e["name"] == "job:x")
        assert "worker" not in job["attrs"]
        assert "stolen" not in job["attrs"]
        assert job["attrs"]["app_key"] == "x"
        assert job["attrs"]["index"] == 0

    def test_duplicate_job_names_deduped_deterministically(self, tmp_path):
        _worker_stream(tmp_path, 0, [(0, "x")])
        _worker_stream(tmp_path, 1, [(1, "x")])
        events = validate_jsonl(merge_worker_traces(tmp_path))
        names = sorted(
            e["name"] for e in events if e["parent"] == events[0]["id"]
        )
        assert names == ["job:x", "job:x#2"]
        # every span id is the hash of its rewritten path: all unique
        assert len({e["id"] for e in events}) == len(events)

    def test_ids_recomputed_from_paths(self, tmp_path):
        import hashlib

        _worker_stream(tmp_path, 0, [(0, "x")])
        events = validate_jsonl(merge_worker_traces(tmp_path))
        for event in events:
            expected = hashlib.sha256(
                event["path"].encode()
            ).hexdigest()[:16]
            assert event["id"] == expected


# ------------------------------------------------------------- progress
class TestBatchProgress:
    def test_counts_and_renders(self):
        stream = io.StringIO()
        progress = BatchProgress(3, stream=stream, interval=0.0)
        progress({"status": "done", "cache_hit": True, "seconds": 0.1}, 1, 3)
        progress({"status": "failed", "cache_hit": False, "seconds": 0.2}, 2, 3)
        progress({"status": "done", "cache_hit": False, "seconds": 0.3}, 3, 3)
        out = stream.getvalue()
        assert "[3/3]" in out
        assert "1 cached" in out
        assert "1 FAILED" in out
        assert "done" in out

    def test_straggler_flagging(self, tmp_path):
        progress = BatchProgress(10, stream=io.StringIO(), run_dir=tmp_path)
        progress.latencies = [0.01, 0.01, 0.02]
        (tmp_path / "heartbeat-2.json").write_text(json.dumps({
            "worker": 2, "status": "running", "in_flight": "slow-app",
            "pid": 1, "updated_unix": time.time() - 120.0,
        }))
        (tmp_path / "heartbeat-3.json").write_text(json.dumps({
            "worker": 3, "status": "idle", "in_flight": None,
            "pid": 1, "updated_unix": time.time(),
        }))
        stragglers = progress.stragglers()
        assert [s["worker"] for s in stragglers] == [2]
        assert stragglers[0]["in_flight"] == "slow-app"
        assert stragglers[0]["in_flight_s"] > 100
        assert "stragglers: w2:slow-app" in progress.render()


# --------------------------------------------------- shard engine wiring
class TestShardedBatchTelemetry:
    def test_batch_writes_streams_heartbeats_and_fleet_trace(self, tmp_path):
        run_dir = run_telemetry_dir(tmp_path / "store", "run1", create=True)
        meta: dict = {}
        seen: list[tuple] = []
        records = run_sharded_batch(
            tmp_path / "store",
            TARGETS,
            workers=2,
            run_id="run1",
            telemetry_dir=run_dir,
            out_meta=meta,
            progress=lambda r, done, total: seen.append((done, total)),
        )
        assert [r.status for r in records] == ["done"] * len(TARGETS)
        assert meta["run_id"] == "run1"
        assert meta["fleet_trace"] is not None
        # progress fired once per entry with a running done-count
        assert [d for d, _ in seen] == list(range(1, len(TARGETS) + 1))
        assert all(t == len(TARGETS) for _, t in seen)
        # every worker left a final heartbeat and a validating stream
        beats = read_heartbeats(run_dir)
        assert [b["status"] for b in beats] == ["exited", "exited"]
        assert sum(b["processed"] for b in beats) == len(TARGETS)
        streams = sorted(run_dir.glob("worker-*.trace.jsonl"))
        assert len(streams) == 2
        worker_jobs = []
        for stream in streams:
            events = validate_jsonl(stream.read_text())
            worker_jobs.extend(
                e["name"] for e in events
                if e["name"].startswith("job:")
            )
        # the fleet trace's job set equals the union of per-worker jobs
        fleet = validate_jsonl((run_dir / "fleet.trace.jsonl").read_text())
        fleet_jobs = [e["name"] for e in fleet if e["name"].startswith("job:")]
        assert sorted(fleet_jobs) == sorted(worker_jobs)
        assert fleet_jobs == [f"job:{t}" for t in TARGETS]  # index order
        # analysis phases nest under each job span
        assert any(e["name"] == "phase:slicing" for e in fleet)

    def test_fleet_trace_deterministic_across_reruns_and_widths(
        self, tmp_path
    ):
        traces = []
        for i, workers in enumerate((2, 3, 2)):
            store = tmp_path / f"s{i}"
            run_dir = run_telemetry_dir(store, "r", create=True)
            run_sharded_batch(
                store, TARGETS, workers=workers,
                run_id="r", telemetry_dir=run_dir,
            )
            traces.append((run_dir / "fleet.trace.jsonl").read_text())
        assert traces[0] == traces[1] == traces[2]

    def test_no_telemetry_dir_means_no_files(self, tmp_path):
        records = run_sharded_batch(tmp_path / "store", ["diode"], workers=1)
        assert records[0].status == "done"
        assert not (tmp_path / "store" / "telemetry").exists()


# -------------------------------------------------- fallback deduplication
class TestFallbackDedup:
    def test_silenced_fallbacks_collect_reasons(self):
        from repro.perf import parallel

        audible, warned = parallel._fallback_audible, parallel._fallback_warned
        try:
            parallel.take_fallback_reasons()  # drain
            parallel.silence_fallback_warnings()
            parallel._fallback_warned = False
            import warnings as warnings_mod

            with warnings_mod.catch_warnings():
                warnings_mod.simplefilter("error")  # any warning would raise
                parallel.note_executor_fallback("no fork here")
                parallel.note_executor_fallback("no fork here")
                parallel.note_executor_fallback("another reason")
            assert parallel.take_fallback_reasons() == [
                "no fork here", "another reason"
            ]
            assert parallel.take_fallback_reasons() == []
        finally:
            parallel._fallback_audible = audible
            parallel._fallback_warned = warned

    def test_sharded_batch_surfaces_worker_fallbacks_once(
        self, tmp_path, monkeypatch
    ):
        # force every worker's in-app process pool to fail: each worker
        # records a reason, but only the coordinator warns (exactly once)
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        meta: dict = {}
        records = run_sharded_batch(
            tmp_path / "store",
            ["diode", "ted"],
            workers=2,
            overrides={"workers": 2, "executor": "process"},
            start_method="fork",
            out_meta=meta,
        )
        assert [r.status for r in records] == ["done", "done"]
        # the workers forced executor=thread before analysis, so no
        # fallback fired — the field is present and empty
        assert meta["fallback_reasons"] == []


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
