"""Shared fixtures: tiny hand-built IR programs used across test modules."""

from __future__ import annotations

import pytest

from repro.ir import ProgramBuilder


def build_branchy_program() -> ProgramBuilder:
    """A class with a diamond branch and a loop, used by IR/CFG tests.

    void run(int flag):
        s = "base"
        if flag == 0 goto ELSE
        s = s + "/a"
        goto JOIN
      ELSE:
        s = s + "/b"
      JOIN:
        i = 0
      LOOP:
        if i >= 3 goto DONE
        s = s + "x"
        i = i + 1
        goto LOOP
      DONE:
        sink(s)
    """
    pb = ProgramBuilder()
    cb = pb.class_("com.example.Branchy")
    sink = cb.method("sink", params=["java.lang.String"])
    sink.ret_void()

    m = cb.method("run", params=["int"])
    s = m.let("s", "java.lang.String", "base")
    m.if_goto(m.param(0), "==", 0, "ELSE")
    sa = m.concat(s, "/a")
    m.assign(s, sa)
    m.goto("JOIN")
    m.label("ELSE")
    sb = m.concat(s, "/b")
    m.assign(s, sb)
    m.label("JOIN")
    i = m.let("i", "int", 0)
    m.label("LOOP")
    m.if_goto(i, ">=", 3, "DONE")
    sx = m.concat(s, "x")
    m.assign(s, sx)
    i2 = m.binop("+", i, 1)
    m.assign(i, i2)
    m.goto("LOOP")
    m.label("DONE")
    m.call_this("sink", [s])
    m.ret_void()
    return pb


@pytest.fixture
def branchy_program():
    pb = build_branchy_program()
    return pb.build()
