"""Tests for the signature interpreter (flow-sensitive signature building)."""

from __future__ import annotations

import pytest
from fixtures_http import CLS, build_mini_reddit

from repro.cfg import build_callgraph
from repro.ir import ProgramBuilder
from repro.signature import (
    Alt,
    Const,
    JsonObject,
    Rep,
    SignatureInterpreter,
    Unknown,
    compile_regex,
    concat,
    detect_rep,
    origins_of,
    rep,
    to_regex,
)
from repro.signature.builder import TxnRecord


def interp_of(apk) -> SignatureInterpreter:
    cg = build_callgraph(apk.program)
    return SignatureInterpreter(apk.program, cg, resources=apk.resources)


def run_roots(apk):
    interp = interp_of(apk)
    roots = [(ep.method_id, ep.kind.value) for ep in apk.entrypoints]
    return interp.run(roots)


class TestMiniReddit:
    @pytest.fixture(scope="class")
    def result(self):
        return run_roots(build_mini_reddit())

    def test_two_transactions(self, result):
        assert len(result.transactions) == 2

    def test_front_page_uri_signature(self, result):
        txn = next(t for t in result.transactions if "doInBackground" in t.root)
        assert txn.request.method == "GET"
        rx = compile_regex(txn.request.uri)
        assert rx.match("http://www.reddit.com/r/pics.json?limit=25")
        assert rx.match("http://www.reddit.com/.json?")
        assert rx.match("http://www.reddit.com/.json?&after=t3_abc")
        assert not rx.match("http://evil.example.com/x")

    def test_response_access_tree(self, result):
        txn = next(t for t in result.transactions if "doInBackground" in t.root)
        assert txn.acc is not None
        assert txn.acc.kind == "json"
        paths = txn.acc.paths()
        assert ("after",) in paths
        assert ("children", "[]", "title") in paths

    def test_response_term_renders_open_json(self, result):
        txn = next(t for t in result.transactions if "doInBackground" in t.root)
        term = txn.response_term
        assert isinstance(term, JsonObject)
        assert term.open_
        keys = {k.text for k, _ in term.entries}
        assert keys == {"after", "children"}

    def test_inter_transaction_dependency_via_field(self, result):
        """loadMore's URI embeds the `after` token from the first response."""
        txn = next(t for t in result.transactions if "loadMore" in t.root)
        origins = origins_of(txn.request.uri)
        assert any(o.startswith("response:") and o.endswith("after") for o in origins)

    def test_uri_constant_prefix_preserved(self, result):
        txn = next(t for t in result.transactions if "loadMore" in t.root)
        consts = [t.text for t in txn.request.uri.walk() if isinstance(t, Const)]
        assert any("reddit.com/.json?after=" in c for c in consts)


class TestLoopsAndRep:
    def test_detect_rep_string_growth(self):
        old = concat(Const("a"), Const("b"))  # == Const("ab")
        new = concat(Const("ab"), Unknown("str"), Const("&"))
        out = detect_rep(old, new)
        assert isinstance(out, type(concat(Const("x"), rep(Const("y")))))
        assert any(isinstance(t, Rep) for t in out.walk())

    def test_detect_rep_divergent_falls_back_to_alt(self):
        out = detect_rep(Const("a"), Const("b"))
        assert isinstance(out, Alt)

    def test_loop_built_query_string_gets_rep(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.LoopApp")
        m = cb.method("fetch", params=["int"])
        sb = m.new("java.lang.StringBuilder", ["http://api.test/items?"])
        i = m.let("i", "int", 0)
        m.label("LOOP")
        m.if_goto(i, ">=", m.param(0), "DONE")
        m.vcall(sb, "append", ["id[]="], returns="java.lang.StringBuilder")
        m.vcall(sb, "append", [i], returns="java.lang.StringBuilder")
        m.vcall(sb, "append", ["&"], returns="java.lang.StringBuilder")
        i2 = m.binop("+", i, 1)
        m.assign(i, i2)
        m.goto("LOOP")
        m.label("DONE")
        url = m.vcall(sb, "toString", [], returns="java.lang.String", into="url")
        req = m.new("org.apache.http.client.methods.HttpGet", [url], into="req")
        client = m.local("client", "org.apache.http.client.HttpClient")
        m.assign(client, None)
        m.vcall(client, "execute", [req],
                returns="org.apache.http.HttpResponse",
                on="org.apache.http.client.HttpClient")
        m.ret_void()
        prog = pb.build()
        cg = build_callgraph(prog)
        interp = SignatureInterpreter(prog, cg)
        result = interp.run([("<t.LoopApp: void fetch(int)>", "ui")])
        assert len(result.transactions) == 1
        uri = result.transactions[0].request.uri
        assert any(isinstance(t, Rep) for t in uri.walk()), str(uri)
        rx = compile_regex(uri)
        assert rx.match("http://api.test/items?")
        assert rx.match("http://api.test/items?id[]=0&id[]=1&")


class TestRequestBodies:
    def _post_app(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.PostApp")
        m = cb.method("login", params=["java.lang.String", "java.lang.String"])
        body = m.new("org.json.JSONObject", [], into="body")
        m.vcall(body, "put", ["user", m.param(0)], returns="org.json.JSONObject")
        m.vcall(body, "put", ["passwd", m.param(1)], returns="org.json.JSONObject")
        s = m.vcall(body, "toString", [], returns="java.lang.String", into="s")
        entity = m.new("org.apache.http.entity.StringEntity", [s], into="entity")
        req = m.new(
            "org.apache.http.client.methods.HttpPost",
            ["https://ssl.api.test/login"],
            into="req",
        )
        m.vcall(req, "setEntity", [entity])
        client = m.local("client", "org.apache.http.client.HttpClient")
        m.assign(client, None)
        resp = m.vcall(client, "execute", [req],
                       returns="org.apache.http.HttpResponse",
                       on="org.apache.http.client.HttpClient", into="resp")
        b = m.scall("org.apache.http.util.EntityUtils", "toString", [resp],
                    returns="java.lang.String", into="b")
        j = m.new("org.json.JSONObject", [b], into="j")
        m.vcall(j, "getString", ["token"], returns="java.lang.String")
        m.ret_void()
        return pb.build()

    def test_post_with_json_body(self):
        prog = self._post_app()
        cg = build_callgraph(prog)
        interp = SignatureInterpreter(prog, cg)
        result = interp.run(
            [("<t.PostApp: void login(java.lang.String,java.lang.String)>", "ui")]
        )
        assert len(result.transactions) == 1
        txn = result.transactions[0]
        assert txn.request.method == "POST"
        assert isinstance(txn.request.body, JsonObject)
        keys = {k.text for k, _ in txn.request.body.entries}
        assert keys == {"user", "passwd"}
        assert txn.acc.paths() == [("token",)]


class TestMediaPlayerConsumer:
    def test_media_uri_from_response_marks_consumer(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.RadioApp")
        m = cb.method("play")
        client = m.local("client", "org.apache.http.client.HttpClient")
        m.assign(client, None)
        req = m.new(
            "org.apache.http.client.methods.HttpGet",
            ["http://www.radioreddit.com/api/hiphop/status.json"],
            into="req",
        )
        resp = m.vcall(client, "execute", [req],
                       returns="org.apache.http.HttpResponse",
                       on="org.apache.http.client.HttpClient", into="resp")
        b = m.scall("org.apache.http.util.EntityUtils", "toString", [resp],
                    returns="java.lang.String", into="b")
        j = m.new("org.json.JSONObject", [b], into="j")
        relay = m.vcall(j, "getString", ["relay"], returns="java.lang.String",
                        into="relay")
        mp = m.new("android.media.MediaPlayer", [], into="mp")
        m.vcall(mp, "setDataSource", [relay])
        m.ret_void()
        prog = pb.build()
        cg = build_callgraph(prog)
        interp = SignatureInterpreter(prog, cg)
        result = interp.run([("<t.RadioApp: void play()>", "ui")])
        assert len(result.transactions) == 2
        status, stream = result.transactions
        # the status response is consumed by the media player via `relay`
        assert "media_player" in status.acc.consumers
        assert ("relay",) in status.acc.paths()
        # the second transaction is GET (.*) — a dynamic URI from response
        assert stream.request.method == "GET"
        assert origins_of(stream.request.uri)
        assert to_regex(stream.request.uri) == "^.*$"


class TestEntrypointOrigins:
    def test_ui_param_tagged_user_input(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.SearchApp")
        m = cb.method("search", params=["java.lang.String"])
        url = m.concat("http://s.test/q?term=", m.param(0), into="url")
        req = m.new("org.apache.http.client.methods.HttpGet", [url], into="req")
        client = m.local("client", "org.apache.http.client.HttpClient")
        m.assign(client, None)
        m.vcall(client, "execute", [req],
                returns="org.apache.http.HttpResponse",
                on="org.apache.http.client.HttpClient")
        m.ret_void()
        prog = pb.build()
        cg = build_callgraph(prog)
        interp = SignatureInterpreter(prog, cg)
        result = interp.run([("<t.SearchApp: void search(java.lang.String)>", "ui")])
        uri = result.transactions[0].request.uri
        assert "user_input" in origins_of(uri)
