"""Corpus-wide validation: every app builds, analyzes and fuzzes to its
ground truth (the per-cell agreement behind Table 1)."""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Extractocol
from repro.corpus import app_keys, get_spec
from repro.ir import validate_program
from repro.runtime import AutoUiFuzzer, ManualUiFuzzer
from repro.signature.matcher import transaction_matches

ALL_KEYS = app_keys()


def analyze(spec):
    cfg = AnalysisConfig(
        async_heuristic=(spec.kind == "closed"),
        scope_prefixes=spec.scope_prefixes,
    )
    return Extractocol(cfg).analyze(spec.build_apk())


@pytest.mark.parametrize("key", ALL_KEYS)
def test_program_is_valid(key):
    spec = get_spec(key)
    apk = spec.build_apk()
    assert validate_program(apk.program) == []
    assert apk.manifest.uses_internet


@pytest.mark.parametrize("key", ALL_KEYS)
def test_static_coverage_matches_truth(key):
    """Extractocol identifies exactly the statically-visible endpoints."""
    spec = get_spec(key)
    report = analyze(spec)
    assert len(report.transactions) == spec.truth.count(visible_to="static")


@pytest.mark.parametrize("key", ALL_KEYS)
def test_manual_fuzzing_matches_truth(key):
    spec = get_spec(key)
    result = ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    assert not result.faults, result.faults[:3]
    assert len(result.trace) == spec.truth.count(visible_to="manual")


@pytest.mark.parametrize("key", ALL_KEYS)
def test_auto_fuzzing_matches_truth(key):
    spec = get_spec(key)
    result = AutoUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    assert len(result.trace) == spec.truth.count(visible_to="auto")


@pytest.mark.parametrize("key", ALL_KEYS)
def test_signatures_match_manual_traffic(key):
    """§5.1 signature validity: every identified signature with traffic has
    a valid match, and every trace entry from a statically-visible endpoint
    matches some signature."""
    spec = get_spec(key)
    # match against the unscoped analysis so out-of-scope library traffic
    # (Kayak's ad tracker) still has a signature to compare with
    report = Extractocol(
        AnalysisConfig(async_heuristic=(spec.kind == "closed"))
    ).analyze(spec.build_apk())
    result = ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    static_hosts_missing = []
    for captured in result.trace:
        matched = any(
            transaction_matches(
                t, captured.request.method, captured.request.url,
                captured.request.body,
            )
            for t in report.transactions + report.unidentified
        )
        if not matched:
            static_hosts_missing.append(str(captured))
    assert not static_hosts_missing, static_hosts_missing[:5]


@pytest.mark.parametrize("key", ["fivemiles", "flipboard", "lucktastic",
                                 "accuweather", "offerup", "tophatter"])
def test_login_wall_blocks_automation(key):
    """Apps behind login walls yield (nearly) nothing to automatic fuzzing
    — the zero columns of Table 1."""
    spec = get_spec(key)
    result = AutoUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    assert len(result.trace) == 0


class TestCoverageOrdering:
    """The headline shape: Extractocol ≥ manual ≥ auto on identified
    messages, modulo the intent/async endpoints only dynamic runs see."""

    @pytest.mark.parametrize("key", app_keys("open"))
    def test_open_apps_all_methods_agree(self, key):
        spec = get_spec(key)
        static_n = len(analyze(spec).transactions)
        manual_n = len(ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network()).trace)
        assert static_n == manual_n == spec.truth.count()

    def test_closed_aggregate_ordering(self):
        static_total = manual_total = auto_total = 0
        for key in app_keys("closed"):
            spec = get_spec(key)
            static_total += len(analyze(spec).transactions)
            manual_total += len(
                ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network()).trace
            )
            auto_total += len(
                AutoUiFuzzer().fuzz(spec.build_apk(), spec.build_network()).trace
            )
        assert static_total > manual_total > auto_total


class TestCaseStudyApps:
    def test_radioreddit_table3(self):
        report = analyze(get_spec("radioreddit"))
        sigs = report.request_signatures()
        assert any("status\\.json" in s or "status.json" in s.replace("\\", "")
                   for s in sigs)
        assert any("(?:save|unsave)" in s or "(?:unsave|save)" in s for s in sigs)
        login = next(t for t in report.transactions
                     if "ssl.reddit.com" in t.request.uri_regex.replace("\\", ""))
        assert {"user", "passwd", "api_type"} <= set(login.request.keywords)
        # modhash/cookie dependencies into #4 and #5
        dep_dsts = {(d.dst_field, d.src_path) for d in report.dependencies}
        assert any("modhash" in p for _, p in dep_dsts)
        assert any("cookie" in p for _, p in dep_dsts)
        # the relay stream is consumed by the media player
        assert "media_player" in report.consumers()

    def test_ted_table4(self):
        report = analyze(get_spec("ted"))
        # dynamically derived requests: ad query, ad video, thumbnail, video
        dynamic = [t for t in report.transactions if t.request.is_dynamic]
        assert len(dynamic) == 4
        # two streams feed the player; their source responses are also
        # marked consumed (the prefetch knowledge of Fig. 1)
        streams = [t for t in report.transactions
                   if t.consumer == "media_player"]
        assert len(streams) == 2
        assert len(report.consumers().get("media_player", [])) == 4
        # DB-mediated dependencies exist (talk sync -> thumbnail/video)
        assert len(report.dependencies) >= 4

    def test_kayak_scoping_and_header(self):
        spec = get_spec("kayak")
        report = analyze(spec)
        # Table 5: 43 in-scope APIs; the ad tracker is scoped out
        assert len(report.transactions) == 43
        assert not any("admarvel" in t.request.uri_regex
                       for t in report.transactions)
        authajax = next(t for t in report.transactions
                        if "/k/authajax" in t.request.uri_regex
                        and t.request.method == "POST"
                        and "registerandroid" in (t.request.body_regex or ""))
        headers = dict(authajax.request.headers)
        assert "User-Agent" in headers
        flight_start = next(t for t in report.transactions
                            if "flight/start" in t.request.uri_regex)
        for key in ("cabin", "travelers", "origin", "destination",
                    "depart_date", "_sid_"):
            assert key in flight_start.request.uri_regex

    def test_weather_async_heuristic_difference(self):
        spec = get_spec("weather")
        apk_off = spec.build_apk()
        off = Extractocol(AnalysisConfig(async_heuristic=False)).analyze(apk_off)
        on = Extractocol(AnalysisConfig(async_heuristic=True)).analyze(
            spec.build_apk()
        )
        forecast_off = next(t for t in off.transactions
                            if "forecast" in t.request.uri_regex)
        forecast_on = next(t for t in on.transactions
                           if "forecast" in t.request.uri_regex)
        # heuristic off: lat/lon keywords lost; on: recovered
        assert "lat" not in forecast_off.request.uri_regex
        assert "lat=" in forecast_on.request.uri_regex.replace("\\", "")

    def test_radioreddit_missing_keyword_with_heuristic_off(self):
        spec = get_spec("radioreddit")
        off = Extractocol(AnalysisConfig(async_heuristic=False)).analyze(
            spec.build_apk()
        )
        on = Extractocol(AnalysisConfig(async_heuristic=True)).analyze(
            spec.build_apk()
        )

        def vote_keywords(report):
            vote = next(t for t in report.transactions
                        if "api/vote" in t.request.uri_regex)
            return set(vote.request.keywords)

        assert "dir" not in vote_keywords(off)  # the one missed keyword
        assert "dir" in vote_keywords(on)
