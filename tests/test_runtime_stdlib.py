"""Unit tests for the concrete runtime stdlib — the dynamic twins of the
static semantic models, exercised through tiny programs."""

from __future__ import annotations

import json

import pytest

from repro.apk import Apk, EntryPoint, Manifest, Resources, TriggerKind
from repro.ir import ProgramBuilder
from repro.runtime import HttpResponse, Network, Runtime, ScriptedServer


def run_app(build_method, *, routes=(), resources=None, params=None):
    pb = ProgramBuilder()
    cb = pb.class_("rt.App", superclass="android.app.Activity")
    m = cb.method("go", params=params or [])
    build_method(m)
    m.ret_void()
    program = pb.build()
    apk = Apk(
        manifest=Manifest(package="rt"),
        program=program,
        resources=resources or Resources(),
        entrypoints=[EntryPoint(
            str(program.class_of("rt.App").find_methods("go")[0].sig),
            TriggerKind.UI, "go")],
    )
    network = Network()
    for host, method, pattern, handler in routes:
        server = ScriptedServer(host)
        server.add(method, pattern, handler)
        network.register(host, server)
    rt = Runtime(apk, network)
    rt.fire_entrypoint(apk.entrypoints[0])
    return rt, network


class TestStringsRuntime:
    def test_format_and_builder(self):
        captured = {}

        def build(m):
            s = m.scall("java.lang.String", "format", ["u/%s/x/%d", "bob", 3],
                        returns="java.lang.String")
            sb = m.new("java.lang.StringBuilder", ["http://h.test/"])
            m.vcall(sb, "append", [s], returns="java.lang.StringBuilder")
            url = m.vcall(sb, "toString", [], returns="java.lang.String")
            req = m.new("org.apache.http.client.methods.HttpGet", [url])
            client = m.local("client", "org.apache.http.client.HttpClient")
            m.assign(client, None)
            m.vcall(client, "execute", [req],
                    returns="org.apache.http.HttpResponse",
                    on="org.apache.http.client.HttpClient")

        rt, network = run_app(
            build,
            routes=(("h.test", "GET", r".*",
                     lambda req, state: HttpResponse.text("ok")),),
        )
        assert network.trace.urls() == ["http://h.test/u/bob/x/3"]

    def test_base64_and_encode(self):
        def build(m):
            enc = m.scall("android.util.Base64", "encodeToString", ["abc", 0],
                          returns="java.lang.String")
            m.putstatic("rt.App", "captured", enc)

        rt, _ = run_app(build)
        assert rt.statics[("rt.App", "captured")] == "YWJj"


class TestDatabaseRuntime:
    def test_insert_then_query(self):
        def build(m):
            cv = m.new("android.content.ContentValues", [])
            m.vcall(cv, "put", ["url", "http://cdn.test/a.jpg"])
            helper = m.local("helper",
                             "android.database.sqlite.SQLiteOpenHelper")
            m.assign(helper, None)
            db = m.vcall(helper, "getWritableDatabase", [],
                         returns="android.database.sqlite.SQLiteDatabase")
            m.vcall(db, "insert", ["images", None, cv], returns="long")
            cur = m.vcall(db, "rawQuery", ["SELECT url FROM images", None],
                          returns="android.database.Cursor")
            m.vcall(cur, "moveToFirst", [], returns="boolean")
            url = m.vcall(cur, "getString", [0], returns="java.lang.String")
            m.putstatic("rt.App", "row", url)

        rt, _ = run_app(build)
        assert rt.statics[("rt.App", "row")] == "http://cdn.test/a.jpg"

    def test_column_index_lookup(self):
        def build(m):
            cv = m.new("android.content.ContentValues", [])
            m.vcall(cv, "put", ["a", "1"])
            m.vcall(cv, "put", ["b", "2"])
            helper = m.local("helper",
                             "android.database.sqlite.SQLiteOpenHelper")
            m.assign(helper, None)
            db = m.vcall(helper, "getWritableDatabase", [],
                         returns="android.database.sqlite.SQLiteDatabase")
            m.vcall(db, "insert", ["t", None, cv], returns="long")
            cur = m.vcall(db, "rawQuery", ["SELECT a, b FROM t", None],
                          returns="android.database.Cursor")
            m.vcall(cur, "moveToFirst", [], returns="boolean")
            idx = m.vcall(cur, "getColumnIndex", ["b"], returns="int")
            val = m.vcall(cur, "getString", [idx], returns="java.lang.String")
            m.putstatic("rt.App", "b", val)

        rt, _ = run_app(build)
        assert rt.statics[("rt.App", "b")] == "2"


class TestGsonRuntime:
    def test_reflection_roundtrip(self):
        pb = ProgramBuilder()
        dto = pb.class_("rt.Dto")
        dto.field("name", "java.lang.String")
        dto.field("age", "int")
        cb = pb.class_("rt.App", superclass="android.app.Activity")
        m = cb.method("go")
        obj = m.new("rt.Dto", [], into="dto")
        m.putfield(obj, "name", "alice", cls="rt.Dto")
        m.putfield(obj, "age", 30, cls="rt.Dto")
        gson = m.new("com.google.gson.Gson", [], into="gson")
        text = m.vcall(gson, "toJson", [obj], returns="java.lang.String")
        m.putstatic("rt.App", "json", text)
        from repro.ir import AssignStmt, ClassConst, InvokeExpr, MethodSig, parse_type

        back = m.fresh("rt.Dto", "back")
        sig = MethodSig("com.google.gson.Gson", "fromJson",
                        (parse_type("java.lang.String"),
                         parse_type("java.lang.Class")),
                        parse_type("rt.Dto"))
        m.emit(AssignStmt(back, InvokeExpr("virtual", sig, gson,
                                           (text, ClassConst("rt.Dto")))))
        name2 = m.getfield(back, "name", cls="rt.Dto")
        m.putstatic("rt.App", "name2", name2)
        m.ret_void()
        program = pb.build()
        apk = Apk(manifest=Manifest(package="rt"), program=program,
                  entrypoints=[EntryPoint("<rt.App: void go()>",
                                          TriggerKind.UI, "go")])
        rt = Runtime(apk, Network())
        rt.fire_entrypoint(apk.entrypoints[0])
        assert json.loads(rt.statics[("rt.App", "json")]) == {
            "name": "alice", "age": 30}
        assert rt.statics[("rt.App", "name2")] == "alice"


class TestXmlRuntime:
    def test_dom_navigation(self):
        def build(m):
            dbf = m.scall("javax.xml.parsers.DocumentBuilderFactory",
                          "newInstance", [],
                          returns="javax.xml.parsers.DocumentBuilderFactory")
            builder = m.vcall(dbf, "newDocumentBuilder", [],
                              returns="javax.xml.parsers.DocumentBuilder")
            doc = m.vcall(builder, "parse",
                          ['<r><item id="7">hello</item></r>'],
                          returns="org.w3c.dom.Document")
            nl = m.vcall(doc, "getElementsByTagName", ["item"],
                         returns="org.w3c.dom.NodeList")
            el = m.vcall(nl, "item", [0], returns="org.w3c.dom.Element")
            text = m.vcall(el, "getTextContent", [], returns="java.lang.String")
            attr = m.vcall(el, "getAttribute", ["id"],
                           returns="java.lang.String")
            m.putstatic("rt.App", "text", text)
            m.putstatic("rt.App", "attr", attr)

        rt, _ = run_app(build)
        assert rt.statics[("rt.App", "text")] == "hello"
        assert rt.statics[("rt.App", "attr")] == "7"


class TestUrlConnRuntime:
    def test_post_with_body(self):
        seen = {}

        def handler(req, state):
            seen["body"] = req.body
            seen["ctype"] = req.headers.get("Content-Type")
            return HttpResponse.json_response({"ok": 1})

        def build(m):
            u = m.new("java.net.URL", ["http://h.test/upload"])
            conn = m.vcall(u, "openConnection", [],
                           returns="java.net.HttpURLConnection")
            m.vcall(conn, "setRequestMethod", ["POST"])
            m.vcall(conn, "setRequestProperty",
                    ["Content-Type", "application/json"])
            out = m.vcall(conn, "getOutputStream", [],
                          returns="java.io.OutputStream")
            writer = m.new("java.io.OutputStreamWriter", [out])
            m.vcall(writer, "write", ['{"k":1}'])
            m.vcall(writer, "flush", [])
            m.vcall(conn, "getInputStream", [], returns="java.io.InputStream")

        run_app(build, routes=(("h.test", "POST", r"/upload", handler),))
        assert seen["body"] == '{"k":1}'
        assert seen["ctype"] == "application/json"


class TestVolleyRuntime:
    def test_listener_receives_parsed_json(self):
        pb = ProgramBuilder()
        listener = pb.class_("rt.Listener",
                             interfaces=("com.android.volley.Response$Listener",))
        lm = listener.method("onResponse", params=["org.json.JSONObject"])
        token = lm.vcall(lm.param(0), "getString", ["token"],
                         returns="java.lang.String")
        lm.putstatic("rt.App", "token", token)
        lm.ret_void()
        cb = pb.class_("rt.App", superclass="android.app.Activity")
        m = cb.method("go")
        lobj = m.new("rt.Listener", [], into="listener")
        req = m.new("com.android.volley.toolbox.JsonObjectRequest",
                    [0, "http://h.test/session", lobj])
        queue = m.scall("com.android.volley.toolbox.Volley", "newRequestQueue",
                        [m.this], returns="com.android.volley.RequestQueue")
        m.vcall(queue, "add", [req], returns="com.android.volley.Request")
        m.ret_void()
        program = pb.build()
        apk = Apk(manifest=Manifest(package="rt"), program=program,
                  entrypoints=[EntryPoint("<rt.App: void go()>",
                                          TriggerKind.UI, "go")])
        network = Network()
        server = ScriptedServer("h.test")
        server.add("GET", r"/session",
                   lambda req, state: HttpResponse.json_response(
                       {"token": "vt-5"}))
        network.register("h.test", server)
        rt = Runtime(apk, network)
        rt.fire_entrypoint(apk.entrypoints[0])
        assert rt.statics[("rt.App", "token")] == "vt-5"
