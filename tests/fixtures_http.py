"""A miniature Diode-style HTTP client program used by analysis tests.

Mirrors the paper's Figure 3: a branchy StringBuilder URI construction,
an Apache HttpClient demarcation point, and JSON response parsing — plus a
second transaction whose request embeds a value from the first response
(for dependency tests).
"""

from __future__ import annotations

from repro.apk import Apk, EntryPoint, Manifest, Resources, TriggerKind
from repro.ir import ProgramBuilder

CLS = "com.example.reddit.Fetcher"


def build_mini_reddit() -> Apk:
    pb = ProgramBuilder()
    cb = pb.class_(CLS, superclass="android.app.Activity")
    cb.field("mClient", "org.apache.http.client.HttpClient")
    cb.field("mSubreddit", "java.lang.String")
    cb.field("mAfter", "java.lang.String")

    # void doInBackground() — builds URI, executes, parses.
    m = cb.method("doInBackground")
    sub = m.getfield(m.this, "mSubreddit", cls=CLS)
    sb = m.new("java.lang.StringBuilder", ["http://www.reddit.com"])
    m.if_goto(sub, "==", None, "FRONT")
    m.vcall(sb, "append", ["/r/"], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", [sub], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", [".json?limit="], returns="java.lang.StringBuilder")
    cnt = m.let("cnt", "int", 25)
    m.vcall(sb, "append", [cnt], returns="java.lang.StringBuilder")
    m.goto("EXEC")
    m.label("FRONT")
    m.vcall(sb, "append", ["/.json?"], returns="java.lang.StringBuilder")
    after = m.getfield(m.this, "mAfter", cls=CLS)
    m.if_goto(after, "==", None, "EXEC")
    m.vcall(sb, "append", ["&after="], returns="java.lang.StringBuilder")
    m.vcall(sb, "append", [after], returns="java.lang.StringBuilder")
    m.label("EXEC")
    url = m.vcall(sb, "toString", [], returns="java.lang.String", into="url")
    request = m.new("org.apache.http.client.methods.HttpGet", [url], into="request")
    client = m.getfield(m.this, "mClient", cls=CLS)
    resp = m.vcall(
        client,
        "execute",
        [request],
        returns="org.apache.http.HttpResponse",
        on="org.apache.http.client.HttpClient",
        into="resp",
    )
    entity = m.vcall(
        resp, "getEntity", [], returns="org.apache.http.HttpEntity", into="entity"
    )
    body = m.scall(
        "org.apache.http.util.EntityUtils",
        "toString",
        [entity],
        returns="java.lang.String",
        into="body",
    )
    m.call_this("parseListing", [body])
    m.ret_void()

    # void parseListing(String) — reads JSON keys, stashes the "after" token.
    p = cb.method("parseListing", params=["java.lang.String"])
    json = p.new("org.json.JSONObject", [p.param(0)], into="json")
    after2 = p.vcall(
        json, "getString", ["after"], returns="java.lang.String", into="after2"
    )
    p.putfield(p.this, "mAfter", after2, cls=CLS)
    titles = p.vcall(
        json, "getJSONArray", ["children"], returns="org.json.JSONArray", into="titles"
    )
    n = p.vcall(titles, "length", [], returns="int", into="n")
    i = p.let("i", "int", 0)
    p.label("LOOP")
    p.if_goto(i, ">=", n, "DONE")
    item = p.vcall(titles, "getJSONObject", [i], returns="org.json.JSONObject", into="item")
    title = p.vcall(item, "getString", ["title"], returns="java.lang.String", into="title")
    p.scall("android.util.Log", "d", ["reddit", title])
    i2 = p.binop("+", i, 1)
    p.assign(i, i2)
    p.goto("LOOP")
    p.label("DONE")
    p.ret_void()

    # void loadMore() — a second transaction using mAfter from the response.
    lm = cb.method("loadMore")
    after3 = lm.getfield(lm.this, "mAfter", cls=CLS)
    url2 = lm.concat("http://www.reddit.com/.json?after=", after3, into="url2")
    req2 = lm.new("org.apache.http.client.methods.HttpGet", [url2], into="req2")
    client2 = lm.getfield(lm.this, "mClient", cls=CLS)
    lm.vcall(
        client2,
        "execute",
        [req2],
        returns="org.apache.http.HttpResponse",
        on="org.apache.http.client.HttpClient",
        into="resp2",
    )
    lm.ret_void()

    program = pb.build()
    return Apk(
        manifest=Manifest(
            package="com.example.reddit",
            activities=[CLS],
            permissions=["android.permission.INTERNET"],
        ),
        program=program,
        resources=Resources(),
        entrypoints=[
            EntryPoint(
                method_id=f"<{CLS}: void doInBackground()>",
                kind=TriggerKind.LIFECYCLE,
                name="load front page",
            ),
            EntryPoint(
                method_id=f"<{CLS}: void loadMore()>",
                kind=TriggerKind.UI,
                name="load more",
            ),
        ],
    )
