"""§5.1 obfuscation validation, corpus-wide.

"For open source apps, we obfuscate their APKs using ProGuard and verify
that the same results hold as non-obfuscated APKs."
"""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Extractocol
from repro.apk import build_deobfuscation_map, obfuscate, rename_program
from repro.corpus import app_keys, get_spec
from repro.ir import validate_program


def _analyze(apk, kind: str):
    return Extractocol(AnalysisConfig(async_heuristic=(kind == "closed"))).analyze(apk)


@pytest.mark.parametrize("key", app_keys("open"))
def test_open_apps_invariant_under_obfuscation(key):
    spec = get_spec(key)
    plain = _analyze(spec.build_apk(), spec.kind)
    obf_apk = obfuscate(spec.build_apk()).apk
    assert validate_program(obf_apk.program) == []
    obf = _analyze(obf_apk, spec.kind)
    assert obf.unique_uri_signatures() == plain.unique_uri_signatures()
    assert len(obf.transactions) == len(plain.transactions)
    assert {str(d) for d in obf.dependencies} == {
        str(d) for d in plain.dependencies
    }
    assert obf.stats().as_row() == plain.stats().as_row()


@pytest.mark.parametrize("key", ["ted", "kayak", "linkedin"])
def test_closed_apps_invariant_under_obfuscation(key):
    spec = get_spec(key)
    cfg = AnalysisConfig(async_heuristic=True, scope_prefixes=())
    plain = Extractocol(cfg).analyze(spec.build_apk())
    obf = Extractocol(cfg).analyze(obfuscate(spec.build_apk()).apk)
    assert obf.unique_uri_signatures() == plain.unique_uri_signatures()


@pytest.mark.parametrize("key", app_keys())
def test_rename_map_inverted_round_trips_every_map(key):
    """``RenameMap.inverted()`` must carry the class, method AND field
    maps: rewrite → invert → rewrite is the identity on every corpus
    program (the diff subsystem's rename-lineage tolerance rests on it)."""
    from repro.apk.rewrite import rename_program
    from repro.ir.printer import print_program

    spec = get_spec(key)
    plain = spec.build_apk()
    result = obfuscate(spec.build_apk())
    renames, inv = result.renames, result.renames.inverted()

    # exact map-level inversion, no entries dropped or collapsed
    for forward, backward in (
        (renames.class_map, inv.class_map),
        (renames.method_map, inv.method_map),
        (renames.field_map, inv.field_map),
    ):
        assert backward == {v: k for k, v in forward.items()}
        assert len(backward) == len(forward)  # injective: nothing lost
    assert inv.inverted().class_map == renames.class_map
    assert inv.inverted().method_map == renames.method_map
    assert inv.inverted().field_map == renames.field_map

    # program-level identity: un-renaming the obfuscated program restores
    # the original, byte-for-byte in the canonical textual IR
    restored = rename_program(result.apk.program, inv)
    assert print_program(restored) == print_program(plain.program)


def test_obfuscated_library_needs_deobfuscation_map():
    """§3.4: when an *embedded library* is obfuscated too, the semantic
    model misses it until the signature-similarity map restores the names."""
    from repro.apk.rewrite import RenameMap

    spec = get_spec("radioreddit")
    plain_apk = spec.build_apk()
    reference = spec.build_apk().program  # pre-obfuscation "library jar"
    result = obfuscate(plain_apk)
    mapping = build_deobfuscation_map(result.apk.program, reference)
    assert mapping.matched_classes >= 1
    restored = rename_program(result.apk.program, mapping.renames)
    # restored program has the original class names back
    assert set(restored.classes) == set(reference.classes)


def test_fuzzing_also_invariant_under_obfuscation():
    """Dynamic execution of the obfuscated app produces identical traffic."""
    from repro.runtime import ManualUiFuzzer

    spec = get_spec("radioreddit")
    plain = ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
    obf = ManualUiFuzzer().fuzz(
        obfuscate(spec.build_apk()).apk, spec.build_network()
    )
    assert plain.trace.unique_urls() == obf.trace.unique_urls()
    assert not obf.faults, obf.faults
