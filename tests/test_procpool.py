"""Tests for the persistent process worker pool (`repro.perf.procpool`)
and the executor plumbing around it (`repro.perf.parallel`).

The contracts under test: a pool ships its payload to every worker exactly
once and then maps items in input order under both start methods; the
payloads the engine actually ships (``ProgramIndex``, slice results, the
slicer itself) survive a pickle round-trip unchanged; and a process
executor that cannot be built degrades to threads *audibly* — counter plus
one-time warning — never silently.
"""

from __future__ import annotations

import os
import pickle
import threading
import warnings

import pytest

from repro.cfg.callgraph import build_callgraph
from repro.corpus import build_app
from repro.obs.metrics import global_registry
from repro.obs.tracer import Tracer
from repro.perf import parallel
from repro.perf.index import ProgramIndex
from repro.perf.parallel import (
    fanout_width,
    resolve_executor,
    resolve_workers,
    run_map,
    usable_cpus,
)
from repro.perf.procpool import (
    PoolUnavailable,
    ProcPool,
    SpanRecord,
    available_start_methods,
    default_start_method,
)
from repro.slicing.slicer import NetworkSlicer
from repro.taint.defuse import compute_defuse


def _add_payload(payload, item):
    """Module-level pool task (pickled by reference)."""
    return payload + item


def _square(x):
    return x * x


# ------------------------------------------------------------------ pool map
@pytest.mark.parametrize("method", available_start_methods())
def test_pool_maps_in_input_order(method):
    with ProcPool(100, workers=2, start_method=method) as pool:
        assert pool.start_method == method
        assert pool.map(_add_payload, list(range(7))) == [
            100 + i for i in range(7)
        ]
        # the pool is persistent: a second map reuses the same workers
        assert pool.map(_add_payload, [5, 3]) == [105, 103]
    assert pool.closed


def test_pool_map_empty_and_close_idempotent():
    pool = ProcPool(0, workers=1)
    assert pool.map(_add_payload, []) == []
    pool.close()
    pool.close()
    assert pool.closed


def test_pool_emits_worker_spans_in_input_order():
    tracer = Tracer()
    root = tracer.span("root")
    with ProcPool(1, workers=2) as pool:
        pool.map(_add_payload, [1, 2, 3], span=root, label="chunk")
    names = [c.name for c in root.children]
    assert names == ["chunk-1", "chunk-2", "chunk-3"]
    assert all(c.seconds >= 0 for c in root.children)


def test_span_record_replay():
    tracer = Tracer()
    root = tracer.span("root")
    SpanRecord(label="w-1", seconds=0.25, counters={"items": 3}).replay(root)
    (child,) = root.children
    assert child.name == "w-1"
    assert child.seconds == 0.25
    assert child.counters == {"items": 3}


def test_unpicklable_payload_raises_pool_unavailable_under_spawn():
    if "spawn" not in available_start_methods():
        pytest.skip("spawn unavailable")
    with pytest.raises(PoolUnavailable, match="not picklable"):
        ProcPool(threading.Lock(), workers=1, start_method="spawn")


def test_unknown_start_method_raises_pool_unavailable():
    with pytest.raises(PoolUnavailable):
        ProcPool(1, workers=1, start_method="carrier-pigeon")


def test_start_method_env_override(monkeypatch):
    if "spawn" not in available_start_methods():
        pytest.skip("spawn unavailable")
    monkeypatch.setenv("REPRO_START_METHOD", "spawn")
    assert default_start_method() == "spawn"
    monkeypatch.setenv("REPRO_START_METHOD", "not-a-method")
    assert default_start_method() is None


# --------------------------------------------------- payload pickle contract
@pytest.fixture(scope="module")
def diode_slicer():
    apk = build_app("diode")
    callgraph = build_callgraph(apk.program)
    index = ProgramIndex(apk.program, callgraph)
    return NetworkSlicer(apk.program, callgraph, index=index)


def test_program_index_pickle_round_trip(diode_slicer):
    """The index (with its unpicklable RLock swapped out in transit) must
    answer identically after a round trip, warm memo tables included."""
    index = diode_slicer.index
    method = next(m for m in index.program.methods() if m.body is not None)
    warm_masks = index.reach_masks(method)
    warm_stores = index.field_stores

    clone = pickle.loads(pickle.dumps(index))
    assert clone.reach_masks(clone.program.method_by_id(method.method_id)) \
        == warm_masks
    assert clone.field_stores == warm_stores
    # the replacement lock is live: lazy computation still works
    other = next(
        m for m in clone.program.methods()
        if m.body is not None and m.method_id != method.method_id
    )
    du = clone.defuse_of(other)
    full = compute_defuse(other)
    assert du.def_sites == full.def_sites


def test_slice_results_pickle_round_trip(diode_slicer):
    """DPSlices — the values that cross the process boundary back to the
    parent — must survive pickling byte-exactly."""
    slices = [diode_slicer.slice_dp(dp) for dp in diode_slicer.scan()]
    assert slices
    for s in slices:
        clone = pickle.loads(pickle.dumps(s))
        assert clone.dp.site == s.dp.site
        assert clone.request.stmts == s.request.stmts
        assert clone.response.stmts == s.response.stmts
        assert clone.request.stats == s.request.stats
        assert clone.methods == s.methods


def test_slicer_pickle_drops_live_pool(diode_slicer):
    clone = pickle.loads(pickle.dumps(diode_slicer))
    assert clone._pool is None
    # and the clone still slices (the worker-side code path)
    dps = clone.scan()
    assert clone.slice_dp(dps[0]).all_stmts


# ------------------------------------------------------------- worker sizing
def test_usable_cpus_prefers_affinity_mask(monkeypatch):
    if not hasattr(os, "sched_getaffinity"):
        pytest.skip("platform has no sched_getaffinity")
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2})
    assert usable_cpus() == 3
    assert resolve_workers(0) == 3
    assert fanout_width(64) == 3


def test_usable_cpus_falls_back_to_cpu_count(monkeypatch):
    def boom(pid):
        raise OSError("no affinity here")

    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", boom)
    assert usable_cpus() == (os.cpu_count() or 1)


# ----------------------------------------------------------- run_map engines
def test_run_map_engines_agree():
    items = list(range(17))
    expected = [x * x for x in items]
    assert run_map(_square, items, workers=2, executor="serial") == expected
    assert run_map(_square, items, workers=2, executor="thread") == expected
    assert run_map(_square, items, workers=2, executor="process") == expected


def test_resolve_executor_rejects_unknown():
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor("fiber")
    assert resolve_executor("auto") in ("thread", "process")
    assert resolve_executor(None) in ("thread", "process")


def test_process_fallback_is_audible(monkeypatch):
    """A process map that cannot build its pool must fall back to threads,
    bump the global executor_fallbacks counter, and warn (once)."""

    class NoPool:
        def __init__(self, *a, **kw):
            raise PoolUnavailable("injected: no pool for you")

    monkeypatch.setattr(parallel, "ProcPool", NoPool)
    monkeypatch.setattr(parallel, "_fallback_warned", False)
    counter = global_registry().counter("executor_fallbacks")
    before = counter.value

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = run_map(_square, [1, 2, 3], workers=2, executor="process")
    assert result == [1, 4, 9]
    assert counter.value == before + 1
    assert any(
        issubclass(w.category, RuntimeWarning)
        and "falling back" in str(w.message)
        for w in caught
    )

    # second degradation: counted again, but not warned again
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        run_map(_square, [1, 2, 3], workers=2, executor="process")
    assert counter.value == before + 2
    assert not caught
