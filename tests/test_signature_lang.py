"""Unit + property tests for the signature language and regex compiler."""

from __future__ import annotations

import re

import pytest
from hypothesis import given, strategies as st

from repro.signature import (
    Alt,
    Concat,
    Const,
    JsonArray,
    JsonObject,
    Rep,
    Unknown,
    alt,
    compile_regex,
    concat,
    constant_keywords,
    origins_of,
    rep,
    to_regex,
)


class TestSmartConstructors:
    def test_concat_merges_literals(self):
        out = concat(Const("http://"), Const("host"), Const("/p"))
        assert out == Const("http://host/p")

    def test_concat_flattens_nested(self):
        inner = concat(Const("a"), Unknown("str"))
        out = concat(inner, Const("b"))
        assert isinstance(out, Concat)
        assert len(out.parts) == 3

    def test_concat_drops_empty(self):
        assert concat(Const(""), Const("x"), Const("")) == Const("x")

    def test_alt_dedupes(self):
        assert alt(Const("a"), Const("a")) == Const("a")

    def test_alt_flattens(self):
        out = alt(alt(Const("a"), Const("b")), Const("c"))
        assert isinstance(out, Alt)
        assert len(out.options) == 3

    def test_alt_explosion_degrades_to_unknown(self):
        out = alt(*[Const(str(i)) for i in range(100)])
        assert isinstance(out, Unknown)

    def test_rep_idempotent(self):
        body = Const("x")
        assert rep(rep(body)) == rep(body)

    def test_unknown_kind_validated(self):
        with pytest.raises(ValueError):
            Unknown("nope")


class TestRegex:
    def test_const_escaped(self):
        sig = Const("a.b?c=1")
        assert re.fullmatch(to_regex(sig)[1:-1], "a.b?c=1")
        assert compile_regex(sig).match("a.b?c=1")
        assert not compile_regex(sig).match("axb?c=1")

    def test_unknown_kinds(self):
        assert compile_regex(Unknown("int")).match("12345")
        assert not compile_regex(Unknown("int")).match("abc")
        assert compile_regex(Unknown("str")).match("anything at all")

    def test_concat_uri_pattern(self):
        sig = concat(
            Const("http://www.reddit.com/search/.json?q="),
            Unknown("str"),
            Const("&sort="),
            Unknown("str"),
        )
        rx = compile_regex(sig)
        assert rx.match("http://www.reddit.com/search/.json?q=cats&sort=top")
        assert not rx.match("http://www.reddit.com/search/json?q=cats")

    def test_alt_compiles_to_pipe(self):
        sig = alt(Const("save"), Const("unsave"))
        rx = compile_regex(sig)
        assert rx.match("save") and rx.match("unsave")
        assert not rx.match("vote")

    def test_rep_compiles_to_star(self):
        sig = concat(Const("a"), rep(Const("x")), Const("b"))
        rx = compile_regex(sig)
        for s in ("ab", "axb", "axxxb"):
            assert rx.match(s)
        assert not rx.match("ayb")

    def test_json_object_regex_requires_keys(self):
        sig = JsonObject(((Const("user"), Unknown("str")),))
        rx = compile_regex(sig)
        assert rx.match('{"user": "bob"}')
        assert not rx.match('{"name": "bob"}')


class TestKeywords:
    def test_json_keys_counted(self):
        sig = JsonObject(
            (
                (Const("modhash"), Unknown("str")),
                (Const("cookie"), Unknown("str")),
            )
        )
        assert sorted(constant_keywords(sig)) == ["cookie", "modhash"]

    def test_query_string_keys_counted(self):
        sig = concat(Const("user="), Unknown("str"), Const("&passwd="), Unknown("str"))
        kws = constant_keywords(sig)
        assert "user" in kws and "passwd" in kws

    def test_nested_arrays(self):
        sig = JsonObject(
            ((Const("songs"), JsonArray(elem=JsonObject(((Const("title"), Unknown("str")),)))),)
        )
        kws = constant_keywords(sig)
        assert "songs" in kws and "title" in kws

    def test_origins_collected(self):
        sig = concat(Const("id="), Unknown("str", origin="response:1:$.after"))
        assert origins_of(sig) == {"response:1:$.after"}


# ---------------------------------------------------------------- property tests
terms = st.deferred(
    lambda: st.one_of(
        st.builds(Const, st.text(alphabet="abc/?=&.", max_size=6)),
        st.builds(Unknown, st.sampled_from(["str", "int"])),
        st.builds(lambda a, b: concat(a, b), terms, terms),
        st.builds(lambda a, b: alt(a, b), terms, terms),
        st.builds(rep, st.builds(Const, st.text(alphabet="xy", min_size=1, max_size=3))),
    )
)


class TestProperties:
    @given(terms)
    def test_regex_always_compiles(self, term):
        compile_regex(term)

    @given(terms, terms)
    def test_concat_associative_normal_form(self, a, b):
        # concat(a, concat(b)) and concat(concat(a, b)) normalise identically
        assert concat(a, concat(b)) == concat(concat(a, b))

    @given(terms)
    def test_alt_idempotent(self, t):
        assert alt(t, t) == t

    @given(st.lists(st.text(alphabet="ab=&x.", max_size=5), max_size=4))
    def test_const_roundtrip_match(self, parts):
        text = "".join(parts)
        rx = compile_regex(Const(text))
        assert rx.match(text)

    @given(terms)
    def test_walk_includes_self(self, t):
        assert t in list(t.walk())
