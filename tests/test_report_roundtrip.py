"""Report serialisation round-trip: ``report_to_dict`` / ``report_from_dict``
are exact inverses over the dict form, for every corpus app."""

from __future__ import annotations

import json

import pytest

from repro.core.report import (
    AnalysisReport,
    FrozenTransaction,
    report_from_dict,
    report_to_dict,
)
from repro.corpus import app_keys
from repro.service import resolve_target


def _fresh_report(key: str):
    from repro import Extractocol

    apk, config, _ = resolve_target(key)
    return Extractocol(config).analyze(apk)


@pytest.mark.parametrize("key", app_keys())
def test_roundtrip_every_corpus_app(key):
    report = _fresh_report(key)
    d1 = report_to_dict(report)
    # through real JSON, as the store and the API do
    rebuilt = report_from_dict(json.loads(json.dumps(d1)))
    d2 = report_to_dict(rebuilt)
    assert d1 == d2
    assert json.dumps(d1, sort_keys=True) == json.dumps(d2, sort_keys=True)


class TestDeserializedView:
    def test_derived_views_survive(self):
        report = _fresh_report("ted")
        rebuilt = report_from_dict(report_to_dict(report))
        assert isinstance(rebuilt, AnalysisReport)
        assert rebuilt.stats().as_row() == report.stats().as_row()
        assert rebuilt.summary() == report.summary()
        assert rebuilt.consumers() == report.consumers()
        first = report.transactions[0].txn_id
        assert isinstance(rebuilt.transaction(first), FrozenTransaction)
        assert rebuilt.transaction(first).describe()

    def test_dependencies_parse_back_to_objects(self):
        report = _fresh_report("radioreddit")
        assert report.dependencies, "radioreddit should have dependencies"
        rebuilt = report_from_dict(report_to_dict(report))
        assert [str(d) for d in rebuilt.dependencies] == [
            str(d) for d in report.dependencies
        ]
        dep = rebuilt.dependencies[0]
        assert dep.src_txn >= 0 and dep.dst_field

    def test_malformed_dependency_rejected(self):
        from repro.core.report import _dep_from_str

        with pytest.raises(ValueError):
            _dep_from_str("not a dependency")

    def test_timing_never_serialized(self):
        report = _fresh_report("diode")
        assert report.analysis_seconds > 0
        assert "analysis_seconds" not in report_to_dict(report)

    def test_empty_report_roundtrip(self):
        d = report_to_dict(AnalysisReport(app="empty"))
        assert report_to_dict(report_from_dict(d)) == d
