"""Tests for the dynamic substrate: interpreter, HTTP stack, fuzzers."""

from __future__ import annotations

import json

import pytest
from fixtures_http import CLS, build_mini_reddit

from repro.runtime import (
    AutoUiFuzzer,
    HttpResponse,
    ManualUiFuzzer,
    Network,
    Runtime,
    ScriptedServer,
    TrafficTrace,
)
from repro.runtime.httpstack import HttpRequest


def reddit_network() -> Network:
    network = Network()
    server = ScriptedServer("www.reddit.com")

    @server.route("GET", r"/(r/\w+)?/?\.json")
    def listing(request, state):
        return HttpResponse.json_response(
            {
                "after": "t3_next",
                "children": [
                    {"title": "first post"},
                    {"title": "second post"},
                ],
            }
        )

    network.register("www.reddit.com", server)
    return network


class TestHttpStack:
    def test_request_parsing(self):
        req = HttpRequest("GET", "https://h.test/a/b?x=1&y=two")
        assert req.host == "h.test"
        assert req.path == "/a/b"
        assert req.query == {"x": "1", "y": "two"}
        assert req.scheme == "https"

    def test_network_routes_and_records(self):
        network = reddit_network()
        resp = network.send(HttpRequest("GET", "http://www.reddit.com/.json"))
        assert resp.status == 200
        assert "after" in resp.json()
        assert len(network.trace) == 1

    def test_unknown_host_502(self):
        network = Network()
        resp = network.send(HttpRequest("GET", "http://nowhere.test/"))
        assert resp.status == 502

    def test_unrouted_path_404(self):
        network = reddit_network()
        resp = network.send(HttpRequest("GET", "http://www.reddit.com/nope"))
        assert resp.status == 404


class TestInterpreter:
    def test_executes_reddit_flow(self):
        apk = build_mini_reddit()
        network = reddit_network()
        rt = Runtime(apk, network)
        rt.fire_entrypoint(apk.entrypoints[0])  # doInBackground
        urls = network.trace.urls()
        assert len(urls) == 1
        assert urls[0].startswith("http://www.reddit.com/")
        # response parsing stored the pagination token on the singleton
        fetcher = rt.singleton(CLS)
        assert fetcher.fields["mAfter"] == "t3_next"

    def test_state_persists_across_events(self):
        apk = build_mini_reddit()
        network = reddit_network()
        rt = Runtime(apk, network)
        rt.fire_entrypoint(apk.entrypoints[0])
        rt.fire_entrypoint(apk.entrypoints[1])  # loadMore uses mAfter
        urls = network.trace.urls()
        assert urls[1] == "http://www.reddit.com/.json?after=t3_next"

    def test_branching_on_field(self):
        apk = build_mini_reddit()
        network = reddit_network()
        rt = Runtime(apk, network)
        fetcher = rt.singleton(CLS)
        fetcher.fields["mSubreddit"] = "pics"
        rt.fire_entrypoint(apk.entrypoints[0])
        assert network.trace.urls()[0] == "http://www.reddit.com/r/pics.json?limit=25"

    def test_loop_executes_fully(self):
        """The title loop iterates over both children (no early exit)."""
        apk = build_mini_reddit()
        rt = Runtime(apk, reddit_network())
        rt.fire_entrypoint(apk.entrypoints[0])
        assert rt.stats.steps > 20
        assert not rt.stats.faults


class TestFuzzers:
    def test_manual_fires_ui_and_lifecycle(self):
        apk = build_mini_reddit()
        result = ManualUiFuzzer().fuzz(apk, reddit_network())
        assert len(result.fired) == 2
        assert len(result.trace) == 2

    def test_auto_fires_same_here(self):
        """No login/custom-UI gates in the fixture: PUMA matches manual."""
        apk = build_mini_reddit()
        result = AutoUiFuzzer().fuzz(apk, reddit_network())
        assert len(result.fired) == 2

    def test_gating(self):
        from repro.apk import EntryPoint, TriggerKind

        apk = build_mini_reddit()
        apk.entrypoints = [
            EntryPoint(apk.entrypoints[0].method_id, TriggerKind.UI,
                       name="buy", side_effect=True),
            EntryPoint(apk.entrypoints[1].method_id, TriggerKind.UI,
                       name="feed", requires_login=True),
        ]
        manual = ManualUiFuzzer().fuzz(apk, reddit_network())
        # no login flow exists, so the login-gated ep is skipped; the
        # side-effect ep is never fuzzed
        assert manual.fired == []
        assert {r for _, r in manual.skipped} == {
            "side-effect action (purchase/apply) — not fuzzable",
            "requires login and no login flow exists",
        }
        auto = AutoUiFuzzer().fuzz(apk, reddit_network())
        assert auto.fired == []

    def test_timer_entrypoints_never_fire(self):
        from repro.apk import EntryPoint, TriggerKind

        apk = build_mini_reddit()
        apk.entrypoints = [
            EntryPoint(apk.entrypoints[0].method_id, TriggerKind.TIMER, name="update")
        ]
        manual = ManualUiFuzzer().fuzz(apk, reddit_network())
        assert manual.fired == []
        assert len(manual.trace) == 0

    def test_custom_ui_blocks_auto_only(self):
        from repro.apk import EntryPoint, TriggerKind

        apk = build_mini_reddit()
        apk.entrypoints = [
            EntryPoint(apk.entrypoints[0].method_id, TriggerKind.UI_CUSTOM,
                       name="swipe-deck")
        ]
        manual = ManualUiFuzzer().fuzz(apk, reddit_network())
        auto = AutoUiFuzzer().fuzz(apk, reddit_network())
        assert manual.fired and not auto.fired


class TestStatefulServer:
    def test_login_state(self):
        server = ScriptedServer("api.test")

        @server.route("POST", r"/login")
        def login(request, state):
            state["token"] = "tok-123"
            return HttpResponse.json_response({"token": "tok-123"})

        @server.route("GET", r"/me")
        def me(request, state):
            if request.headers.get("Authorization") != "Bearer tok-123":
                return HttpResponse(status=401, body="unauthorized")
            return HttpResponse.json_response({"name": "alice"})

        network = Network()
        network.register("api.test", server)
        r1 = network.send(HttpRequest("POST", "https://api.test/login", body="{}"))
        token = r1.json()["token"]
        r2 = network.send(
            HttpRequest("GET", "https://api.test/me",
                        headers={"Authorization": f"Bearer {token}"})
        )
        assert r2.status == 200
        r3 = network.send(HttpRequest("GET", "https://api.test/me"))
        assert r3.status == 401
