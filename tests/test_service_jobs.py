"""Scheduler behaviour: caching, dedup, failure paths (timeout, injected
exceptions, retry-with-backoff), backpressure and drain — following the
failure-injection patterns of ``test_failure_injection.py``."""

from __future__ import annotations

import threading
import time

import pytest

from repro import AnalysisConfig
from repro.corpus import build_app
from repro.service import JobScheduler, JobStatus, QueueFull, ResultStore


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def make_scheduler(store, **kw):
    kw.setdefault("workers", 2)
    return JobScheduler(store, **kw)


class CountingAnalyzer:
    """Wraps the real pipeline, counting invocations (optionally failing
    or stalling first) — the scheduler-level failure-injection hook."""

    def __init__(self, fail_times: int = 0, delay: float = 0.0,
                 exc: type[Exception] = ValueError):
        self.calls = 0
        self.fail_times = fail_times
        self.delay = delay
        self.exc = exc
        self._lock = threading.Lock()

    def __call__(self, apk, config):
        with self._lock:
            self.calls += 1
            call = self.calls
        if self.delay:
            time.sleep(self.delay)
        if call <= self.fail_times:
            raise self.exc(f"injected failure #{call}")
        from repro import Extractocol

        return Extractocol(config).analyze(apk)


class TestHappyPath:
    def test_batch_then_all_cache_hits(self, store):
        analyzer = CountingAnalyzer()
        with make_scheduler(store, analyzer=analyzer) as sched:
            jobs = [sched.submit_target(k) for k in ("diode", "tzm")]
            assert sched.wait(jobs, timeout=30)
            assert all(j.status is JobStatus.DONE for j in jobs)
            assert all(not j.cache_hit for j in jobs)
            assert analyzer.calls == 2

            again = [sched.submit_target(k) for k in ("diode", "tzm")]
            assert all(j.status is JobStatus.DONE for j in again)
            assert all(j.cache_hit for j in again)
            assert analyzer.calls == 2  # zero re-analyses
            assert [j.result_key for j in again] == [
                j.result_key for j in jobs
            ]

    def test_cache_shared_across_scheduler_restart(self, store):
        analyzer = CountingAnalyzer()
        with make_scheduler(store, analyzer=analyzer) as sched:
            job = sched.submit_target("wallabag")
            assert sched.wait([job], timeout=30)
        analyzer2 = CountingAnalyzer()
        with make_scheduler(store, analyzer=analyzer2) as sched:
            job = sched.submit_target("wallabag")
            assert job.cache_hit and job.status is JobStatus.DONE
            assert analyzer2.calls == 0

    def test_worker_knob_does_not_shard_cache(self, store):
        with make_scheduler(store) as sched:
            apk = build_app("blippex")
            j1 = sched.submit(apk, AnalysisConfig(workers=1))
            assert sched.wait([j1], timeout=30)
            j2 = sched.submit(apk, AnalysisConfig(workers=4, executor="process"))
            assert j2.cache_hit


class TestDeduplication:
    def test_concurrent_submits_one_analysis(self, store):
        analyzer = CountingAnalyzer(delay=0.2)
        with make_scheduler(store, analyzer=analyzer, workers=4) as sched:
            apk = build_app("diode")
            config = AnalysisConfig()
            jobs = []
            for _ in range(6):
                jobs.append(sched.submit(apk, config))
            assert sched.wait(jobs, timeout=30)
            assert len({j.job_id for j in jobs}) == 1
            assert analyzer.calls == 1
            assert jobs[0].dedup_count == 5
            counters = sched.metrics.to_dict()["counters"]
            assert counters["jobs_deduplicated"] == 5
            assert counters["analyses_run"] == 1


class TestFailurePaths:
    def test_injected_exception_marks_failed_with_traceback(self, store):
        analyzer = CountingAnalyzer(fail_times=10)
        with make_scheduler(store, analyzer=analyzer, retries=1,
                            backoff=0.01) as sched:
            job = sched.submit_target("diode")
            assert sched.wait([job], timeout=30)
            assert job.status is JobStatus.FAILED
            assert job.attempts == 2  # initial + one retry
            assert "ValueError" in job.error
            assert "injected failure" in job.traceback
            counters = sched.metrics.to_dict()["counters"]
            assert counters["jobs_failed"] == 1
            assert counters["jobs_retried"] == 1

    def test_retry_succeeds_on_second_attempt(self, store):
        analyzer = CountingAnalyzer(fail_times=1)
        with make_scheduler(store, analyzer=analyzer, retries=1,
                            backoff=0.01) as sched:
            job = sched.submit_target("diode")
            assert sched.wait([job], timeout=30)
            assert job.status is JobStatus.DONE
            assert job.attempts == 2
            assert analyzer.calls == 2
            assert job.result_key in store

    def test_timeout_marks_failed_without_retry(self, store):
        analyzer = CountingAnalyzer(delay=5.0)
        with make_scheduler(store, analyzer=analyzer, timeout=0.1,
                            retries=3) as sched:
            job = sched.submit_target("diode")
            assert sched.wait([job], timeout=30)
            assert job.status is JobStatus.FAILED
            assert "deadline" in job.error
            assert job.attempts == 1  # deadline failures are terminal
            assert sched.metrics.to_dict()["counters"]["jobs_timeout"] == 1

    def test_failed_job_leaves_no_store_entry(self, store):
        analyzer = CountingAnalyzer(fail_times=10)
        with make_scheduler(store, analyzer=analyzer, retries=0) as sched:
            job = sched.submit_target("diode")
            assert sched.wait([job], timeout=30)
            assert job.status is JobStatus.FAILED
        assert store.entries() == []
        # next submit re-runs the analysis rather than serving a failure
        analyzer2 = CountingAnalyzer()
        with make_scheduler(store, analyzer=analyzer2) as sched:
            job = sched.submit_target("diode")
            assert sched.wait([job], timeout=30)
            assert job.status is JobStatus.DONE
            assert analyzer2.calls == 1


class TestBackpressureAndShutdown:
    def test_bounded_queue_rejects_when_full(self, store):
        analyzer = CountingAnalyzer(delay=0.5)
        sched = make_scheduler(store, analyzer=analyzer, workers=1,
                               max_queue=1)
        try:
            apps = ["diode", "tzm", "wallabag", "blippex"]
            accepted, rejected = [], 0
            for key in apps:
                try:
                    accepted.append(sched.submit_target(key))
                except QueueFull:
                    rejected += 1
            assert rejected >= 1
            assert sched.metrics.to_dict()["counters"]["jobs_rejected"] >= 1
            assert sched.wait(accepted, timeout=30)
        finally:
            sched.shutdown(drain=True)

    def test_drain_finishes_queued_work(self, store):
        analyzer = CountingAnalyzer(delay=0.05)
        sched = make_scheduler(store, analyzer=analyzer, workers=1)
        jobs = [sched.submit_target(k) for k in ("diode", "tzm", "wallabag")]
        sched.shutdown(drain=True)
        assert all(j.status is JobStatus.DONE for j in jobs)
        assert analyzer.calls == 3

    def test_no_drain_cancels_queued_work(self, store):
        analyzer = CountingAnalyzer(delay=0.3)
        sched = make_scheduler(store, analyzer=analyzer, workers=1)
        jobs = [sched.submit_target(k) for k in ("diode", "tzm", "wallabag")]
        time.sleep(0.05)  # let the single worker pick up the first job
        sched.shutdown(drain=False)
        states = [j.status for j in jobs]
        assert JobStatus.CANCELLED in states
        assert all(j.finished for j in jobs)

    def test_submit_after_shutdown_raises(self, store):
        sched = make_scheduler(store)
        sched.shutdown()
        with pytest.raises(RuntimeError):
            sched.submit_target("diode")
