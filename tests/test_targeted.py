"""Targeted (demand-driven) mode: the bytecode-search seed index plus
on-demand region warming must reproduce the full pipeline's report exactly
— pinned on every hand-written corpus app and the synth soundness grid —
and its known blind spot must be visible to lint (SEM006)."""

from __future__ import annotations

import pytest

from repro.cfg.callgraph import CallGraph
from repro.core.config import AnalysisConfig
from repro.core.extractocol import Extractocol
from repro.core.report import report_to_dict
from repro.corpus import app_keys, get_spec
from repro.incr.targeted import TargetedSearch, seed_sites
from repro.ir.builder import ProgramBuilder
from repro.lint.soundness import soundness_program
from repro.slicing.demarcation import scan_demarcation_points
from repro.synth import parse_population, synth_spec

SYNTH_SPEC = "synth:all*21@3"  # the soundness-grid smoke population


def _corpus_config(spec) -> AnalysisConfig:
    return AnalysisConfig(
        async_heuristic=(spec.kind == "closed"),
        scope_prefixes=spec.scope_prefixes,
    )


def _reports(spec):
    full = Extractocol(_corpus_config(spec)).analyze(spec.build_apk())
    config = _corpus_config(spec)
    config.mode = "targeted"
    targeted = Extractocol(config).analyze(spec.build_apk())
    return full, targeted


@pytest.mark.parametrize("key", app_keys())
def test_targeted_matches_full_on_corpus(key):
    full, targeted = _reports(get_spec(key))
    assert report_to_dict(targeted) == report_to_dict(full)


@pytest.mark.parametrize("key", sorted(parse_population(SYNTH_SPEC).keys()))
def test_targeted_matches_full_on_synth_grid(key):
    full, targeted = _reports(synth_spec(key))
    assert report_to_dict(targeted) == report_to_dict(full)


class TestSeedIndex:
    @staticmethod
    def _program(*, declared_receiver_only: bool):
        pb = ProgramBuilder()
        m = pb.class_("app.Main").method("go")
        client = m.new("org.apache.http.client.HttpClient")
        req = m.new("org.apache.http.client.methods.HttpGet", ["http://x/"])
        kwargs = {"on": "app.StealthClient"} if declared_receiver_only else {}
        m.vcall(
            client, "execute", [req], "org.apache.http.HttpResponse",
            **kwargs,
        )
        m.ret_void()
        return pb.build()

    def test_seed_index_finds_signature_matched_sites(self):
        program = self._program(declared_receiver_only=False)
        sites = seed_sites(program)
        dps = scan_demarcation_points(program, CallGraph(program))
        assert sites == {dp.site for dp in dps}
        assert len(dps) == 1

    def test_targeted_scan_equals_full_scan_on_seed_hits(self):
        program = self._program(declared_receiver_only=False)
        callgraph = CallGraph(program)
        full = scan_demarcation_points(program, CallGraph(program))
        targeted = TargetedSearch(program, callgraph).scan()
        assert [dp.key for dp in targeted] == [dp.key for dp in full]

    def test_declared_receiver_sites_are_the_blind_spot(self):
        """A DP matched only via the receiver local's declared type is
        invisible to the seed index — and lint reports it as SEM006, so
        the gap is loud rather than silent."""
        program = self._program(declared_receiver_only=True)
        assert seed_sites(program) == set()
        full = scan_demarcation_points(program, CallGraph(program))
        assert len(full) == 1  # the full scanner does find it
        findings = soundness_program(program)
        assert [f.rule for f in findings if f.rule == "SEM006"] == ["SEM006"]

    def test_no_sem006_on_the_corpus(self):
        """Every hand-written corpus app is fully covered by the seed
        index — the equivalence pin above is meaningful, not vacuous."""
        for key in app_keys():
            apk = get_spec(key).build_apk()
            program = apk.program
            sites = seed_sites(program)
            dps = scan_demarcation_points(program, CallGraph(program))
            missing = {dp.key for dp in dps if dp.site not in sites}
            assert not missing, (key, missing)

    def test_region_bounds_warming_not_soundness(self):
        """The targeted region contains the DP methods and their caller
        closure; methods outside it still resolve lazily."""
        pb = ProgramBuilder()
        cb = pb.class_("app.Main")
        entry = cb.method("onCreate")
        entry.call_this("fetch")
        entry.ret_void()
        fetch = cb.method("fetch")
        client = fetch.new(
            "org.apache.http.impl.client.DefaultHttpClient"
        )
        req = fetch.new(
            "org.apache.http.client.methods.HttpGet", ["http://x/"]
        )
        fetch.vcall(
            client, "execute", [req], "org.apache.http.HttpResponse"
        )
        fetch.ret_void()
        other = cb.method("unrelated")
        other.ret_void()
        program = pb.build()
        callgraph = CallGraph(program)
        search = TargetedSearch(program, callgraph)
        dps = search.scan()
        region = search.region(dps)
        assert fetch.method.method_id in region
        assert entry.method.method_id in region  # backward caller closure
        assert other.method.method_id not in region
