"""Each example script runs to completion (they contain their own asserts)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert result.stdout.strip(), "examples should narrate what they do"


def test_quickstart_accepts_app_argument():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    result = subprocess.run(
        [sys.executable, str(script), "radioreddit"],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "radioreddit" in result.stdout or "radio reddit" in result.stdout
