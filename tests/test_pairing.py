"""Tests for slice-based request↔response pairing via disjoint sub-slices
(paper §3.3, Figure 5)."""

from __future__ import annotations

import pytest

from repro.cfg import build_callgraph
from repro.deps import pair_slices, split_contexts
from repro.ir import ProgramBuilder
from repro.slicing import NetworkSlicer, scan_demarcation_points
from repro.taint import TaintEngine


def figure5_program():
    """requestA()/requestB() diverge, reconverge in common2() (the shared
    demarcation point), then A's and B's responses are handled by disjoint
    responseA()/responseB()."""
    pb = ProgramBuilder()
    cb = pb.class_("f5.App")

    ra = cb.method("requestA")
    url_a = ra.concat("https://api.f5.test/a?item=", "1", into="urlA")
    resp_a = ra.call_this("common1", [url_a], returns="java.lang.String",
                          into="respA")
    ra.call_this("responseA", [resp_a])
    ra.ret_void()

    rb = cb.method("requestB")
    url_b = rb.concat("https://api.f5.test/b?page=", "2", into="urlB")
    resp_b = rb.call_this("common2", [url_b], returns="java.lang.String",
                          into="respB")
    rb.call_this("responseB", [resp_b])
    rb.ret_void()

    c1 = cb.method("common1", params=["java.lang.String"],
                   returns="java.lang.String")
    out1 = c1.call_this("common2", [c1.param(0)], returns="java.lang.String")
    c1.ret(out1)

    c2 = cb.method("common2", params=["java.lang.String"],
                   returns="java.lang.String")
    req = c2.new("org.apache.http.client.methods.HttpGet", [c2.param(0)])
    client = c2.local("client", "org.apache.http.client.HttpClient")
    c2.assign(client, None)
    resp = c2.vcall(client, "execute", [req],
                    returns="org.apache.http.HttpResponse",
                    on="org.apache.http.client.HttpClient")
    body = c2.scall("org.apache.http.util.EntityUtils", "toString", [resp],
                    returns="java.lang.String")
    c2.ret(body)

    pa = cb.method("responseA", params=["java.lang.String"])
    ja = pa.new("org.json.JSONObject", [pa.param(0)])
    pa.vcall(ja, "getString", ["fieldA"], returns="java.lang.String")
    pa.ret_void()

    pb_m = cb.method("responseB", params=["java.lang.String"])
    jb = pb_m.new("org.json.JSONObject", [pb_m.param(0)])
    pb_m.vcall(jb, "getString", ["fieldB"], returns="java.lang.String")
    pb_m.ret_void()

    return pb.build()


@pytest.fixture(scope="module")
def sliced():
    program = figure5_program()
    cg = build_callgraph(program)
    slicer = NetworkSlicer(program, cg)
    dps = slicer.scan()
    assert len(dps) == 1, "one shared demarcation point"
    dp_slices = slicer.slice_dp(dps[0])
    return program, cg, dp_slices


class TestDisjointSegments:
    def test_request_contexts_split(self, sliced):
        _, _, dp_slices = sliced
        contexts = split_contexts(dp_slices.request, entries=True)
        roots = {mid.split(" ")[-1] for mid in contexts.disjoint}
        assert {"requestA()>", "requestB()>"} <= roots

    def test_common_segment_shared(self, sliced):
        _, _, dp_slices = sliced
        contexts = split_contexts(dp_slices.request, entries=True)
        assert any("common2" in m for m in contexts.shared)

    def test_disjoint_segments_exclude_shared(self, sliced):
        _, _, dp_slices = sliced
        contexts = split_contexts(dp_slices.request, entries=True)
        for root, segment in contexts.disjoint.items():
            assert not any("common2" in m for m in segment)

    def test_response_contexts_split(self, sliced):
        _, _, dp_slices = sliced
        contexts = split_contexts(dp_slices.response, entries=False)
        handlers = {mid for mid in contexts.disjoint}
        assert any("responseA" in m for m in handlers)
        assert any("responseB" in m for m in handlers)


class TestPairing:
    def test_one_to_one_pairing(self, sliced):
        """Naive flow analysis finds paths 1→6 for both A and B; disjoint
        sub-slices recover the one-to-one pairing (Figure 5)."""
        _, cg, dp_slices = sliced
        pairings = pair_slices(dp_slices.request, dp_slices.response, cg,
                               dp_method=dp_slices.dp.site.method_id)
        as_names = {
            (p.request_context.split(" ")[-1], p.response_context.split(" ")[-1])
            for p in pairings
        }
        assert ("requestA()>", "responseA(java.lang.String)>") in as_names
        assert ("requestB()>", "responseB(java.lang.String)>") in as_names
        assert ("requestA()>", "responseB(java.lang.String)>") not in as_names
        assert ("requestB()>", "responseA(java.lang.String)>") not in as_names

    def test_common_handler_pairs_many_to_one(self):
        """'Pairing may not always be one-to-one ... there might be a common
        response handler for multiple requests.'"""
        pb = ProgramBuilder()
        cb = pb.class_("f5b.App")
        for name, url in (("requestA", "https://x.test/a"),
                          ("requestB", "https://x.test/b")):
            m = cb.method(name)
            resp = m.call_this("doFetch", [url], returns="java.lang.String",
                               into="resp")
            m.call_this("handle", [resp])
            m.ret_void()
        d = cb.method("doFetch", params=["java.lang.String"],
                      returns="java.lang.String")
        req = d.new("org.apache.http.client.methods.HttpGet", [d.param(0)])
        client = d.local("client", "org.apache.http.client.HttpClient")
        d.assign(client, None)
        resp = d.vcall(client, "execute", [req],
                       returns="org.apache.http.HttpResponse",
                       on="org.apache.http.client.HttpClient")
        body = d.scall("org.apache.http.util.EntityUtils", "toString", [resp],
                       returns="java.lang.String")
        d.ret(body)
        h = cb.method("handle", params=["java.lang.String"])
        j = h.new("org.json.JSONObject", [h.param(0)])
        h.vcall(j, "getString", ["shared"], returns="java.lang.String")
        h.ret_void()
        program = pb.build()
        cg = build_callgraph(program)
        slicer = NetworkSlicer(program, cg)
        dp_slices = slicer.slice_dp(slicer.scan()[0])
        pairings = pair_slices(dp_slices.request, dp_slices.response, cg,
                               dp_method=dp_slices.dp.site.method_id)
        handlers = {p.response_context for p in pairings}
        requests = {p.request_context for p in pairings}
        assert len(requests) == 2
        assert len(handlers) == 1  # many-to-one onto the common handler
