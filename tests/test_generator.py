"""Tests for the corpus app generator: one synthetic app exercising every
endpoint class, checked against static analysis and both fuzzers."""

from __future__ import annotations

import pytest

from repro import AnalysisConfig, Extractocol
from repro.apk.model import TriggerKind
from repro.corpus.generator import GenApp, GenEndpoint, build_generated_app
from repro.ir import validate_program
from repro.runtime import AutoUiFuzzer, ManualUiFuzzer


def demo_spec() -> GenApp:
    return GenApp(
        key="demoapp",
        name="DemoApp",
        kind="closed",
        package="com.demo.app",
        host="api.demo.test",
        resources={"api_key": "key-abc123"},
        endpoints=[
            GenEndpoint(
                name="login",
                method="POST",
                path="/v1/login",
                body=(("user", "input"), ("passwd", "input")),
                body_format="form",
                response={"token": "tok-1", "uid": "77"},
                reads=("token", "uid"),
                store={"token": "token"},
            ),
            GenEndpoint(
                name="feed",
                method="GET",
                path="/v1/feed",
                query=(("api-key", "resource:api_key"), ("page", "int:1")),
                headers=(("Authorization", "field:token"),),
                response={"items": [1, 2], "next": "p2"},
                reads=("next",),
                requires_login=True,
            ),
            GenEndpoint(
                name="search",
                method="GET",
                path="/v1/search",
                query=(("q", "input"),),
                response={"hits": "3"},
                reads=("hits",),
            ),
            GenEndpoint(
                name="purchase",
                method="POST",
                path="/v1/purchase",
                body=(("item", "const:sku-9"), ("qty", "int:1")),
                body_format="json",
                response={"order": "o-1"},
                reads=("order",),
                side_effect=True,
            ),
            GenEndpoint(
                name="update_check",
                method="GET",
                path="/v1/version",
                response={"latest": "2.0"},
                reads=("latest",),
                trigger=TriggerKind.TIMER,
            ),
            GenEndpoint(
                name="weatherxml",
                method="GET",
                path="/v1/weather",
                response_xml="<weather><temp>21</temp><city>Seoul</city></weather>",
                xml_reads=("temp", "city"),
            ),
            GenEndpoint(
                name="adlib",
                path="/ads/serve",
                via_intent=True,
            ),
        ],
    )


@pytest.fixture(scope="module")
def spec():
    return build_generated_app(demo_spec())


@pytest.fixture(scope="module")
def apk(spec):
    return spec.build_apk()


class TestGeneratedProgram:
    def test_valid_ir(self, apk):
        assert validate_program(apk.program) == []

    def test_entrypoints_cover_endpoints(self, apk):
        names = {ep.name for ep in apk.entrypoints}
        assert {"login", "feed", "search", "purchase", "update_check",
                "weatherxml", "adlib", "setup"} <= names

    def test_truth_counts(self, spec):
        truth = spec.truth
        assert truth.count() == 7
        assert truth.count("GET") == 5
        assert truth.count("POST") == 2
        assert truth.count(visible_to="static") == 6  # adlib missed
        assert truth.count(visible_to="manual") == 5  # purchase+timer unfuzzable
        assert truth.count(visible_to="auto") == 4  # feed needs login


class TestStaticAnalysis:
    @pytest.fixture(scope="class")
    def report(self, apk):
        return Extractocol(AnalysisConfig(async_heuristic=True)).analyze(apk)

    def test_identified_count_matches_truth(self, spec, report):
        assert len(report.transactions) == spec.truth.count(visible_to="static")

    def test_ad_endpoint_unidentified(self, report):
        assert len(report.unidentified) == 1
        assert report.unidentified[0].request.uri_regex == "^.*$"

    def test_token_dependency_found(self, report):
        deps = report.dependencies
        assert any(d.dst_field == "header:Authorization" for d in deps)

    def test_resource_key_inlined(self, report):
        feed = next(t for t in report.transactions if "/v1/feed" in t.request.uri_regex)
        assert "key\\-abc123" in feed.request.uri_regex or "key-abc123" in feed.request.uri_regex

    def test_xml_response_signature(self, report):
        weather = next(
            t for t in report.transactions if "/v1/weather" in t.request.uri_regex
        )
        assert weather.response.kind == "xml"
        kws = set(weather.response.keywords)
        assert {"temp", "city"} <= kws

    def test_form_body_keys(self, report):
        login = next(t for t in report.transactions if "/v1/login" in t.request.uri_regex)
        assert login.request.method == "POST"
        assert {"user", "passwd"} <= set(login.request.keywords)


class TestDynamicBaselines:
    def test_manual_fuzzer_coverage(self, spec):
        result = ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
        urls = result.trace.unique_urls()
        # login, feed, search, weatherxml and the ad chain produce traffic
        assert len(result.trace) == spec.truth.count(visible_to="manual")
        assert any("/v1/login" in u for u in urls)
        assert any("/ads/serve" in u for u in urls)
        assert not any("/v1/purchase" in u for u in urls)
        assert not any("/v1/version" in u for u in urls)
        assert not result.faults, result.faults

    def test_auto_fuzzer_coverage(self, spec):
        result = AutoUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
        urls = result.trace.unique_urls()
        assert len(result.trace) == spec.truth.count(visible_to="auto")
        assert not any("/v1/feed" in u for u in urls)  # login wall

    def test_coverage_ordering(self, spec):
        """The paper's headline: static ≥ manual ≥ auto (absent intent/async
        misses, which for this app is exactly one endpoint each way)."""
        static = Extractocol().analyze(spec.build_apk())
        manual = ManualUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
        auto = AutoUiFuzzer().fuzz(spec.build_apk(), spec.build_network())
        assert len(static.transactions) > len(manual.trace) > len(auto.trace)


class TestCollisionGuard:
    """Grid compilation makes name collisions likely; emission must raise
    instead of silently shadowing (satellite of the synth subsystem)."""

    def test_duplicate_endpoint_names_raise(self):
        spec = GenApp(
            key="dupapp", name="Dup", kind="open", package="com.dup",
            host="api.dup.test",
            endpoints=[
                GenEndpoint(name="feed", path="/v1/feed"),
                GenEndpoint(name="feed", path="/v2/feed",
                            query=(("q", "input"),)),
            ],
        )
        with pytest.raises(ValueError, match="duplicate endpoint name"):
            build_generated_app(spec)

    def test_duplicate_endpoint_name_via_intent_raises(self):
        spec = GenApp(
            key="dupapp", name="Dup", kind="open", package="com.dup",
            host="api.dup.test",
            endpoints=[
                GenEndpoint(name="ad", path="/v1/ad"),
                GenEndpoint(name="ad", path="/ads/serve", via_intent=True),
            ],
        )
        with pytest.raises(ValueError, match="duplicate endpoint name"):
            build_generated_app(spec)

    def test_custom_hook_duplicate_entrypoint_name_raises(self):
        def hook(emitter):
            cb = emitter.cb
            m = cb.method("extraHook")
            m.ret_void()
            # "feed" is already taken by the generated endpoint below
            emitter.add_entrypoint("extraHook", TriggerKind.UI, "feed")

        spec = GenApp(
            key="dupapp", name="Dup", kind="open", package="com.dup",
            host="api.dup.test",
            endpoints=[GenEndpoint(name="feed", path="/v1/feed")],
            custom=hook,
        )
        with pytest.raises(ValueError, match="duplicate entry-point name"):
            build_generated_app(spec)

    def test_custom_hook_duplicate_method_raises(self):
        def hook(emitter):
            # registers the already-registered ep_feed method a second time
            emitter.add_entrypoint("ep_feed", TriggerKind.UI, "feed2")

        spec = GenApp(
            key="dupapp", name="Dup", kind="open", package="com.dup",
            host="api.dup.test",
            endpoints=[GenEndpoint(name="feed", path="/v1/feed")],
            custom=hook,
        )
        with pytest.raises(ValueError, match="duplicate entry-point method"):
            build_generated_app(spec)
