"""The ``repro lint`` CLI verb: exit codes, ``--json``/``--jsonl`` output,
and the baseline suppression workflow."""

from __future__ import annotations

import json

import pytest

from repro.apk.loader import save_apk
from repro.apk.model import Apk, EntryPoint, TriggerKind
from repro.apk.manifest import Manifest
from repro.cli import main
from repro.ir.builder import ProgramBuilder
from repro.lint import validate_findings_jsonl


@pytest.fixture
def broken_sapk(tmp_path):
    """An .sapk bundle with one planted IR014 error."""
    pb = ProgramBuilder()
    cb = pb.class_("com.ex.Main")
    mainm = cb.method("onCreate")
    mainm.ret_void()
    pb.class_("com.ex.B")
    g = cb.method("get", returns="com.ex.B")
    g.ret(g.this)
    apk = Apk(
        manifest=Manifest(package="com.ex", label="planted"),
        program=pb.build(),
        entrypoints=[
            EntryPoint(
                method_id=mainm.method.method_id, kind=TriggerKind.LIFECYCLE
            )
        ],
    )
    path = tmp_path / "planted.sapk"
    save_apk(apk, path)
    return path


class TestLintCli:
    def test_single_clean_app_exits_zero(self, capsys):
        assert main(["lint", "diode"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "0 error(s)" in out

    def test_whole_corpus_json(self, capsys):
        assert main(["lint", "--all", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["apps"] >= 34
        assert payload["totals"]["errors"] == 0
        assert payload["totals"]["new_errors"] == 0
        assert {app["target"] for app in payload["apps"]} >= {"diode", "ted"}

    def test_jsonl_output_validates(self, capsys):
        assert main(["lint", "diode", "radioreddit", "--jsonl"]) == 0
        events = validate_findings_jsonl(capsys.readouterr().out)
        assert events == []  # both apps are clean

    def test_error_findings_exit_nonzero(self, capsys, broken_sapk):
        assert main(["lint", str(broken_sapk)]) == 1
        out = capsys.readouterr().out
        assert "IR014" in out
        assert "1 error(s)" in out

    def test_json_reports_planted_error(self, capsys, broken_sapk):
        assert main(["lint", str(broken_sapk), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["errors"] == 1
        assert payload["totals"]["new_errors"] == 1
        rules = [
            f["rule"]
            for app in payload["apps"]
            for f in app["findings"]
        ]
        assert "IR014" in rules

    def test_baseline_workflow_suppresses_known_debt(
        self, capsys, tmp_path, broken_sapk
    ):
        baseline = tmp_path / "lint-baseline.json"
        # 1. Write the baseline: records the planted error, exits 0.
        assert main(
            ["lint", str(broken_sapk), "--write-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        data = json.loads(baseline.read_text())
        assert data["version"] == 1
        assert any("IR014" in fp for fp in data["fingerprints"])
        # 2. Re-lint against the baseline: the error is known debt now.
        assert main(["lint", str(broken_sapk), "--baseline", str(baseline)]) == 0
        assert "covered by baseline" in capsys.readouterr().out
        # 3. Without the baseline the same run still fails.
        assert main(["lint", str(broken_sapk)]) == 1
        capsys.readouterr()

    def test_missing_baseline_file_is_ignored(self, capsys, broken_sapk):
        assert main(
            ["lint", str(broken_sapk), "--baseline", "/nonexistent.json"]
        ) == 1
        capsys.readouterr()
