"""The ``AnalysisConfig.lint_level`` gate: off/record/error/strict
semantics, the byte-identity contract for clean reports, findings carried
on the report (and its serialised round-trip), and the store envelope's
severity totals."""

from __future__ import annotations

import json

import pytest

from repro import AnalysisConfig, Extractocol
from repro.apk.loader import apk_digest
from repro.apk.model import Apk, EntryPoint, TriggerKind
from repro.apk.manifest import Manifest
from repro.core.report import report_from_dict, report_to_dict
from repro.corpus import build_app
from repro.ir.builder import ProgramBuilder
from repro.lint import LintGateError, LintReport, Severity, gate, make_finding
from repro.service import ResultStore


def _apk(*, warning_only: bool) -> Apk:
    """A tiny analyzable app with exactly one planted lint finding."""
    pb = ProgramBuilder()
    cb = pb.class_("com.ex.Main")
    main = cb.method("onCreate")
    main.ret_void()
    if warning_only:
        g = cb.method("get", returns="int", static=True)
        g.ret_void()  # IR015 (warning): bare return in a non-void method
    else:
        pb.class_("com.ex.B")
        g = cb.method("get", returns="com.ex.B")
        g.ret(g.this)  # IR014 (error): returns com.ex.Main, unrelated
    return Apk(
        manifest=Manifest(package="com.ex", label="planted"),
        program=pb.build(),
        entrypoints=[
            EntryPoint(method_id=main.method.method_id, kind=TriggerKind.LIFECYCLE)
        ],
    )


class TestGateFunction:
    def test_off_and_record_never_block(self):
        report = LintReport("x", [make_finding("IR001", "boom")])
        gate(report, "off")
        gate(report, "record")

    def test_error_blocks_on_errors_only(self):
        errors = LintReport("x", [make_finding("IR001", "boom")])
        with pytest.raises(LintGateError) as exc:
            gate(errors, "error")
        assert "IR001" in str(exc.value)
        warnings = LintReport("x", [make_finding("IR015", "meh")])
        gate(warnings, "error")  # warnings pass at "error"

    def test_strict_blocks_on_warnings_too(self):
        warnings = LintReport("x", [make_finding("IR015", "meh")])
        with pytest.raises(LintGateError):
            gate(warnings, "strict")

    def test_unknown_level_is_a_value_error(self):
        with pytest.raises(ValueError):
            gate(LintReport("x"), "pedantic")


class TestPipelineGate:
    def test_record_on_clean_app_is_byte_identical_to_off(self):
        apk = build_app("radioreddit")
        off = Extractocol(AnalysisConfig()).analyze(apk)
        record = Extractocol(AnalysisConfig(lint_level="record")).analyze(apk)
        assert json.dumps(report_to_dict(off), sort_keys=True) == json.dumps(
            report_to_dict(record), sort_keys=True
        )

    def test_record_carries_findings_and_round_trips(self):
        report = Extractocol(AnalysisConfig(lint_level="record")).analyze(
            _apk(warning_only=False)
        )
        assert any(f.rule == "IR014" for f in report.lint_findings)
        data = report_to_dict(report)
        assert "lint" in data
        rebuilt = report_from_dict(data)
        assert rebuilt.lint_findings == report.lint_findings
        assert report_to_dict(rebuilt) == data

    def test_record_times_the_lint_phase(self):
        report = Extractocol(AnalysisConfig(lint_level="record")).analyze(
            build_app("diode")
        )
        assert report.phase_stats.seconds["lint"] >= 0
        assert "lint" not in report_to_dict(report)  # clean app: no key

    def test_error_level_aborts_before_the_pipeline(self):
        engine = Extractocol(AnalysisConfig(lint_level="error"))
        with pytest.raises(LintGateError) as exc:
            engine.analyze(_apk(warning_only=False))
        assert "IR014" in str(exc.value)
        assert engine.last_slicing is None  # never got to slicing

    def test_error_level_passes_a_warning_only_app(self):
        report = Extractocol(AnalysisConfig(lint_level="error")).analyze(
            _apk(warning_only=True)
        )
        assert [f.rule for f in report.lint_findings] == ["IR015"]
        assert all(f.severity == Severity.WARNING for f in report.lint_findings)

    def test_strict_level_blocks_warnings(self):
        with pytest.raises(LintGateError):
            Extractocol(AnalysisConfig(lint_level="strict")).analyze(
                _apk(warning_only=True)
            )

    def test_lint_level_shards_the_cache_key(self):
        assert (
            AnalysisConfig(lint_level="record").cache_key()
            != AnalysisConfig().cache_key()
        )


class TestStoreEnvelope:
    def test_envelope_carries_severity_totals(self, tmp_path):
        apk = _apk(warning_only=False)
        config = AnalysisConfig(lint_level="record")
        report = Extractocol(config).analyze(apk)
        store = ResultStore(tmp_path / "store")
        key = store.put(apk_digest(apk), config.cache_key(), report)
        envelope = json.loads(store.path_for(key).read_text())
        assert envelope["lint"]["error"] >= 1
        assert envelope["report"]["lint"]  # findings travel in the report

    def test_clean_report_has_no_lint_key(self, tmp_path):
        apk = build_app("diode")
        config = AnalysisConfig(lint_level="record")
        report = Extractocol(config).analyze(apk)
        store = ResultStore(tmp_path / "store")
        key = store.put(apk_digest(apk), config.cache_key(), report)
        envelope = json.loads(store.path_for(key).read_text())
        assert "lint" not in envelope
        assert "lint" not in envelope["report"]
