"""Tests for the JSON Schema and DTD signature renderers."""

from __future__ import annotations

import json

import pytest

from repro import AnalysisConfig, Extractocol
from repro.corpus import get_spec
from repro.semantics.avals import ResponseAccumulator
from repro.signature.dtd import to_dtd, xml_tree_from_accumulator
from repro.signature.jsonschema import to_json_schema
from repro.signature.lang import (
    Alt,
    Const,
    JsonArray,
    JsonObject,
    Unknown,
    XmlElement,
    concat,
    rep,
)


class TestJsonSchema:
    def test_object_with_required_keys(self):
        sig = JsonObject(
            ((Const("modhash"), Unknown("str")), (Const("score"), Unknown("int"))),
            open_=True,
        )
        schema = to_json_schema(sig)
        assert schema["type"] == "object"
        assert schema["required"] == ["modhash", "score"]
        assert schema["properties"]["score"] == {"type": "integer"}
        assert schema["additionalProperties"] is True

    def test_closed_object(self):
        sig = JsonObject(((Const("k"), Unknown("str")),))
        assert to_json_schema(sig)["additionalProperties"] is False

    def test_array_with_element_pattern(self):
        sig = JsonArray(elem=JsonObject(((Const("title"), Unknown("str")),)))
        schema = to_json_schema(sig)
        assert schema["type"] == "array"
        assert schema["items"]["properties"]["title"] == {"type": "string"}

    def test_fixed_array(self):
        sig = JsonArray(fixed=(Const("a"), Unknown("int")))
        schema = to_json_schema(sig)
        assert schema["minItems"] == 2

    def test_const_typing(self):
        assert to_json_schema(Const("42")) == {"type": "integer", "const": 42}
        assert to_json_schema(Const("true"))["type"] == "boolean"
        assert to_json_schema(Const("hi"))["const"] == "hi"

    def test_alt_becomes_anyof(self):
        sig = Alt((Const("save"), Const("unsave")))
        schema = to_json_schema(sig)
        assert len(schema["anyOf"]) == 2

    def test_string_patterns(self):
        sig = concat(Const("id="), Unknown("str"))
        schema = to_json_schema(sig)
        assert schema["type"] == "string"
        assert schema["pattern"].startswith("^")

    def test_schema_is_json_serializable_for_real_app(self):
        spec = get_spec("radioreddit")
        report = Extractocol(AnalysisConfig()).analyze(spec.build_apk())
        for txn in report.transactions:
            if txn.response.kind == "json" and txn.response.body is not None:
                schema = to_json_schema(txn.response.body)
                json.dumps(schema)
                assert schema.get("type") == "object"


class TestDtd:
    def test_nested_elements(self):
        tree = XmlElement(
            "weatherdata",
            (),
            (
                XmlElement("location", (), (XmlElement("name", (), (), Unknown("str")),)),
                XmlElement("temperature", (("value", Unknown("str")),), ()),
            ),
        )
        dtd = to_dtd(tree)
        assert "<!ELEMENT weatherdata (location*, temperature*)>" in dtd
        assert "<!ELEMENT name (#PCDATA)>" in dtd
        assert "<!ATTLIST temperature value CDATA #IMPLIED>" in dtd

    def test_accumulator_conversion(self):
        acc = ResponseAccumulator(txn_id=0, kind="xml")
        acc.record_access(("feed", "entry", "title"), "str")
        acc.record_access(("feed", "entry", "@id"), "str")
        tree = xml_tree_from_accumulator(acc)
        assert tree is not None
        dtd = to_dtd(tree)
        assert "feed" in dtd and "entry" in dtd
        assert "<!ATTLIST entry id CDATA #IMPLIED>" in dtd

    def test_non_xml_accumulator_returns_none(self):
        acc = ResponseAccumulator(txn_id=0, kind="json")
        acc.record_access(("a",), "str")
        assert xml_tree_from_accumulator(acc) is None

    def test_json_tree_rejected(self):
        with pytest.raises(TypeError):
            to_dtd(JsonObject(((Const("k"), Unknown("str")),)))
