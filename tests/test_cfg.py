"""Unit tests for basic blocks, CFG, dominators/loops and the call graph."""

from __future__ import annotations

from repro.cfg import (
    ICFG,
    build_callgraph,
    cfg_of,
    dominates,
    immediate_dominators,
    loop_info,
    natural_loops,
    partition_blocks,
    reverse_postorder,
)
from repro.ir import ProgramBuilder


def _run_method(program):
    return program.class_of("com.example.Branchy").find_methods("run")[0]


class TestBlocks:
    def test_partition_counts(self, branchy_program):
        blocks = partition_blocks(_run_method(branchy_program))
        # entry, then-branch, else, join, loop-header, loop-body, done
        assert len(blocks) == 7
        assert blocks[0].start == 0

    def test_blocks_cover_all_statements(self, branchy_program):
        method = _run_method(branchy_program)
        blocks = partition_blocks(method)
        covered = [s.index for b in blocks for s in b]
        assert covered == list(range(len(method.body.statements)))

    def test_empty_body(self):
        pb = ProgramBuilder()
        cb = pb.class_("t.I", is_interface=True)
        m = cb.abstract_method("m")
        assert partition_blocks(m) == []


class TestCFG:
    def test_diamond_edges(self, branchy_program):
        cfg = cfg_of(_run_method(branchy_program))
        entry = cfg.blocks[0]
        succs = cfg.successors(entry)
        assert len(succs) == 2  # then + else
        join_targets = {tuple(cfg.succ[s.bid]) for s in succs}
        # both branches flow to the same join block
        flat = {t for ts in join_targets for t in ts}
        assert len(flat) == 1

    def test_stmt_level_adjacency_is_consistent(self, branchy_program):
        cfg = cfg_of(_run_method(branchy_program))
        for src, dests in cfg.stmt_succ.items():
            for d in dests:
                assert src in cfg.stmt_pred[d]

    def test_cfg_cache(self, branchy_program):
        method = _run_method(branchy_program)
        assert cfg_of(method) is cfg_of(method)


class TestDominators:
    def test_rpo_starts_at_entry(self, branchy_program):
        cfg = cfg_of(_run_method(branchy_program))
        rpo = reverse_postorder(cfg)
        assert rpo[0] == cfg.blocks[0].bid
        assert len(rpo) == len(cfg.blocks)

    def test_entry_dominates_all(self, branchy_program):
        cfg = cfg_of(_run_method(branchy_program))
        idom = immediate_dominators(cfg)
        entry = cfg.blocks[0].bid
        for bid in idom:
            assert dominates(idom, entry, bid)

    def test_branch_does_not_dominate_join(self, branchy_program):
        cfg = cfg_of(_run_method(branchy_program))
        idom = immediate_dominators(cfg)
        entry = cfg.blocks[0]
        then_b, else_b = cfg.successors(entry)
        join = cfg.successors(then_b)[0]
        assert not dominates(idom, then_b.bid, join.bid)
        assert not dominates(idom, else_b.bid, join.bid)

    def test_loop_detection(self, branchy_program):
        cfg = cfg_of(_run_method(branchy_program))
        loops = natural_loops(cfg)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header in loop.body
        assert loop.latch in loop.body

    def test_loop_info_roles(self, branchy_program):
        cfg = cfg_of(_run_method(branchy_program))
        info = loop_info(cfg)
        assert len(info.headers) == 1
        header = next(iter(info.headers))
        assert info.is_header(header)
        assert info.in_loop(header)


class TestCallGraph:
    def _program_with_calls(self):
        pb = ProgramBuilder()
        base = pb.class_("c.Base")
        bm = base.method("handle", params=["java.lang.String"])
        bm.ret_void()
        sub = pb.class_("c.Sub", superclass="c.Base")
        sm = sub.method("handle", params=["java.lang.String"])
        sm.ret_void()
        caller = pb.class_("c.Caller")
        caller.field("target", "c.Base")
        cm = caller.method("go")
        tgt = cm.getfield(cm.this, "target", cls="c.Caller")
        cm.vcall(tgt, "handle", ["x"], on="c.Base")
        cm.scall("java.lang.System", "currentTimeMillis", [], returns="long")
        cm.ret_void()
        return pb.build()

    def test_cha_includes_subclass_targets(self):
        prog = self._program_with_calls()
        cg = build_callgraph(prog)
        all_targets = {t for ts in cg.targets.values() for t in ts}
        assert any("c.Base" in t and "handle" in t for t in all_targets)
        assert any("c.Sub" in t and "handle" in t for t in all_targets)

    def test_library_call_recorded(self):
        prog = self._program_with_calls()
        cg = build_callgraph(prog)
        lib_sigs = {e.sig.qualified_name for e in cg.library_sites.values()}
        assert "java.lang.System.currentTimeMillis" in lib_sigs

    def test_reachability(self, branchy_program):
        cg = build_callgraph(branchy_program)
        run_id = (
            branchy_program.class_of("com.example.Branchy")
            .find_methods("run")[0]
            .method_id
        )
        reachable = cg.reachable_from([run_id])
        assert any("sink" in mid for mid in reachable)

    def test_implicit_edge_injection(self, branchy_program):
        cg = build_callgraph(branchy_program)
        cls = branchy_program.class_of("com.example.Branchy")
        run = cls.find_methods("run")[0]
        sink = cls.find_methods("sink")[0]
        site = run.stmt_ref(run.body.statements[0])
        cg.add_implicit_edge(site, sink.method_id, "test")
        assert sink.method_id in cg.callees_of(site)
        assert site in cg.callers_of(sink.method_id)


class TestICFG:
    def test_navigation(self, branchy_program):
        icfg = ICFG(branchy_program)
        run = _run_method(branchy_program)
        entry = icfg.entry_ref(run)
        assert icfg.stmt_of(entry) is run.body.statements[0]
        succs = icfg.succ_refs(entry)
        assert succs and all(r.method_id == run.method_id for r in succs)
        # predecessor of successor includes entry
        assert entry in icfg.pred_refs(succs[0])

    def test_return_refs(self, branchy_program):
        icfg = ICFG(branchy_program)
        run = _run_method(branchy_program)
        rets = icfg.return_refs(run)
        assert len(rets) >= 1
