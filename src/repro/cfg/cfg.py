"""Intra-procedural control-flow graph.

The CFG is block-level (for signature building's topological traversal) and
also exposes statement-level successor/predecessor maps (for the taint
engine's flow-sensitive propagation, forward and — with edges flipped —
backward, per paper §3.1).
"""

from __future__ import annotations

from functools import cached_property

from ..ir.method import Method
from ..ir.statements import GotoStmt, IfStmt, Stmt
from .blocks import BasicBlock, partition_blocks


class ControlFlowGraph:
    def __init__(self, method: Method) -> None:
        self.method = method
        self.blocks: list[BasicBlock] = partition_blocks(method)
        self._block_of_stmt: dict[int, BasicBlock] = {}
        for block in self.blocks:
            for stmt in block:
                self._block_of_stmt[stmt.index] = block
        self.succ: dict[int, list[int]] = {b.bid: [] for b in self.blocks}
        self.pred: dict[int, list[int]] = {b.bid: [] for b in self.blocks}
        self._build_edges()

    def _build_edges(self) -> None:
        body = self.method.body
        assert body is not None
        start_to_block = {b.start: b.bid for b in self.blocks}
        for block in self.blocks:
            term = block.terminator
            targets: list[int] = []
            if isinstance(term, (IfStmt, GotoStmt)):
                for label in term.branch_targets():
                    targets.append(start_to_block[body.label_index(label)])
            if term.falls_through:
                nxt = term.index + 1
                if nxt in start_to_block:
                    targets.append(start_to_block[nxt])
            for t in targets:
                if t not in self.succ[block.bid]:
                    self.succ[block.bid].append(t)
                    self.pred[t].append(block.bid)

    # -- block-level queries -------------------------------------------------
    @property
    def entry(self) -> BasicBlock | None:
        return self.blocks[0] if self.blocks else None

    def successors(self, block: BasicBlock) -> list[BasicBlock]:
        return [self.blocks[i] for i in self.succ[block.bid]]

    def predecessors(self, block: BasicBlock) -> list[BasicBlock]:
        return [self.blocks[i] for i in self.pred[block.bid]]

    def block_of(self, stmt: Stmt) -> BasicBlock:
        return self._block_of_stmt[stmt.index]

    # -- statement-level adjacency ---------------------------------------------
    @cached_property
    def stmt_succ(self) -> dict[int, list[int]]:
        """Successor statement indices for every statement index."""
        out: dict[int, list[int]] = {}
        for block in self.blocks:
            for si, stmt in enumerate(block.statements):
                if si + 1 < len(block.statements):
                    out[stmt.index] = [block.statements[si + 1].index]
                else:
                    out[stmt.index] = [self.blocks[b].start for b in self.succ[block.bid]]
        return out

    @cached_property
    def stmt_pred(self) -> dict[int, list[int]]:
        out: dict[int, list[int]] = {s: [] for s in self.stmt_succ}
        for src, dests in self.stmt_succ.items():
            for d in dests:
                out[d].append(src)
        return out

    def __repr__(self) -> str:
        return f"CFG({self.method.method_id}, {len(self.blocks)} blocks)"


_CFG_CACHE: dict[int, ControlFlowGraph] = {}


def cfg_of(method: Method) -> ControlFlowGraph:
    """Memoised CFG construction (bodies are immutable once sealed)."""
    key = id(method)
    cached = _CFG_CACHE.get(key)
    if cached is None or cached.method is not method:
        cached = ControlFlowGraph(method)
        _CFG_CACHE[key] = cached
    return cached


__all__ = ["ControlFlowGraph", "cfg_of"]
