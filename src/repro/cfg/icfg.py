"""Inter-procedural CFG: per-method CFGs stitched by the call graph."""

from __future__ import annotations

from ..ir.method import Method
from ..ir.program import Program
from ..ir.statements import Stmt, StmtRef
from .callgraph import CallGraph, build_callgraph
from .cfg import ControlFlowGraph, cfg_of


class ICFG:
    """Navigation helper over (Program, CallGraph, per-method CFGs)."""

    def __init__(self, program: Program, callgraph: CallGraph | None = None) -> None:
        self.program = program
        self.callgraph = callgraph if callgraph is not None else build_callgraph(program)

    def cfg(self, method: Method | str) -> ControlFlowGraph:
        if isinstance(method, str):
            method = self.program.method_by_id(method)
        return cfg_of(method)

    def method_of(self, ref: StmtRef) -> Method:
        return self.program.method_by_id(ref.method_id)

    def stmt_of(self, ref: StmtRef) -> Stmt:
        return self.method_of(ref).stmt_at(ref.index)

    def succ_refs(self, ref: StmtRef) -> list[StmtRef]:
        cfg = self.cfg(ref.method_id)
        return [StmtRef(ref.method_id, i) for i in cfg.stmt_succ.get(ref.index, [])]

    def pred_refs(self, ref: StmtRef) -> list[StmtRef]:
        cfg = self.cfg(ref.method_id)
        return [StmtRef(ref.method_id, i) for i in cfg.stmt_pred.get(ref.index, [])]

    def callees(self, ref: StmtRef) -> list[Method]:
        return [
            self.program.method_by_id(mid)
            for mid in self.callgraph.callees_of(ref)
        ]

    def entry_ref(self, method: Method) -> StmtRef:
        return StmtRef(method.method_id, 0)

    def return_refs(self, method: Method) -> list[StmtRef]:
        assert method.body is not None
        from ..ir.statements import ReturnStmt

        return [
            method.stmt_ref(s)
            for s in method.body
            if isinstance(s, ReturnStmt)
        ]


__all__ = ["ICFG"]
