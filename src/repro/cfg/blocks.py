"""Basic-block partitioning of method bodies."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.method import Body, Method
from ..ir.statements import Stmt


@dataclass
class BasicBlock:
    """A maximal straight-line statement sequence.

    ``bid`` is the block's index in the CFG's block list; statements keep
    their body-wide indices, so a block is effectively a [start, end) range.
    """

    bid: int
    statements: list[Stmt] = field(default_factory=list)

    @property
    def start(self) -> int:
        return self.statements[0].index

    @property
    def end(self) -> int:
        return self.statements[-1].index

    @property
    def leader(self) -> Stmt:
        return self.statements[0]

    @property
    def terminator(self) -> Stmt:
        return self.statements[-1]

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __repr__(self) -> str:
        return f"BB{self.bid}[{self.start}..{self.end}]"


def find_leaders(body: Body) -> set[int]:
    """Statement indices that start a basic block."""
    n = len(body.statements)
    if n == 0:
        return set()
    leaders = {0}
    for stmt in body.statements:
        targets = stmt.branch_targets()
        for label in targets:
            leaders.add(body.label_index(label))
        if targets or not stmt.falls_through:
            nxt = stmt.index + 1
            if nxt < n:
                leaders.add(nxt)
    return leaders


def partition_blocks(method: Method) -> list[BasicBlock]:
    """Split ``method``'s body into basic blocks, in statement order."""
    body = method.body
    if body is None or not body.statements:
        return []
    leaders = sorted(find_leaders(body))
    blocks: list[BasicBlock] = []
    for bi, start in enumerate(leaders):
        end = leaders[bi + 1] if bi + 1 < len(leaders) else len(body.statements)
        blocks.append(BasicBlock(bi, body.statements[start:end]))
    return blocks


__all__ = ["BasicBlock", "find_leaders", "partition_blocks"]
