"""Class-hierarchy-analysis (CHA) call graph with implicit-edge support.

Explicit edges come from invoke expressions resolved against the program
class hierarchy.  *Implicit* edges — AsyncTask.execute() →
doInBackground(), Volley listener callbacks, timer/location callbacks —
are injected by :mod:`repro.semantics.async_model`, mirroring how the paper
extends FlowDroid with EdgeMiner-style callback knowledge (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.method import Method
from ..ir.program import Program
from ..ir.statements import Stmt, StmtRef
from ..ir.values import InvokeExpr, Local


@dataclass(frozen=True)
class CallSite:
    caller: str  # method_id
    ref: StmtRef
    expr: InvokeExpr


class CallGraph:
    def __init__(self, program: Program) -> None:
        self.program = program
        #: call site -> resolved target method ids
        self.targets: dict[StmtRef, set[str]] = {}
        #: method id -> call sites that may reach it
        self.callers: dict[str, set[StmtRef]] = {}
        #: method id -> ids of methods containing those call sites — the
        #: reverse-edge adjacency used by O(edges) reverse closures
        self.caller_methods: dict[str, set[str]] = {}
        #: call sites whose target is a library API (semantic-model territory)
        self.library_sites: dict[StmtRef, InvokeExpr] = {}
        #: implicit edges injected by callback models: site -> (target, reason)
        self.implicit: dict[StmtRef, set[tuple[str, str]]] = {}
        self._sites_by_method: dict[str, list[CallSite]] = {}
        self._build()

    # -- construction ----------------------------------------------------------
    def _build(self) -> None:
        for method in self.program.methods():
            if method.body is None:
                continue
            sites: list[CallSite] = []
            for stmt in method.body:
                expr = stmt.invoke
                if expr is None:
                    continue
                ref = method.stmt_ref(stmt)
                sites.append(CallSite(method.method_id, ref, expr))
                for target in self._resolve(expr):
                    self._add(ref, target.method_id)
                if ref not in self.targets:
                    self.library_sites[ref] = expr
            self._sites_by_method[method.method_id] = sites

    def _resolve(self, expr: InvokeExpr) -> list[Method]:
        program = self.program
        sig = expr.sig
        if expr.kind == "static":
            target = program.resolve_static(sig)
            return [target] if target else []
        if expr.kind == "special":
            cls = program.class_of(sig.class_name)
            if cls is None:
                return []
            target = cls.get_method(sig)
            if target is None or target.is_abstract:
                target = program.resolve_dispatch(sig.class_name, sig)
            return [target] if target else []
        # virtual / interface: CHA over the static receiver type
        receiver = sig.class_name
        if isinstance(expr.base, Local):
            receiver = expr.base.type.name
        targets: dict[str, Method] = {}
        base_target = self.program.resolve_dispatch(receiver, sig)
        if base_target is not None:
            targets[base_target.method_id] = base_target
        for sub in program.subclasses(receiver):
            sub_cls = program.class_of(sub)
            if sub_cls is None:
                continue
            m = sub_cls.get_method(sig)
            if m is not None and not m.is_abstract:
                targets[m.method_id] = m
        return list(targets.values())

    def _add(self, site: StmtRef, target_id: str) -> None:
        self.targets.setdefault(site, set()).add(target_id)
        self.callers.setdefault(target_id, set()).add(site)
        self.caller_methods.setdefault(target_id, set()).add(site.method_id)

    # -- implicit edges -----------------------------------------------------------
    def add_implicit_edge(self, site: StmtRef, target_id: str, reason: str) -> None:
        """Record a framework-mediated control transfer (e.g. AsyncTask)."""
        self._add(site, target_id)
        self.implicit.setdefault(site, set()).add((target_id, reason))
        self.library_sites.pop(site, None)

    # -- queries ---------------------------------------------------------------
    def callees_of(self, site: StmtRef) -> set[str]:
        return self.targets.get(site, set())

    def sites_in(self, method_id: str) -> list[CallSite]:
        return self._sites_by_method.get(method_id, [])

    def callers_of(self, method_id: str) -> set[StmtRef]:
        return self.callers.get(method_id, set())

    def caller_methods_of(self, method_id: str) -> set[str]:
        """Ids of methods containing a call site targeting ``method_id`` —
        an O(1) reverse-adjacency lookup (no site scan)."""
        return self.caller_methods.get(method_id, set())

    def is_library_call(self, site: StmtRef) -> bool:
        return site in self.library_sites

    def reachable_from(self, roots: list[str]) -> set[str]:
        """Method ids transitively callable from ``roots``."""
        out: set[str] = set()
        stack = list(roots)
        while stack:
            mid = stack.pop()
            if mid in out:
                continue
            out.add(mid)
            for site in self._sites_by_method.get(mid, []):
                stack.extend(self.targets.get(site.ref, ()))
        return out


def build_callgraph(program: Program) -> CallGraph:
    return CallGraph(program)


__all__ = ["CallGraph", "CallSite", "build_callgraph"]
