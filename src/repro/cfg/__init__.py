"""Graph substrate: basic blocks, CFGs, dominators/loops, call graph, ICFG."""

from .blocks import BasicBlock, find_leaders, partition_blocks
from .callgraph import CallGraph, CallSite, build_callgraph
from .cfg import ControlFlowGraph, cfg_of
from .dominators import (
    Loop,
    LoopInfo,
    dominates,
    immediate_dominators,
    loop_info,
    natural_loops,
    reverse_postorder,
)
from .icfg import ICFG

__all__ = [name for name in dir() if not name.startswith("_")]
