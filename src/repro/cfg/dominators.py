"""Dominator tree and natural-loop detection.

Signature building (paper §3.2) treats confluence points differently when
they are loop headers or latches: loop-variant string parts become ``rep``
terms instead of disjunctions.  This module provides the loop structure that
decision needs, via the classic Cooper-Harvey-Kennedy dominator algorithm
and back-edge natural loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import ControlFlowGraph


def reverse_postorder(cfg: ControlFlowGraph) -> list[int]:
    """Block ids in reverse postorder from the entry block."""
    if not cfg.blocks:
        return []
    seen: set[int] = set()
    order: list[int] = []

    def dfs(bid: int) -> None:
        # Iterative DFS to keep deep corpus methods safe from recursion limits.
        stack: list[tuple[int, int]] = [(bid, 0)]
        seen.add(bid)
        while stack:
            node, edge = stack[-1]
            succs = cfg.succ[node]
            if edge < len(succs):
                stack[-1] = (node, edge + 1)
                child = succs[edge]
                if child not in seen:
                    seen.add(child)
                    stack.append((child, 0))
            else:
                order.append(node)
                stack.pop()

    dfs(cfg.blocks[0].bid)
    order.reverse()
    return order


def immediate_dominators(cfg: ControlFlowGraph) -> dict[int, int]:
    """idom map (entry maps to itself); unreachable blocks are absent."""
    rpo = reverse_postorder(cfg)
    if not rpo:
        return {}
    index_of = {b: i for i, b in enumerate(rpo)}
    entry = rpo[0]
    idom: dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index_of[a] > index_of[b]:
                a = idom[a]
            while index_of[b] > index_of[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for bid in rpo[1:]:
            preds = [p for p in cfg.pred[bid] if p in idom]
            if not preds:
                continue
            new_idom = preds[0]
            for p in preds[1:]:
                new_idom = intersect(p, new_idom)
            if idom.get(bid) != new_idom:
                idom[bid] = new_idom
                changed = True
    return idom


def dominates(idom: dict[int, int], a: int, b: int) -> bool:
    """True when block ``a`` dominates block ``b``."""
    while True:
        if a == b:
            return True
        parent = idom.get(b)
        if parent is None or parent == b:
            return a == b
        b = parent


@dataclass
class Loop:
    """A natural loop: ``header`` dominated back-edge target, ``latch`` the
    back-edge source, ``body`` every block in the loop."""

    header: int
    latch: int
    body: set[int] = field(default_factory=set)


def natural_loops(cfg: ControlFlowGraph) -> list[Loop]:
    idom = immediate_dominators(cfg)
    loops: list[Loop] = []
    for src, dests in cfg.succ.items():
        if src not in idom:
            continue
        for dst in dests:
            if dst in idom and dominates(idom, dst, src):
                loop = Loop(header=dst, latch=src, body={dst})
                stack = [src]
                while stack:
                    node = stack.pop()
                    if node in loop.body:
                        continue
                    loop.body.add(node)
                    stack.extend(p for p in cfg.pred[node] if p in idom)
                loops.append(loop)
    return loops


@dataclass
class LoopInfo:
    """Pre-computed loop roles for every block of a CFG."""

    headers: set[int]
    latches: set[int]
    membership: dict[int, set[int]]  # block id -> headers of loops containing it

    def is_header(self, bid: int) -> bool:
        return bid in self.headers

    def is_latch(self, bid: int) -> bool:
        return bid in self.latches

    def in_loop(self, bid: int) -> bool:
        return bool(self.membership.get(bid))


def loop_info(cfg: ControlFlowGraph) -> LoopInfo:
    loops = natural_loops(cfg)
    headers = {l.header for l in loops}
    latches = {l.latch for l in loops}
    membership: dict[int, set[int]] = {}
    for loop in loops:
        for bid in loop.body:
            membership.setdefault(bid, set()).add(loop.header)
    return LoopInfo(headers, latches, membership)


__all__ = [
    "Loop",
    "LoopInfo",
    "dominates",
    "immediate_dominators",
    "loop_info",
    "natural_loops",
    "reverse_postorder",
]
