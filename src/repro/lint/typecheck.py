"""Whole-program typechecker for the three-address IR (``IR0xx`` rules).

Subsumes and extends :mod:`repro.ir.validate`: the structural rules
(IR001–IR007) mirror ``validate_method`` one-for-one; IR008 reports
superclass cycles (via :func:`repro.ir.validate.superclass_cycles`); the
remaining rules are the class-hierarchy-aware type checks — assignment and
cast compatibility, invoke arity and argument types, field-store and
return types.

The checker is deliberately permissive wherever the library world is
involved: the program under analysis only contains *app* classes, so the
hierarchy of ``org.apache.http...``/``android...`` types is unknown and any
judgement involving them would be a guess.  An ``ERROR`` is only issued for
facts provable from the program alone — two app classes with no hierarchy
relation in either direction, an arity mismatch against the call site's own
signature, a primitive where the declared type demands an unrelated app
class, and so on.  Primitives are mutually convertible (the corpus frontend
uses JVM-style implicit widening and int-backed booleans) and boxing
to/from references is accepted.
"""

from __future__ import annotations

from ..ir.classes import ClassDef
from ..ir.method import Method
from ..ir.program import Program
from ..ir.statements import (
    AssignStmt,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    ReturnStmt,
    Stmt,
)
from ..ir.types import (
    ArrayType,
    BOOLEAN,
    DOUBLE,
    FLOAT,
    INT,
    OBJECT,
    STRING_T,
    Type,
    VOID,
    class_t,
)
from ..ir.validate import superclass_cycles
from ..ir.values import (
    ArrayRef,
    BinOpExpr,
    CastExpr,
    ClassConst,
    DoubleConst,
    InstanceFieldRef,
    InstanceOfExpr,
    IntConst,
    InvokeExpr,
    LengthExpr,
    Local,
    MethodSig,
    NewArrayExpr,
    NewExpr,
    NullConst,
    ParamRef,
    StaticFieldRef,
    StringConst,
    ThisRef,
    UnOpExpr,
    Value,
    walk_values,
)
from .diagnostics import Diagnostic, make_finding

_BOOL_OPS = frozenset({"==", "!=", "<", "<=", ">", ">=", "&&", "||"})
_CLASS_T = class_t("java.lang.Class")


class Hierarchy:
    """Cycle-safe hierarchy queries over a :class:`Program`.

    :meth:`Program.superclasses` is an unguarded walk that loops forever on
    a superclass cycle, so every query here carries its own visited set;
    lint must stay total even on the broken programs it exists to reject.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.cycles = superclass_cycles(program)
        self.on_cycle: set[str] = {name for cycle in self.cycles for name in cycle}
        self._supertypes: dict[str, frozenset[str]] = {}

    def is_app_class(self, name: str) -> bool:
        return name in self.program.classes

    def supertypes(self, name: str) -> frozenset[str]:
        """``name`` plus every (app or library) supertype name reachable
        through superclass and interface edges — cycle-safe, memoised."""
        cached = self._supertypes.get(name)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cls = self.program.classes.get(current)
            if cls is None:
                continue  # library type: parents unknown
            if cls.superclass:
                stack.append(cls.superclass)
            stack.extend(cls.interfaces)
        out = frozenset(seen)
        self._supertypes[name] = out
        return out

    def related(self, a: str, b: str) -> bool:
        """Whether app classes ``a`` and ``b`` share a hierarchy line in
        either direction (covers up- and down-casts)."""
        return b in self.supertypes(a) or a in self.supertypes(b)

    def resolve_app(self, sig: MethodSig) -> Method | None:
        """Cycle-safe equivalent of :meth:`Program.resolve_static`."""
        seen: set[str] = set()
        current: str | None = sig.class_name
        while current is not None and current not in seen:
            seen.add(current)
            cls: ClassDef | None = self.program.classes.get(current)
            if cls is None:
                return None
            found = cls.get_method(sig)
            if found is not None and not found.is_abstract:
                return found
            current = cls.superclass
        return None


def static_type_of(value: Value, hier: Hierarchy) -> Type | None:
    """Best-effort static type of a value; ``None`` means "unknown — do not
    judge" (e.g. ``null``, or arithmetic over untyped operands)."""
    if isinstance(value, Local):
        return value.type
    if isinstance(value, IntConst):
        return INT
    if isinstance(value, DoubleConst):
        return DOUBLE
    if isinstance(value, StringConst):
        return STRING_T
    if isinstance(value, NullConst):
        return None
    if isinstance(value, ClassConst):
        return _CLASS_T
    if isinstance(value, NewExpr):
        return value.class_type
    if isinstance(value, NewArrayExpr):
        from ..ir.types import array_t

        return array_t(value.element_type)
    if isinstance(value, BinOpExpr):
        if value.op in _BOOL_OPS:
            return BOOLEAN
        left = static_type_of(value.left, hier)
        right = static_type_of(value.right, hier)
        if value.op == "+" and STRING_T in (left, right):
            return STRING_T  # string concatenation shorthand
        if left is None or right is None:
            return None
        if left.is_primitive and right.is_primitive:
            return DOUBLE if (DOUBLE in (left, right) or FLOAT in (left, right)) else left
        return None
    if isinstance(value, UnOpExpr):
        if value.op == "!":
            return BOOLEAN
        return static_type_of(value.operand, hier)
    if isinstance(value, CastExpr):
        return value.to_type
    if isinstance(value, InstanceOfExpr):
        return BOOLEAN
    if isinstance(value, LengthExpr):
        return INT
    if isinstance(value, (InstanceFieldRef, StaticFieldRef)):
        return value.field.type
    if isinstance(value, ArrayRef):
        base = static_type_of(value.base, hier)
        return base.element if isinstance(base, ArrayType) else None
    if isinstance(value, InvokeExpr):
        return value.sig.return_type
    if isinstance(value, ParamRef):
        return value.type
    if isinstance(value, ThisRef):
        return value.type
    return None


def compatible(src: Type | None, dst: Type | None, hier: Hierarchy) -> bool:
    """Whether a value of static type ``src`` may flow into a slot of
    declared type ``dst`` without provably being a type error."""
    if src is None or dst is None or src == dst:
        return True
    if src == VOID:
        # MethodBuilder types the `into=` local of a void-returning call as
        # Object; the expression's type stays void.  Not a program bug.
        return True
    if src.is_primitive or dst.is_primitive:
        # Widening/narrowing between primitives and (un)boxing to references
        # are both legal shorthands in the corpus frontend.
        return True
    if OBJECT in (src.name, dst.name):
        return True
    if isinstance(src, ArrayType) or isinstance(dst, ArrayType):
        if isinstance(src, ArrayType) and isinstance(dst, ArrayType):
            return compatible(src.element, dst.element, hier)
        other = dst if isinstance(src, ArrayType) else src
        # array <-> library reference (Serializable, Object[], ...) is fine;
        # array <-> app class is provably wrong.
        return not hier.is_app_class(other.name)
    src_app = hier.is_app_class(src.name)
    dst_app = hier.is_app_class(dst.name)
    if not src_app or not dst_app:
        # A library type is involved; its hierarchy is unknown to us.
        return True
    return hier.related(src.name, dst.name)


# ---------------------------------------------------------------------------
# Structural rules (IR001–IR007): validate_method with rule ids attached.


def _check_structure(method: Method, out: list[Diagnostic]) -> bool:
    """Emit structural findings; returns False when the body is too broken
    for CFG construction (dataflow lints must then skip this method)."""
    body = method.body
    if body is None:
        return True
    cls, mid = method.class_name, method.method_id

    def err(rule: str, index: int, message: str) -> None:
        out.append(
            make_finding(rule, message, class_name=cls, method_id=mid, index=index)
        )

    n = len(body.statements)
    if n == 0:
        err("IR001", -1, "empty body")
        return False

    cfg_safe = True
    identities_done = False
    declared = set(body.locals.values())
    for stmt in body.statements:
        if isinstance(stmt, (IfStmt, GotoStmt)):
            for target in stmt.branch_targets():
                if target not in body.labels:
                    err("IR002", stmt.index, f"branch to undefined label {target!r}")
                    cfg_safe = False
                elif body.labels[target] >= n:
                    err("IR003", stmt.index, f"label {target!r} points past end of body")
                    cfg_safe = False
        if isinstance(stmt, IdentityStmt):
            if identities_done:
                err("IR004", stmt.index, "identity statement after ordinary statements")
            if not isinstance(stmt.rhs, (ParamRef, ThisRef)):
                err("IR005", stmt.index, "identity rhs must be @this or @parameter")
        else:
            identities_done = True
        for use in stmt.uses():
            for value in walk_values(use):
                if isinstance(value, Local) and value not in declared:
                    err("IR006", stmt.index, f"use of undeclared local {value.name!r}")
        for d in stmt.defs():
            for value in walk_values(d):
                if isinstance(value, Local) and value not in declared:
                    err(
                        "IR006",
                        stmt.index,
                        f"definition of undeclared local {value.name!r}",
                    )
    if body.statements[-1].falls_through:
        err("IR007", n - 1, "control falls off the end of the body")
        cfg_safe = False
    return cfg_safe


# ---------------------------------------------------------------------------
# Type rules (IR010–IR017).


def _check_invoke(
    stmt: Stmt, expr: InvokeExpr, method: Method, hier: Hierarchy,
    out: list[Diagnostic],
) -> None:
    cls, mid, idx = method.class_name, method.method_id, stmt.index
    sig = expr.sig
    if len(expr.args) != len(sig.param_types):
        out.append(
            make_finding(
                "IR012",
                f"{sig.qualified_name} expects {len(sig.param_types)} "
                f"argument(s), call passes {len(expr.args)}",
                class_name=cls, method_id=mid, index=idx,
            )
        )
    for pos, (arg, param_t) in enumerate(zip(expr.args, sig.param_types)):
        arg_t = static_type_of(arg, hier)
        if not compatible(arg_t, param_t, hier):
            out.append(
                make_finding(
                    "IR013",
                    f"argument {pos} of {sig.qualified_name}: {arg_t} is not "
                    f"assignable to parameter type {param_t}",
                    class_name=cls, method_id=mid, index=idx,
                )
            )
    target = hier.resolve_app(sig)
    if target is not None and target.sig.return_type != sig.return_type:
        out.append(
            make_finding(
                "IR017",
                f"call site declares return type {sig.return_type} but "
                f"resolved target {target.method_id} returns "
                f"{target.sig.return_type}",
                class_name=cls, method_id=mid, index=idx,
            )
        )


def _check_types(method: Method, hier: Hierarchy, out: list[Diagnostic]) -> None:
    body = method.body
    if body is None:
        return
    cls, mid = method.class_name, method.method_id

    for stmt in body.statements:
        def finding(rule: str, message: str, _idx: int = stmt.index) -> None:
            out.append(
                make_finding(
                    rule, message, class_name=cls, method_id=mid, index=_idx
                )
            )

        expr = stmt.invoke
        if expr is not None:
            _check_invoke(stmt, expr, method, hier, out)
        if isinstance(stmt, AssignStmt):
            rhs = stmt.rhs
            if isinstance(rhs, CastExpr):
                value_t = static_type_of(rhs.value, hier)
                to_t = rhs.to_type
                if (
                    value_t is not None
                    and value_t.is_reference
                    and to_t.is_reference
                    and not isinstance(value_t, ArrayType)
                    and not isinstance(to_t, ArrayType)
                    and hier.is_app_class(value_t.name)
                    and hier.is_app_class(to_t.name)
                    and not hier.related(value_t.name, to_t.name)
                ):
                    finding(
                        "IR011", f"cast from {value_t} to unrelated class {to_t}"
                    )
            src_t = static_type_of(rhs, hier)
            target = stmt.target
            if isinstance(target, Local):
                if not compatible(src_t, target.type, hier):
                    finding(
                        "IR010",
                        f"cannot assign {src_t} to local {target.name!r} "
                        f"of type {target.type}",
                    )
            elif isinstance(target, (InstanceFieldRef, StaticFieldRef)):
                if not compatible(src_t, target.field.type, hier):
                    finding(
                        "IR016",
                        f"cannot store {src_t} into field {target.field} "
                        f"of type {target.field.type}",
                    )
            elif isinstance(target, ArrayRef):
                base_t = static_type_of(target.base, hier)
                if isinstance(base_t, ArrayType) and not compatible(
                    src_t, base_t.element, hier
                ):
                    finding(
                        "IR010", f"cannot store {src_t} into element of {base_t}"
                    )
        elif isinstance(stmt, IdentityStmt):
            src_t = static_type_of(stmt.rhs, hier)
            if not compatible(src_t, stmt.target.type, hier):
                finding(
                    "IR010",
                    f"cannot bind {src_t} to local {stmt.target.name!r} "
                    f"of type {stmt.target.type}",
                )
        elif isinstance(stmt, ReturnStmt):
            declared = method.return_type
            if stmt.value is None:
                if declared != VOID:
                    finding(
                        "IR015",
                        f"bare return in method declared to return {declared}",
                    )
            elif declared == VOID:
                finding("IR014", "value returned from void method")
            else:
                value_t = static_type_of(stmt.value, hier)
                if not compatible(value_t, declared, hier):
                    finding(
                        "IR014",
                        f"cannot return {value_t} from method declared "
                        f"to return {declared}",
                    )


def typecheck_program(program: Program) -> tuple[list[Diagnostic], set[str]]:
    """Run the ``IR0xx`` family; returns ``(findings, cfg_unsafe)`` where
    ``cfg_unsafe`` is the set of method ids whose bodies are structurally
    too broken for CFG construction (dataflow lints skip them)."""
    out: list[Diagnostic] = []
    hier = Hierarchy(program)
    for cycle in hier.cycles:
        loop = " -> ".join(cycle + [cycle[0]])
        for name in cycle:
            out.append(
                make_finding("IR008", f"superclass cycle: {loop}", class_name=name)
            )
    cfg_unsafe: set[str] = set()
    for method in program.methods():
        if not _check_structure(method, out):
            cfg_unsafe.add(method.method_id)
        _check_types(method, hier, out)
    return out, cfg_unsafe


__all__ = [
    "Hierarchy",
    "compatible",
    "static_type_of",
    "typecheck_program",
]
