"""CFG dataflow lints (``DF0xx`` rules).

Three classic intra-procedural analyses over the statement-level CFG
(:attr:`repro.cfg.cfg.ControlFlowGraph.stmt_succ` /
:attr:`~repro.cfg.cfg.ControlFlowGraph.stmt_pred`):

* **DF001 definite assignment** — a forward *must* analysis (meet =
  intersection over predecessors): a local read at a statement where some
  CFG path from the entry reaches it without an intervening assignment.
  Taint propagation over such a local silently drops flows, so this is an
  error.
* **DF002 unreachable statements** — blocks no CFG path from the entry
  reaches.  Reported once per maximal run of unreachable statements.
* **DF003 dead stores** — backward liveness: an assignment whose value no
  later statement can read.  Informational: the builder's ``_invoke``
  idiom intentionally parks unused call results in fresh ``$``-temps, so
  those (and identity bindings) are exempt.
"""

from __future__ import annotations

from ..cfg.cfg import ControlFlowGraph
from ..ir.method import Method
from ..ir.program import Program
from ..ir.statements import AssignStmt
from ..ir.values import InvokeExpr, Local
from .diagnostics import Diagnostic, make_finding


def _reachable_stmts(cfg: ControlFlowGraph) -> set[int]:
    entry = cfg.entry
    if entry is None:
        return set()
    seen: set[int] = set()
    stack = [entry.start]
    succ = cfg.stmt_succ
    while stack:
        idx = stack.pop()
        if idx in seen:
            continue
        seen.add(idx)
        stack.extend(succ.get(idx, ()))
    return seen


def _used_locals(stmt) -> set[Local]:
    return {v for v in stmt.all_used_values() if isinstance(v, Local)}


def _defined_locals(stmt) -> set[Local]:
    return {v for v in stmt.defs() if isinstance(v, Local)}


def _check_definite_assignment(
    method: Method, cfg: ControlFlowGraph, reachable: set[int],
    out: list[Diagnostic],
) -> None:
    body = method.body
    assert body is not None
    stmts = body.statements
    all_locals = frozenset(body.locals.values())
    pred = cfg.stmt_pred
    entry = cfg.entry.start if cfg.entry is not None else 0

    # in[s] = ∩ out[p]; out[s] = in[s] ∪ defs(s).  Initialise to ⊤ (all
    # locals) everywhere except the entry and iterate until the decreasing
    # chains stabilise.
    assigned_in: dict[int, frozenset[Local]] = {}
    assigned_out: dict[int, frozenset[Local]] = {}
    for idx in reachable:
        assigned_in[idx] = frozenset() if idx == entry else all_locals
        assigned_out[idx] = assigned_in[idx] | _defined_locals(stmts[idx])

    changed = True
    while changed:
        changed = False
        for idx in sorted(reachable):
            preds = [p for p in pred.get(idx, ()) if p in reachable]
            if idx == entry and not preds:
                new_in: frozenset[Local] = frozenset()
            elif preds:
                new_in = frozenset.intersection(
                    *(assigned_out[p] for p in preds)
                )
                if idx == entry:
                    new_in = frozenset()  # entry may also be a loop header
            else:
                new_in = frozenset()
            if new_in != assigned_in[idx]:
                assigned_in[idx] = new_in
                assigned_out[idx] = new_in | _defined_locals(stmts[idx])
                changed = True

    for idx in sorted(reachable):
        maybe_unset = _used_locals(stmts[idx]) - assigned_in[idx]
        for local in sorted(maybe_unset, key=lambda v: v.name):
            out.append(
                make_finding(
                    "DF001",
                    f"local {local.name!r} may be used before assignment",
                    class_name=method.class_name,
                    method_id=method.method_id,
                    index=idx,
                )
            )


def _check_unreachable(
    method: Method, cfg: ControlFlowGraph, reachable: set[int],
    out: list[Diagnostic],
) -> None:
    body = method.body
    assert body is not None
    dead = sorted(i for i in range(len(body.statements)) if i not in reachable)
    # Group maximal runs so one hole yields one finding, not one per stmt.
    run_start: int | None = None
    prev = None
    runs: list[tuple[int, int]] = []
    for idx in dead:
        if run_start is None:
            run_start = prev = idx
        elif idx == prev + 1:
            prev = idx
        else:
            runs.append((run_start, prev))
            run_start = prev = idx
    if run_start is not None:
        runs.append((run_start, prev))
    for start, end in runs:
        span = f"#{start}" if start == end else f"#{start}-#{end}"
        out.append(
            make_finding(
                "DF002",
                f"statements {span} are unreachable from the method entry",
                class_name=method.class_name,
                method_id=method.method_id,
                index=start,
            )
        )


def _check_dead_stores(
    method: Method, cfg: ControlFlowGraph, reachable: set[int],
    out: list[Diagnostic],
) -> None:
    body = method.body
    assert body is not None
    stmts = body.statements
    succ = cfg.stmt_succ

    live_in: dict[int, frozenset[Local]] = {i: frozenset() for i in reachable}
    changed = True
    while changed:
        changed = False
        for idx in sorted(reachable, reverse=True):
            live_out: set[Local] = set()
            for s in succ.get(idx, ()):
                if s in reachable:
                    live_out |= live_in[s]
            new_in = frozenset(
                (live_out - _defined_locals(stmts[idx])) | _used_locals(stmts[idx])
            )
            if new_in != live_in[idx]:
                live_in[idx] = new_in
                changed = True

    for idx in sorted(reachable):
        stmt = stmts[idx]
        if not isinstance(stmt, AssignStmt) or not isinstance(stmt.target, Local):
            continue  # field/array stores escape; identity stmts are bindings
        local = stmt.target
        if local.name.startswith("$"):
            continue  # builder-generated temp (unused invoke results, ...)
        if isinstance(stmt.rhs, InvokeExpr):
            continue  # the call is the point; the result may be incidental
        live_out: set[Local] = set()
        for s in succ.get(idx, ()):
            if s in reachable:
                live_out |= live_in[s]
        if local not in live_out:
            out.append(
                make_finding(
                    "DF003",
                    f"value assigned to {local.name!r} is never read",
                    class_name=method.class_name,
                    method_id=method.method_id,
                    index=idx,
                )
            )


def dataflow_program(
    program: Program, skip_methods: set[str] | frozenset[str] = frozenset()
) -> list[Diagnostic]:
    """Run the ``DF0xx`` family.  ``skip_methods`` — method ids the
    typechecker found structurally broken (no CFG can be built)."""
    out: list[Diagnostic] = []
    for method in program.methods():
        if method.body is None or len(method.body) == 0:
            continue
        if method.method_id in skip_methods:
            continue
        cfg = ControlFlowGraph(method)
        reachable = _reachable_stmts(cfg)
        _check_definite_assignment(method, cfg, reachable, out)
        _check_unreachable(method, cfg, reachable, out)
        _check_dead_stores(method, cfg, reachable, out)
    return out


__all__ = ["dataflow_program"]
