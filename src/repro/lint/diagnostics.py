"""The diagnostics framework behind ``repro lint``.

Every lint pass reports :class:`Diagnostic` instances carrying a **stable
rule id** (``IR0xx`` typechecker, ``DF0xx`` CFG dataflow, ``SEM0xx``
pipeline soundness, ``SIG0xx`` post-analysis signature lints), a severity,
a location (class / method / statement index) and a human message.

The contract that makes findings machine-consumable:

* **deterministic ordering** — :func:`sort_findings` orders by
  ``(rule, class, method, index, message)``; two lint runs over the same
  program emit byte-identical output,
* **round-trippable** — ``Diagnostic.from_dict(d.to_dict()) == d``,
* **schema-checked** — :func:`validate_findings_jsonl` mirrors
  :func:`repro.obs.export.validate_jsonl`: a meta line followed by one
  finding event per line, rejected loudly on any shape violation.

This module is dependency-free (dataclasses + json only) so the report
serialiser and the service layer can import it without pulling in the
analysis passes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum

#: Bump when the finding event shape changes incompatibly.
LINT_SCHEMA_VERSION = 1


class Severity(str, Enum):
    """Finding severity; ``ERROR`` gates CI and the analysis pipeline."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.ERROR: 2, Severity.WARNING: 1, Severity.INFO: 0}


@dataclass(frozen=True)
class RuleSpec:
    """One registered lint rule: id, family, default severity, summary."""

    rule: str
    severity: Severity
    summary: str

    @property
    def family(self) -> str:
        return self.rule.rstrip("0123456789")


#: The rule registry.  Ids are append-only and never renumbered — baselines
#: and dashboards key on them.
RULES: dict[str, RuleSpec] = {
    spec.rule: spec
    for spec in (
        # -- IR: structural well-formedness + the hierarchy-aware typechecker
        RuleSpec("IR001", Severity.ERROR, "method body is empty"),
        RuleSpec("IR002", Severity.ERROR, "branch to undefined label"),
        RuleSpec("IR003", Severity.ERROR, "label points past end of body"),
        RuleSpec("IR004", Severity.ERROR,
                 "identity statement after ordinary statements"),
        RuleSpec("IR005", Severity.ERROR,
                 "identity rhs must be @this or @parameter"),
        RuleSpec("IR006", Severity.ERROR, "use of undeclared local"),
        RuleSpec("IR007", Severity.ERROR, "control falls off the end of the body"),
        RuleSpec("IR008", Severity.ERROR, "superclass cycle"),
        RuleSpec("IR010", Severity.ERROR,
                 "assignment source type incompatible with target type"),
        RuleSpec("IR011", Severity.ERROR,
                 "cast between unrelated program classes"),
        RuleSpec("IR012", Severity.ERROR,
                 "invoke argument count disagrees with signature arity"),
        RuleSpec("IR013", Severity.ERROR,
                 "invoke argument type incompatible with parameter type"),
        RuleSpec("IR014", Severity.ERROR,
                 "returned value type incompatible with declared return type"),
        RuleSpec("IR015", Severity.WARNING,
                 "bare return in non-void method"),
        RuleSpec("IR016", Severity.ERROR,
                 "field store type incompatible with declared field type"),
        RuleSpec("IR017", Severity.WARNING,
                 "call-site return type disagrees with resolved app target"),
        # -- DF: intra-procedural CFG dataflow
        RuleSpec("DF001", Severity.ERROR,
                 "local may be used before assignment on some path"),
        RuleSpec("DF002", Severity.WARNING, "unreachable statements"),
        RuleSpec("DF003", Severity.INFO,
                 "dead store: assigned value is never read"),
        # -- SEM: whole-pipeline soundness
        RuleSpec("SEM001", Severity.ERROR,
                 "network-relevant library call has no semantic model or "
                 "demarcation point"),
        RuleSpec("SEM002", Severity.INFO,
                 "library call has neither an app body nor a semantic model "
                 "(taint treats it as a no-op)"),
        RuleSpec("SEM003", Severity.WARNING,
                 "demarcation point unreachable from any entry point"),
        RuleSpec("SEM004", Severity.WARNING,
                 "listener-style demarcation point has no resolvable callback"),
        RuleSpec("SEM005", Severity.ERROR,
                 "entry point references a method the program does not define"),
        RuleSpec("SEM006", Severity.WARNING,
                 "demarcation point invisible to targeted mode's bytecode-"
                 "search seed index (matched via the receiver's declared "
                 "type only)"),
        # -- SIG: post-analysis signature lints
        RuleSpec("SIG001", Severity.WARNING,
                 "transaction URI signature is wildcard-only"),
        RuleSpec("SIG002", Severity.WARNING,
                 "demarcation point produced an empty slice"),
        RuleSpec("SIG003", Severity.WARNING,
                 "demarcation points found but no transactions recorded"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a program location.

    ``class_name`` / ``method_id`` / ``index`` degrade gracefully: a
    program-level finding carries an empty method and index ``-1``, exactly
    like :class:`repro.ir.validate.ValidationError`.
    """

    rule: str
    severity: Severity
    class_name: str
    method_id: str
    index: int
    message: str

    @property
    def location(self) -> str:
        if self.method_id:
            return f"{self.method_id}#{self.index}"
        return self.class_name or "<program>"

    def __str__(self) -> str:
        return f"{self.rule} {self.severity.value} {self.location}: {self.message}"

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "class": self.class_name,
            "method": self.method_id,
            "index": self.index,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        return cls(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            class_name=data["class"],
            method_id=data["method"],
            index=int(data["index"]),
            message=data["message"],
        )

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression: location + rule.

        The message is deliberately excluded so rewording a diagnostic does
        not invalidate existing baselines; the statement index is included
        because two findings of one rule at different statements are
        distinct debts.
        """
        return "|".join(
            (self.rule, self.class_name, self.method_id, str(self.index))
        )


def make_finding(
    rule: str,
    message: str,
    *,
    class_name: str = "",
    method_id: str = "",
    index: int = -1,
    severity: Severity | None = None,
) -> Diagnostic:
    """Construct a finding for a registered rule (severity defaults to the
    rule's registered severity)."""
    spec = RULES[rule]
    return Diagnostic(
        rule=rule,
        severity=severity or spec.severity,
        class_name=class_name,
        method_id=method_id,
        index=index,
        message=message,
    )


def sort_findings(findings: list[Diagnostic]) -> list[Diagnostic]:
    """The canonical deterministic order: (rule, class, method, index)."""
    return sorted(
        findings,
        key=lambda d: (d.rule, d.class_name, d.method_id, d.index, d.message),
    )


def count_by_severity(findings: list[Diagnostic]) -> dict[str, int]:
    counts = {s.value: 0 for s in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts


# ---------------------------------------------------------------------------
# JSONL export + schema checking (mirrors repro.obs.export.validate_jsonl).


def findings_to_jsonl(findings: list[Diagnostic]) -> str:
    """Findings as JSONL: a meta line, then one finding event per line in
    canonical order — byte-deterministic for a given finding set."""
    lines = [
        json.dumps(
            {
                "type": "meta",
                "schema": LINT_SCHEMA_VERSION,
                "findings": len(findings),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for finding in sort_findings(findings):
        event = dict(finding.to_dict(), type="finding")
        lines.append(json.dumps(event, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n"


def validate_findings_jsonl(text: str) -> list[dict]:
    """Parse and structurally validate a findings JSONL document; returns
    the finding events.  Raises ``ValueError`` on any schema violation."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty findings document")
    meta = json.loads(lines[0])
    if meta.get("type") != "meta" or meta.get("schema") != LINT_SCHEMA_VERSION:
        raise ValueError(f"bad meta line: {lines[0]!r}")
    events: list[dict] = []
    for line in lines[1:]:
        event = json.loads(line)
        for key in ("type", "rule", "severity", "class", "method", "index",
                    "message"):
            if key not in event:
                raise ValueError(f"finding event missing {key!r}: {line!r}")
        if event["type"] != "finding":
            raise ValueError(f"unexpected event type {event['type']!r}")
        if event["rule"] not in RULES:
            raise ValueError(f"unknown rule id {event['rule']!r}")
        if event["severity"] not in {s.value for s in Severity}:
            raise ValueError(f"unknown severity {event['severity']!r}")
        if not isinstance(event["index"], int):
            raise ValueError(f"non-integer index in {line!r}")
        events.append(event)
    if meta.get("findings") != len(events):
        raise ValueError(
            f"meta declares {meta.get('findings')} findings, got {len(events)}"
        )
    return events


__all__ = [
    "Diagnostic",
    "LINT_SCHEMA_VERSION",
    "RULES",
    "RuleSpec",
    "Severity",
    "count_by_severity",
    "findings_to_jsonl",
    "make_finding",
    "sort_findings",
    "validate_findings_jsonl",
]
