"""Pipeline-soundness lints (``SEM0xx`` rules).

The taint engine treats a call with neither an app body nor a
:mod:`repro.semantics` handler as a no-op — sound for ``Log.d``, silently
wrong for an HTTP API nobody modeled.  That is the exact "missed request"
failure mode the paper's coverage argument rests on, so this family makes
it loud:

* **SEM001** (error) — an *unmodeled network-relevant* library call: the
  receiver class lives in a known HTTP/network package but no semantic
  model, demarcation point or implicit-edge rule covers the call.
* **SEM002** (info) — any other library call with no body and no model
  (the no-op treatment is usually fine; the inventory is still useful).
* **SEM003** (warning) — a demarcation point whose enclosing method no
  entry point (or framework callback) can reach via the call graph: its
  slices can never execute.
* **SEM004** (warning) — a listener-style demarcation point whose callback
  class could not be resolved: the response slice will be empty.
* **SEM005** (error) — an entry point naming a method the program does not
  define.
* **SEM006** (warning) — a demarcation point the full scanner finds but
  targeted mode's bytecode-search seed index
  (:func:`repro.incr.targeted.seed_sites`) cannot: the site only matches
  via the receiver local's *declared* type, while the invoke's static
  signature names an unregistered class.  ``--mode targeted`` would miss
  this DP, so the blind spot is surfaced before anyone trusts that mode
  on the app.

The pass builds its **own** call graph.  ``scan_demarcation_points`` and
``discover_callbacks`` register implicit edges and *pop* the affected
sites from ``CallGraph.library_sites``; doing that to the pipeline's
shared call graph before slicing would hide those demarcation points from
the slicer.
"""

from __future__ import annotations

from ..apk.model import Apk
from ..cfg.callgraph import CallGraph
from ..ir.program import Program
from ..ir.values import Local
from ..semantics.async_model import discover_callbacks
from ..semantics.model import SemanticModel, default_model
from ..slicing.demarcation import DemarcationRegistry, scan_demarcation_points
from ..taint.engine import NOFLOW_CALLS
from .diagnostics import Diagnostic, make_finding

#: Package prefixes whose APIs move bytes on and off the network.  A call
#: into one of these with no model and no demarcation point is a protocol
#: flow the analysis is provably blind to.
NETWORK_PREFIXES: tuple[str, ...] = (
    "org.apache.http",
    "android.net.http",
    "java.net.",
    "okhttp3.",
    "com.squareup.okhttp",
    "com.android.volley",
    "retrofit2.",
    "com.google.api.client.http",
    "com.beeframework",
)


def _is_network_class(name: str) -> bool:
    return any(
        name.startswith(p) or name == p.rstrip(".") for p in NETWORK_PREFIXES
    )


def soundness_program(
    program: Program,
    entrypoint_ids: list[str] | None = None,
    *,
    registry: DemarcationRegistry | None = None,
    model: SemanticModel | None = None,
) -> list[Diagnostic]:
    """Run the ``SEM0xx`` family over a program (plus optional entry
    points).  Builds a private call graph; never touches the pipeline's."""
    out: list[Diagnostic] = []
    entrypoint_ids = entrypoint_ids or []
    model = model or default_model()
    callgraph = CallGraph(program)
    cbinfo = discover_callbacks(program, callgraph)
    dps = scan_demarcation_points(program, callgraph, registry)
    dp_sites = {dp.site for dp in dps}

    # -- SEM005: dangling entry points -----------------------------------
    defined = {m.method_id for m in program.methods()}
    live_roots: list[str] = []
    for ep_id in entrypoint_ids:
        if ep_id in defined:
            live_roots.append(ep_id)
        else:
            out.append(
                make_finding(
                    "SEM005",
                    f"entry point {ep_id} is not defined in the program",
                    method_id=ep_id,
                )
            )

    # -- SEM001/SEM002: unmodeled library calls ---------------------------
    for ref, expr in sorted(
        callgraph.library_sites.items(),
        key=lambda kv: (kv[0].method_id, kv[0].index),
    ):
        if ref in dp_sites:
            continue  # handled by the slicer
        sig = expr.sig
        name = sig.name
        if name == "<init>":
            # Constructors of unmodeled library types build opaque objects;
            # the interpreter tracks them structurally without a handler.
            continue
        receiver = sig.class_name
        if isinstance(expr.base, Local):
            receiver = expr.base.type.name
        if (receiver, name) in NOFLOW_CALLS or (sig.class_name, name) in NOFLOW_CALLS:
            continue  # deliberately flow-free (logging, clocks, ...)
        handled = (
            model.lookup(receiver, name) is not None
            or model.lookup(sig.class_name, name) is not None
        )
        if not handled and program.has_class(receiver):
            ancestors = program.library_ancestors(receiver)
            handled = model.lookup_dispatch(ancestors, name) is not None
        if handled:
            continue
        method = program.method_by_id(ref.method_id)
        if _is_network_class(receiver) or _is_network_class(sig.class_name):
            out.append(
                make_finding(
                    "SEM001",
                    f"network call {sig.qualified_name} has no semantic model "
                    "and is not a demarcation point",
                    class_name=method.class_name,
                    method_id=ref.method_id,
                    index=ref.index,
                )
            )
        else:
            out.append(
                make_finding(
                    "SEM002",
                    f"{sig.qualified_name} has neither an app body nor a "
                    "semantic model",
                    class_name=method.class_name,
                    method_id=ref.method_id,
                    index=ref.index,
                )
            )

    # -- SEM003/SEM004: demarcation-point health --------------------------
    roots = sorted(set(live_roots) | cbinfo.callback_methods)
    reachable = callgraph.reachable_from(roots) if roots else set()
    for dp in dps:
        method = program.method_by_id(dp.site.method_id)
        if roots and dp.site.method_id not in reachable:
            out.append(
                make_finding(
                    "SEM003",
                    f"demarcation point {dp.spec.class_name}."
                    f"{dp.spec.method_name} is unreachable from any entry "
                    "point",
                    class_name=method.class_name,
                    method_id=dp.site.method_id,
                    index=dp.site.index,
                )
            )
        if dp.spec.response.startswith("listener:") and not dp.response_seeds:
            out.append(
                make_finding(
                    "SEM004",
                    f"listener-style demarcation point {dp.spec.class_name}."
                    f"{dp.spec.method_name} has no resolvable callback; the "
                    "response slice will be empty",
                    class_name=method.class_name,
                    method_id=dp.site.method_id,
                    index=dp.site.index,
                )
            )

    # -- SEM006: targeted-mode seed-index blind spots ---------------------
    from ..incr.targeted import seed_sites

    seeds = seed_sites(program, registry)
    for dp in dps:
        if dp.site in seeds:
            continue
        method = program.method_by_id(dp.site.method_id)
        out.append(
            make_finding(
                "SEM006",
                f"demarcation point {dp.spec.class_name}."
                f"{dp.spec.method_name} is invisible to the targeted-mode "
                "seed index (matched only via the receiver's declared "
                "type); --mode targeted would miss it",
                class_name=method.class_name,
                method_id=dp.site.method_id,
                index=dp.site.index,
            )
        )
    return out


def soundness_apk(
    apk: Apk,
    *,
    registry: DemarcationRegistry | None = None,
    model: SemanticModel | None = None,
) -> list[Diagnostic]:
    return soundness_program(
        apk.program,
        [ep.method_id for ep in apk.entrypoints],
        registry=registry,
        model=model,
    )


__all__ = ["NETWORK_PREFIXES", "soundness_apk", "soundness_program"]
