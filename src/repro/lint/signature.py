"""Post-analysis signature lints (``SIG0xx`` rules).

These run *after* the pipeline, over the artefacts it produced — the
:class:`~repro.core.report.AnalysisReport` and (when available) the raw
:class:`~repro.slicing.slicer.SlicingReport` — and flag outputs that are
formally present but useless to a consumer:

* **SIG001** — a transaction whose URI signature is wildcard-only
  (``(.*)``): the request was found but nothing about its endpoint was
  recovered (the paper's "unidentified" bucket).
* **SIG002** — a demarcation point whose request *and* response slices are
  both empty: slicing started there and recovered nothing.
* **SIG003** — demarcation points were found but no transaction was
  recorded at all: the signature interpreter never reached them.

All three are warnings — wildcard URIs legitimately occur in the corpus
(fully dynamic URLs, e.g. TED's media links), so they indicate reduced
fidelity rather than broken analysis.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, make_finding


def _txn_location(txn) -> tuple[str, str, int]:
    """(class, method, index) of the transaction's demarcation site; frozen
    (deserialised) transactions carry no site and degrade to report level."""
    site = getattr(txn, "site", None)
    if site is None:
        return "", "", -1
    class_name = site.method_id.strip("<").split(":", 1)[0]
    return class_name, site.method_id, site.index


def signature_report(report, slicing=None) -> list[Diagnostic]:
    """Run the ``SIG0xx`` family over an analysis report (and, when the
    caller has it, the slicing report from the same run)."""
    out: list[Diagnostic] = []
    for txn in report.unidentified:
        class_name, method_id, index = _txn_location(txn)
        out.append(
            make_finding(
                "SIG001",
                f"transaction {txn.txn_id}: URI signature "
                f"{txn.request.method} {txn.request.uri_regex!r} is "
                "wildcard-only",
                class_name=class_name,
                method_id=method_id,
                index=index,
            )
        )
    if slicing is not None:
        for s in slicing.slices:
            if s.request.stmts or s.response.stmts:
                continue
            out.append(
                make_finding(
                    "SIG002",
                    f"demarcation point {s.dp.spec.class_name}."
                    f"{s.dp.spec.method_name} produced an empty slice",
                    class_name=s.dp.site.method_id.strip("<").split(":", 1)[0],
                    method_id=s.dp.site.method_id,
                    index=s.dp.site.index,
                )
            )
    if report.demarcation_points > 0 and not report.transactions and not report.unidentified:
        out.append(
            make_finding(
                "SIG003",
                f"{report.demarcation_points} demarcation point(s) found but "
                "no transactions recorded",
            )
        )
    return out


__all__ = ["signature_report"]
