"""repro.lint — whole-program IR typechecker + pipeline-soundness lints.

Three pass families over a :class:`~repro.ir.program.Program` (DESIGN.md
"Static checking"):

* ``IR0xx`` — structural well-formedness and a class-hierarchy-aware
  typechecker (:mod:`.typecheck`), subsuming :mod:`repro.ir.validate`;
* ``DF0xx`` — CFG dataflow lints: definite assignment, unreachable code,
  dead stores (:mod:`.dataflow`);
* ``SEM0xx`` — pipeline-soundness lints: unmodeled library calls,
  unreachable/unresolvable demarcation points, dangling entry points
  (:mod:`.soundness`);

plus the post-analysis ``SIG0xx`` signature lints (:mod:`.signature`).
Entry points: :func:`lint_apk` / :func:`lint_program`; the CLI verb is
``repro lint``; the pipeline gate is ``AnalysisConfig.lint_level``.
"""

from .diagnostics import (
    Diagnostic,
    LINT_SCHEMA_VERSION,
    RULES,
    RuleSpec,
    Severity,
    count_by_severity,
    findings_to_jsonl,
    make_finding,
    sort_findings,
    validate_findings_jsonl,
)
from .dataflow import dataflow_program
from .runner import (
    Baseline,
    GATE_LEVELS,
    LintGateError,
    LintReport,
    gate,
    lint_apk,
    lint_program,
)
from .signature import signature_report
from .soundness import NETWORK_PREFIXES, soundness_apk, soundness_program
from .typecheck import Hierarchy, compatible, static_type_of, typecheck_program

__all__ = [name for name in dir() if not name.startswith("_")]
