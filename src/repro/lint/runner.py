"""Lint orchestration: run the pass families, gate, baseline.

``lint_program``/``lint_apk`` compose the three static families
(typechecker → dataflow → soundness) into one deterministic finding list;
``signature_report`` findings are appended by callers that ran the full
pipeline.  ``Baseline`` implements the suppression workflow: a checked-in
JSON file of finding fingerprints that are known debt — ``repro lint``
exits non-zero only on findings *not* in the baseline.

Gate levels (``AnalysisConfig.lint_level``):

========  ==========================================================
off       lint never runs (default; costs one branch)
record    findings are computed and carried on the report, never fatal
error     error-severity findings abort the analysis (LintGateError)
strict    warnings are fatal too
========  ==========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..apk.model import Apk
from ..ir.program import Program
from .dataflow import dataflow_program
from .diagnostics import (
    Diagnostic,
    count_by_severity,
    Severity,
    sort_findings,
)
from .signature import signature_report
from .soundness import soundness_program
from .typecheck import typecheck_program

GATE_LEVELS = ("off", "record", "error", "strict")


class LintGateError(Exception):
    """Raised when gated lint findings block an analysis."""

    def __init__(self, app: str, findings: list[Diagnostic]) -> None:
        self.app = app
        self.findings = findings
        listing = "\n".join(str(f) for f in findings[:20])
        more = f"\n... and {len(findings) - 20} more" if len(findings) > 20 else ""
        super().__init__(
            f"lint gate failed for {app} ({len(findings)} finding(s)):\n"
            f"{listing}{more}"
        )


@dataclass
class LintReport:
    """All findings for one app, in canonical order."""

    app: str
    findings: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    def counts(self) -> dict[str, int]:
        return count_by_severity(self.findings)

    def by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LintReport":
        return cls(
            app=data["app"],
            findings=[Diagnostic.from_dict(f) for f in data.get("findings", ())],
        )


def lint_program(
    program: Program,
    entrypoint_ids: list[str] | None = None,
    *,
    registry=None,
    model=None,
) -> list[Diagnostic]:
    """Run the static families (IR → DF → SEM) over a program."""
    findings, cfg_unsafe = typecheck_program(program)
    findings.extend(dataflow_program(program, cfg_unsafe))
    findings.extend(
        soundness_program(
            program, entrypoint_ids, registry=registry, model=model
        )
    )
    return sort_findings(findings)


def lint_apk(
    apk: Apk,
    *,
    registry=None,
    model=None,
    report=None,
    slicing=None,
) -> LintReport:
    """Lint an APK; adds the post-analysis ``SIG0xx`` findings when the
    caller supplies the analysis artefacts."""
    findings = lint_program(
        apk.program,
        [ep.method_id for ep in apk.entrypoints],
        registry=registry,
        model=model,
    )
    if report is not None:
        findings = sort_findings(findings + signature_report(report, slicing))
    return LintReport(app=apk.name, findings=findings)


def gate(report: LintReport, level: str) -> None:
    """Enforce a lint level; raises :class:`LintGateError` when blocked."""
    if level not in GATE_LEVELS:
        raise ValueError(f"unknown lint level {level!r} (choose from {GATE_LEVELS})")
    if level in ("off", "record"):
        return
    blocking = list(report.errors)
    if level == "strict":
        blocking += report.warnings
    if blocking:
        raise LintGateError(report.app, sort_findings(blocking))


# ---------------------------------------------------------------------------
# Baseline suppression.


@dataclass
class Baseline:
    """Known-debt fingerprints; findings in the baseline never fail a run."""

    fingerprints: frozenset[str] = frozenset()

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != 1:
            raise ValueError(f"unsupported baseline version: {data.get('version')!r}")
        return cls(fingerprints=frozenset(data.get("fingerprints", ())))

    @classmethod
    def from_findings(cls, findings: list[Diagnostic]) -> "Baseline":
        return cls(fingerprints=frozenset(f.fingerprint() for f in findings))

    def save(self, path: str | Path) -> None:
        payload = {"version": 1, "fingerprints": sorted(self.fingerprints)}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def new_findings(self, findings: list[Diagnostic]) -> list[Diagnostic]:
        return [f for f in findings if f.fingerprint() not in self.fingerprints]


__all__ = [
    "Baseline",
    "GATE_LEVELS",
    "LintGateError",
    "LintReport",
    "gate",
    "lint_apk",
    "lint_program",
]
