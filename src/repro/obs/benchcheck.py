"""Benchmark regression gating — the engine behind ``repro bench check``.

Compares a *candidate* performance measurement against a checked-in
baseline ``BENCH_*.json`` and decides pass/fail with configurable
thresholds, so CI consumes the bench trajectory instead of merely
regenerating it.

Five bench shapes are understood (detected structurally, no filename
convention required):

* ``batch_scale`` — ``{"by_workers": {"1": {apps_per_sec, p50_s, ...}}}``
* ``corpus_scale`` — ``{"by_size": {"100": {apps_per_sec, p50_ms, ...}}}``
* ``pipeline`` — ``{"apps": {...}, "aggregate": {"speedup": ...}}``
* ``incremental`` — ``{"by_lineage": {"app@v2": {cold_s, warm_s, speedup,
  reuse_fraction, ...}}}`` (cold vs manifest-warm re-analysis)
* ``search`` — ``{"by_query": {"host": {p50_ms, p99_ms, qps, ...}}}``
  (fleet-index query latency over a synthesized store; the baked query
  strings travel in ``meta.queries`` so a fresh candidate re-runs
  exactly the baseline's workload)

Candidates come from three sources: another bench JSON file, a run-ledger
entry (converted to a one-row ``batch_scale`` shape), or a fresh sharded
batch run over the baseline's own target list.

**Host fingerprints.**  Performance numbers are only comparable on
comparable hosts.  Both sides' fingerprints (``meta.host``, falling back
to the legacy top-level ``meta`` keys older BENCH files carry) are
compared and every mismatch is reported loudly; mismatched comparisons
still run — the caller decides whether to trust them — but the warnings
make "1-core CI vs 16-core workstation" impossible to miss.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .fleet import fingerprint_mismatches, host_fingerprint

#: Default regression threshold: a metric may degrade by up to 25%
#: before the check fails (latency +25%, throughput −25%).
DEFAULT_THRESHOLD = 0.25

#: Metric direction: "higher" is better (throughput, speedup) or
#: "lower" is better (latency).
_BATCH_METRICS = (
    ("apps_per_sec", "higher"),
    ("p50_s", "lower"),
    ("p99_s", "lower"),
)
_CORPUS_METRICS = (
    ("gen_apps_per_sec", "higher"),
    ("apps_per_sec", "higher"),
    ("p50_ms", "lower"),
    ("p99_ms", "lower"),
)
#: reuse_fraction is deterministic (manifest diffing, not timing), so it
#: is the load-bearing gate; the timing pair rides along for trajectory.
_INCR_METRICS = (
    ("reuse_fraction", "higher"),
    ("speedup", "higher"),
    ("warm_s", "lower"),
)
_SEARCH_METRICS = (
    ("qps", "higher"),
    ("p50_ms", "lower"),
    ("p99_ms", "lower"),
)


@dataclass
class MetricCheck:
    """One baseline/candidate metric pair and its verdict."""

    metric: str
    direction: str  # "higher" | "lower" is better
    baseline: float
    candidate: float
    threshold: float
    regressed: bool

    @property
    def ratio(self) -> float:
        return self.candidate / self.baseline if self.baseline else 0.0

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "ratio": round(self.ratio, 4),
            "threshold": self.threshold,
            "regressed": self.regressed,
        }


@dataclass
class CheckResult:
    """Outcome of one baseline-vs-candidate comparison."""

    bench: str
    kind: str
    checks: list = field(default_factory=list)
    fingerprint_warnings: list = field(default_factory=list)

    @property
    def regressions(self) -> list:
        return [c for c in self.checks if c.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "bench": self.bench,
            "kind": self.kind,
            "ok": self.ok,
            "checks": [c.to_dict() for c in self.checks],
            "regressions": [c.metric for c in self.regressions],
            "fingerprint_warnings": self.fingerprint_warnings,
        }


def bench_kind(data: dict) -> str | None:
    """Classify a bench JSON structurally; None for unknown shapes."""
    if "by_workers" in data:
        return "batch_scale"
    if "by_size" in data:
        return "corpus_scale"
    if "by_lineage" in data:
        return "incremental"
    if "by_query" in data:
        return "search"
    if "apps" in data and "aggregate" in data:
        return "pipeline"
    return None


def bench_fingerprint(data: dict) -> dict:
    """The host fingerprint of a bench report — ``meta.host`` when
    present, else reconstructed from the legacy top-level meta keys."""
    meta = data.get("meta") or {}
    host = meta.get("host")
    if isinstance(host, dict):
        return host
    return {
        key: meta[key]
        for key in ("python", "platform", "cpu_count", "usable_cpus")
        if key in meta
    }


def extract_metrics(data: dict) -> dict[str, tuple[float, str]]:
    """Flatten a bench report into ``{metric_path: (value, direction)}``.
    Only numeric metrics with a known better-direction are extracted."""
    kind = bench_kind(data)
    out: dict[str, tuple[float, str]] = {}
    if kind == "batch_scale":
        for workers, row in (data.get("by_workers") or {}).items():
            for metric, direction in _BATCH_METRICS:
                if isinstance(row.get(metric), (int, float)):
                    out[f"by_workers.{workers}.{metric}"] = (
                        float(row[metric]),
                        direction,
                    )
    elif kind == "corpus_scale":
        for size, row in (data.get("by_size") or {}).items():
            for metric, direction in _CORPUS_METRICS:
                if isinstance(row.get(metric), (int, float)):
                    out[f"by_size.{size}.{metric}"] = (
                        float(row[metric]),
                        direction,
                    )
    elif kind == "incremental":
        for label, row in (data.get("by_lineage") or {}).items():
            for metric, direction in _INCR_METRICS:
                if isinstance(row.get(metric), (int, float)):
                    out[f"by_lineage.{label}.{metric}"] = (
                        float(row[metric]),
                        direction,
                    )
    elif kind == "search":
        for name, row in (data.get("by_query") or {}).items():
            for metric, direction in _SEARCH_METRICS:
                if isinstance(row.get(metric), (int, float)):
                    out[f"by_query.{name}.{metric}"] = (
                        float(row[metric]),
                        direction,
                    )
    elif kind == "pipeline":
        aggregate = data.get("aggregate") or {}
        if isinstance(aggregate.get("speedup"), (int, float)):
            out["aggregate.speedup"] = (float(aggregate["speedup"]), "higher")
        for app, row in (data.get("apps") or {}).items():
            if isinstance(row.get("parallel_s"), (int, float)):
                out[f"apps.{app}.parallel_s"] = (
                    float(row["parallel_s"]),
                    "lower",
                )
    return out


def compare_benches(
    baseline: dict,
    candidate: dict,
    *,
    bench_name: str = "bench",
    threshold: float = DEFAULT_THRESHOLD,
) -> CheckResult:
    """Compare the metric intersection of two bench reports.

    A "higher is better" metric regresses when the candidate falls below
    ``baseline * (1 - threshold)``; a "lower is better" metric when it
    exceeds ``baseline * (1 + threshold)``.
    """
    result = CheckResult(
        bench=bench_name,
        kind=bench_kind(baseline) or "unknown",
        fingerprint_warnings=fingerprint_mismatches(
            bench_fingerprint(baseline), bench_fingerprint(candidate)
        ),
    )
    base_metrics = extract_metrics(baseline)
    cand_metrics = extract_metrics(candidate)
    for metric in sorted(set(base_metrics) & set(cand_metrics)):
        base_value, direction = base_metrics[metric]
        cand_value, _ = cand_metrics[metric]
        if direction == "higher":
            regressed = cand_value < base_value * (1.0 - threshold)
        else:
            regressed = cand_value > base_value * (1.0 + threshold)
        result.checks.append(
            MetricCheck(
                metric=metric,
                direction=direction,
                baseline=base_value,
                candidate=cand_value,
                threshold=threshold,
                regressed=regressed,
            )
        )
    return result


# ------------------------------------------------------- candidate sources
def candidate_from_run(record: dict) -> dict:
    """A run-ledger entry as a one-row ``batch_scale``-shaped candidate,
    comparable against ``BENCH_batch_scale.json``'s matching worker row."""
    workers = str(record.get("workers") or 1)
    return {
        "meta": {
            "host": record.get("host") or {},
            "source": f"run-ledger:{record.get('run_id')}",
        },
        "by_workers": {
            workers: {
                "wall_s": record.get("wall_s", 0.0),
                "apps_per_sec": record.get("apps_per_sec", 0.0),
                "p50_s": record.get("p50_s", 0.0),
                "p99_s": record.get("p99_s", 0.0),
                "work_steals": record.get("work_steals", 0),
                "analyses_run": record.get("analyses_run", 0),
            }
        },
    }


def fresh_candidate(
    baseline: dict, *, workers: int, store_root=None
) -> dict:
    """Measure a fresh cold sharded batch over the baseline's own target
    list (one worker count) and return it in ``batch_scale`` shape."""
    import tempfile
    import time

    from ..service.shard import run_sharded_batch
    from .fleet import percentile

    targets = list((baseline.get("meta") or {}).get("targets") or [])
    if not targets:
        raise ValueError(
            "baseline meta.targets is empty; cannot run a fresh candidate"
        )
    with tempfile.TemporaryDirectory(prefix="repro-benchcheck-") as tmp:
        root = store_root or tmp
        t0 = time.perf_counter()
        records = run_sharded_batch(root, targets, workers=workers)
        wall = time.perf_counter() - t0
    latencies = sorted(r.seconds for r in records if r.seconds)
    return {
        "meta": {"host": host_fingerprint(), "targets": targets,
                 "source": "fresh"},
        "by_workers": {
            str(workers): {
                "wall_s": round(wall, 4),
                "apps_per_sec": round(len(records) / wall, 3),
                "p50_s": round(percentile(latencies, 0.50), 4),
                "p99_s": round(percentile(latencies, 0.99), 4),
                "work_steals": sum(1 for r in records if r.stolen),
                "analyses_run": sum(
                    1
                    for r in records
                    if r.status == "done" and not r.cache_hit
                ),
            }
        },
    }


def measure_incremental_row(label: str) -> dict:
    """Cold vs manifest-warm analysis of one lineage version label
    (``app@vN``): a full cold run, then ``v(N-1)`` analyzed into a fresh
    store (leaving its manifest) and ``vN`` re-analyzed in incremental
    mode against it.  ``identical`` asserts the byte-identity contract."""
    import tempfile
    import time

    from ..core.extractocol import Extractocol
    from ..core.report import report_to_dict
    from ..corpus.lineage import build_version
    from ..diff.engine import _relative_renames
    from ..service.store import ResultStore

    family, _, v = label.partition("@")
    version = int(v.lstrip("v"))
    built = build_version(label)
    t0 = time.perf_counter()
    cold = Extractocol(built.config).analyze(built.apk)
    cold_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-incr-bench-") as tmp:
        store = ResultStore(tmp)
        prev = build_version(f"{family}@v{version - 1}")
        Extractocol(prev.config, store=store).analyze(prev.apk)
        built.config.mode = "incremental"
        renames = _relative_renames(
            prev.renames_from_base, built.renames_from_base
        )
        engine = Extractocol(built.config, store=store)
        t0 = time.perf_counter()
        warm = engine.analyze(built.apk, renames=renames)
        warm_s = time.perf_counter() - t0

    counters = warm.phase_stats.incremental or {}
    total = counters.get("reused", 0) + counters.get("reanalyzed", 0)
    return {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 3) if warm_s else 0.0,
        "reused": counters.get("reused", 0),
        "reanalyzed": counters.get("reanalyzed", 0),
        "reuse_fraction": (
            round(counters.get("reused", 0) / total, 4) if total else 0.0
        ),
        "dirty_methods": counters.get("dirty_methods", 0),
        "identical": report_to_dict(cold) == report_to_dict(warm),
    }


def measure_incremental_synth(spec: str) -> dict:
    """One aggregate row over every known-drift lineage of a synthesized
    population (``synth:<families>*<scale>[@<seed>]``)."""
    from ..synth import parse_population, synth_lineage

    rows: list[dict] = []
    for key in parse_population(spec).keys():
        for lv in synth_lineage(key)[1:]:
            rows.append(measure_incremental_row(lv.label))
    if not rows:
        raise ValueError(f"{spec}: no apps with lineage versions")
    cold_s = sum(r["cold_s"] for r in rows)
    warm_s = sum(r["warm_s"] for r in rows)
    reused = sum(r["reused"] for r in rows)
    reanalyzed = sum(r["reanalyzed"] for r in rows)
    total = reused + reanalyzed
    return {
        "pairs": len(rows),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 3) if warm_s else 0.0,
        "reused": reused,
        "reanalyzed": reanalyzed,
        "reuse_fraction": round(reused / total, 4) if total else 0.0,
        "dirty_methods": sum(r["dirty_methods"] for r in rows),
        "identical": all(r["identical"] for r in rows),
    }


def _top_term(index, prefix: str, *, skip=lambda value: False) -> str | None:
    """The busiest term under a namespace prefix — deterministic: highest
    posting count, lexicographically first on ties."""
    best: tuple[int, str] | None = None
    for term, postings in index.postings.items():
        if not term.startswith(prefix):
            continue
        if skip(term[len(prefix):]):
            continue
        cand = (-len(postings), term)
        if best is None or cand < best:
            best = cand
    return best[1] if best is not None else None


def derive_search_queries(index) -> dict[str, str]:
    """One representative query per grammar class, derived
    deterministically from the index contents (busiest term of each
    namespace; the lexicographically first document for ``like:``)."""
    queries: dict[str, str] = {}
    host = _top_term(index, "host:")
    path = _top_term(index, "path:", skip=lambda v: v.startswith("/"))
    field = _top_term(index, "field:")
    text = _top_term(index, "text:")
    if host:
        queries["host"] = host
    if path:
        queries["path"] = path
    if field:
        queries["field"] = field
    if text:
        queries["text"] = text[len("text:"):]
    if host and text:
        queries["multi"] = f"{host} {text[len('text:'):]}"
    for key in sorted(index.docs):
        txns = sorted(int(t) for t in index.docs[key].get("txns", {}))
        if txns:
            queries["like"] = f"like:{key[:16]}/{txns[0]}"
            break
    return queries


def measure_search_bench(
    spec: str,
    *,
    queries: dict[str, str] | None = None,
    workers: int = 0,
    repeats: int = 50,
    store_root=None,
) -> dict:
    """Build a store from a population spec, index it, and measure query
    latency per grammar class; returns the full ``search``-shaped bench.

    The index is loaded once and queried ``repeats`` times per class —
    the service steady state, where ``refresh()`` is a stat probe.
    """
    import tempfile
    import time

    from ..fleetindex.index import FleetIndex, build_index
    from ..fleetindex.query import run_search
    from ..service.shard import run_sharded_batch
    from ..service.store import ResultStore
    from ..synth import expand_targets
    from .fleet import percentile

    targets = expand_targets([spec])
    with tempfile.TemporaryDirectory(prefix="repro-bench-search-") as tmp:
        root = store_root or tmp
        run_sharded_batch(root, targets, workers=workers or 1)
        store = ResultStore(root)
        t0 = time.perf_counter()
        index_stats = build_index(store)
        build_s = time.perf_counter() - t0
        index = FleetIndex(store).refresh()
        if queries is None:
            queries = derive_search_queries(index)

        by_query: dict[str, dict] = {}
        for name in sorted(queries):
            text = queries[name]
            latencies: list[float] = []
            total = 0
            for _ in range(repeats):
                t0 = time.perf_counter()
                result = run_search(index, text)
                latencies.append(time.perf_counter() - t0)
                total = result["total"]
            latencies.sort()
            wall = sum(latencies)
            by_query[name] = {
                "query": text,
                "hits": total,
                "p50_ms": round(percentile(latencies, 0.50) * 1000, 4),
                "p99_ms": round(percentile(latencies, 0.99) * 1000, 4),
                "qps": round(repeats / wall, 2) if wall else 0.0,
            }
    return {
        "meta": {
            "host": host_fingerprint(),
            "spec": spec,
            "queries": queries,
            "repeats": repeats,
            "engine": "repro.fleetindex (loaded index, pending overlay)",
            "timed_region": (
                "run_search only: parse + posting intersection/scoring + "
                "sort + first page"
            ),
        },
        "index": {**index_stats, "build_s": round(build_s, 4)},
        "by_query": by_query,
    }


def fresh_search_candidate(baseline: dict) -> dict:
    """Re-measure the baseline's own store spec and baked query strings
    (``search`` kind's fresh-run source for ``repro bench check``)."""
    meta = baseline.get("meta") or {}
    spec = meta.get("spec")
    if not spec:
        raise ValueError("baseline meta.spec is empty; cannot rebuild store")
    queries = meta.get("queries") or None
    repeats = int(meta.get("repeats") or 50)
    return measure_search_bench(spec, queries=queries, repeats=repeats)


def fresh_incremental_candidate(baseline: dict) -> dict:
    """Re-measure the baseline's own lineage rows (``incremental`` kind's
    fresh-run source for ``repro bench check``)."""
    by_lineage: dict[str, dict] = {}
    for label in baseline.get("by_lineage") or {}:
        if label.startswith("synth:"):
            by_lineage[label] = measure_incremental_synth(label)
        else:
            by_lineage[label] = measure_incremental_row(label)
    if not by_lineage:
        raise ValueError("baseline by_lineage is empty")
    return {
        "meta": {"host": host_fingerprint(), "source": "fresh"},
        "by_lineage": by_lineage,
    }


def load_bench(path: str | Path) -> dict:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or bench_kind(data) is None:
        raise ValueError(f"{path}: not a recognized bench report")
    return data


# ------------------------------------------------------------- rendering
def render_check(result: CheckResult) -> str:
    lines = [f"== {result.bench} ({result.kind}) =="]
    for warning in result.fingerprint_warnings:
        lines.append(f"!! HOST FINGERPRINT MISMATCH: {warning}")
    if result.fingerprint_warnings:
        lines.append(
            "!! numbers below compare across different hosts; "
            "treat regressions/improvements with suspicion"
        )
    for check in result.checks:
        arrow = "worse" if (
            (check.direction == "higher" and check.ratio < 1.0)
            or (check.direction == "lower" and check.ratio > 1.0)
        ) else "better-or-equal"
        status = "REGRESSED" if check.regressed else "ok"
        lines.append(
            f"  {status:<9} {check.metric:<34} "
            f"base={check.baseline:g} cand={check.candidate:g} "
            f"ratio={check.ratio:.3f} ({arrow})"
        )
    tally = (
        f"{len(result.regressions)} regression(s)"
        if result.regressions
        else "no regressions"
    )
    lines.append(f"-- {tally} across {len(result.checks)} metric(s)")
    return "\n".join(lines)


__all__ = [
    "CheckResult",
    "DEFAULT_THRESHOLD",
    "MetricCheck",
    "bench_fingerprint",
    "bench_kind",
    "candidate_from_run",
    "compare_benches",
    "derive_search_queries",
    "extract_metrics",
    "fresh_candidate",
    "fresh_incremental_candidate",
    "fresh_search_candidate",
    "measure_search_bench",
    "load_bench",
    "measure_incremental_row",
    "measure_incremental_synth",
    "render_check",
]
