"""Taint provenance: *why* is this field in the signature?

The taint engine, when asked (``TaintConfig.record_provenance``), records
for every statement it pulls into a slice the statement that caused the
inclusion.  Those parent links form a forest rooted at the demarcation
point's seeds, so any statement in a request slice has a chain back to
the request send — the explicit provenance BackDroid-style targeted
analyses ask for.

:func:`explain` ties the pieces together for one ``(app, request,
field)`` question:

1. run the pipeline once with provenance recording on (the report is
   unchanged — recording is an execution knob, not a semantic one),
2. resolve the request selector to a transaction and the field selector
   to a signature term,
3. locate the statement that *produced* the field — the slice statement
   carrying the matching string literal — and walk the parent links to
   the demarcation point,
4. attach the dynamic side: ``Unknown`` origin tags and the
   inter-transaction dependency edges that target the field.

Surfaced on the CLI as ``repro explain <app> <request> <field>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field, replace

from ..core.config import AnalysisConfig
from ..core.extractocol import Extractocol
from ..ir.statements import StmtRef
from ..ir.values import StringConst
from ..signature.lang import Const, JsonObject, Term, origins_of


@dataclass(frozen=True)
class ProvenanceStep:
    """One hop of a provenance chain: a concrete statement."""

    method_id: str
    index: int
    text: str

    def __str__(self) -> str:
        return f"{self.method_id}#{self.index}: {self.text}"


@dataclass
class FieldProvenance:
    """The full answer for one (transaction, field) question."""

    app: str
    txn_id: int
    request: str
    field: str
    value: str
    origins: list[str] = dc_field(default_factory=list)
    #: producing statement first, demarcation point last
    steps: list[ProvenanceStep] = dc_field(default_factory=list)
    dependencies: list[str] = dc_field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "txn_id": self.txn_id,
            "request": self.request,
            "field": self.field,
            "value": self.value,
            "origins": self.origins,
            "steps": [
                {"method": s.method_id, "index": s.index, "stmt": s.text}
                for s in self.steps
            ],
            "dependencies": self.dependencies,
        }

    def describe(self) -> str:
        lines = [
            f"app: {self.app}",
            f"transaction: #{self.txn_id} {self.request}",
            f"field: {self.field}",
            f"value: {self.value}",
        ]
        if self.origins:
            lines.append("origins: " + ", ".join(self.origins))
        if self.steps:
            lines.append("statement chain (producer -> demarcation point):")
            for i, step in enumerate(self.steps, 1):
                lines.append(f"  {i}. {step}")
        else:
            lines.append("statement chain: (not resolved to a literal)")
        for dep in self.dependencies:
            lines.append(f"depends on: {dep}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# selector resolution


def _match_transaction(report, request_sel: str):
    txns = list(report.transactions) + list(report.unidentified)
    if request_sel.isdigit():
        wanted = int(request_sel)
        for txn in txns:
            if txn.txn_id == wanted:
                return txn
        raise LookupError(f"no transaction #{wanted} in {report.app}")
    needle = request_sel.lower()
    for txn in txns:
        if needle in f"{txn.request.method} {txn.request.uri_regex}".lower():
            return txn
    raise LookupError(
        f"no transaction matching {request_sel!r} in {report.app}; "
        f"have: " + "; ".join(
            f"#{t.txn_id} {t.request.method} {t.request.uri_regex}" for t in txns
        )
    )


def _resolve_field(txn, field_sel: str) -> tuple[Term, str]:
    """(term, canonical field label) for a field selector: ``uri``,
    ``body``, ``header:<name>``, or a literal text fragment to locate."""
    if field_sel == "uri":
        return txn.request.uri, "uri"
    if field_sel == "body":
        if txn.request.body is None:
            raise LookupError(f"transaction #{txn.txn_id} has no request body")
        return txn.request.body, "body"
    if field_sel.startswith("header:"):
        name = field_sel.split(":", 1)[1]
        for header, value in txn.request.headers:
            if header.lower() == name.lower():
                return value, f"header:{header}"
        raise LookupError(f"transaction #{txn.txn_id} has no header {name!r}")
    # fragment search across uri, body and headers
    fields: list[tuple[Term | None, str]] = [(txn.request.uri, "uri")]
    if txn.request.body is not None:
        fields.append((txn.request.body, "body"))
    for header, value in txn.request.headers:
        fields.append((value, f"header:{header}"))
    for term, label in fields:
        if term is None:
            continue
        for t in term.walk():
            if isinstance(t, Const) and field_sel in t.text:
                return t, f"{label}:{field_sel}"
            if isinstance(t, JsonObject):
                for key, _value in t.entries:
                    if isinstance(key, Const) and field_sel in key.text:
                        return key, f"{label}:{field_sel}"
    raise LookupError(
        f"no field matching {field_sel!r} in transaction #{txn.txn_id}"
    )


# ---------------------------------------------------------------------------
# chain construction


def _candidate_texts(term: Term) -> list[str]:
    """Constant fragments of the field, longest first (most specific)."""
    texts = {
        t.text for t in term.walk() if isinstance(t, Const) and t.text.strip()
    }
    return sorted(texts, key=len, reverse=True)


def _find_producer(program, sl, candidates: list[str]) -> StmtRef | None:
    """The slice statement carrying a string literal that produced (part
    of) the field.  Exact match wins; otherwise substantial (>= 3 chars)
    substring overlap in either direction."""
    exact: StmtRef | None = None
    partial: StmtRef | None = None
    for ref in sorted(sl.stmts, key=lambda r: (r.method_id, r.index)):
        try:
            method = program.method_by_id(ref.method_id)
        except KeyError:
            continue
        if method.body is None or ref.index >= len(method.body.statements):
            continue
        stmt = method.stmt_at(ref.index)
        for value in stmt.all_used_values():
            if not isinstance(value, StringConst) or not value.value.strip():
                continue
            for cand in candidates:
                if value.value == cand and exact is None:
                    exact = ref
                elif (
                    partial is None
                    and len(value.value) >= 3
                    and (value.value in cand or cand in value.value)
                ):
                    partial = ref
    return exact or partial


def _chain(program, sl, start: StmtRef) -> list[ProvenanceStep]:
    """Walk parent links from ``start`` to the slice seed, rendering each
    statement.  The result reads in dataflow order: the producing literal
    first, the demarcation point last."""
    steps: list[ProvenanceStep] = []
    seen: set[StmtRef] = set()
    ref: StmtRef | None = start
    while ref is not None and ref not in seen:
        seen.add(ref)
        try:
            method = program.method_by_id(ref.method_id)
            text = str(method.stmt_at(ref.index))
        except (KeyError, IndexError):
            text = "<unknown>"
        steps.append(ProvenanceStep(ref.method_id, ref.index, text))
        ref = sl.prov.get(ref)
    return steps


# ---------------------------------------------------------------------------
# entry point


def explain(
    apk,
    config: AnalysisConfig | None = None,
    *,
    request: str,
    field: str,
) -> FieldProvenance:
    """Answer "why is ``field`` in ``request``'s signature?" for one APK.

    Runs one full analysis with provenance recording enabled (the report
    itself is byte-identical to a normal run — the recorder only adds
    side tables to the slices)."""
    config = replace(config or AnalysisConfig(), record_provenance=True)
    engine = Extractocol(config)
    report = engine.analyze(apk)
    slicing = engine.last_slicing
    txn = _match_transaction(report, request)
    term, label = _resolve_field(txn, field)

    steps: list[ProvenanceStep] = []
    if slicing is not None:
        dp_slices = next(
            (s for s in slicing.slices if s.dp.site == txn.site), None
        )
        if dp_slices is not None:
            producer = _find_producer(
                apk.program, dp_slices.request, _candidate_texts(term)
            )
            if producer is not None:
                steps = _chain(apk.program, dp_slices.request, producer)

    deps = [
        str(d)
        for d in txn.depends_on
        if d.dst_field == label or label.startswith(d.dst_field)
    ]
    return FieldProvenance(
        app=report.app,
        txn_id=txn.txn_id,
        request=f"{txn.request.method} {txn.request.uri_regex}",
        field=label,
        value=str(term),
        origins=sorted(origins_of(term)),
        steps=steps,
        dependencies=deps,
    )


__all__ = ["FieldProvenance", "ProvenanceStep", "explain"]
