"""Nested-span tracing for the analysis pipeline.

A :class:`Span` is one named region of work: it carries monotonic timing,
integer counters, arbitrary JSON-safe attributes, and child spans.  The
:class:`Tracer` owns a root span; instrumented code receives a parent span
and opens children with ``with span.child("phase:slicing") as s: ...``.

Two properties the exporters (`repro.obs.export`) rely on:

* **Deterministic identity** — a span's id is a content hash of its
  *path* (the ``/``-joined chain of names from the root), never a Python
  ``id()`` or a random value.  Sibling name collisions are disambiguated
  with a ``#<n>`` suffix at creation time, so paths are unique by
  construction and two runs of the same workload produce the same ids.
* **Free when disabled** — the process-wide default is :data:`NULL_SPAN`
  (via :data:`NULL_TRACER`): every operation on it is a no-op returning
  itself, so instrumented code pays one attribute load and a C-level call
  per event, nothing else.  Hot loops should still batch (accumulate a
  local ``int`` and ``count()`` once) rather than count per iteration.

Timing uses ``time.perf_counter`` and lives in ``Span.seconds``; the JSONL
exporter omits it unless asked, so trace files are byte-deterministic.
"""

from __future__ import annotations

import hashlib
import threading
import time


class Span:
    """One traced region.  Use as a context manager to time it, or create
    it post-hoc (fan-out results collected from workers) and assign
    ``seconds`` directly."""

    __slots__ = (
        "name",
        "parent",
        "children",
        "attrs",
        "counters",
        "seconds",
        "_t0",
        "_lock",
        "_sibling_names",
    )

    def __init__(self, name: str, parent: "Span | None" = None, **attrs) -> None:
        self.name = name
        self.parent = parent
        self.children: list[Span] = []
        self.attrs: dict[str, object] = dict(attrs)
        self.counters: dict[str, int] = {}
        self.seconds: float = 0.0
        self._t0: float | None = None
        self._lock = threading.Lock()
        self._sibling_names: dict[str, int] = {}

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------- building
    def child(self, name: str, **attrs) -> "Span":
        """A new child span.  Duplicate sibling names get a deterministic
        ``#<n>`` suffix so every span path is unique."""
        with self._lock:
            seen = self._sibling_names.get(name, 0)
            self._sibling_names[name] = seen + 1
            if seen:
                name = f"{name}#{seen + 1}"
            span = Span(name, parent=self, **attrs)
            self.children.append(span)
        return span

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def set(self, name: str, value) -> None:
        self.attrs[name] = value

    # --------------------------------------------------------------- timing
    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._t0 is not None:
            self.seconds = time.perf_counter() - self._t0
            self._t0 = None

    @property
    def self_seconds(self) -> float:
        """Time spent in this span minus its children (never negative)."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    # ------------------------------------------------------------- identity
    @property
    def path(self) -> str:
        parts = []
        node: Span | None = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    @property
    def span_id(self) -> str:
        return hashlib.sha256(self.path.encode("utf-8")).hexdigest()[:16]

    def walk(self):
        """Depth-first iteration in creation order (deterministic)."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:
        return f"Span({self.path!r}, seconds={self.seconds:.6f})"


class _NullSpan:
    """The disabled tracer's span: every operation is a no-op on a single
    shared instance.  Falsy, so instrumented code can guard optional work
    with ``if span: ...``."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def child(self, name: str, **attrs) -> "_NullSpan":
        return self

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def set(self, name: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    @property
    def seconds(self) -> float:
        return 0.0

    @seconds.setter
    def seconds(self, value: float) -> None:
        pass

    @property
    def self_seconds(self) -> float:
        return 0.0

    @property
    def path(self) -> str:
        return ""

    @property
    def span_id(self) -> str:
        return ""

    @property
    def children(self) -> list:
        return []

    @property
    def attrs(self) -> dict:
        return {}

    @property
    def counters(self) -> dict:
        return {}

    def walk(self):
        return iter(())

    def find(self, name: str) -> None:
        return None

    def __repr__(self) -> str:
        return "NullSpan()"


#: The process-wide disabled span; safe to share (it holds no state).
NULL_SPAN = _NullSpan()


class Tracer:
    """An enabled trace: a root span plus top-level span creation."""

    enabled = True

    def __init__(self, root_name: str = "repro") -> None:
        self.root = Span(root_name)

    def span(self, name: str, **attrs) -> Span:
        return self.root.child(name, **attrs)


class SpanTracer:
    """A tracer view rooted at an *existing* span.

    Code written against the ``Tracer`` interface (``tracer.span(name)``)
    can be pointed at any subtree: the shard workers hand
    ``Extractocol`` a ``SpanTracer(job_span)`` so the whole analysis trace
    hangs under that batch entry's ``job:<app>`` span instead of a
    detached root.
    """

    enabled = True

    def __init__(self, root: Span) -> None:
        self.root = root

    def span(self, name: str, **attrs) -> Span:
        return self.root.child(name, **attrs)


class _NullTracer:
    """Disabled tracer: ``span()`` hands out :data:`NULL_SPAN`."""

    enabled = False
    root = NULL_SPAN

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN


#: The process-wide default tracer (disabled).  Components default their
#: ``tracer``/``span`` parameters to this, so tracing costs ~nothing
#: unless a caller passes a real :class:`Tracer`.
NULL_TRACER = _NullTracer()


__all__ = ["NULL_SPAN", "NULL_TRACER", "Span", "SpanTracer", "Tracer"]
