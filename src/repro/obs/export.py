"""Trace export: deterministic JSONL span events and flamegraph stacks.

JSONL schema (one JSON object per line):

* line 1 — ``{"type": "meta", "schema": 1, "root": "<root span name>"}``
* then one ``{"type": "span", ...}`` per span in depth-first creation
  order with fields:

  - ``id`` — 16-hex-digit prefix of ``sha256(path)``; stable across runs
    because span paths are unique, deterministic strings (never ``id()``)
  - ``parent`` — parent span's id, or ``null`` for the exported root
  - ``name`` — the span's own name (``phase:slicing``, ``dp:<site>``, ...)
  - ``path`` — ``/``-joined name chain from the exported root
  - ``attrs`` — JSON-safe attributes, keys sorted
  - ``counters`` — integer counters, keys sorted
  - ``seconds`` — wall-clock duration; **only present when
    ``timings=True``**, so the default export is byte-deterministic for a
    deterministic workload

The collapsed-stack format (:func:`collapsed_stacks`) is one
``frame;frame;frame <value>`` line per span, where the value is the
span's *self* time in integer microseconds — directly consumable by
``flamegraph.pl`` and speedscope.
"""

from __future__ import annotations

import json

from .tracer import Span

#: Bump when the JSONL event shape changes incompatibly.
TRACE_SCHEMA_VERSION = 1


def span_events(root: Span, *, timings: bool = False) -> list[dict]:
    """All spans under ``root`` (inclusive) as JSON-safe event dicts in
    depth-first creation order."""
    events: list[dict] = []

    def visit(span: Span, parent_id: str | None) -> None:
        event: dict = {
            "type": "span",
            "id": span.span_id,
            "parent": parent_id,
            "name": span.name,
            "path": span.path,
            "attrs": {k: span.attrs[k] for k in sorted(span.attrs)},
            "counters": {k: span.counters[k] for k in sorted(span.counters)},
        }
        if timings:
            event["seconds"] = span.seconds
        events.append(event)
        for child in span.children:
            visit(child, span.span_id)

    visit(root, None)
    return events


def to_jsonl(root: Span, *, timings: bool = False) -> str:
    """The trace as JSONL text (meta line + one line per span)."""
    lines = [
        json.dumps(
            {"type": "meta", "schema": TRACE_SCHEMA_VERSION, "root": root.name},
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for event in span_events(root, timings=timings):
        lines.append(json.dumps(event, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n"


def write_jsonl(root: Span, path, *, timings: bool = False) -> None:
    from pathlib import Path

    Path(path).write_text(to_jsonl(root, timings=timings))


def validate_jsonl(text: str) -> list[dict]:
    """Parse and structurally validate a JSONL trace; returns the span
    events.  Raises ``ValueError`` on any schema violation (used by the CI
    trace-smoke step and the determinism tests)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty trace")
    meta = json.loads(lines[0])
    if meta.get("type") != "meta" or meta.get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError(f"bad meta line: {lines[0]!r}")
    events = []
    ids: set[str] = set()
    for line in lines[1:]:
        event = json.loads(line)
        for key in ("type", "id", "parent", "name", "path", "attrs", "counters"):
            if key not in event:
                raise ValueError(f"span event missing {key!r}: {line!r}")
        if event["type"] != "span":
            raise ValueError(f"unexpected event type {event['type']!r}")
        if event["id"] in ids:
            raise ValueError(f"duplicate span id {event['id']!r}")
        if event["parent"] is not None and event["parent"] not in ids:
            raise ValueError(f"span {event['id']!r} appears before its parent")
        if not isinstance(event["counters"], dict) or not all(
            isinstance(v, int) for v in event["counters"].values()
        ):
            raise ValueError(f"non-integer counters in {line!r}")
        ids.add(event["id"])
        events.append(event)
    if not events:
        raise ValueError("trace has no span events")
    return events


def events_to_span(events: list[dict]) -> Span:
    """Rebuild a :class:`Span` tree from exported span events (the inverse
    of :func:`span_events`, modulo sibling-dedup state).

    Lets downstream tooling (``repro trace --flame``, the fleet-trace
    merger) consume a trace *file* with the same code paths that consume a
    live span tree.  Events must arrive parent-before-child, as
    :func:`validate_jsonl` guarantees.
    """
    if not events:
        raise ValueError("no span events to rebuild")
    by_id: dict[str, Span] = {}
    root: Span | None = None
    for event in events:
        span = Span(event["name"])
        span.attrs = dict(event.get("attrs", {}))
        span.counters = dict(event.get("counters", {}))
        span.seconds = float(event.get("seconds", 0.0))
        parent_id = event.get("parent")
        if parent_id is None:
            if root is not None:
                raise ValueError("trace has more than one root span")
            root = span
        else:
            parent = by_id.get(parent_id)
            if parent is None:
                raise ValueError(
                    f"span {event['id']!r} references unknown parent"
                )
            span.parent = parent
            parent.children.append(span)
        by_id[event["id"]] = span
    assert root is not None  # first event has parent None per validation
    return root


def collapsed_stacks(root: Span) -> str:
    """The trace as collapsed stacks (``a;b;c <self-microseconds>``),
    consumable by flamegraph.pl / speedscope.  Spans with zero self time
    are kept (value 0) so the tree shape survives."""
    lines = []
    for span in root.walk():
        stack: list[str] = []
        cursor: Span | None = span
        while cursor is not None:
            stack.append(cursor.name.replace(";", "_"))
            if cursor is root:
                break
            cursor = cursor.parent
        lines.append(f"{';'.join(reversed(stack))} {int(span.self_seconds * 1e6)}")
    return "\n".join(lines) + "\n"


__all__ = [
    "TRACE_SCHEMA_VERSION",
    "collapsed_stacks",
    "events_to_span",
    "span_events",
    "to_jsonl",
    "validate_jsonl",
    "write_jsonl",
]
