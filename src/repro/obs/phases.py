"""Per-phase timing/counter profile of one analysis run.

:class:`PhaseStats` is the durable shape: embedded in
:class:`~repro.core.report.AnalysisReport`, carried in the service result
store's envelope, and printed by ``repro eval --verbose``.  Its dict form
round-trips exactly (``PhaseStats.from_dict(s.to_dict()) == s``) but is
**not** part of the default report serialisation — timings differ between
runs, and the store's byte-identity contract covers the report payload
only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical phase names, in pipeline order (paper Figure 2 plus the
#: call-graph/async-model preparation that precedes it).
PHASES = ("setup", "slicing", "signatures", "dependencies")


@dataclass
class PhaseStats:
    """Seconds per pipeline phase plus pipeline-wide integer counters."""

    seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    #: slice-reuse outcome of an incremental run — ``{"reused",
    #: "reanalyzed", "dirty_methods"}`` — or ``None`` outside that mode
    incremental: dict[str, int] | None = None

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """JSON-safe form; keys sorted so the output is canonical.
        ``incremental`` appears only when set, so profiles from other
        modes keep their historical shape byte-for-byte."""
        out = {
            "seconds": {k: self.seconds[k] for k in sorted(self.seconds)},
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }
        if self.incremental is not None:
            out["incremental"] = {
                k: self.incremental[k] for k in sorted(self.incremental)
            }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseStats":
        incremental = data.get("incremental")
        return cls(
            seconds={k: float(v) for k, v in data.get("seconds", {}).items()},
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
            incremental=(
                {k: int(v) for k, v in incremental.items()}
                if incremental is not None
                else None
            ),
        )

    # ------------------------------------------------------------ rendering
    def table(self) -> str:
        """One app's phase timings as an aligned two-column table."""
        lines = [f"{'phase':14s} {'ms':>10s}"]
        for phase in PHASES:
            if phase in self.seconds:
                lines.append(f"{phase:14s} {self.seconds[phase] * 1000:10.2f}")
        for phase in sorted(set(self.seconds) - set(PHASES)):
            lines.append(f"{phase:14s} {self.seconds[phase] * 1000:10.2f}")
        lines.append(f"{'total':14s} {self.total_seconds * 1000:10.2f}")
        return "\n".join(lines)


def phase_table(stats_by_app: dict[str, "PhaseStats"]) -> str:
    """Many apps' phase timings as one table (``repro eval --verbose``)."""
    header = (
        f"{'app':16s}"
        + "".join(f"{p + ' ms':>16s}" for p in PHASES)
        + f"{'total ms':>12s}"
    )
    lines = [header]
    for app, stats in stats_by_app.items():
        cells = "".join(
            f"{stats.seconds.get(p, 0.0) * 1000:16.2f}" for p in PHASES
        )
        lines.append(f"{app:16s}{cells}{stats.total_seconds * 1000:12.2f}")
    return "\n".join(lines)


__all__ = ["PHASES", "PhaseStats", "phase_table"]
