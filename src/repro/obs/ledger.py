"""The run ledger: an append-only history of every analyze/batch/serve run.

One JSON object per line in ``<store root>/runs/ledger.jsonl``.  Appends
are a single ``O_APPEND`` write of one ``\\n``-terminated line, so
concurrent runs against a shared store interleave whole records, never
torn ones.

**Schema versioning.**  Every record carries ``schema``
(:data:`LEDGER_SCHEMA_VERSION`).  Readers must accept records with the
current schema, may best-effort older ones, and must *skip* — not fail
on — records from the future: the ledger outlives any single code
version, and an old CLI pointed at a store a newer daemon writes to
should degrade gracefully.  Unparseable lines are likewise skipped.

A record captures everything needed to answer "what did this run do and
how fast" without re-running it: the workload (corpus spec / target
label), the execution shape (executor, workers, host fingerprint),
outcome tallies (done / failed / cache hits / steals), per-app and
per-phase latency histograms, structured failure details, and pointers
into the run's telemetry directory.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from .fleet import host_fingerprint, percentile
from .metrics import Histogram

#: Bump when the record shape changes incompatibly.
LEDGER_SCHEMA_VERSION = 1


def new_run_id() -> str:
    """A fresh correlation id (shared by the ledger record, the telemetry
    directory name, and every span the run's workers emit)."""
    return uuid.uuid4().hex[:12]


@dataclass
class RunRecord:
    """One ledger entry.  ``kind`` is ``analyze`` / ``batch`` / ``serve``."""

    run_id: str
    kind: str
    label: str
    started_unix: float
    wall_s: float
    host: dict = field(default_factory=host_fingerprint)
    executor: str = ""
    workers: int = 0
    targets: int = 0
    done: int = 0
    failed: int = 0
    cache_hits: int = 0
    analyses_run: int = 0
    work_steals: int = 0
    apps_per_sec: float = 0.0
    p50_s: float = 0.0
    p99_s: float = 0.0
    app_seconds: dict = field(default_factory=dict)
    phase_seconds: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    warnings: list = field(default_factory=list)
    config_overrides: dict = field(default_factory=dict)
    telemetry_dir: str | None = None
    fleet_trace: str | None = None

    def to_dict(self) -> dict:
        return {
            "schema": LEDGER_SCHEMA_VERSION,
            "run_id": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "started_unix": self.started_unix,
            "wall_s": self.wall_s,
            "host": self.host,
            "executor": self.executor,
            "workers": self.workers,
            "targets": self.targets,
            "done": self.done,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "analyses_run": self.analyses_run,
            "work_steals": self.work_steals,
            "apps_per_sec": self.apps_per_sec,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "app_seconds": self.app_seconds,
            "phase_seconds": self.phase_seconds,
            "failures": self.failures,
            "warnings": self.warnings,
            "config_overrides": self.config_overrides,
            "telemetry_dir": self.telemetry_dir,
            "fleet_trace": self.fleet_trace,
        }

    @classmethod
    def from_batch(
        cls,
        *,
        run_id: str,
        label: str,
        records: list,
        started_unix: float,
        wall_s: float,
        executor: str = "process",
        workers: int = 0,
        work_steals: int = 0,
        warnings: list | None = None,
        config_overrides: dict | None = None,
        telemetry_dir: str | None = None,
        fleet_trace: str | None = None,
    ) -> "RunRecord":
        """Aggregate a batch's per-entry records (``ShardRecord``s or their
        dict forms) into one ledger entry, including exact nearest-rank
        latency percentiles and per-phase histogram summaries."""

        def get(record, key, default=None):
            if isinstance(record, dict):
                return record.get(key, default)
            return getattr(record, key, default)

        app_hist = Histogram()
        phase_hists: dict[str, Histogram] = {}
        latencies: list[float] = []
        failures: list[dict] = []
        done = failed = cache_hits = analyses_run = 0
        for record in records:
            status = get(record, "status")
            if status == "done":
                done += 1
            else:
                failed += 1
                failures.append(
                    {
                        "target": get(record, "target"),
                        "error_type": get(record, "error_type"),
                        "error_message": get(record, "error_message"),
                        "error": get(record, "error"),
                        "traceback": get(record, "traceback"),
                    }
                )
            if get(record, "cache_hit"):
                cache_hits += 1
            elif status == "done":
                analyses_run += 1
            seconds = get(record, "seconds") or 0.0
            if seconds:
                latencies.append(float(seconds))
                app_hist.observe(float(seconds))
            for phase, phase_s in (get(record, "phase_seconds") or {}).items():
                phase_hists.setdefault(phase, Histogram()).observe(
                    float(phase_s)
                )
        latencies.sort()
        return cls(
            run_id=run_id,
            kind="batch",
            label=label,
            started_unix=started_unix,
            wall_s=wall_s,
            executor=executor,
            workers=workers,
            targets=len(records),
            done=done,
            failed=failed,
            cache_hits=cache_hits,
            analyses_run=analyses_run,
            work_steals=work_steals,
            apps_per_sec=(len(records) / wall_s) if wall_s > 0 else 0.0,
            p50_s=percentile(latencies, 0.50),
            p99_s=percentile(latencies, 0.99),
            app_seconds=app_hist.summary(),
            phase_seconds={
                phase: hist.summary()
                for phase, hist in sorted(phase_hists.items())
            },
            failures=failures,
            warnings=list(warnings or []),
            config_overrides=dict(config_overrides or {}),
            telemetry_dir=telemetry_dir,
            fleet_trace=fleet_trace,
        )


class RunLedger:
    """Reader/appender for a store's ``runs/ledger.jsonl``."""

    def __init__(self, store_root: str | os.PathLike) -> None:
        self.path = Path(store_root).expanduser() / "runs" / "ledger.jsonl"

    def append(self, record: RunRecord | dict) -> str:
        """Append one record atomically (single O_APPEND write); returns
        its run_id."""
        data = record.to_dict() if isinstance(record, RunRecord) else dict(record)
        data.setdefault("schema", LEDGER_SCHEMA_VERSION)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(data, sort_keys=True) + "\n"
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return data.get("run_id", "")

    def records(self) -> list[dict]:
        """All readable records, oldest first.  Unparseable lines and
        future-schema records are skipped (see module docstring)."""
        if not self.path.exists():
            return []
        out: list[dict] = []
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(data, dict):
                continue
            if int(data.get("schema", 0)) > LEDGER_SCHEMA_VERSION:
                continue
            out.append(data)
        return out

    def tail(self, n: int = 10) -> list[dict]:
        return self.records()[-n:]

    def get(self, run_id: str) -> dict | None:
        """The record whose run_id matches exactly, or — when unambiguous
        — by prefix (latest wins on exact match)."""
        records = self.records()
        exact = [r for r in records if r.get("run_id") == run_id]
        if exact:
            return exact[-1]
        prefixed = [
            r for r in records if str(r.get("run_id", "")).startswith(run_id)
        ]
        if len({r.get("run_id") for r in prefixed}) == 1 and prefixed:
            return prefixed[-1]
        return None


# ------------------------------------------------------------- rendering
def render_runs_table(records: list[dict]) -> str:
    """``repro runs list`` — newest first."""
    header = (
        f"{'RUN':<13} {'KIND':<7} {'WHEN':<16} {'LABEL':<28} "
        f"{'N':>5} {'FAIL':>4} {'HIT':>4} {'WALL':>8} {'P50':>8}"
    )
    lines = [header, "-" * len(header)]
    for record in reversed(records):
        when = time.strftime(
            "%Y-%m-%d %H:%M",
            time.localtime(float(record.get("started_unix", 0.0))),
        )
        label = str(record.get("label", ""))
        if len(label) > 28:
            label = label[:25] + "..."
        lines.append(
            f"{record.get('run_id', '?'):<13} {record.get('kind', '?'):<7} "
            f"{when:<16} {label:<28} {record.get('targets', 0):>5} "
            f"{record.get('failed', 0):>4} {record.get('cache_hits', 0):>4} "
            f"{record.get('wall_s', 0.0):>7.2f}s "
            f"{record.get('p50_s', 0.0):>7.3f}s"
        )
    return "\n".join(lines)


def render_run(record: dict) -> str:
    """``repro runs show`` — one record, with failure explanations."""
    lines = [
        f"run       {record.get('run_id')}  ({record.get('kind')})",
        f"label     {record.get('label')}",
        "when      "
        + time.strftime(
            "%Y-%m-%d %H:%M:%S",
            time.localtime(float(record.get("started_unix", 0.0))),
        ),
        f"wall      {record.get('wall_s', 0.0):.3f}s"
        f"  ({record.get('apps_per_sec', 0.0):.1f} apps/s)",
        f"executor  {record.get('executor')} x{record.get('workers')}",
        f"targets   {record.get('targets')}  done={record.get('done')}"
        f"  failed={record.get('failed')}"
        f"  cache_hits={record.get('cache_hits')}"
        f"  analyses_run={record.get('analyses_run')}"
        f"  steals={record.get('work_steals')}",
        f"latency   p50={record.get('p50_s', 0.0):.4f}s"
        f"  p99={record.get('p99_s', 0.0):.4f}s",
    ]
    host = record.get("host") or {}
    if host:
        lines.append(
            f"host      python {host.get('python')}"
            f"  {host.get('platform')}"
            f"  usable_cpus={host.get('usable_cpus')}"
        )
    phases = record.get("phase_seconds") or {}
    if phases:
        lines.append("phases:")
        for phase, summary in phases.items():
            mean = summary.get("mean")
            lines.append(
                f"  {phase:<14} n={summary.get('count', 0):<5}"
                f" mean={0.0 if mean is None else mean:.4f}s"
                f" max={summary.get('max') or 0.0:.4f}s"
            )
    warnings = record.get("warnings") or []
    for warning in warnings:
        lines.append(f"warning   {warning}")
    failures = record.get("failures") or []
    if failures:
        lines.append("failures:")
        for failure in failures:
            kind = failure.get("error_type") or "error"
            message = (
                failure.get("error_message") or failure.get("error") or ""
            )
            lines.append(f"  {failure.get('target')}: {kind}: {message}")
            trace = failure.get("traceback")
            if trace:
                for tline in str(trace).strip().splitlines():
                    lines.append(f"    | {tline}")
    if record.get("telemetry_dir"):
        lines.append(f"telemetry {record['telemetry_dir']}")
    if record.get("fleet_trace"):
        lines.append(f"trace     {record['fleet_trace']}")
    return "\n".join(lines)


__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "RunLedger",
    "RunRecord",
    "new_run_id",
    "render_run",
    "render_runs_table",
]
