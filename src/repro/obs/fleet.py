"""Fleet telemetry: cross-process trace aggregation, worker heartbeats,
host fingerprints, and live batch progress.

The sharded batch engine (:mod:`repro.service.shard`) runs N analyzer
*processes*; their spans and liveness cannot ride the parent's in-memory
tracer.  This module defines the on-disk telemetry protocol that bridges
the process boundary:

Telemetry directory layout (one per batch run, beside the result store)::

    <store root>/telemetry/<run_id>/
        worker-<n>.trace.jsonl    # the worker's span stream (with timings)
        heartbeat-<n>.json        # atomically-replaced liveness beacon
        fleet.trace.jsonl         # coordinator-merged deterministic trace

**Correlation ids.**  Every worker-emitted ``job:<target>`` span is tagged
with ``run_id`` / ``worker`` / ``shard`` / ``app_key`` / ``index`` attrs,
so any span in any stream can be joined back to its batch entry and run
ledger row.

**Deterministic merge.**  :func:`merge_worker_traces` re-roots every
``job:*`` subtree under one synthetic ``fleet`` root, ordered by batch
entry index with run-specific attrs (which worker ran it, whether it was
stolen, wall seconds) stripped — so the merged trace's span set is a pure
function of the workload: byte-identical across reruns regardless of
scheduling, work stealing, or worker count.  Span ids stay content hashes
of the rewritten paths, exactly as :mod:`repro.obs.export` defines them.
The run-specific facts remain available in the per-worker streams and the
run ledger.

Heartbeats are written with the same atomic temp-file + ``os.replace``
discipline as the result store, so a reader never sees a torn beacon.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import re
import sys
import tempfile
import time
from pathlib import Path

from .export import TRACE_SCHEMA_VERSION, to_jsonl, validate_jsonl

#: Bump when the heartbeat or merged-trace envelope changes incompatibly.
TELEMETRY_SCHEMA_VERSION = 1

#: A heartbeat older than this (and whose pid is gone) marks a dead worker.
HEARTBEAT_STALE_SECONDS = 30.0

#: Span attributes that vary across reruns of the same workload (work
#: stealing makes worker/shard assignment nondeterministic; lease races
#: decide who takes the cache hit).  Stripped from the merged fleet trace;
#: preserved in the per-worker streams.
RUN_SPECIFIC_ATTRS = frozenset(
    {"run_id", "worker", "shard", "stolen", "cache_hit", "pid"}
)

_SYN_KEY_RE = re.compile(r"^syn-([a-z0-9_]+)-s\d+-\d+$")


# --------------------------------------------------------------- fingerprint
def host_fingerprint() -> dict:
    """The facts that make performance numbers comparable across hosts.

    Stamped into every bench report's ``meta.host`` and every run-ledger
    entry; ``repro bench check`` refuses to compare silently across
    differing fingerprints (single-core CI numbers vs a 16-core
    workstation are different experiments).
    """
    from ..perf.parallel import usable_cpus

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "usable_cpus": usable_cpus(),
    }


def fingerprint_mismatches(baseline: dict, candidate: dict) -> list[str]:
    """Human-readable differences between two host fingerprints (empty
    when the hosts are performance-comparable)."""
    out: list[str] = []
    for key in ("usable_cpus", "cpu_count", "python", "platform", "machine"):
        a, b = baseline.get(key), candidate.get(key)
        if a is None or b is None:
            continue  # legacy reports may lack a field; not a mismatch
        if a != b:
            out.append(f"{key}: baseline {a!r} != candidate {b!r}")
    return out


def family_of(app_key: str) -> str:
    """The synth family of a target key (``syn-<family>-s7-0041`` →
    ``transports``), or ``corpus`` for hand-written apps and bundles.
    Used as the ``family`` label on per-family latency histograms."""
    match = _SYN_KEY_RE.match(app_key or "")
    return match.group(1) if match else "corpus"


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


# ------------------------------------------------------------- directories
def telemetry_root(store_root: str | os.PathLike) -> Path:
    return Path(store_root).expanduser() / "telemetry"


def run_telemetry_dir(
    store_root: str | os.PathLike, run_id: str, *, create: bool = False
) -> Path:
    path = telemetry_root(store_root) / run_id
    if create:
        path.mkdir(parents=True, exist_ok=True)
    return path


def _atomic_write(path: Path, text: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.stem}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------- worker side
class WorkerTelemetry:
    """One shard worker's telemetry emitter: heartbeat beacon + span
    stream.  Lives inside the worker process; everything it writes is a
    plain file another process can read while the worker runs."""

    def __init__(self, run_dir: str | os.PathLike, worker_id: int,
                 run_id: str) -> None:
        self.run_dir = Path(run_dir)
        self.worker_id = worker_id
        self.run_id = run_id
        self.heartbeat_path = self.run_dir / f"heartbeat-{worker_id}.json"
        self.trace_path = self.run_dir / f"worker-{worker_id}.trace.jsonl"

    def heartbeat(
        self,
        *,
        status: str,
        in_flight: str | None = None,
        processed: int = 0,
    ) -> None:
        """Atomically replace this worker's liveness beacon.  ``status``
        is ``running`` (with the in-flight app key) / ``idle`` /
        ``exited``; ``updated_unix`` doubles as the in-flight item's start
        time, which is how the progress renderer flags stragglers."""
        _atomic_write(
            self.heartbeat_path,
            json.dumps(
                {
                    "schema": TELEMETRY_SCHEMA_VERSION,
                    "run_id": self.run_id,
                    "worker": self.worker_id,
                    "pid": os.getpid(),
                    "status": status,
                    "in_flight": in_flight,
                    "processed": processed,
                    "updated_unix": time.time(),
                },
                sort_keys=True,
            ),
        )

    def write_trace(self, root_span) -> Path:
        """Persist the worker's span tree as JSONL (timings included —
        per-worker streams are run-specific by design; determinism is the
        *merged* trace's contract)."""
        self.trace_path.write_text(to_jsonl(root_span, timings=True))
        return self.trace_path


# ----------------------------------------------------------- heartbeat reads
def read_heartbeats(run_dir: str | os.PathLike) -> list[dict]:
    """All worker heartbeats in a telemetry directory, sorted by worker.
    Torn/corrupt beacons are skipped (the next atomic replace heals them)."""
    out: list[dict] = []
    for path in sorted(Path(run_dir).glob("heartbeat-*.json")):
        try:
            beat = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(beat, dict) and "worker" in beat:
            out.append(beat)
    out.sort(key=lambda b: b.get("worker", 0))
    return out


def worker_liveness(
    heartbeats: list[dict],
    *,
    now: float | None = None,
    stale_after: float = HEARTBEAT_STALE_SECONDS,
) -> list[dict]:
    """Each heartbeat annotated with ``alive``: a worker is live when its
    beacon is fresh or its pid still exists (same host); an ``exited``
    status is final."""
    now = time.time() if now is None else now
    out = []
    for beat in heartbeats:
        age = now - float(beat.get("updated_unix", 0.0))
        if beat.get("status") == "exited":
            alive = False
        elif age <= stale_after:
            alive = True
        else:
            alive = _pid_alive(int(beat.get("pid", 0)))
        out.append(dict(beat, alive=alive, age_s=round(max(0.0, age), 3)))
    return out


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass  # exists but not ours (or unsupported): assume alive
    return True


# ------------------------------------------------------------- trace merging
def fleet_trace_path(run_dir: str | os.PathLike) -> Path:
    return Path(run_dir) / "fleet.trace.jsonl"


def merge_worker_traces(
    run_dir: str | os.PathLike,
    *,
    timings: bool = False,
    strip_attrs: frozenset = RUN_SPECIFIC_ATTRS,
) -> str:
    """Merge every ``worker-*.trace.jsonl`` stream in ``run_dir`` into one
    deterministic fleet trace (JSONL text, ``validate_jsonl``-clean).

    Each worker stream's top-level ``job:*`` subtrees are re-rooted under
    a synthetic ``fleet`` root, ordered by batch-entry ``index``; span ids
    are recomputed from the rewritten paths, and run-specific attrs (and,
    unless ``timings=True``, wall seconds) are dropped.  The resulting
    span set is the union of the per-worker job subtrees and does not
    depend on which worker analysed (or stole) which entry.
    """
    run_dir = Path(run_dir)
    jobs: list[tuple[tuple, list[dict]]] = []
    for path in sorted(run_dir.glob("worker-*.trace.jsonl")):
        events = validate_jsonl(path.read_text())
        by_id = {e["id"]: e for e in events}
        children: dict[str, list[str]] = {}
        root_id = events[0]["id"]
        for event in events:
            if event["parent"] is not None:
                children.setdefault(event["parent"], []).append(event["id"])

        def subtree(top_id: str) -> list[dict]:
            out = [by_id[top_id]]
            for child_id in children.get(top_id, []):
                out.extend(subtree(child_id))
            return out

        for top_id in children.get(root_id, []):
            top = by_id[top_id]
            index = top.get("attrs", {}).get("index", 0)
            jobs.append(((index, top["name"]), subtree(top_id)))
    jobs.sort(key=lambda j: j[0])

    fleet_id = hashlib.sha256(b"fleet").hexdigest()[:16]
    lines = [
        json.dumps(
            {"type": "meta", "schema": TRACE_SCHEMA_VERSION, "root": "fleet"},
            sort_keys=True,
            separators=(",", ":"),
        ),
        json.dumps(
            {
                "type": "span",
                "id": fleet_id,
                "parent": None,
                "name": "fleet",
                "path": "fleet",
                "attrs": {},
                "counters": {"jobs": len(jobs)},
            },
            sort_keys=True,
            separators=(",", ":"),
        ),
    ]
    seen: dict[str, int] = {}
    for _, events in jobs:
        top = events[0]
        count = seen.get(top["name"], 0)
        seen[top["name"]] = count + 1
        # mirror Span.child's sibling dedup: first keeps the name,
        # later duplicates get a deterministic #<n> suffix
        new_name = top["name"] if not count else f"{top['name']}#{count + 1}"
        old_prefix = top["path"]
        new_prefix = f"fleet/{new_name}"
        id_map: dict[str, str] = {}
        for event in events:
            new_path = new_prefix + event["path"][len(old_prefix):]
            new_id = hashlib.sha256(new_path.encode("utf-8")).hexdigest()[:16]
            id_map[event["id"]] = new_id
            out_event: dict = {
                "type": "span",
                "id": new_id,
                "parent": (
                    fleet_id
                    if event is top
                    else id_map[event["parent"]]
                ),
                "name": new_name if event is top else event["name"],
                "path": new_path,
                "attrs": {
                    k: v
                    for k, v in sorted(event.get("attrs", {}).items())
                    if k not in strip_attrs
                },
                "counters": event.get("counters", {}),
            }
            if timings and "seconds" in event:
                out_event["seconds"] = event["seconds"]
            lines.append(
                json.dumps(out_event, sort_keys=True, separators=(",", ":"))
            )
    return "\n".join(lines) + "\n"


def write_fleet_trace(run_dir: str | os.PathLike) -> Path:
    """Merge the worker streams and persist ``fleet.trace.jsonl``."""
    path = fleet_trace_path(run_dir)
    path.write_text(merge_worker_traces(run_dir))
    return path


# ---------------------------------------------------------------- progress
class BatchProgress:
    """Live progress renderer for ``repro batch --progress``.

    Called once per completed batch entry (the sharded engine's result
    loop); prints throughput, ETA and failures at most every
    ``interval`` seconds, and flags stragglers — workers whose in-flight
    app has been running much longer than the median completed latency —
    from the heartbeat beacons in ``run_dir``.
    """

    def __init__(
        self,
        total: int,
        *,
        stream=None,
        run_dir: str | os.PathLike | None = None,
        interval: float = 0.5,
        straggler_factor: float = 8.0,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.interval = interval
        self.straggler_factor = straggler_factor
        self.started = time.monotonic()
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.latencies: list[float] = []
        self._last_print = 0.0

    # record may be a ShardRecord or its dict form
    def __call__(self, record, done: int, total: int) -> None:
        get = (
            record.get
            if isinstance(record, dict)
            else lambda k, d=None: getattr(record, k, d)
        )
        self.done = done
        self.total = total
        if get("status") != "done":
            self.failed += 1
        if get("cache_hit"):
            self.cache_hits += 1
        seconds = get("seconds") or 0.0
        if seconds:
            self.latencies.append(float(seconds))
        now = time.monotonic()
        if done < total and now - self._last_print < self.interval:
            return
        self._last_print = now
        self.stream.write(self.render() + "\n")
        self.stream.flush()

    def render(self) -> str:
        elapsed = max(1e-9, time.monotonic() - self.started)
        rate = self.done / elapsed
        remaining = self.total - self.done
        eta = remaining / rate if rate > 0 else float("inf")
        parts = [
            f"[{self.done}/{self.total}]",
            f"{rate:.1f} apps/s",
            f"eta {eta:.0f}s" if remaining else "done",
        ]
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cached")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        stragglers = self.stragglers()
        if stragglers:
            parts.append(
                "stragglers: "
                + ", ".join(
                    f"w{s['worker']}:{s['in_flight']} ({s['in_flight_s']:.1f}s)"
                    for s in stragglers
                )
            )
        return " ".join(parts)

    def stragglers(self, *, now: float | None = None) -> list[dict]:
        """Workers whose in-flight item has exceeded ``straggler_factor``
        × the median completed latency (min 1s)."""
        if self.run_dir is None or not self.latencies:
            return []
        ordered = sorted(self.latencies)
        threshold = max(1.0, self.straggler_factor * percentile(ordered, 0.5))
        now = time.time() if now is None else now
        out = []
        for beat in read_heartbeats(self.run_dir):
            if beat.get("status") != "running" or not beat.get("in_flight"):
                continue
            in_flight_s = now - float(beat.get("updated_unix", now))
            if in_flight_s > threshold:
                out.append(
                    {
                        "worker": beat["worker"],
                        "in_flight": beat["in_flight"],
                        "in_flight_s": round(in_flight_s, 3),
                    }
                )
        return out


__all__ = [
    "BatchProgress",
    "HEARTBEAT_STALE_SECONDS",
    "RUN_SPECIFIC_ATTRS",
    "TELEMETRY_SCHEMA_VERSION",
    "WorkerTelemetry",
    "family_of",
    "fingerprint_mismatches",
    "fleet_trace_path",
    "host_fingerprint",
    "merge_worker_traces",
    "percentile",
    "read_heartbeats",
    "run_telemetry_dir",
    "telemetry_root",
    "worker_liveness",
    "write_fleet_trace",
]
