"""repro.obs — observability for the analysis pipeline.

Zero-dependency tracing (nested spans with deterministic ids), per-phase
stats embedded in analysis reports, a unified metrics registry with
Prometheus text exposition, trace export (JSONL / collapsed stacks), and
taint provenance ("why is this field in the signature?").

The provenance helpers are imported lazily: they pull in the full
pipeline (`repro.core.extractocol`), which itself imports this package
for tracing.
"""

from __future__ import annotations

from .export import (
    TRACE_SCHEMA_VERSION,
    collapsed_stacks,
    span_events,
    to_jsonl,
    validate_jsonl,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from .phases import PHASES, PhaseStats, phase_table
from .tracer import NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "FieldProvenance",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "PHASES",
    "PhaseStats",
    "ProvenanceStep",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "collapsed_stacks",
    "explain",
    "phase_table",
    "render_prometheus",
    "span_events",
    "to_jsonl",
    "validate_jsonl",
    "write_jsonl",
]


def __getattr__(name: str):
    if name in ("FieldProvenance", "ProvenanceStep", "explain"):
        from . import provenance

        return getattr(provenance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
