"""repro.obs — observability for the analysis pipeline.

Zero-dependency tracing (nested spans with deterministic ids), per-phase
stats embedded in analysis reports, a unified metrics registry with
Prometheus text exposition, trace export (JSONL / collapsed stacks),
taint provenance ("why is this field in the signature?"), and the fleet
telemetry layer (cross-process trace aggregation, run ledger, bench
regression gating).

The provenance, ledger, and bench-check helpers are imported lazily:
provenance pulls in the full pipeline (`repro.core.extractocol`), which
itself imports this package for tracing.
"""

from __future__ import annotations

from .export import (
    TRACE_SCHEMA_VERSION,
    collapsed_stacks,
    events_to_span,
    span_events,
    to_jsonl,
    validate_jsonl,
    write_jsonl,
)
from .fleet import (
    BatchProgress,
    WorkerTelemetry,
    family_of,
    fingerprint_mismatches,
    host_fingerprint,
    merge_worker_traces,
    read_heartbeats,
    run_telemetry_dir,
    worker_liveness,
    write_fleet_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from .phases import PHASES, PhaseStats, phase_table
from .tracer import NULL_SPAN, NULL_TRACER, Span, SpanTracer, Tracer

__all__ = [
    "BatchProgress",
    "Counter",
    "FieldProvenance",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "PHASES",
    "PhaseStats",
    "ProvenanceStep",
    "RunLedger",
    "RunRecord",
    "Span",
    "SpanTracer",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "WorkerTelemetry",
    "collapsed_stacks",
    "compare_benches",
    "events_to_span",
    "explain",
    "family_of",
    "fingerprint_mismatches",
    "host_fingerprint",
    "merge_worker_traces",
    "new_run_id",
    "phase_table",
    "read_heartbeats",
    "render_prometheus",
    "run_telemetry_dir",
    "span_events",
    "to_jsonl",
    "validate_jsonl",
    "worker_liveness",
    "write_fleet_trace",
    "write_jsonl",
]

_LAZY = {
    "FieldProvenance": "provenance",
    "ProvenanceStep": "provenance",
    "explain": "provenance",
    "RunLedger": "ledger",
    "RunRecord": "ledger",
    "new_run_id": "ledger",
    "compare_benches": "benchcheck",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
