"""Operational metrics — the unified registry behind the service layer.

A deliberately small, dependency-free metrics layer: counters (monotonic),
gauges (instantaneous levels such as queue depth), and histograms
(latency distributions with fixed log-scale buckets).  Exports both as a
plain dict (``GET /metrics`` JSON) and in Prometheus text exposition
format (:func:`render_prometheus`, ``GET /metrics?format=prometheus``).

Thread-safety contract: every metric guards *all* of its state behind one
instance lock — :meth:`Histogram.observe` and :meth:`Histogram.summary`
in particular take the same lock, so a summary taken mid-storm is always
internally consistent (``sum(buckets) == count``, ``min <= max``).

This module originated as ``repro.service.metrics``; that path remains a
re-export shim so existing imports keep working.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_right

#: Histogram bucket upper bounds, in seconds (log-ish scale spanning the
#: sub-millisecond synthetic corpus up to multi-minute real-APK runs).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)


class Counter:
    """A monotonically increasing counter."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """An instantaneous level (queue depth, running jobs)."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram of observations (seconds).

    One lock covers every mutation *and* every read-out
    (:meth:`observe`, :meth:`summary`, :meth:`snapshot`, :attr:`count`),
    so concurrent observers never produce a torn summary.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self._bounds) + 1)  # +1 for +Inf
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._counts[bisect_right(self._bounds, value)] += 1
            self._count += 1
            self._total += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    def summary(self) -> dict:
        with self._lock:
            buckets = {
                f"le_{bound:g}": count
                for bound, count in zip(self._bounds, self._counts)
            }
            buckets["le_inf"] = self._counts[-1]
            return {
                "count": self._count,
                "sum": self._total,
                "min": self._min,
                "max": self._max,
                "mean": (self._total / self._count) if self._count else None,
                "buckets": buckets,
            }

    def snapshot(self) -> tuple[tuple[float, ...], list[int], int, float]:
        """(bounds, per-bucket counts incl. +Inf, count, sum) — one
        consistent read for the Prometheus renderer."""
        with self._lock:
            return self._bounds, list(self._counts), self._count, self._total

    @property
    def count(self) -> int:
        with self._lock:
            return self._count


#: A metric series key: ``(name, (("label", "value"), ...))``.  Unlabeled
#: metrics use an empty label tuple, so plain ``counter("x")`` lookups are
#: unchanged.
SeriesKey = tuple


def _series_key(name: str, labels: dict | None) -> SeriesKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double quote and newline must be escaped inside the quotes."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: tuple, extra: str = "") -> str:
    """``{a="x",b="y"}`` for a sorted label tuple (empty string when there
    are no labels and no extra pair)."""
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _display_name(key: SeriesKey) -> str:
    """The JSON-dict display form of a series: bare name when unlabeled,
    ``name{a="x"}`` otherwise."""
    name, labels = key
    return name + _render_labels(labels)


class MetricsRegistry:
    """Named metrics, created on first use, exported as one JSON dict.

    Service components each own an instance; process-wide events with no
    registry in reach (executor fallbacks in library code) land on the
    module-level :func:`global_registry`.

    Every metric accepts optional ``labels`` — a flat str→str dict that
    distinguishes series within one metric family (``histogram(
    "phase_seconds", labels={"phase": "slicing"})``).  Unlabeled calls are
    unchanged, and labeled families render as proper multi-series metrics
    in the Prometheus exposition.
    """

    def __init__(self) -> None:
        self._counters: dict[SeriesKey, Counter] = {}
        self._gauges: dict[SeriesKey, Gauge] = {}
        self._histograms: dict[SeriesKey, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        with self._lock:
            return self._counters.setdefault(
                _series_key(name, labels), Counter()
            )

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(_series_key(name, labels), Gauge())

    def histogram(self, name: str, labels: dict | None = None) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(
                _series_key(name, labels), Histogram()
            )

    def _snapshot(self) -> tuple[dict, dict, dict]:
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                dict(self._histograms),
            )

    def to_dict(self) -> dict:
        counters, gauges, histograms = self._snapshot()
        return {
            "counters": {
                _display_name(k): c.value for k, c in sorted(counters.items())
            },
            "gauges": {
                _display_name(k): g.value for k, g in sorted(gauges.items())
            },
            "histograms": {
                _display_name(k): h.summary()
                for k, h in sorted(histograms.items())
            },
        }


#: Process-wide registry for events emitted from library code that has no
#: service registry in scope (e.g. ``executor_fallbacks`` from
#: :mod:`repro.perf.parallel`).  The service layer keeps its own instances.
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL_REGISTRY


# ---------------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4) — no client library needed.

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, namespace: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if namespace:
        sanitized = f"{namespace}_{sanitized}"
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry, *, namespace: str = "repro") -> str:
    """The registry in Prometheus text exposition format.

    Counters render with a ``_total`` suffix, histograms as cumulative
    ``_bucket{le="..."}`` series plus ``_sum``/``_count``, matching what a
    Prometheus scraper expects from ``GET /metrics``.
    """
    counters, gauges, histograms = registry._snapshot()
    lines: list[str] = []
    typed: set[str] = set()

    def declare(metric: str, kind: str) -> None:
        # one # TYPE line per metric family, before its first series
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for (name, labels), counter in sorted(counters.items()):
        metric = _metric_name(name, namespace) + "_total"
        declare(metric, "counter")
        lines.append(f"{metric}{_render_labels(labels)} {counter.value}")
    for (name, labels), gauge in sorted(gauges.items()):
        metric = _metric_name(name, namespace)
        declare(metric, "gauge")
        lines.append(f"{metric}{_render_labels(labels)} {gauge.value}")
    for (name, labels), histogram in sorted(histograms.items()):
        metric = _metric_name(name, namespace)
        bounds, counts, count, total = histogram.snapshot()
        declare(metric, "histogram")
        cumulative = 0
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            le = _render_labels(labels, f'le="{bound:g}"')
            lines.append(f"{metric}_bucket{le} {cumulative}")
        cumulative += counts[-1]
        le = _render_labels(labels, 'le="+Inf"')
        lines.append(f"{metric}_bucket{le} {cumulative}")
        lines.append(
            f"{metric}_sum{_render_labels(labels)} {_format_value(total)}"
        )
        lines.append(f"{metric}_count{_render_labels(labels)} {count}")
    return "\n".join(lines) + "\n"


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "render_prometheus",
]
