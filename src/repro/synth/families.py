"""Scenario families: named dimension grids over app-generation axes.

A *family* is a declarative slice of the full generation space: an ordered
list of axes (trigger kinds, transports, body formats, hazards, lineage
mutations, ...) whose cartesian product is the family's *grid*.  The grid
compiler (:mod:`repro.synth.compile`) maps a ``(family, seed, index)``
triple onto one grid point plus seeded per-app entropy, so a family of 54
grid cells can back a population of 54 or 5400 apps — coverage first,
then variation.

Axes reuse the exact vocabulary :class:`~repro.corpus.generator
.GenEndpoint` already understands (the same code shapes the 34-app corpus
is built from), which is what makes every synthesized app carry full
:class:`~repro.corpus.base.GroundTruth` for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

#: How an entry point fires (paper §5.1 trigger taxonomy).
TRIGGERS = ("ui", "lifecycle", "ui_custom", "timer", "server_push", "location")
#: HTTP stack the app is built on (Apache HttpClient / Volley / URLConnection).
TRANSPORTS = ("apache", "volley", "urlconn")
#: Request methods.
METHODS = ("GET", "POST", "PUT", "DELETE")
#: Request-body format (``none`` = no payload beyond the query string).
BODIES = ("none", "form", "json")
#: Response-body format the app processes.
RESPONSES = ("none", "json", "xml", "text")
#: Where the interesting request value comes from (GenEndpoint value kinds).
VALUE_KINDS = ("const", "input", "resource", "clock", "device", "random")
#: Code-shape hazards: the §5.1 classes that separate static analysis,
#: manual fuzzing and automatic fuzzing coverage.
HAZARDS = (
    "plain",  # nothing special
    "intent_hop",  # intent-fed, two-async-hop URL construction (§3.4 miss)
    "login_flow",  # token stored from a login response, replayed later
    "timer_poll",  # fired by a timer, unreachable by fuzzers
    "listener_store",  # response value stored into app state
    "custom_ui",  # behind custom widgets automatic fuzzing fails on
)
#: Version-lineage mutations (protocol drift classes for ``repro diff``).
MUTATIONS = (
    "add_endpoint",  # compatible: one more endpoint in v2
    "add_query_key",  # compatible: an optional query key appears
    "rename_query_key",  # breaking: old consumers keyed on the name go blind
    "cut_dependency",  # breaking: a login-fed field becomes a cached constant
    "obfuscate_rebuild",  # identifier-renamed rebuild, protocol unchanged
)


@dataclass(frozen=True)
class Family:
    """One named dimension grid.

    ``axes`` is an *ordered* tuple of ``(axis_name, values)`` pairs; the
    grid is their cartesian product, decoded mixed-radix from the app
    index by the compiler.  ``multi_endpoint`` marks blend families whose
    apps carry several seeded endpoints on top of the grid point.
    """

    name: str
    description: str
    axes: tuple[tuple[str, tuple[str, ...]], ...]
    multi_endpoint: bool = False

    @property
    def grid_size(self) -> int:
        return prod(len(values) for _, values in self.axes)

    def axis_values(self, axis: str) -> tuple[str, ...]:
        for name, values in self.axes:
            if name == axis:
                return values
        raise KeyError(f"family {self.name!r} has no axis {axis!r}")


#: The shipped families.  Names are single lowercase words — they embed in
#: app keys (``syn-<family>-s<seed>-<index>``) whose parser splits on "-".
_FAMILY_DEFS: tuple[Family, ...] = (
    Family(
        name="transports",
        description="HTTP stack x method x body format x response format",
        axes=(
            ("transport", TRANSPORTS),
            ("method", METHODS),
            ("body", BODIES),
            ("response", RESPONSES),
        ),
    ),
    Family(
        name="triggers",
        description="trigger kind x transport x response format",
        axes=(
            ("trigger", TRIGGERS),
            ("transport", TRANSPORTS),
            ("response", RESPONSES),
        ),
    ),
    Family(
        name="payloads",
        description="request-value provenance x body x response x method",
        axes=(
            ("value", VALUE_KINDS),
            ("body", BODIES),
            ("response", RESPONSES),
            ("method", ("GET", "POST")),
        ),
    ),
    Family(
        name="hazards",
        description="code-shape hazards x transport x body format",
        axes=(
            ("hazard", HAZARDS),
            ("transport", TRANSPORTS),
            ("body", BODIES),
        ),
    ),
    Family(
        name="evolution",
        description="lineage mutation x transport x body; every app ships "
                    "a v2 with known drift ground truth",
        axes=(
            ("mutation", MUTATIONS),
            ("transport", TRANSPORTS),
            ("body", BODIES),
        ),
    ),
    Family(
        name="obfuscated",
        description="ProGuard-style renamed builds x transport x hazard x "
                    "response",
        axes=(
            ("transport", TRANSPORTS),
            ("hazard", ("plain", "login_flow", "timer_poll")),
            ("response", RESPONSES),
        ),
    ),
    Family(
        name="mega",
        description="multi-endpoint blend: 2-5 seeded endpoints per app "
                    "across all axes",
        axes=(
            ("transport", TRANSPORTS),
            ("hazard", ("plain", "login_flow", "intent_hop")),
        ),
        multi_endpoint=True,
    ),
)

FAMILIES: dict[str, Family] = {f.name: f for f in _FAMILY_DEFS}


def family_keys() -> list[str]:
    """Family names in definition order (the order populations expand in)."""
    return [f.name for f in _FAMILY_DEFS]


def get_family(name: str) -> Family:
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown synth family {name!r}; available: {family_keys()}"
        ) from None


def resolve_families(spec: str) -> list[Family]:
    """Resolve a comma-separated family list (or ``all``) into families."""
    if spec == "all":
        return list(_FAMILY_DEFS)
    out = []
    for name in spec.split(","):
        name = name.strip()
        if name:
            out.append(get_family(name))
    if not out:
        raise ValueError(f"empty family list {spec!r}")
    return out


__all__ = [
    "BODIES",
    "FAMILIES",
    "Family",
    "HAZARDS",
    "METHODS",
    "MUTATIONS",
    "RESPONSES",
    "TRANSPORTS",
    "TRIGGERS",
    "VALUE_KINDS",
    "family_keys",
    "get_family",
    "resolve_families",
]
