"""Grid compiler: ``(family, seed, index)`` -> deterministic ``GenApp``.

Every synthesized app is addressed by a *self-describing key*::

    syn-<family>-s<seed>-<index>          e.g. syn-transports-s7-0041

and populations by a *population spec*::

    synth:<families>*<scale>[@<seed>]     e.g. synth:all*500@7

The key encodes everything needed to rebuild the app, so any process — a
sharded batch worker, a diff resolver, a CI job on another machine — can
materialise the identical APK without shared state.  Determinism rules:

* The grid point is the mixed-radix decode of ``(index + offset) %
  grid_size`` where ``offset`` is a seed-derived rotation — every seed
  still covers the whole grid, but walks it from a different corner.
* All per-app entropy (hosts, paths, names, literal values, filler
  counts) comes from one ``random.Random`` seeded with
  ``sha256("repro.synth:<family>:<seed>:<index>")`` — no global RNG, no
  dict-order dependence, byte-identical ``.sapk`` bundles across runs and
  platforms.
* Grid constraints are *normalised*, never rejected: e.g. Volley only
  ships GET/POST with JSON payloads, so those axes are coerced (the
  corpus generator would otherwise emit code shapes no real app has).
  Normalisation is a pure function of the raw coordinates.

Lineages: apps whose grid point carries a ``mutation`` axis get a ``v2``
(:class:`~repro.corpus.lineage.LineageVersion`) with known drift ground
truth, consumable by ``repro diff syn-...@v1 syn-...@v2`` and the drift
evaluator.
"""

from __future__ import annotations

import copy
import hashlib
import re
from dataclasses import dataclass, replace
from functools import lru_cache

from ..apk.model import TriggerKind
from ..corpus.base import AppSpec
from ..corpus.generator import GenApp, GenEndpoint, build_generated_app
from ..corpus.lineage import BuiltVersion, LineageVersion
from ..core.config import AnalysisConfig
from .families import Family, family_keys, get_family, resolve_families

_KEY_RE = re.compile(r"^syn-([a-z][a-z0-9]*)-s(\d+)-(\d+)$")
_POP_RE = re.compile(r"^synth:([a-z0-9,]+|all)\*(\d+)(?:@(\d+))?$")

_WORDS = (
    "feed", "items", "search", "detail", "status", "events", "photos",
    "alerts", "drafts", "bundle", "radar", "queue", "topics", "scores",
    "routes", "assets", "orders", "badges", "trends", "digest",
)
_HOST_WORDS = (
    "api", "mobile", "svc", "edge", "app", "gw", "data", "cdn",
)
_TLDS = ("example", "test", "invalid")


# --------------------------------------------------------------- keys
def app_key(family: str, seed: int, index: int) -> str:
    return f"syn-{family}-s{seed}-{index:04d}"


def is_synth_key(key: str) -> bool:
    return key.startswith("syn-")


def parse_app_key(key: str) -> tuple[str, int, int]:
    """``syn-<family>-s<seed>-<index>`` -> ``(family, seed, index)``."""
    m = _KEY_RE.match(key)
    if m is None:
        raise KeyError(
            f"{key!r} is not a synthesized-app key "
            f"(expected syn-<family>-s<seed>-<index>)"
        )
    family, seed, index = m.group(1), int(m.group(2)), int(m.group(3))
    get_family(family)  # raises KeyError on unknown family
    return family, seed, index


# --------------------------------------------------- population specs
@dataclass(frozen=True)
class PopulationSpec:
    """A parsed ``synth:<families>*<scale>[@<seed>]`` spec."""

    families: tuple[str, ...]
    scale: int
    seed: int

    @property
    def spec(self) -> str:
        fams = ",".join(self.families)
        if tuple(self.families) == tuple(family_keys()):
            fams = "all"
        return f"synth:{fams}*{self.scale}@{self.seed}"

    def counts(self) -> dict[str, int]:
        """Apps per family: ``scale`` split evenly, remainder front-loaded."""
        n = len(self.families)
        base, extra = divmod(self.scale, n)
        return {
            fam: base + (1 if i < extra else 0)
            for i, fam in enumerate(self.families)
        }

    def keys(self) -> list[str]:
        out: list[str] = []
        for fam, count in self.counts().items():
            out.extend(app_key(fam, self.seed, i) for i in range(count))
        return out


def is_population_spec(target: str) -> bool:
    return target.startswith("synth:")


def parse_population(spec: str) -> PopulationSpec:
    m = _POP_RE.match(spec)
    if m is None:
        raise ValueError(
            f"{spec!r} is not a population spec "
            f"(expected synth:<families>*<scale>[@<seed>], "
            f"e.g. synth:all*100@7)"
        )
    families = tuple(f.name for f in resolve_families(m.group(1)))
    scale = int(m.group(2))
    if scale < 1:
        raise ValueError(f"population scale must be >= 1, got {scale}")
    seed = int(m.group(3)) if m.group(3) is not None else 0
    return PopulationSpec(families=families, scale=scale, seed=seed)


def expand_targets(targets: list[str]) -> list[str]:
    """Expand population specs in a target list into app keys in place."""
    out: list[str] = []
    for target in targets:
        if is_population_spec(target):
            out.extend(parse_population(target).keys())
        else:
            out.append(target)
    return out


# ----------------------------------------------------- grid decoding
def _stable_int(*parts: object) -> int:
    text = ":".join(str(p) for p in parts)
    digest = hashlib.sha256(f"repro.synth:{text}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _rng(family: str, seed: int, index: int):
    import random

    return random.Random(_stable_int(family, seed, index))


def grid_point(family: Family, seed: int, index: int) -> dict[str, str]:
    """Mixed-radix decode of the app's grid cell (seed-rotated)."""
    size = family.grid_size
    offset = _stable_int(family.name, seed) % size
    n = (index + offset) % size
    coords: dict[str, str] = {}
    for axis, values in family.axes:
        coords[axis] = values[n % len(values)]
        n //= len(values)
    return coords


def normalize_coords(coords: dict[str, str]) -> dict[str, str]:
    """Apply transport/method/body/response legality constraints.

    Pure and idempotent — the soundness sweep and the ground-truth probe
    must agree on the exact shapes emitted:

    * Volley ships GET/POST JSON requests whose responses land in a JSON
      listener: method in {GET, POST}, body in {none, json}, response json.
    * URLConnection writes only JSON payloads: form bodies become json.
    * Bodies ride on POST/PUT only (GET/DELETE drop theirs), and a
      ``cut_dependency`` mutation needs a body to cut (none -> json).
    """
    out = dict(coords)
    transport = out.get("transport", "apache")
    if out.get("mutation") == "cut_dependency" and out.get("body", "none") == "none":
        out["body"] = "json"
    if transport == "volley":
        if out.get("method") not in (None, "GET", "POST"):
            out["method"] = "POST"
        if out.get("body") == "form":
            out["body"] = "json"
        if "response" in out:
            out["response"] = "json"
    if transport == "urlconn" and out.get("body") == "form":
        out["body"] = "json"
    if out.get("body", "none") != "none":
        if out.get("method") in ("GET", "DELETE"):
            out["method"] = "POST"
        out.setdefault("method", "POST")
    return out


# ------------------------------------------------------ app assembly
def _value_expr(kind: str, rng) -> str:
    """Map a value-axis coordinate onto a GenEndpoint value expression."""
    if kind == "const":
        return f"const:{rng.choice(_WORDS)}-{rng.randint(1, 99)}"
    if kind == "resource":
        return "resource:api_key"
    return kind  # input / clock / device / random are literal kinds


_TRIGGER_MAP = {
    "ui": TriggerKind.UI,
    "lifecycle": TriggerKind.LIFECYCLE,
    "ui_custom": TriggerKind.UI_CUSTOM,
    "timer": TriggerKind.TIMER,
    "server_push": TriggerKind.SERVER_PUSH,
    "location": TriggerKind.LOCATION,
}


class _Namer:
    """Collision-free endpoint names inside one app."""

    def __init__(self, rng) -> None:
        self.rng = rng
        self.seen: set[str] = set()

    def pick(self, prefix: str | None = None) -> str:
        base = prefix or self.rng.choice(_WORDS)
        name = base
        n = 1
        while name in self.seen:
            n += 1
            name = f"{base}{n}"
        self.seen.add(name)
        return name


def _response_kwargs(response: str, name: str, rng, *, store: bool = False) -> dict:
    """Response-side GenEndpoint fields for one response-axis value."""
    if response == "json":
        payload = {
            "status": "ok",
            f"{name}_id": f"id-{rng.randint(1000, 9999)}",
            "cursor": f"cur-{name}-{rng.randint(1, 9)}",
            "ts": 1480000000,
        }
        reads = (f"{name}_id", "cursor")
        kwargs: dict = {"response": payload, "reads": reads}
        if store:
            kwargs["store"] = {"cursor": f"{name}_cursor"}
        return kwargs
    if response == "xml":
        a, b = rng.sample(_WORDS, 2)
        doc = (
            f"<{name}><{a}>{rng.randint(1, 99)}</{a}>"
            f"<{b}>v-{rng.randint(1, 99)}</{b}></{name}>"
        )
        return {"response_xml": doc, "xml_reads": (a, b)}
    if response == "text":
        return {
            "display_text": True,
            "text_response": f"{name} page {rng.randint(1, 99)}",
        }
    return {}


def _primary_endpoint(
    coords: dict[str, str], namer: _Namer, rng, *, has_login: bool
) -> GenEndpoint:
    """The app's main endpoint, shaped by the (normalised) grid point."""
    method = coords.get("method") or rng.choice(("GET", "POST"))
    body_fmt = coords.get("body", "none")
    if body_fmt != "none" and method in ("GET", "DELETE"):
        method = "POST"
    response = coords.get("response", rng.choice(("json", "none")))
    hazard = coords.get("hazard", "plain")
    name = namer.pick()
    path = f"/api/v{rng.randint(1, 3)}/{name}"

    value_kind = coords.get("value")
    query: list[tuple[str, str]] = [
        ("tag", f"const:{rng.choice(_WORDS)}"),
    ]
    if value_kind is not None:
        query.append((f"{value_kind[:1]}p", _value_expr(value_kind, rng)))
    elif rng.random() < 0.5:
        query.append(("q", "input"))

    body: tuple[tuple[str, str], ...] = ()
    body_format = None
    if body_fmt != "none":
        body = (("payload", "input"), ("client_ts", "clock"))
        if coords.get("mutation") == "cut_dependency" or (
            has_login and hazard == "login_flow"
        ):
            body = (("token", "field:token"),) + body
        body_format = body_fmt

    headers: tuple[tuple[str, str], ...] = ()
    trigger = _TRIGGER_MAP[coords.get("trigger", "ui")]
    requires_login = False
    custom_ui = False
    via_intent = False
    store = False

    if hazard == "login_flow":
        headers = (("Authorization", "field:token"),)
        requires_login = True
    elif hazard == "timer_poll":
        trigger = TriggerKind.TIMER
    elif hazard == "custom_ui":
        trigger = TriggerKind.UI_CUSTOM
        custom_ui = True
    elif hazard == "listener_store":
        store = True
        if response not in ("json",):
            response = "json"
    elif hazard == "intent_hop":
        via_intent = True
    if trigger == TriggerKind.UI_CUSTOM:
        custom_ui = True

    kwargs = _response_kwargs(response, name, rng, store=store)
    if via_intent:
        # the intent emitter builds the URL across two async hops and
        # never parses the response; strip shapes it cannot carry
        query, body, body_format, headers, kwargs = [], (), None, (), {}
    return GenEndpoint(
        name=name,
        method=method,
        path=path,
        query=tuple(query),
        body=body,
        body_format=body_format,
        headers=headers,
        trigger=trigger,
        requires_login=requires_login,
        custom_ui=custom_ui,
        via_intent=via_intent,
        **kwargs,
    )


def _login_endpoint(namer: _Namer, rng) -> GenEndpoint:
    namer.seen.add("login")
    return GenEndpoint(
        name="login",
        method="POST",
        path="/api/auth/login",
        body=(("user", "input"), ("passwd", "input")),
        body_format="json",
        response={"token": f"tok-{rng.randint(100, 999)}", "uid": "u-1"},
        reads=("token",),
        store={"token": "token"},
    )


def _extra_endpoint(
    namer: _Namer, rng, *, transport: str, with_token: bool
) -> GenEndpoint:
    """A seeded secondary endpoint (mega blend / add_endpoint mutations)."""
    coords = normalize_coords({
        "transport": transport,
        "method": rng.choice(("GET", "POST")),
        "body": rng.choice(("none", "none", "json", "form")),
        "response": rng.choice(("json", "json", "xml", "text", "none")),
        "trigger": rng.choice(("ui", "ui", "lifecycle", "timer")),
    })
    name = namer.pick()
    kwargs = _response_kwargs(coords["response"], name, rng)
    body: tuple[tuple[str, str], ...] = ()
    if coords["body"] != "none":
        body = ((f"{name}_arg", "input"),)
        if with_token:
            body += (("token", "field:token"),)
    return GenEndpoint(
        name=name,
        method=coords["method"],
        path=f"/api/v{rng.randint(1, 3)}/{name}",
        query=(("page", f"int:{rng.randint(1, 5)}"),),
        body=body,
        body_format=coords["body"] if body else None,
        trigger=_TRIGGER_MAP[coords["trigger"]],
        requires_login=with_token,
        **kwargs,
    )


def synth_genapp(key: str) -> GenApp:
    """Compile one synthesized-app key into its :class:`GenApp` spec."""
    family_name, seed, index = parse_app_key(key)
    family = get_family(family_name)
    rng = _rng(family_name, seed, index)
    coords = normalize_coords(grid_point(family, seed, index))

    namer = _Namer(rng)
    hazard = coords.get("hazard", "plain")
    needs_login = hazard == "login_flow" or coords.get("mutation") == "cut_dependency"

    endpoints: list[GenEndpoint] = []
    if needs_login:
        endpoints.append(_login_endpoint(namer, rng))
    endpoints.append(
        _primary_endpoint(coords, namer, rng, has_login=needs_login)
    )
    if family.multi_endpoint:
        for _ in range(rng.randint(1, 4)):
            endpoints.append(_extra_endpoint(
                namer, rng,
                transport=coords.get("transport", "apache"),
                with_token=False,
            ))

    host = (
        f"{rng.choice(_HOST_WORDS)}.{rng.choice(_WORDS)}"
        f"{rng.randint(0, 99)}.{rng.choice(_TLDS)}"
    )
    https = rng.random() < 0.7
    # Volley's listener hop and intent-fed chains are the async shapes the
    # paper enables §3.4's heuristic for (its closed-source setup).
    kind = (
        "closed"
        if coords.get("transport") == "volley" or hazard == "intent_hop"
        else "open"
    )
    resources = {}
    if coords.get("value") == "resource":
        resources["api_key"] = f"key-{rng.randint(10000, 99999)}"
    return GenApp(
        key=key,
        name=f"Synth {family_name.title()} #{index}",
        kind=kind,
        package=f"net.synth.{family_name}.a{index:04d}",
        host=host,
        https=https,
        protocol="HTTPS" if https else "HTTP",
        endpoints=endpoints,
        resources=resources,
        filler_methods=rng.randint(4, 9),
        transport=coords.get("transport", "apache"),
        notes=f"grid={coords!r} family={family_name} seed={seed} index={index}",
    )


def _is_obfuscated(key: str) -> bool:
    family_name, _, _ = parse_app_key(key)
    return family_name == "obfuscated"


@lru_cache(maxsize=4096)
def synth_spec(key: str) -> AppSpec:
    """Materialise a synthesized-app key into a corpus :class:`AppSpec`."""
    gen = synth_genapp(key)
    spec = build_generated_app(gen)
    if _is_obfuscated(key):
        inner = spec.build_apk

        def build_obfuscated():
            from ..apk.obfuscator import obfuscate

            return obfuscate(inner()).apk

        spec.build_apk = build_obfuscated
    return spec


# ----------------------------------------------------------- lineages
def _mutate_add_endpoint(spec: GenApp, rng) -> None:
    namer = _Namer(rng)
    namer.seen.update(ep.name for ep in spec.endpoints)
    spec.endpoints.append(_extra_endpoint(
        namer, rng, transport=spec.transport, with_token=False
    ))


def _mutate_add_query_key(spec: GenApp, primary: str) -> None:
    for i, ep in enumerate(spec.endpoints):
        if ep.name == primary:
            spec.endpoints[i] = replace(
                ep, query=ep.query + (("raw", "const:1"),)
            )
            return
    raise KeyError(f"no endpoint {primary!r} in {spec.key}")


def _mutate_rename_query_key(spec: GenApp, primary: str) -> None:
    for i, ep in enumerate(spec.endpoints):
        if ep.name == primary:
            spec.endpoints[i] = replace(ep, query=tuple(
                ("tag_v2", kind) if key == "tag" else (key, kind)
                for key, kind in ep.query
            ))
            return
    raise KeyError(f"no endpoint {primary!r} in {spec.key}")


def _mutate_cut_dependency(spec: GenApp, primary: str) -> None:
    for i, ep in enumerate(spec.endpoints):
        if ep.name == primary:
            spec.endpoints[i] = replace(ep, body=tuple(
                (key, "const:tok-cached" if kind == "field:token" else kind)
                for key, kind in ep.body
            ))
            return
    raise KeyError(f"no endpoint {primary!r} in {spec.key}")


def _build_mutated(key: str, mutation: str | None):
    """A BuiltVersion builder applying ``mutation`` to the app's base spec
    (``None`` = the unmutated v1)."""

    def build() -> BuiltVersion:
        base = synth_genapp(key)
        if mutation == "obfuscate_rebuild":
            from ..apk.obfuscator import obfuscate

            spec = build_generated_app(base)
            result = obfuscate(spec.build_apk())
            return BuiltVersion(
                apk=result.apk,
                config=AnalysisConfig(
                    async_heuristic=(base.kind == "closed"),
                ),
                renames_from_base=result.renames,
            )
        spec = copy.deepcopy(base)
        if mutation is not None:
            # the primary endpoint is the last non-login endpoint of v1
            primary = next(
                ep.name for ep in reversed(spec.endpoints)
                if ep.name != "login"
            )
            rng = _rng(spec.key, "v2", mutation)
            if mutation == "add_endpoint":
                _mutate_add_endpoint(spec, rng)
            elif mutation == "add_query_key":
                _mutate_add_query_key(spec, primary)
            elif mutation == "rename_query_key":
                _mutate_rename_query_key(spec, primary)
            elif mutation == "cut_dependency":
                _mutate_cut_dependency(spec, primary)
            else:
                raise ValueError(f"unknown mutation {mutation!r}")
        app_spec = build_generated_app(spec)
        return BuiltVersion(
            apk=app_spec.build_apk(),
            config=AnalysisConfig(
                async_heuristic=(app_spec.kind == "closed"),
            ),
        )

    return build


_MUTATION_DRIFT = {
    "add_endpoint": (False, ()),
    "add_query_key": (False, ()),
    "rename_query_key": (True, ("query-key-removed",)),
    "cut_dependency": (True, ("dependency-removed",)),
    "obfuscate_rebuild": (False, ()),
}


def synth_lineage(key: str) -> list[LineageVersion]:
    """The version lineage of one synthesized app.

    v1 is the grid app itself.  Apps whose grid point carries a
    ``mutation`` axis additionally get a v2 with known drift ground truth
    (``expect_breaking`` + exact breaking kinds), mirroring the
    hand-written corpus lineages.
    """
    family_name, seed, index = parse_app_key(key)
    family = get_family(family_name)
    coords = normalize_coords(grid_point(family, seed, index))
    versions = [
        LineageVersion(
            family=key, version=1,
            description=f"synthesized grid app ({coords!r})",
            _build=_build_mutated(key, None),
        )
    ]
    mutation = coords.get("mutation")
    if mutation is not None:
        expect_breaking, kinds = _MUTATION_DRIFT[mutation]
        versions.append(
            LineageVersion(
                family=key, version=2,
                description=f"{mutation} mutation",
                expect_breaking=expect_breaking,
                expected_breaking_kinds=kinds,
                _build=_build_mutated(key, mutation),
            )
        )
    return versions


def synth_build_version(label: str) -> BuiltVersion:
    """Materialise ``syn-<...>@vN``; the synth analogue of
    :func:`repro.corpus.lineage.build_version`."""
    key, _, version = label.partition("@")
    if not version.startswith("v") or not version[1:].isdigit():
        raise LookupError(
            f"{label!r} is not a lineage version label (expected app@vN)"
        )
    wanted = int(version[1:])
    for lv in synth_lineage(key):
        if lv.version == wanted:
            return lv.materialize()
    raise LookupError(
        f"{key!r} has no version {wanted}; versions: "
        f"{[lv.version for lv in synth_lineage(key)]}"
    )


# -------------------------------------------------- population digest
def population_manifest(pop: PopulationSpec) -> dict:
    """Deterministic spec-level manifest of a population: per-app grid
    coordinates, truth totals, lineage labels — plus a population digest
    (stable across runs/platforms; the CI determinism check compares it)."""
    apps = []
    for key in pop.keys():
        gen = synth_genapp(key)
        spec = synth_spec(key)
        lineage = synth_lineage(key)
        family_name, _, index = parse_app_key(key)
        family = get_family(family_name)
        coords = normalize_coords(grid_point(family, pop.seed, index))
        apps.append({
            "key": key,
            "family": family_name,
            "kind": gen.kind,
            "transport": gen.transport,
            "grid": coords,
            "endpoints": len(gen.endpoints),
            "truth": {
                "total": spec.truth.count(),
                "static": spec.truth.count(visible_to="static"),
                "manual": spec.truth.count(visible_to="manual"),
                "auto": spec.truth.count(visible_to="auto"),
                "pairs": spec.truth.pairs(),
            },
            "versions": [lv.label for lv in lineage],
        })
    import json

    digest = hashlib.sha256(
        json.dumps(apps, sort_keys=True).encode()
    ).hexdigest()
    return {
        "spec": pop.spec,
        "families": {fam: n for fam, n in pop.counts().items()},
        "apps": apps,
        "totals": {
            "apps": len(apps),
            "endpoints": sum(a["endpoints"] for a in apps),
            "truth_endpoints": sum(a["truth"]["total"] for a in apps),
            "lineage_versions": sum(len(a["versions"]) for a in apps),
        },
        "digest": digest,
    }


__all__ = [
    "PopulationSpec",
    "app_key",
    "expand_targets",
    "grid_point",
    "is_population_spec",
    "is_synth_key",
    "normalize_coords",
    "parse_app_key",
    "parse_population",
    "population_manifest",
    "synth_build_version",
    "synth_genapp",
    "synth_lineage",
    "synth_spec",
]
