"""repro.synth — dimension-crossed synthetic corpus generation.

Scenario *families* (:mod:`repro.synth.families`) declare grids over the
app-generation axes the corpus generator understands; the grid compiler
(:mod:`repro.synth.compile`) maps self-describing keys
(``syn-<family>-s<seed>-<index>``) and population specs
(``synth:<families>*<scale>[@<seed>]``) onto deterministic
:class:`~repro.corpus.generator.GenApp` specs with full ground truth and
per-app version lineages.  Synthesized apps flow through the existing
corpus / batch / eval / lint / diff machinery unchanged.
"""

from __future__ import annotations

from .compile import (
    PopulationSpec,
    app_key,
    expand_targets,
    grid_point,
    is_population_spec,
    is_synth_key,
    normalize_coords,
    parse_app_key,
    parse_population,
    population_manifest,
    synth_build_version,
    synth_genapp,
    synth_lineage,
    synth_spec,
)
from .families import (
    FAMILIES,
    Family,
    family_keys,
    get_family,
    resolve_families,
)

__all__ = [
    "FAMILIES",
    "Family",
    "PopulationSpec",
    "app_key",
    "expand_targets",
    "family_keys",
    "get_family",
    "grid_point",
    "is_population_spec",
    "is_synth_key",
    "normalize_coords",
    "parse_app_key",
    "parse_population",
    "population_manifest",
    "resolve_families",
    "synth_build_version",
    "synth_genapp",
    "synth_lineage",
    "synth_spec",
]
