"""Abstract values for signature interpretation.

The signature builder (paper §3.2) abstractly interprets program slices.
Its environment maps locals to *abstract values*:

* :class:`~repro.signature.lang.Term` — strings, numbers-as-text and
  JSON/XML trees under construction (request side),
* :class:`NumAV` — numeric constants kept exact so arithmetic stays precise
  until a value is embedded in a string,
* :class:`NullAV` — Java ``null``,
* :class:`AppObjAV` — an instance of an application class (carries the
  dynamic type set for dispatch and listener resolution),
* :class:`ObjAV` — a modeled library object with named attributes
  (``java.net.URL`` wrapping its address term, a NameValuePair, ...),
* :class:`RequestAV` — an HTTP request being assembled,
* :class:`RespRef` — a node inside one or more HTTP responses; accessing it
  records the access path on the response's accumulator, which is how the
  response *format* is inferred from what the app reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..signature.lang import (
    Const,
    JsonArray,
    JsonObject,
    Term,
    UNKNOWN_ANY,
    Unknown,
    alt,
    concat,
)

AVal = object  # union documented above; Python duck-typing keeps this open


@dataclass(frozen=True)
class NumAV:
    value: float | int

    def as_term(self) -> Term:
        v = self.value
        if isinstance(v, float) and v.is_integer():
            v = int(v)
        return Const(str(v))


@dataclass(frozen=True)
class NullAV:
    def as_term(self) -> Term:
        return Const("null")


NULL_AV = NullAV()


@dataclass(frozen=True)
class AppObjAV:
    classes: frozenset[str]

    @staticmethod
    def of(class_name: str) -> "AppObjAV":
        return AppObjAV(frozenset({class_name}))


@dataclass(frozen=True)
class ObjAV:
    class_name: str
    attrs: tuple[tuple[str, object], ...] = ()

    def get(self, name: str, default: object | None = None) -> object | None:
        for k, v in self.attrs:
            if k == name:
                return v
        return default

    def put(self, name: str, value: object) -> "ObjAV":
        out = [(k, v) for k, v in self.attrs if k != name]
        out.append((name, value))
        return ObjAV(self.class_name, tuple(out))


@dataclass(frozen=True)
class RequestAV:
    """An HTTP request under construction."""

    methods: frozenset[str] = frozenset({"GET"})
    uri: Term = UNKNOWN_ANY
    headers: tuple[tuple[str, Term], ...] = ()
    body: Term | None = None
    mime: str | None = None
    listener_class: str | None = None
    #: where outgoing body data originates (microphone, camera, file, ...)
    body_origins: frozenset[str] = frozenset()

    def with_header(self, name: str, value: Term) -> "RequestAV":
        return replace(self, headers=self.headers + ((name, value),))

    @property
    def method(self) -> str:
        return sorted(self.methods)[0] if self.methods else "GET"


@dataclass
class ResponseAccumulator:
    """Mutable record of everything the app reads from one response.

    The access tree starts empty; semantic models add paths as the program
    slice touches keys (``getString("relay")`` → ``$.relay: str``).  The
    final response-body signature is the tree rendered as a
    :class:`~repro.signature.lang.JsonObject` (open — responses may carry
    keys the app never reads, §5.1 "some apps do not inspect all keywords").
    """

    txn_id: int
    kind: str = "unknown"  # "json" | "xml" | "text" | "binary" | "unknown"
    root: dict = field(default_factory=dict)
    consumers: set[str] = field(default_factory=set)

    def record_access(self, path: tuple, leaf_kind: str = "str") -> None:
        node = self.root
        for part in path:
            node = node.setdefault(("obj", part), {})
        node[("leaf", leaf_kind)] = {}

    def record_consumer(self, consumer: str) -> None:
        self.consumers.add(consumer)

    def to_term(self) -> Term | None:
        """Render the access tree as a signature term."""
        if self.kind == "binary":
            return None
        if not self.root:
            return None
        return _tree_to_term(self.root)

    def paths(self) -> list[tuple]:
        """All recorded access paths (for tests/diagnostics)."""
        out: list[tuple] = []

        def visit(node: dict, prefix: tuple) -> None:
            for key, child in node.items():
                tag, name = key
                if tag == "leaf":
                    out.append(prefix)
                else:
                    visit(child, prefix + (name,))

        visit(self.root, ())
        return sorted(set(out))


def _tree_to_term(node: dict) -> Term:
    entries = []
    leaf_kinds = []
    array_elem = None
    for key, child in sorted(node.items(), key=lambda kv: str(kv[0])):
        tag, name = key
        if tag == "leaf":
            leaf_kinds.append(name)
        elif name == "[]":
            array_elem = _tree_to_term(child) if child else UNKNOWN_ANY
        else:
            entries.append((Const(str(name)), _tree_to_term(child) if child else UNKNOWN_ANY))
    if array_elem is not None:
        return JsonArray(elem=array_elem)
    if entries:
        return JsonObject(tuple(entries), open_=True)
    if leaf_kinds:
        return Unknown(leaf_kinds[0] if leaf_kinds[0] in ("str", "int", "float", "bool") else "any")
    return UNKNOWN_ANY


@dataclass(frozen=True)
class RespRef:
    """A value derived from one or more HTTP responses.

    ``accs`` — accumulator ids; ``path`` — position within the response
    tree (``()`` is the root; ``("songs", "[]", "title")`` a nested key).
    """

    accs: frozenset[int]
    path: tuple = ()

    def child(self, part: object) -> "RespRef":
        return RespRef(self.accs, self.path + (part,))

    def origin_tag(self) -> str:
        path = ".".join(str(p) for p in self.path) or "$"
        acc = ",".join(str(a) for a in sorted(self.accs))
        return f"response:{acc}:{path}"


def to_term(value: AVal) -> Term:
    """Coerce any abstract value to a signature term (for embedding into
    strings and bodies)."""
    if isinstance(value, Term):
        return value
    if isinstance(value, NumAV):
        return value.as_term()
    if isinstance(value, NullAV):
        return value.as_term()
    if isinstance(value, RespRef):
        return Unknown("str", origin=value.origin_tag())
    if isinstance(value, RequestAV):
        return value.uri
    if isinstance(value, ObjAV):
        inner = value.get("value")
        if inner is not None:
            return to_term(inner)
        return UNKNOWN_ANY
    if isinstance(value, AppObjAV):
        return UNKNOWN_ANY
    if value is None:
        return UNKNOWN_ANY
    return UNKNOWN_ANY


def merge_avals(a: AVal, b: AVal) -> AVal:
    """Confluence merge (the signature-database merge of §3.2)."""
    if a is b or a == b:
        return a
    if isinstance(a, RespRef) and isinstance(b, RespRef):
        if a.path == b.path:
            return RespRef(a.accs | b.accs, a.path)
        return Unknown("any", origin=a.origin_tag())
    if isinstance(a, AppObjAV) and isinstance(b, AppObjAV):
        return AppObjAV(a.classes | b.classes)
    if isinstance(a, RequestAV) and isinstance(b, RequestAV):
        return RequestAV(
            methods=a.methods | b.methods,
            uri=alt(a.uri, b.uri),
            headers=_merge_headers(a.headers, b.headers),
            body=_merge_opt_terms(a.body, b.body),
            mime=a.mime if a.mime == b.mime else (a.mime or b.mime),
            listener_class=a.listener_class or b.listener_class,
            body_origins=a.body_origins | b.body_origins,
        )
    if isinstance(a, ObjAV) and isinstance(b, ObjAV) and a.class_name == b.class_name:
        keys = {k for k, _ in a.attrs} | {k for k, _ in b.attrs}
        return ObjAV(
            a.class_name,
            tuple(
                (k, merge_avals(a.get(k, UNKNOWN_ANY), b.get(k, UNKNOWN_ANY)))
                for k in sorted(keys)
            ),
        )
    if isinstance(a, NullAV):
        return b
    if isinstance(b, NullAV):
        return a
    ta, tb = _termish(a), _termish(b)
    if ta is not None and tb is not None:
        return alt(ta, tb)
    return UNKNOWN_ANY


def _termish(v: AVal) -> Term | None:
    if isinstance(v, Term):
        return v
    if isinstance(v, (NumAV, NullAV)):
        return v.as_term()
    return None


def _merge_opt_terms(a: Term | None, b: Term | None) -> Term | None:
    if a is None:
        return b
    if b is None:
        return a
    return alt(a, b)


def _merge_headers(
    a: tuple[tuple[str, Term], ...], b: tuple[tuple[str, Term], ...]
) -> tuple[tuple[str, Term], ...]:
    out: dict[str, Term] = dict(a)
    for name, value in b:
        out[name] = alt(out[name], value) if name in out else value
    return tuple(out.items())


def canon(value: AVal) -> str:
    """Canonical string of an abstract value, for memoization keys."""
    if isinstance(value, Term):
        return f"T:{value}"
    if isinstance(value, NumAV):
        return f"N:{value.value}"
    if isinstance(value, NullAV):
        return "null"
    if isinstance(value, RespRef):
        return f"R:{sorted(value.accs)}:{value.path}"
    if isinstance(value, AppObjAV):
        return f"A:{sorted(value.classes)}"
    if isinstance(value, RequestAV):
        return f"Q:{sorted(value.methods)}:{value.uri}:{value.body}"
    if isinstance(value, ObjAV):
        return f"O:{value.class_name}:{[(k, canon(v)) for k, v in value.attrs]}"
    return "?"


__all__ = [
    "AVal",
    "AppObjAV",
    "NULL_AV",
    "NullAV",
    "NumAV",
    "ObjAV",
    "RequestAV",
    "RespRef",
    "ResponseAccumulator",
    "canon",
    "merge_avals",
    "to_term",
]
