"""Semantic models for ``java.net.URL`` / ``HttpURLConnection``.

Connection-style APIs assemble the request across several calls
(``setRequestMethod``, ``setRequestProperty``, output-stream writes), so
the model keeps a mutable *connection record* in the interpreter context,
finalised into a transaction when the response is first pulled
(``getInputStream``/``getResponseCode``) or at context teardown for
fire-and-forget sends.
"""

from __future__ import annotations

from ..signature.lang import Const, Unknown, concat
from .avals import ObjAV, RespRef, to_term
from .model import Effect, SemanticModel, UNHANDLED

_CONNS = ("java.net.HttpURLConnection", "java.net.URLConnection",
          "javax.net.ssl.HttpsURLConnection")


def _conn_id(base) -> int | None:
    if isinstance(base, ObjAV) and base.class_name in ("urlconn", "outstream", "writer"):
        return base.get("conn_id")
    return None


def register(model: SemanticModel) -> None:
    @model.register("java.net.URL", "<init>")
    def url_init(ctx, site, expr, base, args):
        parts = [to_term(a) for a in args]
        # URL(String) or URL(base, spec)
        term = concat(*parts) if parts else Unknown("url")
        return Effect(result=None, new_base=ObjAV("url", (("value", term),)))

    @model.register("java.net.URL", "toString")
    def url_tostring(ctx, site, expr, base, args):
        return to_term(base)

    @model.register("java.net.URL", "openConnection")
    def open_connection(ctx, site, expr, base, args):
        conn_id = ctx.conn_new(to_term(base))
        return ObjAV("urlconn", (("conn_id", conn_id),))

    @model.register("java.net.URL", "openStream")
    def open_stream(ctx, site, expr, base, args):
        conn_id = ctx.conn_new(to_term(base))
        conn = ctx.conn_of(conn_id)
        return conn.finalize(ctx, site)

    @model.register(_CONNS, "setRequestMethod")
    def set_method(ctx, site, expr, base, args):
        cid = _conn_id(base)
        if cid is None:
            return UNHANDLED
        method = to_term(args[0])
        if isinstance(method, Const):
            ctx.conn_of(cid).method = method.text
        return None

    @model.register(_CONNS, ("setRequestProperty", "addRequestProperty"))
    def set_property(ctx, site, expr, base, args):
        cid = _conn_id(base)
        if cid is None or len(args) < 2:
            return UNHANDLED
        name = to_term(args[0])
        key = name.text if isinstance(name, Const) else "*"
        ctx.conn_of(cid).headers.append((key, to_term(args[1])))
        return None

    @model.register(_CONNS, ("setDoOutput", "setDoInput", "setConnectTimeout",
                             "setReadTimeout", "setUseCaches", "connect",
                             "setInstanceFollowRedirects", "setChunkedStreamingMode"))
    def conn_config(ctx, site, expr, base, args):
        cid = _conn_id(base)
        if cid is not None and expr.sig.name == "setDoOutput":
            ctx.conn_of(cid).method = "POST"
        return None

    @model.register(_CONNS, "getOutputStream")
    def get_output(ctx, site, expr, base, args):
        cid = _conn_id(base)
        if cid is None:
            return UNHANDLED
        return ObjAV("outstream", (("conn_id", cid),))

    @model.register(("java.io.OutputStreamWriter", "java.io.BufferedWriter",
                     "java.io.DataOutputStream", "java.io.PrintWriter"), "<init>")
    def writer_init(ctx, site, expr, base, args):
        if args and isinstance(args[0], ObjAV):
            cid = _conn_id(args[0])
            if cid is not None:
                return Effect(result=None, new_base=ObjAV("writer", (("conn_id", cid),)))
        return Effect(result=None, new_base=ObjAV("writer", ()))

    @model.register(("java.io.OutputStreamWriter", "java.io.BufferedWriter",
                     "java.io.DataOutputStream", "java.io.PrintWriter",
                     "java.io.OutputStream"),
                    ("write", "writeBytes", "print", "append"))
    def writer_write(ctx, site, expr, base, args):
        cid = _conn_id(base)
        if cid is None or not args:
            return None
        conn = ctx.conn_of(cid)
        part = to_term(args[0])
        conn.body_parts.append(part)
        if isinstance(part, Unknown) and part.origin:
            conn.body_origins.add(part.origin)
        return None

    @model.register(("java.io.OutputStreamWriter", "java.io.BufferedWriter",
                     "java.io.DataOutputStream", "java.io.PrintWriter",
                     "java.io.OutputStream"),
                    ("flush", "close"))
    def writer_flush(ctx, site, expr, base, args):
        return None

    @model.register(_CONNS, ("getInputStream", "getResponseCode", "getErrorStream"))
    def get_response(ctx, site, expr, base, args):
        cid = _conn_id(base)
        if cid is None:
            return UNHANDLED
        conn = ctx.conn_of(cid)
        resp = conn.finalize(ctx, site)
        if expr.sig.name == "getResponseCode":
            return Unknown("int")
        return resp

    @model.register(_CONNS, "getHeaderField")
    def get_header(ctx, site, expr, base, args):
        cid = _conn_id(base)
        if cid is not None:
            conn = ctx.conn_of(cid)
            resp = conn.finalize(ctx, site)
            if isinstance(resp, RespRef):
                return Unknown("str", origin=resp.origin_tag())
        return Unknown("str")

    @model.register(_CONNS, "disconnect")
    def disconnect(ctx, site, expr, base, args):
        return None


__all__ = ["register"]
