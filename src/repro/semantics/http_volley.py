"""Semantic models for com.android.volley — request objects carrying
listener callbacks; ``RequestQueue.add`` is the demarcation point and the
listener's ``onResponse`` is evaluated inline with the response reference,
mirroring the implicit call flow the paper adds to FlowDroid (§3.4)."""

from __future__ import annotations

from dataclasses import replace

from ..signature.lang import Const, Term, Unknown
from .avals import AppObjAV, NULL_AV, ObjAV, RequestAV, RespRef, to_term
from .model import Effect, SemanticModel, UNHANDLED

_VOLLEY_METHODS = {0: "GET", 1: "POST", 2: "PUT", 3: "DELETE", 4: "HEAD",
                   5: "OPTIONS", 6: "TRACE", 7: "PATCH"}

_REQUEST_CLASSES = (
    "com.android.volley.toolbox.StringRequest",
    "com.android.volley.toolbox.JsonObjectRequest",
    "com.android.volley.toolbox.JsonArrayRequest",
    "com.android.volley.toolbox.ImageRequest",
    "com.android.volley.Request",
)


def _listener_class(args) -> str | None:
    for arg in args:
        if isinstance(arg, AppObjAV):
            return sorted(arg.classes)[0]
    return None


def register(model: SemanticModel) -> None:
    @model.register(_REQUEST_CLASSES, "<init>")
    def request_init(ctx, site, expr, base, args):
        from .avals import NumAV

        method = frozenset({"GET"})
        uri: Term = Unknown("url")
        body: Term | None = None
        rest = list(args)
        if rest and isinstance(rest[0], NumAV):
            method = frozenset({_VOLLEY_METHODS.get(int(rest[0].value), "GET")})
            rest = rest[1:]
        if rest:
            uri = to_term(rest[0])
            rest = rest[1:]
        # JsonObjectRequest carries an optional JSON body before listeners.
        for arg in rest:
            if isinstance(arg, Term) and not isinstance(arg, Unknown):
                body = arg
                break
        if body is not None and "GET" in method and len(method) == 1 and expr.sig.class_name.endswith("JsonObjectRequest"):
            method = frozenset({"POST"})
        request = RequestAV(
            methods=method,
            uri=uri,
            body=body,
            mime="application/json" if body is not None else None,
            listener_class=_listener_class(args),
        )
        return Effect(result=None, new_base=request)

    @model.register("com.android.volley.toolbox.Volley", "newRequestQueue")
    def new_queue(ctx, site, expr, base, args):
        return ObjAV("requestqueue")

    @model.register("com.android.volley.RequestQueue", "add")
    def queue_add(ctx, site, expr, base, args):
        request = args[0] if args else None
        if not isinstance(request, RequestAV):
            return UNHANDLED
        # JsonObjectRequest / JsonArrayRequest deliver parsed JSON to their
        # listeners by construction
        kind = "json" if (request.mime == "application/json"
                          or request.listener_class) else "unknown"
        resp = ctx.record_transaction(site, request, response_kind=kind)
        if request.listener_class and resp is not None:
            ctx.call_app_method(request.listener_class, "onResponse", [resp])
            ctx.call_app_method(request.listener_class, "onSuccess", [resp])
        return request

    @model.register("com.android.volley.RequestQueue", "start")
    def queue_start(ctx, site, expr, base, args):
        return None

    @model.register("com.android.volley.VolleyError", "getMessage")
    def volley_error(ctx, site, expr, base, args):
        return Unknown("str")


__all__ = ["register"]
