"""Implicit call flows through thread/async libraries (paper §3.4).

"Network programming in Android often involves using thread libraries such
as AsyncTask, which introduce implicit call flows...  we add support for
many popular implicit callbacks commonly observed in network operation and
HTTP libraries, such as AsyncTask, volley, and retrofit."

Two consumers:

* the **signature interpreter** uses the dispatch handlers registered here
  to evaluate ``task.execute(args)`` as ``doInBackground(args)`` followed by
  ``onPostExecute(result)`` (and Thread/Runnable/Timer equivalents);
* the **taint engine** uses :func:`discover_callbacks` to obtain the same
  knowledge statically: implicit call-graph edges, linked returns and the
  set of framework-invoked callback methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.callgraph import CallGraph
from ..ir.program import Program
from ..ir.statements import StmtRef
from ..ir.values import InvokeExpr, Local
from .avals import AppObjAV
from .model import SemanticModel, UNHANDLED

#: (library base class, trigger method) → (callback method, passes args?)
_DISPATCH_RULES: dict[tuple[str, str], tuple[str, bool]] = {
    ("android.os.AsyncTask", "execute"): ("doInBackground", True),
    ("android.os.AsyncTask", "executeOnExecutor"): ("doInBackground", True),
    ("java.lang.Thread", "start"): ("run", False),
    ("java.util.TimerTask", "run"): ("run", True),
    ("java.util.concurrent.FutureTask", "run"): ("run", False),
    ("java.util.concurrent.Callable", "call"): ("call", False),
}

#: Methods the framework itself invokes; used as keep-names and as async
#: event boundaries.
ASYNC_CALLBACKS = frozenset(
    {"doInBackground", "onPostExecute", "onPreExecute", "onProgressUpdate",
     "run", "call", "onLocationChanged", "onReceive", "onResponse",
     "onErrorResponse", "onFailure", "onSuccess"}
)


def register(model: SemanticModel) -> None:
    @model.register_dispatch(("android.os.AsyncTask",), ("execute", "executeOnExecutor"))
    def asynctask_execute(ctx, site, expr, base, args):
        if not isinstance(base, AppObjAV):
            return UNHANDLED
        cls = sorted(base.classes)[0]
        result = ctx.call_app_method(cls, "doInBackground", list(args), this=base)
        ctx.call_app_method(cls, "onPostExecute", [result], this=base)
        return base

    @model.register_dispatch(("java.lang.Thread", "java.util.concurrent.FutureTask"),
                             "start")
    def thread_start(ctx, site, expr, base, args):
        if not isinstance(base, AppObjAV):
            return UNHANDLED
        cls = sorted(base.classes)[0]
        ctx.call_app_method(cls, "run", [])
        return None

    @model.register(("android.os.Handler",), ("post", "postDelayed"))
    def handler_post(ctx, site, expr, base, args):
        runnable = next((a for a in args if isinstance(a, AppObjAV)), None)
        if runnable is not None:
            ctx.call_app_method(sorted(runnable.classes)[0], "run", [])
        return None

    @model.register(("android.os.Handler",), "<init>")
    def handler_init(ctx, site, expr, base, args):
        from .model import Effect

        return Effect(result=None)

    @model.register(("java.util.Timer",), ("schedule", "scheduleAtFixedRate"))
    def timer_schedule(ctx, site, expr, base, args):
        task = next((a for a in args if isinstance(a, AppObjAV)), None)
        if task is not None:
            ctx.call_app_method(sorted(task.classes)[0], "run", [])
        return None

    @model.register(("java.util.Timer",), "<init>")
    def timer_init(ctx, site, expr, base, args):
        from .model import Effect

        return Effect(result=None)

    @model.register(("java.util.concurrent.ExecutorService",
                     "java.util.concurrent.Executor"), ("submit", "execute"))
    def executor_submit(ctx, site, expr, base, args):
        task = next((a for a in args if isinstance(a, AppObjAV)), None)
        if task is not None:
            cls = sorted(task.classes)[0]
            ctx.call_app_method(cls, "run", [])
            ctx.call_app_method(cls, "call", [])
        return None

    @model.register("android.location.LocationManager", "requestLocationUpdates")
    def location_updates(ctx, site, expr, base, args):
        """Registers a LocationListener; the framework later calls
        onLocationChanged(Location) — evaluated here with a fresh location
        object so the implicit data flow is captured (§3.4's weather app)."""
        from .avals import ObjAV

        listener = next((a for a in args if isinstance(a, AppObjAV)), None)
        if listener is not None:
            ctx.call_app_method(
                sorted(listener.classes)[0], "onLocationChanged", [ObjAV("location")]
            )
        return None


@dataclass
class CallbackInfo:
    """Statically discovered implicit-flow knowledge for the taint engine."""

    #: (site, target method id, reason, positional arg mapping?)
    implicit_edges: list[tuple[StmtRef, str, str]] = field(default_factory=list)
    #: producer method id -> [(consumer method id, param index)]
    linked_returns: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    #: framework-invoked methods found in the program
    callback_methods: set[str] = field(default_factory=set)
    #: callbacks that start a NEW asynchronous event (Handler posts, timers,
    #: location updates) — heap flows in/out of these cost an async hop
    boundary_methods: set[str] = field(default_factory=set)


def discover_callbacks(program: Program, callgraph: CallGraph) -> CallbackInfo:
    """Find AsyncTask/Thread/Timer implicit control transfers and register
    them on the call graph (EdgeMiner-style, §3.4)."""
    info = CallbackInfo()
    for ref, expr in list(callgraph.library_sites.items()):
        base = expr.base
        if not isinstance(base, Local):
            continue
        receiver = base.type.name
        if not program.has_class(receiver):
            continue
        ancestors = program.library_ancestors(receiver)
        for (lib_cls, trigger), (callback, _passes) in _DISPATCH_RULES.items():
            if lib_cls not in ancestors or expr.sig.name != trigger:
                continue
            cls = program.class_of(receiver)
            target = None
            for cname in program.superclasses(receiver):
                c = program.class_of(cname)
                if c is None:
                    break
                found = c.find_methods(callback)
                if found:
                    target = found[0]
                    break
            if target is None:
                continue
            callgraph.add_implicit_edge(ref, target.method_id, f"{lib_cls}.{trigger}")
            info.implicit_edges.append((ref, target.method_id, f"{lib_cls}.{trigger}"))
            info.callback_methods.add(target.method_id)
            if callback == "doInBackground":
                post = None
                for cname in program.superclasses(receiver):
                    c = program.class_of(cname)
                    if c is None:
                        break
                    found = c.find_methods("onPostExecute")
                    if found:
                        post = found[0]
                        break
                if post is not None:
                    info.linked_returns.setdefault(target.method_id, []).append(
                        (post.method_id, 0)
                    )
                    info.callback_methods.add(post.method_id)
    # Runnables handed to Handlers / Timers / executors: the callback runs
    # as a separate framework event (the async-event boundary of §3.4).
    _POSTERS = {
        ("android.os.Handler", "post"),
        ("android.os.Handler", "postDelayed"),
        ("java.util.Timer", "schedule"),
        ("java.util.Timer", "scheduleAtFixedRate"),
        ("java.util.concurrent.ExecutorService", "submit"),
        ("java.util.concurrent.Executor", "execute"),
    }
    for ref, expr in list(callgraph.library_sites.items()):
        receiver = expr.sig.class_name
        if isinstance(expr.base, Local):
            receiver = expr.base.type.name
        if (receiver, expr.sig.name) not in _POSTERS:
            continue
        for arg in expr.args:
            if not isinstance(arg, Local) or not program.has_class(arg.type.name):
                continue
            for cb_name in ("run", "call"):
                for cname in program.superclasses(arg.type.name):
                    cls = program.class_of(cname)
                    if cls is None:
                        break
                    found = [m for m in cls.find_methods(cb_name) if m.body is not None]
                    if found:
                        target = found[0]
                        callgraph.add_implicit_edge(
                            ref, target.method_id, f"{receiver}.{expr.sig.name}"
                        )
                        info.implicit_edges.append(
                            (ref, target.method_id, f"{receiver}.{expr.sig.name}")
                        )
                        info.callback_methods.add(target.method_id)
                        info.boundary_methods.add(target.method_id)
                        break
    # Location-service callbacks likewise run as their own events.
    for method in program.methods():
        if method.name == "onLocationChanged" and method.body is not None:
            info.callback_methods.add(method.method_id)
            info.boundary_methods.add(method.method_id)
    # Any override of a known framework callback name counts as a callback
    # method even without a discovered trigger site (listener interfaces).
    for method in program.methods():
        if method.name in ASYNC_CALLBACKS and method.body is not None:
            cls = program.class_of(method.class_name)
            if cls is not None and program.library_ancestors(method.class_name):
                info.callback_methods.add(method.method_id)
    return info


def compute_event_roots(
    program: Program,
    callgraph: CallGraph,
    entrypoint_ids: list[str],
    boundary_methods: frozenset[str] | set[str] = frozenset(),
) -> dict[str, frozenset[str]]:
    """Map each method to the set of *events* that may run it.

    Events are the framework entry points plus every async boundary
    callback (posted runnables, timer tasks, location listeners).
    Reachability stops at boundary callbacks — those start their own event
    — so a heap flow between methods with disjoint root sets crosses an
    asynchronous event boundary (taint-engine hop accounting, §3.4).
    AsyncTask/Thread bodies inherit the triggering event's root: their data
    flow is handled by the implicit-call-flow support, not the heuristic.
    """
    boundary = set(boundary_methods)

    def reach(start: str) -> set[str]:
        seen: set[str] = set()
        stack = [start]
        while stack:
            mid = stack.pop()
            if mid in seen:
                continue
            seen.add(mid)
            for site in callgraph.sites_in(mid):
                for callee in callgraph.callees_of(site.ref):
                    if callee in boundary:
                        continue  # a new event starts there
                    stack.append(callee)
        return seen

    roots: dict[str, set[str]] = {}
    all_roots = [ep for ep in entrypoint_ids] + sorted(boundary)
    for root in all_roots:
        try:
            program.method_by_id(root)
        except KeyError:
            continue
        for mid in reach(root):
            roots.setdefault(mid, set()).add(root)
    return {mid: frozenset(r) for mid, r in roots.items()}


__all__ = [
    "ASYNC_CALLBACKS",
    "CallbackInfo",
    "compute_event_roots",
    "discover_callbacks",
    "register",
]
