"""Semantic models for OkHttp (v3 and legacy com.squareup.okhttp) and the
Retrofit-on-OkHttp surface."""

from __future__ import annotations

from dataclasses import replace

from ..signature.lang import Const, Term, Unknown, concat
from .avals import AppObjAV, ObjAV, RequestAV, RespRef, to_term
from .model import Effect, SemanticModel, UNHANDLED

_BUILDERS = ("okhttp3.Request$Builder", "com.squareup.okhttp.Request$Builder")
_CLIENTS = ("okhttp3.OkHttpClient", "com.squareup.okhttp.OkHttpClient")
_CALLS = ("okhttp3.Call", "com.squareup.okhttp.Call", "retrofit2.Call")
_FORM_BUILDERS = ("okhttp3.FormBody$Builder", "com.squareup.okhttp.FormEncodingBuilder")


def register(model: SemanticModel) -> None:
    @model.register(_BUILDERS, "<init>")
    def builder_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=RequestAV(uri=Unknown("url")))

    @model.register(_BUILDERS, "url")
    def builder_url(ctx, site, expr, base, args):
        if isinstance(base, RequestAV):
            new = replace(base, uri=to_term(args[0]))
            return Effect(result=new, new_base=new)
        return UNHANDLED

    @model.register(_BUILDERS, ("header", "addHeader"))
    def builder_header(ctx, site, expr, base, args):
        if isinstance(base, RequestAV) and len(args) >= 2:
            name = to_term(args[0])
            key = name.text if isinstance(name, Const) else "*"
            new = base.with_header(key, to_term(args[1]))
            return Effect(result=new, new_base=new)
        return UNHANDLED

    @model.register(_BUILDERS, ("post", "put", "delete", "patch"))
    def builder_method(ctx, site, expr, base, args):
        if isinstance(base, RequestAV):
            method = expr.sig.name.upper()
            body = None
            mime = None
            origins = frozenset()
            if args and isinstance(args[0], ObjAV) and args[0].class_name == "body":
                body = to_term(args[0].get("value", Unknown("str")))
                mime = args[0].get("mime")
                origins = args[0].get("origins", frozenset()) or frozenset()
            elif args:
                body = to_term(args[0])
            new = replace(
                base,
                methods=frozenset({method}),
                body=body,
                mime=mime,
                body_origins=origins,
            )
            return Effect(result=new, new_base=new)
        return UNHANDLED

    @model.register(_BUILDERS, "get")
    def builder_get(ctx, site, expr, base, args):
        if isinstance(base, RequestAV):
            new = replace(base, methods=frozenset({"GET"}))
            return Effect(result=new, new_base=new)
        return UNHANDLED

    @model.register(_BUILDERS, "build")
    def builder_build(ctx, site, expr, base, args):
        if isinstance(base, RequestAV):
            return base
        return UNHANDLED

    # -- bodies ------------------------------------------------------------
    @model.register(_FORM_BUILDERS, "<init>")
    def form_init(ctx, site, expr, base, args):
        return Effect(
            result=None,
            new_base=ObjAV(
                "body",
                (("value", Const("")), ("mime", "application/x-www-form-urlencoded")),
            ),
        )

    @model.register(_FORM_BUILDERS, "add")
    def form_add(ctx, site, expr, base, args):
        if isinstance(base, ObjAV) and len(args) >= 2:
            prev = base.get("value", Const(""))
            prev_term = to_term(prev)
            sep = Const("&") if not (isinstance(prev_term, Const) and not prev_term.text) else Const("")
            new_value = concat(prev_term, sep, to_term(args[0]), Const("="), to_term(args[1]))
            new = base.put("value", new_value)
            return Effect(result=new, new_base=new)
        return UNHANDLED

    @model.register(_FORM_BUILDERS, "build")
    def form_build(ctx, site, expr, base, args):
        return base

    @model.register(("okhttp3.RequestBody", "com.squareup.okhttp.RequestBody"), "create")
    def body_create(ctx, site, expr, base, args):
        mime = None
        value: Term = Unknown("str")
        origins: frozenset = frozenset()
        for arg in args:
            if isinstance(arg, ObjAV) and arg.class_name == "mediatype":
                mime = arg.get("value")
            else:
                value = to_term(arg)
                if isinstance(value, Unknown) and value.origin:
                    origins = frozenset({value.origin})
        return ObjAV("body", (("value", value), ("mime", mime), ("origins", origins)))

    @model.register(("okhttp3.MediaType", "com.squareup.okhttp.MediaType"), "parse")
    def mediatype(ctx, site, expr, base, args):
        mime = to_term(args[0]) if args else None
        return ObjAV(
            "mediatype",
            (("value", mime.text if isinstance(mime, Const) else None),),
        )

    # -- client / call ------------------------------------------------------
    @model.register(_CLIENTS, "<init>")
    def client_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=ObjAV("okclient"))

    @model.register(_CLIENTS, "newCall")
    def new_call(ctx, site, expr, base, args):
        request = args[0] if args else None
        if not isinstance(request, RequestAV):
            request = RequestAV(uri=Unknown("url"))
        return ObjAV("okcall", (("request", request),))

    @model.register(_CALLS, "execute")
    def call_execute(ctx, site, expr, base, args):
        request = base.get("request") if isinstance(base, ObjAV) else None
        if not isinstance(request, RequestAV):
            request = RequestAV(uri=Unknown("url"))
        return ctx.record_transaction(site, request)

    @model.register(_CALLS, "enqueue")
    def call_enqueue(ctx, site, expr, base, args):
        request = base.get("request") if isinstance(base, ObjAV) else None
        if not isinstance(request, RequestAV):
            request = RequestAV(uri=Unknown("url"))
        resp = ctx.record_transaction(site, request)
        listener = next((a for a in args if isinstance(a, AppObjAV)), None)
        if listener is not None and resp is not None:
            cls = sorted(listener.classes)[0]
            ctx.call_app_method(cls, "onResponse", [base, resp])
        return None

    # -- response ------------------------------------------------------------
    @model.register(("okhttp3.Response", "com.squareup.okhttp.Response",
                     "retrofit2.Response"), ("body", "peekBody"))
    def response_body(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            return base
        return UNHANDLED

    @model.register(("okhttp3.Response", "com.squareup.okhttp.Response",
                     "retrofit2.Response"), ("code", "isSuccessful"))
    def response_code(ctx, site, expr, base, args):
        return Unknown("int" if expr.sig.name == "code" else "bool")

    @model.register(("okhttp3.ResponseBody", "com.squareup.okhttp.ResponseBody"),
                    ("string", "charStream", "byteStream", "bytes"))
    def responsebody_string(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            return base
        return UNHANDLED


__all__ = ["register"]
