"""Optional extensions the paper sketches but does not implement (§4):

* **Intent modeling** — "Intents can be also handled by modeling the
  implicit control flow it introduces, similar to how we handle threads."
  With :attr:`~repro.core.config.AnalysisConfig.model_intents` enabled,
  ``Intent`` extras become a modeled store and ``startActivity`` dispatches
  into the target component, so intra-app intent messaging no longer
  degrades request signatures to wildcards.  (Cross-app intents — the ad
  libraries of §5.1 — remain unresolvable, as they must.)

* **Direct socket support** — "Direct use of socket can be handled by
  modeling socket APIs because Extractocol already parses text-based
  protocols."  With ``model_sockets`` enabled, ``java.net.Socket`` streams
  become demarcation points: bytes written to the output stream form the
  request signature, reads seed the response slice.
"""

from __future__ import annotations

from ..signature.lang import Const, Unknown, concat
from .avals import AppObjAV, ObjAV, to_term
from .model import Effect, SemanticModel, UNHANDLED, default_model

_CONTEXTS = ("android.app.Activity", "android.content.Context",
             "android.app.Service", "android.app.Application")


# ---------------------------------------------------------------- intents
def register_intent_models(model: SemanticModel) -> None:
    """Override the default (unmodeled) intent semantics with a store."""

    @model.register("android.content.Intent", "<init>")
    def intent_init(ctx, site, expr, base, args):
        target = None
        for arg in args:
            if isinstance(arg, ObjAV) and arg.class_name == "class":
                target = arg.get("name")
        return Effect(result=None,
                      new_base=ObjAV("intent", (("target", target),)))

    @model.register("android.content.Intent", ("setClass", "setClassName"))
    def intent_set_class(ctx, site, expr, base, args):
        if isinstance(base, ObjAV):
            for arg in args:
                if isinstance(arg, ObjAV) and arg.class_name == "class":
                    new = base.put("target", arg.get("name"))
                    return Effect(result=new, new_base=new)
        return UNHANDLED

    @model.register("android.content.Intent", "putExtra")
    def intent_put_extra(ctx, site, expr, base, args):
        if isinstance(base, ObjAV) and len(args) >= 2:
            key = to_term(args[0])
            name = key.text if isinstance(key, Const) else "*"
            new = base.put(f"extra:{name}", args[1])
            return Effect(result=new, new_base=new)
        return UNHANDLED

    @model.register("android.content.Intent",
                    ("getStringExtra", "getIntExtra"))
    def intent_get_extra(ctx, site, expr, base, args):
        if isinstance(base, ObjAV) and args:
            key = to_term(args[0])
            if isinstance(key, Const):
                found = base.get(f"extra:{key.text}")
                if found is not None:
                    return found
        return Unknown("str", origin="intent")

    @model.register(_CONTEXTS, ("startActivity", "startService", "sendBroadcast"))
    def start_component(ctx, site, expr, base, args):
        """The framework delivers the intent to the target component; model
        the implicit control transfer by evaluating its intent handler."""
        intent = next(
            (a for a in args if isinstance(a, ObjAV) and a.class_name == "intent"),
            None,
        )
        if intent is None:
            return None
        target = intent.get("target")
        if not target:
            return None
        for handler in ("onNewIntent", "onHandleIntent", "onReceiveIntent"):
            ctx.call_app_method(str(target), handler, [intent])
        return None


# ---------------------------------------------------------------- sockets
def register_socket_models(model: SemanticModel) -> None:
    @model.register("java.net.Socket", "<init>")
    def socket_init(ctx, site, expr, base, args):
        host = to_term(args[0]) if args else Unknown("str")
        port = to_term(args[1]) if len(args) > 1 else Unknown("int")
        url = concat(Const("socket://"), host, Const(":"), port)
        conn_id = ctx.conn_new(url)
        conn = ctx.conn_of(conn_id)
        conn.method = "RAW"
        return Effect(result=None,
                      new_base=ObjAV("socket", (("conn_id", conn_id),)))

    @model.register("java.net.Socket", "getOutputStream")
    def socket_out(ctx, site, expr, base, args):
        if isinstance(base, ObjAV) and base.class_name == "socket":
            # reuse the connection writer models (§4's text-protocol parsing)
            return ObjAV("outstream", (("conn_id", base.get("conn_id")),))
        return UNHANDLED

    @model.register("java.net.Socket", "getInputStream")
    def socket_in(ctx, site, expr, base, args):
        if isinstance(base, ObjAV) and base.class_name == "socket":
            conn = ctx.conn_of(base.get("conn_id"))
            return conn.finalize(ctx, site)
        return UNHANDLED

    @model.register("java.net.Socket", "close")
    def socket_close(ctx, site, expr, base, args):
        return None


def discover_intent_edges(program, callgraph) -> int:
    """Register implicit call-graph edges for intra-app intent dispatch
    (``startActivity(intent)`` → target component's intent handler), the
    intent analogue of the thread-callback discovery in
    :mod:`repro.semantics.async_model`.  Returns the edge count."""
    from ..ir.values import ClassConst, InvokeExpr, Local

    added = 0
    for ref, expr in list(callgraph.library_sites.items()):
        if expr.sig.name not in ("startActivity", "startService",
                                 "sendBroadcast"):
            continue
        method = program.method_by_id(ref.method_id)
        assert method.body is not None
        # method-level approximation: any Intent construction/setClass in
        # the same method names the candidate targets
        targets: set[str] = set()
        for stmt in method.body:
            call = stmt.invoke
            if call is None:
                continue
            if call.sig.class_name == "android.content.Intent" and call.sig.name in (
                "<init>", "setClass", "setClassName"
            ):
                for arg in call.args:
                    if isinstance(arg, ClassConst):
                        targets.add(arg.class_name)
        for target in sorted(targets):
            cls = program.class_of(target)
            if cls is None:
                continue
            for handler in ("onNewIntent", "onHandleIntent", "onReceiveIntent"):
                for m in cls.find_methods(handler):
                    if m.body is not None:
                        callgraph.add_implicit_edge(ref, m.method_id, "intent")
                        added += 1
    return added


def build_model(*, model_intents: bool = False,
                model_sockets: bool = False) -> SemanticModel:
    """The default semantic model plus any enabled extensions."""
    if not (model_intents or model_sockets):
        return default_model()
    model = SemanticModel()
    model.merge(default_model())
    if model_intents:
        register_intent_models(model)
    if model_sockets:
        register_socket_models(model)
    return model


__all__ = ["build_model", "register_intent_models", "register_socket_models"]
