"""Semantic models for basic containers (List, Map, arrays) — §4's
"generic data types, including List, Array, and HashMap"."""

from __future__ import annotations

from ..signature.lang import Unknown, alt
from .avals import NumAV, ObjAV, to_term
from .model import Effect, SemanticModel, UNHANDLED

_LISTS = (
    "java.util.ArrayList",
    "java.util.LinkedList",
    "java.util.List",
    "java.util.Vector",
)
_MAPS = ("java.util.HashMap", "java.util.Map", "java.util.LinkedHashMap",
         "java.util.TreeMap", "java.util.Hashtable")


def _items(obj) -> tuple:
    if isinstance(obj, ObjAV):
        return obj.get("items", ()) or ()
    return ()


def register(model: SemanticModel) -> None:
    @model.register(_LISTS, "<init>")
    def list_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=ObjAV("list", (("items", ()),)))

    @model.register(_LISTS, "add")
    def list_add(ctx, site, expr, base, args):
        items = _items(base)
        value = args[-1] if args else None  # add(e) or add(i, e)
        new = ObjAV("list", (("items", items + (value,)),))
        return Effect(result=NumAV(1), new_base=new)

    @model.register(_LISTS, "get")
    def list_get(ctx, site, expr, base, args):
        items = _items(base)
        if not items:
            return Unknown("any")
        if len(args) == 1 and isinstance(args[0], NumAV):
            idx = int(args[0].value)
            if 0 <= idx < len(items):
                return items[idx]
        if len(items) == 1:
            return items[0]
        return alt(*[to_term(i) for i in items])

    @model.register(_LISTS, ("size", "indexOf"))
    def list_size(ctx, site, expr, base, args):
        items = _items(base)
        if isinstance(base, ObjAV) and base.get("items") is not None:
            return NumAV(len(items))
        return Unknown("int")

    @model.register(_LISTS, ("contains", "isEmpty", "remove"))
    def list_preds(ctx, site, expr, base, args):
        return Unknown("bool")

    @model.register(_LISTS, "iterator")
    def list_iter(ctx, site, expr, base, args):
        return ObjAV("iterator", (("items", _items(base)), ("source", base)))

    @model.register("java.util.Iterator", "hasNext")
    def iter_hasnext(ctx, site, expr, base, args):
        return Unknown("bool")

    @model.register("java.util.Iterator", "next")
    def iter_next(ctx, site, expr, base, args):
        items = _items(base)
        if not items:
            return Unknown("any")
        if len(items) == 1:
            return items[0]
        return alt(*[to_term(i) for i in items])

    @model.register(_MAPS, "<init>")
    def map_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=ObjAV("map", ()))

    @model.register(_MAPS, "put")
    def map_put(ctx, site, expr, base, args):
        if not isinstance(base, ObjAV) or len(args) < 2:
            return UNHANDLED
        key = to_term(args[0])
        from ..signature.lang import Const

        key_name = key.text if isinstance(key, Const) else f"?{len(base.attrs)}"
        return Effect(result=None, new_base=base.put(f"entry:{key_name}", args[1]))

    @model.register(_MAPS, "get")
    def map_get(ctx, site, expr, base, args):
        from ..signature.lang import Const

        if isinstance(base, ObjAV) and args:
            key = to_term(args[0])
            if isinstance(key, Const):
                found = base.get(f"entry:{key.text}")
                if found is not None:
                    return found
        return Unknown("any")

    @model.register(_MAPS, ("containsKey", "isEmpty"))
    def map_preds(ctx, site, expr, base, args):
        return Unknown("bool")

    @model.register(_MAPS, "size")
    def map_size(ctx, site, expr, base, args):
        return Unknown("int")


def map_entries(obj) -> list[tuple[str, object]]:
    """Extract (key, value) pairs accumulated in a map ObjAV — used by the
    HTTP models for form/query encoding."""
    if not isinstance(obj, ObjAV) or obj.class_name != "map":
        return []
    out = []
    for name, value in obj.attrs:
        if name.startswith("entry:"):
            out.append((name[len("entry:"):], value))
    return out


def list_items(obj) -> tuple:
    return _items(obj)


__all__ = ["list_items", "map_entries", "register"]
