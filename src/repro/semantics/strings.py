"""Semantic models for string and string-builder APIs.

These are the low-level models everything else reduces to (§4): string
literals, concatenation, formatting and encoding are how request URIs and
query strings are assembled in practice.
"""

from __future__ import annotations

import re

from ..signature.lang import Const, Term, Unknown, concat
from .avals import NULL_AV, NullAV, NumAV, to_term
from .model import Effect, SemanticModel, UNHANDLED

_BUILDERS = ("java.lang.StringBuilder", "java.lang.StringBuffer")


def register(model: SemanticModel) -> None:
    @model.register(_BUILDERS, "<init>")
    def sb_init(ctx, site, expr, base, args):
        seed = to_term(args[0]) if args else Const("")
        return Effect(result=None, new_base=seed)

    @model.register(_BUILDERS, ("append", "insert"))
    def sb_append(ctx, site, expr, base, args):
        base_term = to_term(base)
        if expr.sig.name == "insert" and len(args) >= 2:
            # insert(index, value): position is rarely static — approximate
            # by appending, which preserves the keyword set.
            new = concat(base_term, to_term(args[1]))
        else:
            new = concat(base_term, to_term(args[0]) if args else Const(""))
        return Effect(result=new, new_base=new)

    @model.register(_BUILDERS, "toString")
    def sb_tostring(ctx, site, expr, base, args):
        return to_term(base)

    @model.register(_BUILDERS, ("setLength", "reverse", "deleteCharAt"))
    def sb_mutate_opaque(ctx, site, expr, base, args):
        return Effect(result=None, new_base=Unknown("str"))

    # -- java.lang.String ---------------------------------------------------
    @model.register("java.lang.String", "concat")
    def str_concat(ctx, site, expr, base, args):
        return concat(to_term(base), to_term(args[0]))

    @model.register("java.lang.String", ("valueOf",))
    def str_valueof(ctx, site, expr, base, args):
        return to_term(args[0]) if args else Const("")

    @model.register("java.lang.String", "format")
    def str_format(ctx, site, expr, base, args):
        """``String.format(fmt, a, b, ...)`` with a constant format string
        expands %s/%d/%f holes to the argument terms."""
        if not args:
            return UNHANDLED
        fmt = args[0]
        rest = list(args[1:])
        fmt_term = to_term(fmt)
        if not isinstance(fmt_term, Const):
            return Unknown("str")
        parts: list[Term] = []
        pos = 0
        for match in re.finditer(r"%[sdif]", fmt_term.text):
            parts.append(Const(fmt_term.text[pos : match.start()]))
            parts.append(to_term(rest.pop(0)) if rest else Unknown("str"))
            pos = match.end()
        parts.append(Const(fmt_term.text[pos:]))
        return concat(*parts)

    @model.register("java.lang.String", ("trim", "intern"))
    def str_identityish(ctx, site, expr, base, args):
        return to_term(base)

    @model.register("java.lang.String", ("toLowerCase", "toUpperCase"))
    def str_case(ctx, site, expr, base, args):
        term = to_term(base)
        if isinstance(term, Const):
            text = term.text.lower() if expr.sig.name == "toLowerCase" else term.text.upper()
            return Const(text)
        return term

    @model.register("java.lang.String", "replace")
    def str_replace(ctx, site, expr, base, args):
        term = to_term(base)
        a, b = to_term(args[0]), to_term(args[1])
        if isinstance(term, Const) and isinstance(a, Const) and isinstance(b, Const):
            return Const(term.text.replace(a.text, b.text))
        return Unknown("str")

    @model.register("java.lang.String", "substring")
    def str_substring(ctx, site, expr, base, args):
        term = to_term(base)
        if isinstance(term, Const) and all(isinstance(a, NumAV) for a in args):
            idx = [int(a.value) for a in args]
            try:
                return Const(term.text[idx[0] : idx[1]] if len(idx) > 1 else term.text[idx[0] :])
            except (IndexError, ValueError):
                return Unknown("str")
        return Unknown("str")

    @model.register("java.lang.String", ("equals", "equalsIgnoreCase", "startsWith",
                                          "endsWith", "contains", "isEmpty", "matches"))
    def str_predicates(ctx, site, expr, base, args):
        return Unknown("bool")

    @model.register("java.lang.String", ("length", "indexOf", "lastIndexOf", "hashCode"))
    def str_ints(ctx, site, expr, base, args):
        return Unknown("int")

    @model.register("java.lang.String", "split")
    def str_split(ctx, site, expr, base, args):
        return Unknown("any")

    @model.register("java.lang.String", ("getBytes",))
    def str_bytes(ctx, site, expr, base, args):
        return to_term(base)  # byte content carries the same signature

    @model.register("java.lang.String", "<init>")
    def str_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=to_term(args[0]) if args else Const(""))

    # -- boxing / number formatting -----------------------------------------
    @model.register(
        ("java.lang.Integer", "java.lang.Long", "java.lang.Double", "java.lang.Float",
         "java.lang.Boolean"),
        ("toString", "valueOf"),
    )
    def box_tostring(ctx, site, expr, base, args):
        if args:
            return to_term(args[0])
        return to_term(base)

    @model.register(
        ("java.lang.Integer", "java.lang.Long"), ("parseInt", "parseLong")
    )
    def parse_int(ctx, site, expr, base, args):
        term = to_term(args[0]) if args else None
        if isinstance(term, Const):
            try:
                return NumAV(int(term.text))
            except ValueError:
                pass
        if isinstance(term, Unknown):
            return Unknown("int", origin=term.origin)
        return Unknown("int")

    # -- encoders -------------------------------------------------------------
    @model.register("java.net.URLEncoder", "encode")
    def url_encode(ctx, site, expr, base, args):
        # Encoding transforms only reserved characters; for signature
        # purposes the value is unchanged (the paper's Diode example keeps
        # URLEncoder.encode(query) as a wildcard hole in the URI).
        term = to_term(args[0])
        if isinstance(term, Const):
            from urllib.parse import quote_plus

            return Const(quote_plus(term.text))
        return term

    @model.register("java.net.URLDecoder", "decode")
    def url_decode(ctx, site, expr, base, args):
        return to_term(args[0])

    @model.register("android.util.Base64", ("encodeToString", "encode"))
    def base64_encode(ctx, site, expr, base, args):
        inner = to_term(args[0]) if args else None
        origin = inner.origin if isinstance(inner, Unknown) else None
        return Unknown("str", origin=origin)

    @model.register("java.util.UUID", "randomUUID")
    def uuid(ctx, site, expr, base, args):
        return Unknown("str", origin="device")

    @model.register("java.util.UUID", "toString")
    def uuid_str(ctx, site, expr, base, args):
        return to_term(base)

    @model.register("java.lang.System", ("currentTimeMillis", "nanoTime"))
    def now(ctx, site, expr, base, args):
        return Unknown("int", origin="clock")

    @model.register("java.lang.Math", ("random",))
    def rand(ctx, site, expr, base, args):
        return Unknown("float", origin="random")

    @model.register("java.util.Random", ("nextInt", "nextLong"))
    def randint(ctx, site, expr, base, args):
        return Unknown("int", origin="random")

    @model.register("java.util.Random", "<init>")
    def rand_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=Unknown("any"))


__all__ = ["register"]
