"""Semantic models for ``org.apache.http`` — request objects, entities and
the ``HttpClient.execute`` demarcation point."""

from __future__ import annotations

from ..signature.lang import Const, Term, Unknown, concat
from .avals import ObjAV, RequestAV, RespRef, to_term
from .model import Effect, SemanticModel, UNHANDLED

_METHOD_CLASSES = {
    "org.apache.http.client.methods.HttpGet": "GET",
    "org.apache.http.client.methods.HttpPost": "POST",
    "org.apache.http.client.methods.HttpPut": "PUT",
    "org.apache.http.client.methods.HttpDelete": "DELETE",
    "org.apache.http.client.methods.HttpHead": "HEAD",
}

_REQUEST_CLASSES = tuple(_METHOD_CLASSES) + (
    "org.apache.http.client.methods.HttpUriRequest",
    "org.apache.http.client.methods.HttpRequestBase",
)

_CLIENTS = (
    "org.apache.http.client.HttpClient",
    "org.apache.http.impl.client.DefaultHttpClient",
    "org.apache.http.impl.client.AbstractHttpClient",
    "android.net.http.AndroidHttpClient",
)


def _entity_body(entity) -> tuple[Term | None, str | None]:
    if isinstance(entity, ObjAV) and entity.class_name == "entity":
        value = entity.get("value")
        return (to_term(value) if value is not None else None), entity.get("mime")
    if entity is None:
        return None, None
    return to_term(entity), None


def register(model: SemanticModel) -> None:
    @model.register(tuple(_METHOD_CLASSES), "<init>")
    def request_init(ctx, site, expr, base, args):
        method = _METHOD_CLASSES[expr.sig.class_name]
        uri = to_term(args[0]) if args else Unknown("url")
        return Effect(
            result=None,
            new_base=RequestAV(methods=frozenset({method}), uri=uri),
        )

    @model.register(_REQUEST_CLASSES, "setURI")
    def set_uri(ctx, site, expr, base, args):
        if isinstance(base, RequestAV):
            from dataclasses import replace

            return Effect(result=None, new_base=replace(base, uri=to_term(args[0])))
        return UNHANDLED

    @model.register(_REQUEST_CLASSES, ("setHeader", "addHeader"))
    def set_header(ctx, site, expr, base, args):
        if isinstance(base, RequestAV) and len(args) >= 2:
            name = to_term(args[0])
            key = name.text if isinstance(name, Const) else "*"
            return Effect(result=None, new_base=base.with_header(key, to_term(args[1])))
        return UNHANDLED

    @model.register(_REQUEST_CLASSES, "setEntity")
    def set_entity(ctx, site, expr, base, args):
        if isinstance(base, RequestAV) and args:
            from dataclasses import replace

            body, mime = _entity_body(args[0])
            origins = frozenset()
            if isinstance(args[0], ObjAV):
                origins = args[0].get("origins", frozenset()) or frozenset()
            return Effect(
                result=None,
                new_base=replace(base, body=body, mime=mime, body_origins=origins),
            )
        return UNHANDLED

    # -- entities ---------------------------------------------------------
    @model.register("org.apache.http.entity.StringEntity", "<init>")
    def string_entity(ctx, site, expr, base, args):
        value = to_term(args[0]) if args else Const("")
        return Effect(result=None, new_base=ObjAV("entity", (("value", value),)))

    @model.register("org.apache.http.client.entity.UrlEncodedFormEntity", "<init>")
    def form_entity(ctx, site, expr, base, args):
        """Form entity over a List<NameValuePair>: encode k=v&k=v."""
        from .containers import list_items

        parts: list[Term] = []
        for item in list_items(args[0]) if args else ():
            if isinstance(item, ObjAV) and item.class_name == "pair":
                if parts:
                    parts.append(Const("&"))
                parts.append(to_term(item.get("k", Const("?"))))
                parts.append(Const("="))
                parts.append(to_term(item.get("v", Unknown("str"))))
            else:
                parts.append(Unknown("str"))
        body = concat(*parts) if parts else Unknown("str")
        return Effect(
            result=None,
            new_base=ObjAV(
                "entity",
                (("value", body), ("mime", "application/x-www-form-urlencoded")),
            ),
        )

    @model.register("org.apache.http.message.BasicNameValuePair", "<init>")
    def pair_init(ctx, site, expr, base, args):
        k = to_term(args[0]) if args else Const("?")
        v = to_term(args[1]) if len(args) > 1 else Unknown("str")
        return Effect(result=None, new_base=ObjAV("pair", (("k", k), ("v", v))))

    # -- the demarcation point ------------------------------------------------
    @model.register(_CLIENTS, "execute")
    def client_execute(ctx, site, expr, base, args):
        request = args[0] if args else None
        if not isinstance(request, RequestAV):
            request = RequestAV(uri=to_term(request) if request is not None else Unknown("url"))
        return ctx.record_transaction(site, request)

    @model.register(_CLIENTS, "<init>")
    def client_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=ObjAV("httpclient"))

    @model.register("android.net.http.AndroidHttpClient", "newInstance")
    def client_new(ctx, site, expr, base, args):
        return ObjAV("httpclient")

    # -- response plumbing --------------------------------------------------------
    @model.register("org.apache.http.HttpResponse", ("getEntity",))
    def get_entity(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            return base
        return UNHANDLED

    @model.register("org.apache.http.HttpResponse", "getStatusLine")
    def status_line(ctx, site, expr, base, args):
        return ObjAV("statusline")

    @model.register("org.apache.http.StatusLine", "getStatusCode")
    def status_code(ctx, site, expr, base, args):
        return Unknown("int")

    @model.register("org.apache.http.HttpEntity", ("getContent", "getContentLength"))
    def entity_content(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            if expr.sig.name == "getContentLength":
                return Unknown("int")
            return base
        return UNHANDLED

    @model.register("org.apache.http.util.EntityUtils", "toString")
    def entity_to_string(ctx, site, expr, base, args):
        if args and isinstance(args[0], RespRef):
            return args[0]
        return UNHANDLED

    # -- stream readers commonly wrapped around getContent() -------------------
    @model.register(
        ("java.io.InputStreamReader", "java.io.BufferedReader"), "<init>"
    )
    def reader_init(ctx, site, expr, base, args):
        if args and isinstance(args[0], RespRef):
            return Effect(result=None, new_base=args[0])
        return Effect(result=None, new_base=to_term(args[0]) if args else Unknown("any"))

    @model.register("java.io.BufferedReader", "readLine")
    def read_line(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            return base
        return UNHANDLED

    @model.register(("java.io.InputStream",), "read")
    def stream_read(ctx, site, expr, base, args):
        return Unknown("int")


__all__ = ["register"]
