"""Semantic models for JSON libraries (§4: "eight XML and JSON APIs,
including org.json, com.google.gson, ... com.fasterxml.jackson, and
supports reflection-based nested json serialization").

Two directions:

* **Request side** — ``JSONObject.put`` builds a
  :class:`~repro.signature.lang.JsonObject` tree that becomes the request
  body when serialised.
* **Response side** — accessor calls (``getString("relay")``) on a
  response-derived object *record the accessed path* on the response
  accumulator and return a provenance-tagged unknown; the accumulated
  access tree is the response-body signature.
"""

from __future__ import annotations

from ..signature.lang import Const, JsonArray, JsonObject, Term, Unknown
from .avals import AppObjAV, NumAV, ObjAV, RespRef, to_term
from .model import Effect, SemanticModel, UNHANDLED

_LEAF_KINDS = {
    "getString": "str",
    "optString": "str",
    "getInt": "int",
    "optInt": "int",
    "getLong": "int",
    "optLong": "int",
    "getDouble": "float",
    "optDouble": "float",
    "getBoolean": "bool",
    "optBoolean": "bool",
}
_NODE_GETTERS = {"getJSONObject", "optJSONObject", "getJSONArray", "optJSONArray",
                 "get", "opt"}


def _key_of(args) -> object:
    if not args:
        return "?"
    key = to_term(args[0])
    if isinstance(key, Const):
        return key.text
    if isinstance(args[0], NumAV):
        return "[]"
    return "*"


def register(model: SemanticModel) -> None:
    # ---------------------------------------------------------------- org.json
    @model.register("org.json.JSONObject", "<init>")
    def jobj_init(ctx, site, expr, base, args):
        if args:
            src = args[0]
            if isinstance(src, RespRef):
                ctx.mark_response_kind(src, "json")
                return Effect(result=None, new_base=src)
            src_term = to_term(src)
            if isinstance(src_term, Unknown) and src_term.origin:
                return Effect(result=None, new_base=Unknown("any", origin=src_term.origin))
        return Effect(result=None, new_base=JsonObject(()))

    @model.register("org.json.JSONArray", "<init>")
    def jarr_init(ctx, site, expr, base, args):
        if args and isinstance(args[0], RespRef):
            ctx.mark_response_kind(args[0], "json")
            return Effect(result=None, new_base=args[0].child("[]"))
        return Effect(result=None, new_base=JsonArray(()))

    @model.register(("org.json.JSONObject",), ("put", "putOpt", "accumulate"))
    def jobj_put(ctx, site, expr, base, args):
        if isinstance(base, JsonObject) and len(args) >= 2:
            new = base.with_entry(to_term(args[0]), to_term(args[1]))
            return Effect(result=new, new_base=new)
        return UNHANDLED

    @model.register("org.json.JSONArray", "put")
    def jarr_put(ctx, site, expr, base, args):
        if isinstance(base, JsonArray) and args:
            new = JsonArray(base.fixed + (to_term(args[-1]),), base.elem)
            return Effect(result=new, new_base=new)
        return UNHANDLED

    @model.register(
        ("org.json.JSONObject", "org.json.JSONArray"),
        tuple(_LEAF_KINDS) + tuple(_NODE_GETTERS) + ("has", "isNull", "length", "names", "toString", "keys"),
    )
    def json_access(ctx, site, expr, base, args):
        name = expr.sig.name
        # -- response side: record the access -----------------------------
        if isinstance(base, RespRef):
            if name == "toString":
                return Unknown("str", origin=base.origin_tag())
            if name == "length":
                ctx.record_access(base.child("[]"))
                return Unknown("int", origin=base.origin_tag())
            if name in ("keys", "names"):
                ctx.record_access(base.child("*"))
                return Unknown("any", origin=base.origin_tag())
            key = _key_of(args)
            child = base.child(key)
            if name in _LEAF_KINDS:
                ctx.record_access(child, _LEAF_KINDS[name])
                return Unknown(_LEAF_KINDS[name], origin=child.origin_tag())
            if name in ("has", "isNull"):
                return Unknown("bool")
            # structural getter
            if name in ("getJSONArray", "optJSONArray"):
                node = child.child("[]")
                ctx.record_access(child)
                return RespRef(child.accs, child.path)
            ctx.record_access(child)
            return child
        # -- request side: read back from a tree under construction --------
        if isinstance(base, JsonObject):
            if name == "toString":
                return base
            if name in _LEAF_KINDS or name in _NODE_GETTERS:
                key = _key_of(args)
                found = base.get(key) if isinstance(key, str) else None
                return found if found is not None else Unknown("any")
            if name == "length":
                return Unknown("int")
            return Unknown("any")
        if isinstance(base, JsonArray):
            if name == "toString":
                return base
            if name == "length":
                return NumAV(len(base.fixed)) if base.elem is None else Unknown("int")
            if args and isinstance(args[0], NumAV):
                idx = int(args[0].value)
                if 0 <= idx < len(base.fixed):
                    return base.fixed[idx]
            if base.elem is not None:
                return base.elem
            return Unknown("any")
        return UNHANDLED

    # The JSONArray index accessors share json_access via the tuple above;
    # getJSONObject(int) on a RespRef array needs the "[]" path hop:
    @model.register("org.json.JSONArray", ("getJSONObject", "optJSONObject", "getString", "getInt"))
    def jarr_index(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            child = base.child("[]")
            name = expr.sig.name
            if name in _LEAF_KINDS:
                ctx.record_access(child, _LEAF_KINDS[name])
                return Unknown(_LEAF_KINDS[name], origin=child.origin_tag())
            ctx.record_access(child)
            return child
        return json_access(ctx, site, expr, base, args)

    # ------------------------------------------------------------------- gson
    @model.register(("com.google.gson.Gson",), "<init>")
    def gson_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=ObjAV("gson"))

    @model.register("com.google.gson.Gson", "toJson")
    def gson_tojson(ctx, site, expr, base, args):
        """Reflection-based serialisation: an app object's fields become the
        JSON tree (nested app classes recurse)."""
        if args and isinstance(args[0], AppObjAV):
            return _reflect_serialize(ctx, sorted(args[0].classes)[0], depth=0)
        return to_term(args[0]) if args else UNHANDLED

    @model.register("com.google.gson.Gson", "fromJson")
    def gson_fromjson(ctx, site, expr, base, args):
        """Reflection-based binding: reading a response into a class records
        every mapped field as an accessed path."""
        if len(args) >= 2 and isinstance(args[0], RespRef):
            ctx.mark_response_kind(args[0], "json")
            from ..ir.values import ClassConst

            cls_name = None
            cls_arg = args[1]
            if isinstance(cls_arg, ObjAV) and cls_arg.class_name == "class":
                cls_name = cls_arg.get("name")
            if cls_name:
                return _reflect_bind(ctx, args[0], str(cls_name), depth=0)
            ctx.record_access(args[0].child("*"))
            return Unknown("any", origin=args[0].origin_tag())
        return UNHANDLED

    # ----------------------------------------------------------------- jackson
    @model.register("com.fasterxml.jackson.databind.ObjectMapper", "<init>")
    def jackson_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=ObjAV("jackson"))

    @model.register("com.fasterxml.jackson.databind.ObjectMapper", "readValue")
    def jackson_read(ctx, site, expr, base, args):
        return gson_fromjson(ctx, site, expr, base, args)

    @model.register("com.fasterxml.jackson.databind.ObjectMapper", "readTree")
    def jackson_readtree(ctx, site, expr, base, args):
        if args and isinstance(args[0], RespRef):
            ctx.mark_response_kind(args[0], "json")
            return args[0]
        return UNHANDLED

    @model.register("com.fasterxml.jackson.databind.ObjectMapper", "writeValueAsString")
    def jackson_write(ctx, site, expr, base, args):
        if args and isinstance(args[0], AppObjAV):
            return _reflect_serialize(ctx, sorted(args[0].classes)[0], depth=0)
        return to_term(args[0]) if args else UNHANDLED

    @model.register("com.fasterxml.jackson.databind.JsonNode",
                    ("get", "path", "asText", "asInt", "asDouble", "asBoolean"))
    def jackson_node(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            name = expr.sig.name
            if name in ("get", "path"):
                child = base.child(_key_of(args))
                ctx.record_access(child)
                return child
            kind = {"asText": "str", "asInt": "int", "asDouble": "float",
                    "asBoolean": "bool"}[name]
            ctx.record_access(base, kind)
            return Unknown(kind, origin=base.origin_tag())
        return UNHANDLED


def _reflect_serialize(ctx, class_name: str, depth: int) -> Term:
    """Build a JsonObject from an app class's declared fields (gson-style)."""
    if depth > 4:
        return Unknown("any")
    entries = []
    for cname, cls_fields, f_type in _fields_of(ctx, class_name):
        if ctx_has_class(ctx, f_type):
            entries.append((Const(cls_fields), _reflect_serialize(ctx, f_type, depth + 1)))
        else:
            entries.append((Const(cls_fields), Unknown(_kind_for(f_type))))
    return JsonObject(tuple(entries))


def _reflect_bind(ctx, ref: RespRef, class_name: str, depth: int):
    if depth > 4:
        return Unknown("any", origin=ref.origin_tag())
    attrs = []
    for cname, f_name, f_type in _fields_of(ctx, class_name):
        child = ref.child(f_name)
        if ctx_has_class(ctx, f_type):
            ctx.record_access(child)
            attrs.append((f_name, _reflect_bind(ctx, child, f_type, depth + 1)))
        else:
            kind = _kind_for(f_type)
            ctx.record_access(child, kind)
            attrs.append((f_name, Unknown(kind, origin=child.origin_tag())))
    return ObjAV("bound:" + class_name, tuple(attrs))


def _fields_of(ctx, class_name: str):
    program = getattr(ctx, "program", None)
    if program is None:
        return []
    out = []
    cls = program.class_of(class_name)
    while cls is not None:
        for f in cls.fields.values():
            out.append((cls.name, f.name, f.type.name))
        cls = program.class_of(cls.superclass) if cls.superclass else None
    return out


def ctx_has_class(ctx, name: str) -> bool:
    program = getattr(ctx, "program", None)
    return program is not None and program.has_class(name)


def _kind_for(type_name: str) -> str:
    if type_name in ("int", "long", "short", "byte"):
        return "int"
    if type_name in ("float", "double"):
        return "float"
    if type_name == "boolean":
        return "bool"
    if type_name == "java.lang.String":
        return "str"
    return "any"


__all__ = ["register"]
