"""Semantic-model registry and the interpreter-facing plugin API.

Paper §3.2: "Extractocol uses semantic models for a set of Android and Java
APIs that are commonly used for HTTP protocol processing.  The model
captures the semantics of each API's operations and its parameters. ...
To be extensible, we also provide an easy plugin for adding new API
semantics."

A *handler* models one library method.  It receives the interpreter
services, the call expression and the abstract base/argument values, and
returns either an abstract value (the call result), an :class:`Effect`
(result plus a rebinding of the receiver, for fluent mutators like
``StringBuilder.append``), or :data:`UNHANDLED`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..ir.statements import StmtRef
from ..ir.values import InvokeExpr
from .avals import AVal, RequestAV, RespRef

#: Sentinel: the handler does not model this call after all.
UNHANDLED = object()


@dataclass
class Effect:
    """Handler outcome: ``result`` is the call's value; ``new_base``
    (when set) rebinds the receiver local — how mutation of builder-style
    objects is modeled without a heap."""

    result: AVal | None = None
    new_base: AVal | None = None


class InterpServices(Protocol):
    """What handlers may ask of the signature interpreter."""

    def record_transaction(
        self, site: StmtRef, request: RequestAV, *, response_kind: str = "unknown"
    ) -> RespRef | None:
        """Register a DP arrival; returns the response reference (or None
        for response-less DPs such as MediaPlayer)."""

    def acc_of(self, acc_id: int): ...

    def mark_response_kind(self, ref: RespRef, kind: str) -> None: ...

    def record_access(self, ref: RespRef, leaf_kind: str | None = None) -> None: ...

    def record_consumer(self, ref_or_term, consumer: str) -> None: ...

    def call_app_method(self, class_name: str, method_name: str, args: list[AVal],
                        this: AVal | None = None) -> AVal | None:
        """Evaluate an app callback (listener) inline."""

    def resource_string(self, rid: int) -> str | None: ...

    def db_store(self, table: str, column: str, value: AVal) -> None: ...

    def db_load(self, table: str, column: str | None = None) -> AVal: ...

    def pref_store(self, key: str, value: AVal) -> None: ...

    def pref_load(self, key: str) -> AVal: ...

    def conn_new(self, url_term) -> int: ...

    def conn_of(self, conn_id: int): ...

    def class_hierarchy_of(self, class_name: str) -> set[str]: ...


Handler = Callable[..., object]


class SemanticModel:
    """Registry mapping library (class, method) pairs to handlers."""

    def __init__(self) -> None:
        self._handlers: dict[tuple[str, str], Handler] = {}
        #: framework dispatch: calls on app objects whose *library ancestor*
        #: defines the method (AsyncTask.execute, Thread.start, ...)
        self._dispatch: dict[tuple[str, str], Handler] = {}

    # -- registration ------------------------------------------------------
    def register(self, class_names: str | tuple[str, ...], method_names: str | tuple[str, ...]):
        classes = (class_names,) if isinstance(class_names, str) else class_names
        methods = (method_names,) if isinstance(method_names, str) else method_names

        def deco(fn: Handler) -> Handler:
            for c in classes:
                for m in methods:
                    self._handlers[(c, m)] = fn
            return fn

        return deco

    def register_dispatch(self, base_classes: str | tuple[str, ...], method_names: str | tuple[str, ...]):
        classes = (base_classes,) if isinstance(base_classes, str) else base_classes
        methods = (method_names,) if isinstance(method_names, str) else method_names

        def deco(fn: Handler) -> Handler:
            for c in classes:
                for m in methods:
                    self._dispatch[(c, m)] = fn
            return fn

        return deco

    # -- lookup ----------------------------------------------------------------
    def lookup(self, class_name: str, method_name: str) -> Handler | None:
        return self._handlers.get((class_name, method_name))

    def lookup_dispatch(self, ancestors: set[str], method_name: str) -> Handler | None:
        for ancestor in ancestors:
            h = self._dispatch.get((ancestor, method_name))
            if h is not None:
                return h
        return None

    def modeled_classes(self) -> set[str]:
        return {c for c, _ in self._handlers}

    def merge(self, other: "SemanticModel") -> None:
        self._handlers.update(other._handlers)
        self._dispatch.update(other._dispatch)


_DEFAULT: SemanticModel | None = None


def default_model() -> SemanticModel:
    """The built-in model covering the paper's API set (§4)."""
    global _DEFAULT
    if _DEFAULT is None:
        model = SemanticModel()
        from . import android as _android
        from . import async_model as _async
        from . import containers as _containers
        from . import http_apache as _apache
        from . import http_okhttp as _okhttp
        from . import http_urlconn as _urlconn
        from . import http_volley as _volley
        from . import json_model as _json
        from . import strings as _strings
        from . import xml_model as _xml

        for module in (
            _strings,
            _containers,
            _json,
            _xml,
            _apache,
            _urlconn,
            _volley,
            _okhttp,
            _android,
            _async,
        ):
            module.register(model)
        _DEFAULT = model
    return _DEFAULT


__all__ = [
    "Effect",
    "Handler",
    "InterpServices",
    "SemanticModel",
    "UNHANDLED",
    "default_model",
]
