"""Semantic models of Android/Java APIs used for HTTP protocol processing."""

from .avals import (
    AVal,
    AppObjAV,
    NULL_AV,
    NullAV,
    NumAV,
    ObjAV,
    RequestAV,
    RespRef,
    ResponseAccumulator,
    canon,
    merge_avals,
    to_term,
)
from .async_model import (
    ASYNC_CALLBACKS,
    CallbackInfo,
    compute_event_roots,
    discover_callbacks,
)
from .model import Effect, InterpServices, SemanticModel, UNHANDLED, default_model

__all__ = [name for name in dir() if not name.startswith("_")]
