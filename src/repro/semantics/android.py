"""Semantic models for Android platform APIs: resources, SQLite, shared
preferences, media, location, UI inputs and intents.

These are the models behind the paper's richest results:

* resource strings resolve to their constant values (TED api-key, §5.2),
* the SQLite model preserves provenance through store→query flows, which is
  how TED's transactions #7/#8 ("thumbnail/video URI from DB") acquire
  their response origins (Table 4),
* ``MediaPlayer.setDataSource`` both opens a new GET transaction and marks
  the source response as consumed by the media player,
* intent extras return *untagged* unknowns — the flows Extractocol cannot
  resolve (§3.4), surfacing as wildcard-only signatures.
"""

from __future__ import annotations

from ..signature.lang import Const, Unknown
from .avals import NumAV, ObjAV, RequestAV, RespRef, to_term
from .model import Effect, SemanticModel, UNHANDLED

_CONTEXTS = ("android.app.Activity", "android.content.Context",
             "android.app.Service", "android.app.Application")


def register(model: SemanticModel) -> None:
    # -- resources -----------------------------------------------------------
    @model.register(_CONTEXTS, "getResources")
    def get_resources(ctx, site, expr, base, args):
        return ObjAV("resources")

    @model.register(("android.content.res.Resources",) + _CONTEXTS, "getString")
    def get_string(ctx, site, expr, base, args):
        if args and isinstance(args[0], NumAV):
            value = ctx.resource_string(int(args[0].value))
            if value is not None:
                return Const(value)
        return Unknown("str", origin="resource")

    # -- shared preferences ---------------------------------------------------
    @model.register(_CONTEXTS, "getSharedPreferences")
    def get_prefs(ctx, site, expr, base, args):
        return ObjAV("prefs")

    @model.register("android.content.SharedPreferences", ("getString", "getInt",
                                                           "getBoolean", "getLong"))
    def prefs_get(ctx, site, expr, base, args):
        key = to_term(args[0]) if args else Const("?")
        if isinstance(key, Const):
            stored = ctx.pref_load(key.text)
            if stored is not None:
                return stored
        return Unknown("str", origin="preferences")

    @model.register("android.content.SharedPreferences", "edit")
    def prefs_edit(ctx, site, expr, base, args):
        return ObjAV("prefs_editor")

    @model.register("android.content.SharedPreferences$Editor",
                    ("putString", "putInt", "putBoolean", "putLong"))
    def prefs_put(ctx, site, expr, base, args):
        if len(args) >= 2:
            key = to_term(args[0])
            if isinstance(key, Const):
                ctx.pref_store(key.text, args[1])
        return base

    @model.register("android.content.SharedPreferences$Editor", ("apply", "commit"))
    def prefs_commit(ctx, site, expr, base, args):
        return None

    # -- SQLite ---------------------------------------------------------------
    @model.register("android.content.ContentValues", "<init>")
    def cv_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=ObjAV("contentvalues"))

    @model.register("android.content.ContentValues", "put")
    def cv_put(ctx, site, expr, base, args):
        if isinstance(base, ObjAV) and len(args) >= 2:
            key = to_term(args[0])
            name = key.text if isinstance(key, Const) else "*"
            return Effect(result=None, new_base=base.put(f"col:{name}", args[1]))
        return UNHANDLED

    @model.register("android.database.sqlite.SQLiteDatabase",
                    ("insert", "insertOrThrow", "replace", "update",
                     "insertWithOnConflict"))
    def db_insert(ctx, site, expr, base, args):
        table_term = to_term(args[0]) if args else Const("?")
        table = table_term.text if isinstance(table_term, Const) else "*"
        for arg in args[1:]:
            if isinstance(arg, ObjAV) and arg.class_name == "contentvalues":
                for key, value in arg.attrs:
                    if key.startswith("col:"):
                        ctx.db_store(table, key[len("col:"):], value)
        return Unknown("int")

    @model.register("android.database.sqlite.SQLiteDatabase", ("query", "rawQuery"))
    def db_query(ctx, site, expr, base, args):
        table = "*"
        columns: tuple[str, ...] = ()
        term = to_term(args[0]) if args else None
        if isinstance(term, Const):
            text = term.text
            if expr.sig.name == "rawQuery":
                # crude "SELECT <cols> FROM <table>" extraction
                import re as _re

                m = _re.match(r"select\s+(.*?)\s+from\s+(\w+)", text,
                              _re.IGNORECASE)
                if m:
                    table = m.group(2)
                    if m.group(1).strip() != "*":
                        columns = tuple(
                            c.strip() for c in m.group(1).split(",")
                        )
            else:
                table = text
        return ObjAV("cursor", (("table", table), ("columns", columns)))

    @model.register("android.database.Cursor",
                    ("getString", "getInt", "getLong", "getDouble", "getBlob"))
    def cursor_get(ctx, site, expr, base, args):
        if isinstance(base, ObjAV) and base.class_name == "cursor":
            table = str(base.get("table", "*"))
            columns = base.get("columns", ()) or ()
            if columns and args and isinstance(args[0], NumAV):
                idx = int(args[0].value)
                if 0 <= idx < len(columns):
                    return ctx.db_load(table, columns[idx])
            if len(columns) == 1:
                return ctx.db_load(table, columns[0])
            return ctx.db_load(table)
        return Unknown("any", origin="database")

    @model.register("android.database.Cursor",
                    ("moveToFirst", "moveToNext", "isAfterLast", "close",
                     "getColumnIndex", "getCount"))
    def cursor_misc(ctx, site, expr, base, args):
        name = expr.sig.name
        if name in ("moveToFirst", "moveToNext", "isAfterLast"):
            return Unknown("bool")
        if name in ("getColumnIndex", "getCount"):
            return Unknown("int")
        return None

    @model.register("android.database.sqlite.SQLiteOpenHelper",
                    ("getWritableDatabase", "getReadableDatabase"))
    def db_open(ctx, site, expr, base, args):
        return ObjAV("sqlitedb")

    # -- media --------------------------------------------------------------------
    @model.register("android.media.MediaPlayer", "<init>")
    def mp_init(ctx, site, expr, base, args):
        return Effect(result=None, new_base=ObjAV("mediaplayer"))

    @model.register("android.media.MediaPlayer", "setDataSource")
    def mp_set_source(ctx, site, expr, base, args):
        """A URL handed to the media player is itself an HTTP GET whose
        response streams into the player (paper Fig. 1, Tables 3-4)."""
        uri = to_term(args[0]) if args else Unknown("url")
        ctx.record_consumer(uri, "media_player")
        request = RequestAV(methods=frozenset({"GET"}), uri=uri)
        ctx.record_transaction(site, request, response_kind="binary",
                               consumer="media_player")
        return None

    @model.register("android.media.MediaPlayer",
                    ("prepare", "prepareAsync", "start", "stop", "release"))
    def mp_misc(ctx, site, expr, base, args):
        return None

    @model.register("android.media.AudioRecord", "read")
    def audio_read(ctx, site, expr, base, args):
        return Unknown("any", origin="microphone")

    @model.register("android.hardware.Camera", "takePicture")
    def camera(ctx, site, expr, base, args):
        return Unknown("any", origin="camera")

    # -- location --------------------------------------------------------------
    @model.register("android.location.LocationManager", "getLastKnownLocation")
    def last_location(ctx, site, expr, base, args):
        return ObjAV("location")

    @model.register("android.location.Location",
                    ("getLatitude", "getLongitude", "getAccuracy"))
    def location_get(ctx, site, expr, base, args):
        return Unknown("float", origin="location")

    # -- UI inputs -----------------------------------------------------------------
    @model.register(("android.widget.EditText", "android.widget.TextView"), "getText")
    def get_text(ctx, site, expr, base, args):
        return Unknown("str", origin="user_input")

    @model.register("android.text.Editable", "toString")
    def editable_tostring(ctx, site, expr, base, args):
        return to_term(base)

    @model.register(("android.widget.Spinner", "android.widget.AdapterView"),
                    "getSelectedItem")
    def selected_item(ctx, site, expr, base, args):
        return Unknown("str", origin="user_input")

    @model.register(("android.widget.TextView", "android.webkit.WebView"),
                    ("setText", "loadData"))
    def ui_consume(ctx, site, expr, base, args):
        """Rendering a response body in the UI marks it consumed: the body
        is processed as text even without structured parsing."""
        for arg in args:
            if isinstance(arg, RespRef):
                ctx.record_access(arg, "str")
                ctx.record_consumer(arg, "ui")
                ctx.mark_response_kind(arg, "text")
            else:
                term = to_term(arg)
                ctx.record_consumer(term, "ui")
        return None

    # -- intents (unmodeled flows — the paper's stated limitation §3.4) -----------
    @model.register("android.content.Intent",
                    ("getStringExtra", "getIntExtra", "getExtras", "getData"))
    def intent_get(ctx, site, expr, base, args):
        return Unknown("str", origin="intent")

    @model.register("android.content.Intent", ("<init>", "putExtra", "setAction"))
    def intent_misc(ctx, site, expr, base, args):
        if expr.sig.name == "<init>":
            return Effect(result=None, new_base=ObjAV("intent"))
        return base

    # -- device identity ---------------------------------------------------------
    @model.register("android.provider.Settings$Secure", "getString")
    def android_id(ctx, site, expr, base, args):
        return Unknown("str", origin="device")

    @model.register("android.os.Build", ())
    def build_noop(ctx, site, expr, base, args):  # pragma: no cover
        return UNHANDLED

    @model.register("android.webkit.WebView", "loadUrl")
    def webview_load(ctx, site, expr, base, args):
        uri = to_term(args[0]) if args else Unknown("url")
        request = RequestAV(methods=frozenset({"GET"}), uri=uri)
        ctx.record_consumer(uri, "webview")
        ctx.record_transaction(site, request, response_kind="binary",
                               consumer="webview")
        return None


__all__ = ["register"]
