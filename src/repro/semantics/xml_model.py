"""Semantic models for XML processing (DOM-style and pull-parser subset).

Response XML formats are inferred from the tags/attributes the app asks
for, mirroring the JSON access-tree approach; the accumulated tree renders
as nested :class:`~repro.signature.lang.XmlElement` (or DTD via
:mod:`repro.signature.dtd`).
"""

from __future__ import annotations

from ..signature.lang import Const, Unknown
from .avals import ObjAV, RespRef, to_term
from .model import Effect, SemanticModel, UNHANDLED


def register(model: SemanticModel) -> None:
    @model.register("javax.xml.parsers.DocumentBuilderFactory", "newInstance")
    def dbf(ctx, site, expr, base, args):
        return ObjAV("dbf")

    @model.register("javax.xml.parsers.DocumentBuilderFactory", "newDocumentBuilder")
    def dbuilder(ctx, site, expr, base, args):
        return ObjAV("dbuilder")

    @model.register("javax.xml.parsers.DocumentBuilder", "parse")
    def dom_parse(ctx, site, expr, base, args):
        if args and isinstance(args[0], RespRef):
            ctx.mark_response_kind(args[0], "xml")
            return args[0]
        return Unknown("any")

    @model.register(
        ("org.w3c.dom.Document", "org.w3c.dom.Element"),
        "getDocumentElement",
    )
    def doc_root(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            return base
        return UNHANDLED

    @model.register(("org.w3c.dom.Document", "org.w3c.dom.Element"),
                    "getElementsByTagName")
    def by_tag(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            tag = to_term(args[0])
            name = tag.text if isinstance(tag, Const) else "*"
            child = base.child(name)
            ctx.record_access(child)
            return child
        return UNHANDLED

    @model.register("org.w3c.dom.NodeList", ("item",))
    def nodelist_item(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            return base
        return UNHANDLED

    @model.register("org.w3c.dom.NodeList", "getLength")
    def nodelist_len(ctx, site, expr, base, args):
        return Unknown("int")

    @model.register(("org.w3c.dom.Element", "org.w3c.dom.Node"), "getAttribute")
    def get_attr(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            name_term = to_term(args[0])
            name = name_term.text if isinstance(name_term, Const) else "*"
            child = base.child("@" + name)
            ctx.record_access(child, "str")
            return Unknown("str", origin=child.origin_tag())
        return UNHANDLED

    @model.register(("org.w3c.dom.Element", "org.w3c.dom.Node"),
                    ("getTextContent", "getNodeValue"))
    def get_text(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            ctx.record_access(base, "str")
            return Unknown("str", origin=base.origin_tag())
        return UNHANDLED

    @model.register(("org.w3c.dom.Element", "org.w3c.dom.Node"), "getFirstChild")
    def first_child(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            return base
        return UNHANDLED

    # -- pull parser (subset) -----------------------------------------------
    @model.register("android.util.Xml", "newPullParser")
    def new_pull(ctx, site, expr, base, args):
        return ObjAV("pullparser")

    @model.register("org.xmlpull.v1.XmlPullParser", "setInput")
    def pull_input(ctx, site, expr, base, args):
        if args and isinstance(args[0], RespRef):
            ctx.mark_response_kind(args[0], "xml")
            return Effect(result=None, new_base=args[0])
        return None

    @model.register("org.xmlpull.v1.XmlPullParser", ("next", "nextTag", "getEventType"))
    def pull_next(ctx, site, expr, base, args):
        return Unknown("int")

    @model.register("org.xmlpull.v1.XmlPullParser", "getName")
    def pull_name(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            return Unknown("str", origin=base.origin_tag())
        return UNHANDLED

    @model.register("org.xmlpull.v1.XmlPullParser", "require")
    def pull_require(ctx, site, expr, base, args):
        """require(type, ns, tag): the app asserts the current tag — record
        the tag as part of the format."""
        if isinstance(base, RespRef) and len(args) >= 3:
            tag = to_term(args[2])
            if isinstance(tag, Const):
                child = base.child(tag.text)
                ctx.record_access(child)
                return Effect(result=None, new_base=child)
        return None

    @model.register("org.xmlpull.v1.XmlPullParser", "nextText")
    def pull_text(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            ctx.record_access(base, "str")
            return Unknown("str", origin=base.origin_tag())
        return UNHANDLED

    @model.register("org.xmlpull.v1.XmlPullParser", "getAttributeValue")
    def pull_attr(ctx, site, expr, base, args):
        if isinstance(base, RespRef):
            name_term = to_term(args[-1]) if args else Const("*")
            name = name_term.text if isinstance(name_term, Const) else "*"
            child = base.child("@" + name)
            ctx.record_access(child, "str")
            return Unknown("str", origin=child.origin_tag())
        return UNHANDLED


__all__ = ["register"]
