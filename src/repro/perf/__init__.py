"""Performance layer: shared memoized program artifacts and parallel fan-out.

:class:`ProgramIndex` materializes per-method analysis artifacts (CFGs,
def-use chains, statement reachability, mention sites, the global field
read/write index) exactly once per program and shares them — thread-safely —
between both taint directions, the :class:`~repro.slicing.slicer.NetworkSlicer`
and the :class:`~repro.signature.builder.SignatureInterpreter`.

:mod:`repro.perf.parallel` provides the deterministic executor helpers the
slicer and the evaluation runner fan out over.
"""

from .index import ProgramIndex, field_key
from .parallel import ordered_map, resolve_workers

__all__ = ["ProgramIndex", "field_key", "ordered_map", "resolve_workers"]
