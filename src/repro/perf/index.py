"""Shared, memoized per-method analysis artifacts.

The serial pipeline recomputes (or independently caches) control-flow
graphs, def-use chains, reachability sets and the heap field index in each
consumer.  :class:`ProgramIndex` is the compute-once variant: every artifact
is keyed by method id, built lazily under a lock, and shared by the taint
engine (both directions), the network slicer's object-aware augmentation and
the signature interpreter.  All artifacts are derived from immutable IR, so
a built entry is valid for the lifetime of the program object.

Reachability is stored as bitmasks (one int per statement; bit ``j`` set
when statement ``j`` is reachable from statement ``i``, reflexively) — the
same relation as ``TaintEngine._reach`` but cheaper to build and to query.
"""

from __future__ import annotations

import threading
from typing import Callable, TypeVar

from ..cfg.callgraph import CallGraph
from ..cfg.cfg import ControlFlowGraph, cfg_of
from ..cfg.dominators import LoopInfo, loop_info, reverse_postorder
from ..ir.method import Method
from ..ir.program import Program
from ..ir.statements import AssignStmt, StmtRef
from ..ir.values import (
    FieldSig,
    InstanceFieldRef,
    Local,
    StaticFieldRef,
    walk_values,
)
from ..taint.defuse import DefUseInfo, LazyDefUse, defuse_of

T = TypeVar("T")

_FIELD_KEYS: dict[FieldSig, tuple[str, str]] = {}


def field_key(f: FieldSig) -> tuple[str, str]:
    """Memoized ``(class, name)`` key for a heap cell (field-based heap
    abstraction) — avoids re-building the tuple in inner propagation loops."""
    key = _FIELD_KEYS.get(f)
    if key is None:
        key = (f.class_name, f.name)
        _FIELD_KEYS[f] = key
    return key


def compute_reach_masks(cfg: ControlFlowGraph, n_statements: int) -> list[int]:
    """Forward statement-level reachability as reflexive bitmasks."""
    succ = cfg.stmt_succ
    reach = [1 << i for i in range(n_statements)]
    changed = True
    while changed:
        changed = False
        for i in range(n_statements - 1, -1, -1):
            acc = reach[i]
            for s in succ.get(i, ()):
                acc |= reach[s]
            if acc != reach[i]:
                reach[i] = acc
                changed = True
    return reach


class ProgramIndex:
    """Thread-safe memo of per-method artifacts plus program-wide indexes.

    Per-method (lazy, built on first request):

    * :meth:`cfg_of` / :meth:`defuse_of` — the CFG and def-use chains
    * :meth:`reach_masks` — statement reachability bitmasks
    * :meth:`mention_sites` — statement indices mentioning each local
      (definition or use), the candidate set for backward region building
    * :meth:`stmt_locals` — per-statement (defined, used) local sets
    * :meth:`loop_info` / :meth:`rpo` — loop structure and traversal order
      for the signature interpreter

    Program-wide (built once): :attr:`field_stores` / :attr:`field_loads`,
    the heap read/write index keyed by :func:`field_key`.
    """

    def __init__(self, program: Program, callgraph: CallGraph | None = None) -> None:
        self.program = program
        self.callgraph = callgraph
        self._lock = threading.RLock()
        self._cfgs: dict[str, ControlFlowGraph] = {}
        self._defuse: dict[str, DefUseInfo] = {}
        self._reach: dict[str, list[int]] = {}
        self._reach_to: dict[str, list[int]] = {}
        self._mentions: dict[str, dict[Local, tuple[int, ...]]] = {}
        self._mention_masks: dict[str, dict[Local, int]] = {}
        self._stmt_locals: dict[str, list[tuple[frozenset, frozenset]]] = {}
        self._loops: dict[str, LoopInfo] = {}
        self._rpo: dict[str, list[int]] = {}
        self._fields: tuple[dict, dict] | None = None

    # ------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Locks don't pickle; everything else — including already-warm
        memo tables — ships as-is, so spawn workers inherit whatever the
        parent built before the pool was created (the index is shipped to
        each worker exactly once)."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------- memo core
    def _memo(
        self, cache: dict[str, T], method: Method, build: Callable[[Method], T]
    ) -> T:
        got = cache.get(method.method_id)
        if got is not None:
            return got
        with self._lock:
            got = cache.get(method.method_id)
            if got is None:
                got = build(method)
                cache[method.method_id] = got
        return got

    # ------------------------------------------------------------ per-method
    def cfg_of(self, method: Method) -> ControlFlowGraph:
        return self._memo(self._cfgs, method, cfg_of)

    def defuse_of(self, method: Method) -> DefUseInfo | LazyDefUse:
        def build(m: Method) -> DefUseInfo | LazyDefUse:
            # reuse the per-statement used-local sets instead of re-walking
            # every value tree, and materialise reaching-defs lazily — taint
            # facts only query a subset of (statement, local) pairs
            uses = [u for _, u in self.stmt_locals(m)]
            return LazyDefUse(m, uses) if uses else defuse_of(m)

        return self._memo(self._defuse, method, build)

    def reach_masks(self, method: Method) -> list[int]:
        def build(m: Method) -> list[int]:
            n = len(m.body.statements) if m.body else 0
            return compute_reach_masks(self.cfg_of(m), n)

        return self._memo(self._reach, method, build)

    def reach_to_masks(self, method: Method) -> list[int]:
        """Transpose of :meth:`reach_masks`: ``to[j]`` has bit ``i`` set
        when statement ``i`` reaches statement ``j`` (reflexively).  One AND
        with this column selects "statements that reach the use" without a
        per-statement bit probe."""

        def build(m: Method) -> list[int]:
            # same fixpoint as compute_reach_masks on the reversed edges —
            # O(statements) big-int ops per pass instead of iterating every
            # set bit of the forward relation
            n = len(m.body.statements) if m.body else 0
            pred = self.cfg_of(m).stmt_pred
            to = [1 << i for i in range(n)]
            changed = True
            while changed:
                changed = False
                for i in range(n):
                    acc = to[i]
                    for p in pred.get(i, ()):
                        acc |= to[p]
                    if acc != to[i]:
                        to[i] = acc
                        changed = True
            return to

        return self._memo(self._reach_to, method, build)

    def mention_masks(self, method: Method) -> dict[Local, int]:
        """Bitmask form of :meth:`mention_sites` (bit per statement)."""

        def build(m: Method) -> dict[Local, int]:
            return {
                local: sum(1 << s for s in sites)
                for local, sites in self.mention_sites(m).items()
            }

        return self._memo(self._mention_masks, method, build)

    def mention_sites(self, method: Method) -> dict[Local, tuple[int, ...]]:
        def build(m: Method) -> dict[Local, tuple[int, ...]]:
            out: dict[Local, list[int]] = {}
            for idx, (defs, uses) in enumerate(self.stmt_locals(m)):
                for local in defs | uses:
                    out.setdefault(local, []).append(idx)
            return {local: tuple(sites) for local, sites in out.items()}

        return self._memo(self._mentions, method, build)

    def stmt_locals(self, method: Method) -> list[tuple[frozenset, frozenset]]:
        """Per statement index: (locals defined, locals used)."""

        def build(m: Method) -> list[tuple[frozenset, frozenset]]:
            out: list[tuple[frozenset, frozenset]] = []
            if m.body is None:
                return out
            for stmt in m.body:
                defs = frozenset(d for d in stmt.defs() if isinstance(d, Local))
                uses = frozenset(
                    v
                    for use in stmt.uses()
                    for v in walk_values(use)
                    if isinstance(v, Local)
                )
                out.append((defs, uses))
            return out

        return self._memo(self._stmt_locals, method, build)

    def loop_info(self, method: Method) -> LoopInfo:
        return self._memo(self._loops, method, lambda m: loop_info(self.cfg_of(m)))

    def rpo(self, method: Method) -> list[int]:
        return self._memo(
            self._rpo, method, lambda m: reverse_postorder(self.cfg_of(m))
        )

    # ---------------------------------------------------------- program-wide
    def _build_fields(self) -> tuple[dict, dict]:
        stores: dict[tuple[str, str], list[StmtRef]] = {}
        loads: dict[tuple[str, str], list[StmtRef]] = {}
        for method in self.program.methods():
            if method.body is None:
                continue
            for stmt in method.body:
                if isinstance(stmt, AssignStmt):
                    tgt = stmt.target
                    if isinstance(tgt, (InstanceFieldRef, StaticFieldRef)):
                        stores.setdefault(field_key(tgt.field), []).append(
                            method.stmt_ref(stmt)
                        )
                    rhs = stmt.rhs
                    if isinstance(rhs, (InstanceFieldRef, StaticFieldRef)):
                        loads.setdefault(field_key(rhs.field), []).append(
                            method.stmt_ref(stmt)
                        )
        return stores, loads

    @property
    def field_stores(self) -> dict[tuple[str, str], list[StmtRef]]:
        if self._fields is None:
            with self._lock:
                if self._fields is None:
                    self._fields = self._build_fields()
        return self._fields[0]

    @property
    def field_loads(self) -> dict[tuple[str, str], list[StmtRef]]:
        if self._fields is None:
            self.field_stores  # builds both
        return self._fields[1]

    # -------------------------------------------------------------- warm-up
    def warm(self, method_ids: set[str] | None = None) -> int:
        """Eagerly build artifacts (field index always; per-method artifacts
        for ``method_ids``, or every method with a body when None).

        Targeted mode passes its demand-driven region here — the memos
        stay lazy for everything else, so a method outside the region
        still materializes correctly if the engine reaches it.  Returns
        the number of methods warmed.
        """
        self.field_stores
        if method_ids is None:
            methods = [m for m in self.program.methods() if m.body is not None]
        else:
            methods = []
            for mid in method_ids:
                try:
                    m = self.program.method_by_id(mid)
                except KeyError:
                    continue
                if m.body is not None:
                    methods.append(m)
        for m in methods:
            self.reach_masks(m)
            self.defuse_of(m)
            self.mention_sites(m)
        return len(methods)

    def invalidate(self, method_ids: set[str]) -> None:
        """Drop the per-method memos of ``method_ids`` (plus the
        program-wide heap index, which any of them may contribute to).

        The fingerprint-aware reuse hook: a session re-analyzing a
        mutated program keeps one index alive and evicts exactly the
        methods whose fingerprints changed instead of rebuilding from
        scratch.
        """
        with self._lock:
            for mid in method_ids:
                for memo in (
                    self._cfgs,
                    self._defuse,
                    self._reach,
                    self._reach_to,
                    self._mentions,
                    self._mention_masks,
                    self._stmt_locals,
                    self._loops,
                    self._rpo,
                ):
                    memo.pop(mid, None)
            self._fields = None


__all__ = ["ProgramIndex", "compute_reach_masks", "field_key"]
