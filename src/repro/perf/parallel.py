"""Deterministic parallel fan-out helpers.

``ordered_map`` is the one primitive every parallel stage uses: it applies
``fn`` to each item concurrently and returns results **in input order**, so
reports produced from the result list are identical to a serial run.  The
thread executor is the default (artifacts are shared in-process through the
:class:`~repro.perf.index.ProgramIndex` locks); a fork-based process
executor is available for picklable workloads via :func:`forked_map`.

Every map accepts an optional ``span`` (see :mod:`repro.obs.tracer`): when
given, each work item gets a ``<label>-<i>`` child span carrying its wall
time.  The spans are created *after* the pool drains, in input order, so
traced runs stay deterministic regardless of scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: ``None``/``0`` means one worker per
    CPU, negative values are clamped to 1."""
    if not workers:
        return os.cpu_count() or 1
    return max(1, workers)


def fanout_width(workers: int | None) -> int:
    """Effective *thread* fan-out for CPU-bound pure-Python stages: more
    threads than cores never helps (the GIL serialises them and the convoy
    overhead makes large inputs slower), so clamp to the core count.  The
    raw worker count still selects the engine (see ``AnalysisConfig``)."""
    return max(1, min(resolve_workers(workers), os.cpu_count() or 1))


def _timed_call(fn: Callable[[T], R], item: T) -> tuple[R, float]:
    """Module-level so it survives pickling into forked workers."""
    t0 = time.perf_counter()
    result = fn(item)
    return result, time.perf_counter() - t0


def _record_worker_spans(span, timed: list[tuple[R, float]], label: str) -> list[R]:
    """Unwrap (result, seconds) pairs, emitting one child span per item in
    input order (deterministic paths: ``<label>-1``, ``<label>-2``, ...)."""
    results: list[R] = []
    for i, (result, secs) in enumerate(timed, 1):
        child = span.child(f"{label}-{i}")
        child.seconds = secs
        results.append(result)
    return results


def thread_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int,
    span=None,
    label: str = "worker",
) -> list[R]:
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        if span is None or not span:
            return list(pool.map(fn, items))
        timed = list(pool.map(partial(_timed_call, fn), items))
    return _record_worker_spans(span, timed, label)


def forked_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int,
    span=None,
    label: str = "worker",
) -> list[R]:
    """Process-pool map via ``fork`` so workers inherit the parent's program
    state without pickling it; only ``items`` and results cross the pipe.
    Raises ``ValueError`` where fork is unavailable (callers fall back)."""
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=min(workers, len(items)), mp_context=ctx) as pool:
        if span is None or not span:
            return list(pool.map(fn, items))
        timed = list(pool.map(partial(_timed_call, fn), items))
    return _record_worker_spans(span, timed, label)


def ordered_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int = 1,
    executor: str = "thread",
    span=None,
    label: str = "worker",
) -> list[R]:
    """Apply ``fn`` over ``items`` with ``workers`` concurrency, preserving
    input order.  ``executor`` is ``"thread"`` (default) or ``"process"``
    (fork-based; falls back to threads when fork is unsupported)."""
    seq = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(seq) <= 1:
        if span is None or not span:
            return [fn(item) for item in seq]
        return _record_worker_spans(
            span, [_timed_call(fn, item) for item in seq], label
        )
    if executor == "process":
        try:
            return forked_map(fn, seq, workers=workers, span=span, label=label)
        except ValueError:
            pass  # no fork start method on this platform
    width = fanout_width(workers)
    if width <= 1:
        if span is None or not span:
            return [fn(item) for item in seq]
        return _record_worker_spans(
            span, [_timed_call(fn, item) for item in seq], label
        )
    return thread_map(fn, seq, workers=width, span=span, label=label)


__all__ = [
    "fanout_width",
    "forked_map",
    "ordered_map",
    "resolve_workers",
    "thread_map",
]
