"""Deterministic parallel fan-out helpers.

:func:`run_map` is the one primitive every parallel stage routes through:
it applies ``fn`` to each item with the selected executor and returns
results **in input order**, so reports produced from the result list are
identical to a serial run.  Executors:

* ``"serial"`` — a plain loop (the reference engine's path);
* ``"thread"`` — a thread pool, clamped to the usable core count (more
  GIL-bound threads than cores only add convoy overhead);
* ``"process"`` — a :class:`~repro.perf.procpool.ProcPool`: fork workers
  inherit ``fn`` and any state it closes over for free, spawn workers
  receive it pickled once.  When no process pool can be built the call
  degrades to threads *audibly*: an ``executor_fallbacks`` counter on the
  global metrics registry plus a one-time ``RuntimeWarning``;
* ``"auto"`` — :func:`default_executor`: process where fork is available,
  thread otherwise.

Every map accepts an optional ``span`` (see :mod:`repro.obs.tracer`): when
given, each work item gets a ``<label>-<i>`` child span carrying its wall
time.  The spans are created *after* the pool drains, in input order, so
traced runs stay deterministic regardless of scheduling.  For process
executors the per-item times are measured inside the worker and carried
back with the results (see :class:`~repro.perf.procpool.SpanRecord`).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

from .procpool import PoolUnavailable, ProcPool

T = TypeVar("T")
R = TypeVar("R")

#: Executor names accepted by configs and CLIs ("auto" resolves at run time).
EXECUTORS = ("auto", "serial", "thread", "process")


def usable_cpus() -> int:
    """The number of cores *this process may run on* — the scheduler
    affinity mask where the platform exposes one (containers and
    cgroup-limited hosts often pin far fewer cores than the machine
    has), falling back to ``os.cpu_count``."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: ``None``/``0`` means one worker per
    *usable* CPU, negative values are clamped to 1."""
    if not workers:
        return usable_cpus()
    return max(1, workers)


def fanout_width(workers: int | None) -> int:
    """Effective *thread* fan-out for CPU-bound pure-Python stages: more
    threads than cores never helps (the GIL serialises them and the convoy
    overhead makes large inputs slower), so clamp to the usable core count.
    The raw worker count still selects the engine (see ``AnalysisConfig``)
    and sizes process pools, which have no GIL ceiling."""
    return max(1, min(resolve_workers(workers), usable_cpus()))


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def default_executor() -> str:
    """The executor ``"auto"`` resolves to: ``process`` where fork is
    available (workers inherit program state for free), ``thread``
    elsewhere (spawn shipment costs are only worth paying when explicitly
    requested)."""
    return "process" if fork_available() else "thread"


def resolve_executor(executor: str | None) -> str:
    """Map an executor knob to a concrete engine name."""
    if not executor or executor == "auto":
        return default_executor()
    if executor not in ("serial", "thread", "process"):
        raise ValueError(
            f"unknown executor {executor!r}; choose one of {EXECUTORS}"
        )
    return executor


# ------------------------------------------------------- fallback accounting
_fallback_warned = False
_fallback_audible = True
_fallback_reasons: list[str] = []


def silence_fallback_warnings() -> None:
    """Suppress the audible one-time ``RuntimeWarning`` in *this* process
    (counting and reason capture continue).  Shard worker processes call
    this so an N-worker fleet doesn't re-emit the same warning N times on
    stderr; the coordinator collects the reasons via
    :func:`take_fallback_reasons` and surfaces them once, through the run
    ledger."""
    global _fallback_audible
    _fallback_audible = False


def take_fallback_reasons() -> list[str]:
    """Drain the fallback reasons recorded in this process since the last
    call (deduplicated, first-seen order)."""
    global _fallback_reasons
    reasons, _fallback_reasons = _fallback_reasons, []
    return list(dict.fromkeys(reasons))


def note_executor_fallback(reason: str) -> None:
    """Record a process→thread executor degradation: bump the
    ``executor_fallbacks`` counter on the global metrics registry, remember
    the reason, and warn once per process (silent degradation hid
    single-core-equivalent behaviour for the whole life of the fork side
    path).  Processes that report the degradation through another channel
    mute the warning with :func:`silence_fallback_warnings`."""
    global _fallback_warned
    from ..obs.metrics import global_registry

    global_registry().counter("executor_fallbacks").inc()
    _fallback_reasons.append(reason)
    if _fallback_audible and not _fallback_warned:
        _fallback_warned = True
        warnings.warn(
            f"process executor unavailable ({reason}); falling back to "
            f"threads — expect GIL-bound scaling",
            RuntimeWarning,
            stacklevel=3,
        )


def _timed_call(fn: Callable[[T], R], item: T) -> tuple[R, float]:
    """Module-level so it survives pickling into forked workers."""
    t0 = time.perf_counter()
    result = fn(item)
    return result, time.perf_counter() - t0


def _record_worker_spans(span, timed: list[tuple[R, float]], label: str) -> list[R]:
    """Unwrap (result, seconds) pairs, emitting one child span per item in
    input order (deterministic paths: ``<label>-1``, ``<label>-2``, ...)."""
    results: list[R] = []
    for i, (result, secs) in enumerate(timed, 1):
        child = span.child(f"{label}-{i}")
        child.seconds = secs
        results.append(result)
    return results


def _serial_map(fn, seq, span, label):
    if span is None or not span:
        return [fn(item) for item in seq]
    return _record_worker_spans(span, [_timed_call(fn, item) for item in seq], label)


def thread_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int,
    span=None,
    label: str = "worker",
) -> list[R]:
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        if span is None or not span:
            return list(pool.map(fn, items))
        timed = list(pool.map(partial(_timed_call, fn), items))
    return _record_worker_spans(span, timed, label)


def forked_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int,
    span=None,
    label: str = "worker",
) -> list[R]:
    """One-shot process-pool map via ``fork`` so workers inherit the
    parent's program state without pickling it; only ``items`` and results
    cross the pipe.  Raises ``ValueError`` where fork is unavailable.
    Prefer :func:`run_map` (or a persistent
    :class:`~repro.perf.procpool.ProcPool`) in new code."""
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=min(workers, len(items)), mp_context=ctx) as pool:
        if span is None or not span:
            return list(pool.map(fn, items))
        timed = list(pool.map(partial(_timed_call, fn), items))
    return _record_worker_spans(span, timed, label)


def _apply_payload(payload, item):
    """ProcPool task for :func:`run_map`: the payload *is* the mapped fn."""
    return payload(item)


def run_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int = 1,
    executor: str = "auto",
    span=None,
    label: str = "worker",
    start_method: str | None = None,
) -> list[R]:
    """Apply ``fn`` over ``items`` with ``workers`` concurrency under the
    selected ``executor`` (see module docstring), preserving input order.

    The process executor ships ``fn`` itself as the pool payload: fork
    workers inherit it (closures welcome), spawn workers need it picklable
    — when neither works the call falls back to threads and says so
    (:func:`note_executor_fallback`).
    """
    seq = list(items)
    workers = resolve_workers(workers)
    engine = resolve_executor(executor)
    if engine == "serial" or workers <= 1 or len(seq) <= 1:
        return _serial_map(fn, seq, span, label)
    if engine == "process":
        try:
            with ProcPool(
                fn, workers=min(workers, len(seq)), start_method=start_method
            ) as pool:
                return pool.map(_apply_payload, seq, span=span, label=label)
        except PoolUnavailable as exc:
            note_executor_fallback(str(exc))
    width = fanout_width(workers)
    if width <= 1:
        return _serial_map(fn, seq, span, label)
    return thread_map(fn, seq, workers=width, span=span, label=label)


def ordered_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int = 1,
    executor: str = "thread",
    span=None,
    label: str = "worker",
) -> list[R]:
    """Backwards-compatible alias of :func:`run_map` whose executor
    defaults to ``"thread"`` (the pre-process-engine behaviour)."""
    return run_map(
        fn, items, workers=workers, executor=executor, span=span, label=label
    )


__all__ = [
    "EXECUTORS",
    "default_executor",
    "fanout_width",
    "fork_available",
    "forked_map",
    "note_executor_fallback",
    "ordered_map",
    "resolve_executor",
    "resolve_workers",
    "run_map",
    "silence_fallback_warnings",
    "take_fallback_reasons",
    "thread_map",
    "usable_cpus",
]
