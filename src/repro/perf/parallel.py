"""Deterministic parallel fan-out helpers.

``ordered_map`` is the one primitive every parallel stage uses: it applies
``fn`` to each item concurrently and returns results **in input order**, so
reports produced from the result list are identical to a serial run.  The
thread executor is the default (artifacts are shared in-process through the
:class:`~repro.perf.index.ProgramIndex` locks); a fork-based process
executor is available for picklable workloads via :func:`forked_map`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: ``None``/``0`` means one worker per
    CPU, negative values are clamped to 1."""
    if not workers:
        return os.cpu_count() or 1
    return max(1, workers)


def fanout_width(workers: int | None) -> int:
    """Effective *thread* fan-out for CPU-bound pure-Python stages: more
    threads than cores never helps (the GIL serialises them and the convoy
    overhead makes large inputs slower), so clamp to the core count.  The
    raw worker count still selects the engine (see ``AnalysisConfig``)."""
    return max(1, min(resolve_workers(workers), os.cpu_count() or 1))


def thread_map(
    fn: Callable[[T], R], items: Sequence[T], *, workers: int
) -> list[R]:
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


def forked_map(
    fn: Callable[[T], R], items: Sequence[T], *, workers: int
) -> list[R]:
    """Process-pool map via ``fork`` so workers inherit the parent's program
    state without pickling it; only ``items`` and results cross the pipe.
    Raises ``ValueError`` where fork is unavailable (callers fall back)."""
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=min(workers, len(items)), mp_context=ctx) as pool:
        return list(pool.map(fn, items))


def ordered_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int = 1,
    executor: str = "thread",
) -> list[R]:
    """Apply ``fn`` over ``items`` with ``workers`` concurrency, preserving
    input order.  ``executor`` is ``"thread"`` (default) or ``"process"``
    (fork-based; falls back to threads when fork is unsupported)."""
    seq = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(seq) <= 1:
        return [fn(item) for item in seq]
    if executor == "process":
        try:
            return forked_map(fn, seq, workers=workers)
        except ValueError:
            pass  # no fork start method on this platform
    width = fanout_width(workers)
    if width <= 1:
        return [fn(item) for item in seq]
    return thread_map(fn, seq, workers=width)


__all__ = [
    "fanout_width",
    "forked_map",
    "ordered_map",
    "resolve_workers",
    "thread_map",
]
