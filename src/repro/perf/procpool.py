"""Persistent process worker pools (the process-sharded analysis engine).

Threads cannot parallelise the pipeline — slicing and taint propagation are
pure-Python CPU work, so the GIL serialises them (BENCH_pipeline.json capped
at ~1.5x from memoization alone).  :class:`ProcPool` makes *processes* the
parallelism substrate while keeping the one-payload-shipment contract:

* **fork** (preferred, default where available): the payload — typically a
  :class:`~repro.slicing.slicer.NetworkSlicer` holding the shared
  :class:`~repro.perf.index.ProgramIndex` — is published in a module global
  under a creation lock, the pool's workers are forked *eagerly* inside the
  constructor and inherit it for free, then the global is cleared.  Nothing
  but work items and results ever crosses the pipe.
* **spawn** (fallback for platforms without fork): the payload is pickled
  exactly once per worker through the pool initializer; tasks again ship
  only items and results.  This requires the payload to be picklable —
  guaranteed by the pickle round-trip tests over ``ProgramIndex`` and
  ``SliceResult``.

Tasks are module-level functions of ``(payload, item)`` so they pickle by
reference under both start methods.  :meth:`ProcPool.map` preserves input
order and returns :class:`SpanRecord`-timed results: per-item wall times
are measured *inside* the worker process and carried back with the result,
so observability spans survive the process boundary (the parent replays
them as deterministic ``<label>-<i>`` children after the pool drains).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Start methods this module knows how to drive, in preference order.
START_METHODS = ("fork", "spawn")


class PoolUnavailable(Exception):
    """No process pool can be built here (no usable start method, payload
    not picklable under spawn, or process creation failed).  Callers fall
    back to the thread executor and record an ``executor_fallbacks``
    metric — see :func:`repro.perf.parallel.note_executor_fallback`."""


def available_start_methods() -> tuple[str, ...]:
    supported = multiprocessing.get_all_start_methods()
    return tuple(m for m in START_METHODS if m in supported)


def default_start_method() -> str | None:
    """``fork`` where available, else ``spawn``; honours the
    ``REPRO_START_METHOD`` environment override (useful for exercising the
    spawn path on fork-capable hosts, e.g. the CI proc-smoke job)."""
    forced = os.environ.get("REPRO_START_METHOD")
    methods = available_start_methods()
    if forced:
        return forced if forced in methods else None
    return methods[0] if methods else None


@dataclass
class SpanRecord:
    """A picklable record of one unit of worker work: the observability
    facts that must survive the process boundary.  Replayed into parent
    spans post-drain, in input order, so traces stay deterministic."""

    label: str
    seconds: float
    counters: dict[str, int] = field(default_factory=dict)

    def replay(self, span) -> None:
        child = span.child(self.label)
        child.seconds = self.seconds
        for name, amount in sorted(self.counters.items()):
            child.count(name, amount)


# --------------------------------------------------------------- worker side
#: The payload shipped once per worker (inherited on fork, unpickled once on
#: spawn).  Module-level so tasks can reach it without re-shipping.
_PAYLOAD = None

#: Serialises fork-pool creation: the payload rides a module global between
#: publication and the (eager, in-constructor) fork of every worker.
_CREATE_LOCK = threading.Lock()


def _init_spawn_worker(payload_blob: bytes) -> None:
    global _PAYLOAD
    _PAYLOAD = pickle.loads(payload_blob)


def _init_fork_worker() -> None:
    # nothing to do: the forked child inherited _PAYLOAD from the parent
    pass


def _run_timed(task: Callable, item) -> tuple:
    """Executed in the worker: apply ``task(payload, item)`` and carry the
    wall time back with the result (the result-borne span record)."""
    t0 = time.perf_counter()
    result = task(_PAYLOAD, item)
    return result, time.perf_counter() - t0


class ProcPool:
    """A persistent pool of worker processes sharing one payload.

    Created eagerly: when the constructor returns, every worker exists and
    holds the payload — fork workers inherited it, spawn workers unpickled
    it once via the initializer.  Subsequent :meth:`map` calls ship only
    the items, so a pool created once per ``Extractocol.analyze`` amortises
    the program shipment across every fan-out of that analysis.
    """

    def __init__(
        self,
        payload,
        *,
        workers: int,
        start_method: str | None = None,
    ) -> None:
        method = start_method or default_start_method()
        if method is None:
            raise PoolUnavailable(
                f"no usable multiprocessing start method "
                f"(have {multiprocessing.get_all_start_methods()!r})"
            )
        self.start_method = method
        self.workers = max(1, workers)
        self._pool = None
        try:
            ctx = multiprocessing.get_context(method)
        except ValueError as exc:
            raise PoolUnavailable(str(exc)) from exc
        try:
            if method == "fork":
                global _PAYLOAD
                with _CREATE_LOCK:
                    _PAYLOAD = payload
                    try:
                        # Pool starts its workers inside the constructor, so
                        # every child forks while the global is published.
                        self._pool = ctx.Pool(
                            self.workers, initializer=_init_fork_worker
                        )
                    finally:
                        _PAYLOAD = None
            else:
                blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
                self._pool = ctx.Pool(
                    self.workers,
                    initializer=_init_spawn_worker,
                    initargs=(blob,),
                )
        except PoolUnavailable:
            raise
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise PoolUnavailable(
                f"payload not picklable for {method!r} workers: {exc}"
            ) from exc
        except OSError as exc:
            raise PoolUnavailable(
                f"cannot start {method!r} worker processes: {exc}"
            ) from exc

    # ----------------------------------------------------------------- map
    def map(
        self,
        task: Callable,
        items: Sequence,
        *,
        span=None,
        label: str = "worker",
    ) -> list:
        """Apply ``task(payload, item)`` to every item, preserving input
        order.  ``task`` must be a module-level function (pickled by
        reference).  With a live ``span``, each item's worker-measured wall
        time is replayed as a ``<label>-<i>`` child span post-drain."""
        seq = list(items)
        if not seq:
            return []
        assert self._pool is not None, "pool is closed"
        # chunksize=1: callers pre-chunk, one task per worker slot
        timed = self._pool.map(partial(_run_timed, task), seq, 1)
        if span is None or not span:
            return [result for result, _ in timed]
        results = []
        for i, (result, seconds) in enumerate(timed, 1):
            SpanRecord(label=f"{label}-{i}", seconds=seconds).replay(span)
            results.append(result)
        return results

    # ------------------------------------------------------------ lifecycle
    @property
    def closed(self) -> bool:
        return self._pool is None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "PoolUnavailable",
    "ProcPool",
    "SpanRecord",
    "available_start_methods",
    "default_start_method",
]
