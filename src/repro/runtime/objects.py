"""Concrete runtime objects backing the library APIs during dynamic
execution (the counterpart of the *abstract* values in
:mod:`repro.semantics.avals`)."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from .httpstack import HttpResponse


@dataclass
class RtObject:
    """An instance of an application class."""

    class_name: str
    fields: dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"RtObject({self.class_name})"


class RtStringBuilder:
    def __init__(self, initial: str = "") -> None:
        self.s = initial

    def __str__(self) -> str:
        return self.s


@dataclass
class RtRequest:
    """An HTTP request under construction (HttpGet, Volley request, okhttp
    builder product, ...)."""

    method: str = "GET"
    url: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: str | None = None
    mime: str | None = None
    listener: RtObject | None = None
    error_listener: RtObject | None = None


class RtResponse:
    """Wraps a concrete HttpResponse for the response-side APIs."""

    def __init__(self, response: HttpResponse) -> None:
        self.response = response

    @property
    def body(self) -> str:
        return self.response.body


class RtConn:
    def __init__(self, url: str) -> None:
        self.url = url
        self.method = "GET"
        self.headers: dict[str, str] = {}
        self.body_parts: list[str] = []
        self.response: HttpResponse | None = None


class RtCursor:
    def __init__(self, columns: list[str], rows: list[dict]) -> None:
        self.columns = columns
        self.rows = rows
        self.idx = -1

    def move_next(self) -> bool:
        self.idx += 1
        return self.idx < len(self.rows)

    def get(self, col_index: int):
        row = self.rows[self.idx]
        return row.get(self.columns[col_index], "")


class RtDatabase:
    def __init__(self) -> None:
        self.tables: dict[str, list[dict]] = {}

    def insert(self, table: str, values: dict) -> None:
        self.tables.setdefault(table, []).append(dict(values))

    def update(self, table: str, values: dict) -> None:
        rows = self.tables.setdefault(table, [])
        if rows:
            for row in rows:
                row.update(values)
        else:
            rows.append(dict(values))

    def query(self, table: str, columns: list[str] | None) -> RtCursor:
        rows = self.tables.get(table, [])
        cols = columns if columns else sorted({k for r in rows for k in r})
        return RtCursor(cols, rows)


class RtXmlNode:
    def __init__(self, elem: "ET.Element") -> None:
        self.elem = elem

    def by_tag(self, tag: str) -> "RtNodeList":
        return RtNodeList([RtXmlNode(e) for e in self.elem.iter(tag)])

    @property
    def text(self) -> str:
        return self.elem.text or ""

    def attr(self, name: str) -> str:
        return self.elem.get(name, "")


class RtNodeList:
    def __init__(self, nodes: list[RtXmlNode]) -> None:
        self.nodes = nodes

    def item(self, i: int) -> RtXmlNode | None:
        return self.nodes[i] if 0 <= i < len(self.nodes) else None

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class RtLocation:
    lat: float = 37.5665
    lon: float = 126.9780


class RtIntent:
    def __init__(self) -> None:
        self.extras: dict[str, object] = {}


class RtIterator:
    def __init__(self, items: list) -> None:
        self.items = list(items)
        self.idx = 0

    def has_next(self) -> bool:
        return self.idx < len(self.items)

    def next(self):
        value = self.items[self.idx]
        self.idx += 1
        return value


def parse_xml(body: str) -> RtXmlNode:
    return RtXmlNode(ET.fromstring(body))


__all__ = [
    "RtConn",
    "RtCursor",
    "RtDatabase",
    "RtIntent",
    "RtIterator",
    "RtLocation",
    "RtNodeList",
    "RtObject",
    "RtRequest",
    "RtResponse",
    "RtStringBuilder",
    "RtXmlNode",
    "parse_xml",
]
