"""Concrete implementations of the modeled Android/Java APIs.

One handler per (class, method), mirroring the static semantic models in
:mod:`repro.semantics` — the dynamic baselines execute the *same* corpus
programs the static pipeline analyses, so both sides must agree on API
behaviour.  Handlers receive the runtime, the receiver and evaluated
arguments, and return the call result (optionally rebinding the receiver
local via :class:`Rebind`, for constructors)."""

from __future__ import annotations

import base64 as _base64
import json
import re
from dataclasses import dataclass
from urllib.parse import quote_plus

from .httpstack import HttpRequest
from .objects import (
    RtConn,
    RtCursor,
    RtDatabase,
    RtIntent,
    RtIterator,
    RtLocation,
    RtNodeList,
    RtObject,
    RtRequest,
    RtResponse,
    RtStringBuilder,
    RtXmlNode,
    parse_xml,
)


@dataclass
class Rebind:
    """Constructor outcome: bind ``value`` to the receiver local."""

    value: object
    result: object = None


@dataclass
class RtClassRef:
    name: str


def java_str(v: object) -> str:
    if v is None:
        return "null"
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    if isinstance(v, RtStringBuilder):
        return v.s
    if isinstance(v, dict):
        return json.dumps(v)
    if isinstance(v, list):
        return json.dumps(v)
    return str(v)


API: dict[tuple[str, str], object] = {}
DISPATCH: dict[tuple[str, str], object] = {}


def register(classes, methods):
    classes = (classes,) if isinstance(classes, str) else classes
    methods = (methods,) if isinstance(methods, str) else methods

    def deco(fn):
        for c in classes:
            for m in methods:
                API[(c, m)] = fn
        return fn

    return deco


def register_dispatch(classes, methods):
    classes = (classes,) if isinstance(classes, str) else classes
    methods = (methods,) if isinstance(methods, str) else methods

    def deco(fn):
        for c in classes:
            for m in methods:
                DISPATCH[(c, m)] = fn
        return fn

    return deco


# --------------------------------------------------------------------- strings
_SB = ("java.lang.StringBuilder", "java.lang.StringBuffer")


@register(_SB, "<init>")
def sb_init(rt, base, args):
    return Rebind(RtStringBuilder(java_str(args[0]) if args else ""))


@register(_SB, "append")
def sb_append(rt, base, args):
    base.s += java_str(args[0]) if args else ""
    return base


@register(_SB, "insert")
def sb_insert(rt, base, args):
    idx = int(args[0])
    base.s = base.s[:idx] + java_str(args[1]) + base.s[idx:]
    return base


@register(_SB, "toString")
def sb_tostring(rt, base, args):
    return base.s


@register("java.lang.String", "<init>")
def str_init(rt, base, args):
    return Rebind(java_str(args[0]) if args else "")


@register("java.lang.String", "concat")
def str_concat(rt, base, args):
    return java_str(base) + java_str(args[0])


@register("java.lang.String", "valueOf")
def str_valueof(rt, base, args):
    return java_str(args[0]) if args else ""


@register("java.lang.String", "format")
def str_format(rt, base, args):
    fmt = java_str(args[0])
    rest = list(args[1:])
    out = []
    pos = 0
    for m in re.finditer(r"%[sdif]", fmt):
        out.append(fmt[pos : m.start()])
        out.append(java_str(rest.pop(0)) if rest else "")
        pos = m.end()
    out.append(fmt[pos:])
    return "".join(out)


@register("java.lang.String", "trim")
def str_trim(rt, base, args):
    return java_str(base).strip()


@register("java.lang.String", "toLowerCase")
def str_lower(rt, base, args):
    return java_str(base).lower()


@register("java.lang.String", "toUpperCase")
def str_upper(rt, base, args):
    return java_str(base).upper()


@register("java.lang.String", "replace")
def str_replace(rt, base, args):
    return java_str(base).replace(java_str(args[0]), java_str(args[1]))


@register("java.lang.String", "substring")
def str_substring(rt, base, args):
    s = java_str(base)
    if len(args) == 2:
        return s[int(args[0]) : int(args[1])]
    return s[int(args[0]):]


@register("java.lang.String", "equals")
def str_equals(rt, base, args):
    return java_str(base) == java_str(args[0])


@register("java.lang.String", "equalsIgnoreCase")
def str_equals_ic(rt, base, args):
    return java_str(base).lower() == java_str(args[0]).lower()


@register("java.lang.String", ("startsWith", "endsWith", "contains"))
def str_preds(rt, base, args, _name=None):
    return True  # replaced below by per-name lambdas


API[("java.lang.String", "startsWith")] = lambda rt, b, a: java_str(b).startswith(java_str(a[0]))
API[("java.lang.String", "endsWith")] = lambda rt, b, a: java_str(b).endswith(java_str(a[0]))
API[("java.lang.String", "contains")] = lambda rt, b, a: java_str(a[0]) in java_str(b)
API[("java.lang.String", "isEmpty")] = lambda rt, b, a: len(java_str(b)) == 0
API[("java.lang.String", "length")] = lambda rt, b, a: len(java_str(b))
API[("java.lang.String", "indexOf")] = lambda rt, b, a: java_str(b).find(java_str(a[0]))
API[("java.lang.String", "split")] = lambda rt, b, a: java_str(b).split(java_str(a[0]))
API[("java.lang.String", "getBytes")] = lambda rt, b, a: java_str(b)
API[("java.lang.String", "hashCode")] = lambda rt, b, a: hash(java_str(b)) & 0x7FFFFFFF

for _box in ("java.lang.Integer", "java.lang.Long", "java.lang.Double",
             "java.lang.Float", "java.lang.Boolean"):
    API[(_box, "toString")] = lambda rt, b, a: java_str(a[0] if a else b)
    API[(_box, "valueOf")] = lambda rt, b, a: a[0] if a else b
API[("java.lang.Integer", "parseInt")] = lambda rt, b, a: int(java_str(a[0]))
API[("java.lang.Long", "parseLong")] = lambda rt, b, a: int(java_str(a[0]))

API[("java.net.URLEncoder", "encode")] = lambda rt, b, a: quote_plus(java_str(a[0]))
API[("java.net.URLDecoder", "decode")] = lambda rt, b, a: java_str(a[0])
API[("android.util.Base64", "encodeToString")] = lambda rt, b, a: _base64.b64encode(
    java_str(a[0]).encode()
).decode()
API[("java.lang.System", "currentTimeMillis")] = lambda rt, b, a: rt.clock()
API[("java.lang.System", "nanoTime")] = lambda rt, b, a: rt.clock() * 1000000
API[("java.lang.Math", "random")] = lambda rt, b, a: rt.rng.random()
API[("java.util.Random", "<init>")] = lambda rt, b, a: Rebind(object())
API[("java.util.Random", "nextInt")] = lambda rt, b, a: rt.rng.randrange(int(a[0]) if a else 1 << 30)
API[("java.util.UUID", "randomUUID")] = lambda rt, b, a: rt.device_uuid
API[("java.util.UUID", "toString")] = lambda rt, b, a: java_str(b)
API[("java.lang.Thread", "sleep")] = lambda rt, b, a: None
for _lvl in ("d", "e", "i", "v", "w"):
    API[("android.util.Log", _lvl)] = lambda rt, b, a: 0
API[("java.io.PrintStream", "println")] = lambda rt, b, a: None


# ------------------------------------------------------------------- containers
_LISTS = ("java.util.ArrayList", "java.util.LinkedList", "java.util.List",
          "java.util.Vector")
_MAPS = ("java.util.HashMap", "java.util.Map", "java.util.LinkedHashMap",
         "java.util.TreeMap", "java.util.Hashtable")

for _c in _LISTS:
    API[(_c, "<init>")] = lambda rt, b, a: Rebind([])
    API[(_c, "add")] = lambda rt, b, a: (b.append(a[-1]), True)[1]
    API[(_c, "get")] = lambda rt, b, a: b[int(a[0])]
    API[(_c, "size")] = lambda rt, b, a: len(b)
    API[(_c, "isEmpty")] = lambda rt, b, a: len(b) == 0
    API[(_c, "contains")] = lambda rt, b, a: a[0] in b
    API[(_c, "iterator")] = lambda rt, b, a: RtIterator(b)
API[("java.util.Iterator", "hasNext")] = lambda rt, b, a: b.has_next()
API[("java.util.Iterator", "next")] = lambda rt, b, a: b.next()
for _c in _MAPS:
    API[(_c, "<init>")] = lambda rt, b, a: Rebind({})
    API[(_c, "put")] = lambda rt, b, a: b.__setitem__(java_str(a[0]), a[1])
    API[(_c, "get")] = lambda rt, b, a: b.get(java_str(a[0]))
    API[(_c, "containsKey")] = lambda rt, b, a: java_str(a[0]) in b
    API[(_c, "size")] = lambda rt, b, a: len(b)


# ------------------------------------------------------------------------ JSON
@register("org.json.JSONObject", "<init>")
def jobj_init(rt, base, args):
    if args and args[0] is not None:
        return Rebind(json.loads(java_str(args[0])))
    return Rebind({})


@register("org.json.JSONArray", "<init>")
def jarr_init(rt, base, args):
    if args and args[0] is not None:
        return Rebind(json.loads(java_str(args[0])))
    return Rebind([])


@register("org.json.JSONObject", ("put", "putOpt", "accumulate"))
def jobj_put(rt, base, args):
    base[java_str(args[0])] = args[1]
    return base


@register("org.json.JSONArray", "put")
def jarr_put(rt, base, args):
    base.append(args[-1])
    return base


@register("org.json.JSONObject",
          ("getString", "optString", "getInt", "optInt", "getLong", "getDouble",
           "getBoolean", "optBoolean", "get", "opt", "getJSONObject",
           "optJSONObject", "getJSONArray", "optJSONArray"))
def jobj_get(rt, base, args, _method_name=None):
    key = java_str(args[0]) if args else None
    name = rt.current_call_name
    if name.startswith("opt") and key not in base:
        return "" if "String" in name else None
    value = base[key]
    if name in ("getString", "optString"):
        return java_str(value)
    if name in ("getInt", "optInt", "getLong"):
        return int(value)
    if name == "getDouble":
        return float(value)
    return value


API[("org.json.JSONObject", "has")] = lambda rt, b, a: java_str(a[0]) in b
API[("org.json.JSONObject", "isNull")] = lambda rt, b, a: b.get(java_str(a[0])) is None
API[("org.json.JSONObject", "toString")] = lambda rt, b, a: json.dumps(b)
API[("org.json.JSONObject", "length")] = lambda rt, b, a: len(b)
API[("org.json.JSONArray", "length")] = lambda rt, b, a: len(b)
API[("org.json.JSONArray", "toString")] = lambda rt, b, a: json.dumps(b)


@register("org.json.JSONArray",
          ("getJSONObject", "optJSONObject", "getString", "getInt", "get"))
def jarr_get(rt, base, args):
    value = base[int(args[0])]
    if rt.current_call_name == "getString":
        return java_str(value)
    if rt.current_call_name == "getInt":
        return int(value)
    return value


@register("com.google.gson.Gson", "<init>")
def gson_init(rt, base, args):
    return Rebind(object())


@register("com.google.gson.Gson", "toJson")
def gson_tojson(rt, base, args):
    return json.dumps(rt.reflect_serialize(args[0]))


@register("com.google.gson.Gson", "fromJson")
def gson_fromjson(rt, base, args):
    data = json.loads(java_str(args[0]))
    cls = args[1]
    assert isinstance(cls, RtClassRef)
    return rt.reflect_bind(data, cls.name)


# ------------------------------------------------------------------------- XML
API[("javax.xml.parsers.DocumentBuilderFactory", "newInstance")] = lambda rt, b, a: object()
API[("javax.xml.parsers.DocumentBuilderFactory", "newDocumentBuilder")] = (
    lambda rt, b, a: object()
)
API[("javax.xml.parsers.DocumentBuilder", "parse")] = lambda rt, b, a: parse_xml(
    a[0].body if isinstance(a[0], RtResponse) else java_str(a[0])
)
API[("org.w3c.dom.Document", "getDocumentElement")] = lambda rt, b, a: b
for _c in ("org.w3c.dom.Document", "org.w3c.dom.Element"):
    API[(_c, "getElementsByTagName")] = lambda rt, b, a: b.by_tag(java_str(a[0]))
API[("org.w3c.dom.NodeList", "item")] = lambda rt, b, a: b.item(int(a[0]))
API[("org.w3c.dom.NodeList", "getLength")] = lambda rt, b, a: len(b)
for _c in ("org.w3c.dom.Element", "org.w3c.dom.Node"):
    API[(_c, "getAttribute")] = lambda rt, b, a: b.attr(java_str(a[0]))
    API[(_c, "getTextContent")] = lambda rt, b, a: b.text
    API[(_c, "getNodeValue")] = lambda rt, b, a: b.text
    API[(_c, "getFirstChild")] = lambda rt, b, a: b


# ---------------------------------------------------------------------- apache
_METHOD_CLASSES = {
    "org.apache.http.client.methods.HttpGet": "GET",
    "org.apache.http.client.methods.HttpPost": "POST",
    "org.apache.http.client.methods.HttpPut": "PUT",
    "org.apache.http.client.methods.HttpDelete": "DELETE",
    "org.apache.http.client.methods.HttpHead": "HEAD",
}
for _cls, _method in _METHOD_CLASSES.items():
    API[(_cls, "<init>")] = (
        lambda m: lambda rt, b, a: Rebind(
            RtRequest(method=m, url=java_str(a[0]) if a else "")
        )
    )(_method)
_REQS = tuple(_METHOD_CLASSES) + (
    "org.apache.http.client.methods.HttpUriRequest",
    "org.apache.http.client.methods.HttpRequestBase",
)
for _c in _REQS:
    API[(_c, "setURI")] = lambda rt, b, a: b.__setattr__("url", java_str(a[0]))
    API[(_c, "setHeader")] = lambda rt, b, a: b.headers.__setitem__(
        java_str(a[0]), java_str(a[1])
    )
    API[(_c, "addHeader")] = API[(_c, "setHeader")]
    API[(_c, "setEntity")] = lambda rt, b, a: (
        b.__setattr__("body", a[0][0]),
        b.__setattr__("mime", a[0][1]),
    )[0]

API[("org.apache.http.entity.StringEntity", "<init>")] = lambda rt, b, a: Rebind(
    (java_str(a[0]), "text/plain")
)


@register("org.apache.http.client.entity.UrlEncodedFormEntity", "<init>")
def form_entity_init(rt, base, args):
    pairs = args[0] if args else []
    body = "&".join(f"{k}={quote_plus(java_str(v))}" for k, v in pairs)
    return Rebind((body, "application/x-www-form-urlencoded"))


API[("org.apache.http.message.BasicNameValuePair", "<init>")] = lambda rt, b, a: Rebind(
    (java_str(a[0]), java_str(a[1]))
)

_CLIENTS = (
    "org.apache.http.client.HttpClient",
    "org.apache.http.impl.client.DefaultHttpClient",
    "org.apache.http.impl.client.AbstractHttpClient",
    "android.net.http.AndroidHttpClient",
)
for _c in _CLIENTS:
    API[(_c, "<init>")] = lambda rt, b, a: Rebind(object())


@register(_CLIENTS, "execute")
def client_execute(rt, base, args):
    req: RtRequest = args[0]
    response = rt.send(req)
    return RtResponse(response)


API[("android.net.http.AndroidHttpClient", "newInstance")] = lambda rt, b, a: object()
API[("org.apache.http.HttpResponse", "getEntity")] = lambda rt, b, a: b
API[("org.apache.http.HttpResponse", "getStatusLine")] = lambda rt, b, a: b
API[("org.apache.http.StatusLine", "getStatusCode")] = lambda rt, b, a: (
    b.response.status if isinstance(b, RtResponse) else 200
)
API[("org.apache.http.HttpEntity", "getContent")] = lambda rt, b, a: b
API[("org.apache.http.HttpEntity", "getContentLength")] = lambda rt, b, a: (
    len(b.body) if isinstance(b, RtResponse) else 0
)
API[("org.apache.http.util.EntityUtils", "toString")] = lambda rt, b, a: (
    a[0].body if isinstance(a[0], RtResponse) else java_str(a[0])
)
for _c in ("java.io.InputStreamReader", "java.io.BufferedReader"):
    API[(_c, "<init>")] = lambda rt, b, a: Rebind(a[0])
API[("java.io.BufferedReader", "readLine")] = lambda rt, b, a: (
    b.body if isinstance(b, RtResponse) else java_str(b)
)


# --------------------------------------------------------------------- urlconn
API[("java.net.URL", "<init>")] = lambda rt, b, a: Rebind(
    "".join(java_str(x) for x in a)
)
API[("java.net.URL", "toString")] = lambda rt, b, a: java_str(b)


@register("java.net.URL", "openConnection")
def url_open(rt, base, args):
    return RtConn(java_str(base))


@register("java.net.URL", "openStream")
def url_openstream(rt, base, args):
    response = rt.send(RtRequest(method="GET", url=java_str(base)))
    return RtResponse(response)


_CONNS = ("java.net.HttpURLConnection", "java.net.URLConnection",
          "javax.net.ssl.HttpsURLConnection")
for _c in _CONNS:
    API[(_c, "setRequestMethod")] = lambda rt, b, a: b.__setattr__(
        "method", java_str(a[0])
    )
    API[(_c, "setRequestProperty")] = lambda rt, b, a: b.headers.__setitem__(
        java_str(a[0]), java_str(a[1])
    )
    API[(_c, "addRequestProperty")] = API[(_c, "setRequestProperty")]
    API[(_c, "setDoOutput")] = lambda rt, b, a: b.__setattr__("method", "POST")
    for _noop in ("setDoInput", "setConnectTimeout", "setReadTimeout",
                  "setUseCaches", "connect", "disconnect",
                  "setInstanceFollowRedirects", "setChunkedStreamingMode"):
        API[(_c, _noop)] = lambda rt, b, a: None
    API[(_c, "getOutputStream")] = lambda rt, b, a: b


def _conn_send(rt, conn: RtConn):
    if conn.response is None:
        conn.response = rt.send(
            RtRequest(
                method=conn.method,
                url=conn.url,
                headers=dict(conn.headers),
                body="".join(conn.body_parts) or None,
            )
        )
    return conn.response


for _c in _CONNS:
    API[(_c, "getInputStream")] = lambda rt, b, a: RtResponse(_conn_send(rt, b))
    API[(_c, "getErrorStream")] = API[(_c, "getInputStream")]
    API[(_c, "getResponseCode")] = lambda rt, b, a: _conn_send(rt, b).status
    API[(_c, "getHeaderField")] = lambda rt, b, a: _conn_send(rt, b).headers.get(
        java_str(a[0]), ""
    )

_WRITERS = ("java.io.OutputStreamWriter", "java.io.BufferedWriter",
            "java.io.DataOutputStream", "java.io.PrintWriter")
for _c in _WRITERS:
    API[(_c, "<init>")] = lambda rt, b, a: Rebind(a[0])
    for _w in ("write", "writeBytes", "print", "append"):
        API[(_c, _w)] = lambda rt, b, a: b.body_parts.append(java_str(a[0])) if isinstance(b, RtConn) else None
    for _noop in ("flush", "close"):
        API[(_c, _noop)] = lambda rt, b, a: None
API[("java.io.OutputStream", "write")] = lambda rt, b, a: (
    b.body_parts.append(java_str(a[0])) if isinstance(b, RtConn) else None
)


# --------------------------------------------------------------------- sockets
@register("java.net.Socket", "<init>")
def socket_init(rt, base, args):
    host = java_str(args[0]) if args else "unknown"
    port = java_str(args[1]) if len(args) > 1 else "0"
    conn = RtConn(f"socket://{host}:{port}")
    conn.method = "RAW"
    return Rebind(conn)


API[("java.net.Socket", "getOutputStream")] = lambda rt, b, a: b
API[("java.net.Socket", "getInputStream")] = lambda rt, b, a: RtResponse(
    _conn_send(rt, b)
)
API[("java.net.Socket", "close")] = lambda rt, b, a: None


# ---------------------------------------------------------------------- volley
_VOLLEY_METHODS = {0: "GET", 1: "POST", 2: "PUT", 3: "DELETE"}


@register(("com.android.volley.toolbox.StringRequest",
           "com.android.volley.toolbox.JsonObjectRequest",
           "com.android.volley.toolbox.JsonArrayRequest"), "<init>")
def volley_request_init(rt, base, args):
    method = "GET"
    rest = list(args)
    if rest and isinstance(rest[0], (int, float)) and not isinstance(rest[0], bool):
        method = _VOLLEY_METHODS.get(int(rest[0]), "GET")
        rest = rest[1:]
    url = java_str(rest[0]) if rest else ""
    rest = rest[1:]
    body = None
    listeners = [x for x in rest if isinstance(x, RtObject)]
    payloads = [x for x in rest if isinstance(x, (dict, list))]
    if payloads:
        body = json.dumps(payloads[0])
        if method == "GET":
            method = "POST"
    req = RtRequest(method=method, url=url, body=body,
                    mime="application/json" if body else None)
    if listeners:
        req.listener = listeners[0]
    if len(listeners) > 1:
        req.error_listener = listeners[1]
    return Rebind(req)


API[("com.android.volley.toolbox.Volley", "newRequestQueue")] = lambda rt, b, a: object()


@register("com.android.volley.RequestQueue", "add")
def volley_add(rt, base, args):
    req: RtRequest = args[0]
    response = rt.send(req)
    if req.listener is not None:
        payload: object = response.body
        if "json" in response.content_type:
            payload = json.loads(response.body or "null")
        rt.call_method(req.listener, "onResponse", [payload])
    return req


API[("com.android.volley.RequestQueue", "start")] = lambda rt, b, a: None


# ---------------------------------------------------------------------- okhttp
_OK_BUILDERS = ("okhttp3.Request$Builder", "com.squareup.okhttp.Request$Builder")
for _c in _OK_BUILDERS:
    API[(_c, "<init>")] = lambda rt, b, a: Rebind(RtRequest())
    API[(_c, "url")] = lambda rt, b, a: (b.__setattr__("url", java_str(a[0])), b)[1]
    API[(_c, "header")] = lambda rt, b, a: (
        b.headers.__setitem__(java_str(a[0]), java_str(a[1])), b
    )[1]
    API[(_c, "addHeader")] = API[(_c, "header")]
    API[(_c, "get")] = lambda rt, b, a: (b.__setattr__("method", "GET"), b)[1]
    API[(_c, "build")] = lambda rt, b, a: b

    def _ok_method(name):
        def fn(rt, b, a):
            b.method = name.upper()
            if a:
                payload = a[0]
                if isinstance(payload, tuple):
                    b.body, b.mime = payload
                else:
                    b.body = java_str(payload)
            return b

        return fn

    for _m in ("post", "put", "delete", "patch"):
        API[(_c, _m)] = _ok_method(_m)

_OK_FORMS = ("okhttp3.FormBody$Builder", "com.squareup.okhttp.FormEncodingBuilder")
for _c in _OK_FORMS:
    API[(_c, "<init>")] = lambda rt, b, a: Rebind([])
    API[(_c, "add")] = lambda rt, b, a: (b.append((java_str(a[0]), java_str(a[1]))), b)[1]
    API[(_c, "build")] = lambda rt, b, a: (
        "&".join(f"{k}={quote_plus(v)}" for k, v in b),
        "application/x-www-form-urlencoded",
    )
for _c in ("okhttp3.RequestBody", "com.squareup.okhttp.RequestBody"):
    API[(_c, "create")] = lambda rt, b, a: (
        java_str(a[-1]),
        a[0] if isinstance(a[0], str) else None,
    )
for _c in ("okhttp3.MediaType", "com.squareup.okhttp.MediaType"):
    API[(_c, "parse")] = lambda rt, b, a: java_str(a[0])

_OK_CLIENTS = ("okhttp3.OkHttpClient", "com.squareup.okhttp.OkHttpClient")
for _c in _OK_CLIENTS:
    API[(_c, "<init>")] = lambda rt, b, a: Rebind(object())
    API[(_c, "newCall")] = lambda rt, b, a: a[0]

_OK_CALLS = ("okhttp3.Call", "com.squareup.okhttp.Call", "retrofit2.Call")


@register(_OK_CALLS, "execute")
def ok_execute(rt, base, args):
    return RtResponse(rt.send(base))


@register(_OK_CALLS, "enqueue")
def ok_enqueue(rt, base, args):
    response = RtResponse(rt.send(base))
    if args and isinstance(args[0], RtObject):
        rt.call_method(args[0], "onResponse", [base, response])
    return None


for _c in ("okhttp3.Response", "com.squareup.okhttp.Response", "retrofit2.Response"):
    API[(_c, "body")] = lambda rt, b, a: b
    API[(_c, "code")] = lambda rt, b, a: b.response.status
    API[(_c, "isSuccessful")] = lambda rt, b, a: b.response.status < 400
for _c in ("okhttp3.ResponseBody", "com.squareup.okhttp.ResponseBody"):
    API[(_c, "string")] = lambda rt, b, a: b.body
    API[(_c, "charStream")] = lambda rt, b, a: b
    API[(_c, "byteStream")] = lambda rt, b, a: b


# ---------------------------------------------------------------------- android
_CTX = ("android.app.Activity", "android.content.Context", "android.app.Service",
        "android.app.Application")
for _c in _CTX:
    API[(_c, "getResources")] = lambda rt, b, a: object()
    API[(_c, "getString")] = lambda rt, b, a: rt.resources.get_string(int(a[0]))
    API[(_c, "getSharedPreferences")] = lambda rt, b, a: rt.prefs
API[("android.content.res.Resources", "getString")] = lambda rt, b, a: (
    rt.resources.get_string(int(a[0]))
)
API[("android.content.SharedPreferences", "getString")] = lambda rt, b, a: (
    rt.prefs.get(java_str(a[0]), java_str(a[1]) if len(a) > 1 else "")
)
API[("android.content.SharedPreferences", "edit")] = lambda rt, b, a: rt.prefs
API[("android.content.SharedPreferences$Editor", "putString")] = lambda rt, b, a: (
    rt.prefs.__setitem__(java_str(a[0]), java_str(a[1])), rt.prefs
)[1]
for _n in ("apply", "commit"):
    API[("android.content.SharedPreferences$Editor", _n)] = lambda rt, b, a: True

API[("android.content.ContentValues", "<init>")] = lambda rt, b, a: Rebind({})
API[("android.content.ContentValues", "put")] = lambda rt, b, a: b.__setitem__(
    java_str(a[0]), a[1]
)

_DB = "android.database.sqlite.SQLiteDatabase"
API[("android.database.sqlite.SQLiteOpenHelper", "getWritableDatabase")] = (
    lambda rt, b, a: rt.db
)
API[("android.database.sqlite.SQLiteOpenHelper", "getReadableDatabase")] = (
    lambda rt, b, a: rt.db
)
for _n in ("insert", "insertOrThrow", "replace", "insertWithOnConflict"):
    API[(_DB, _n)] = lambda rt, b, a: (
        rt.db.insert(java_str(a[0]), next((x for x in a[1:] if isinstance(x, dict)), {})),
        1,
    )[1]
API[(_DB, "update")] = lambda rt, b, a: (
    rt.db.update(java_str(a[0]), next((x for x in a[1:] if isinstance(x, dict)), {})),
    1,
)[1]


@register(_DB, "rawQuery")
def db_rawquery(rt, base, args):
    sql = java_str(args[0])
    m = re.match(r"select\s+(.*?)\s+from\s+(\w+)", sql, re.IGNORECASE)
    if not m:
        return RtCursor([], [])
    columns = [c.strip() for c in m.group(1).split(",")]
    table = m.group(2)
    if columns == ["*"]:
        return rt.db.query(table, None)
    return rt.db.query(table, columns)


@register(_DB, "query")
def db_query(rt, base, args):
    table = java_str(args[0])
    columns = args[1] if len(args) > 1 and isinstance(args[1], list) else None
    return rt.db.query(table, [java_str(c) for c in columns] if columns else None)


_CUR = "android.database.Cursor"
API[(_CUR, "moveToFirst")] = lambda rt, b, a: b.move_next()
API[(_CUR, "moveToNext")] = lambda rt, b, a: b.move_next()
API[(_CUR, "isAfterLast")] = lambda rt, b, a: b.idx >= len(b.rows)
API[(_CUR, "getCount")] = lambda rt, b, a: len(b.rows)
API[(_CUR, "getColumnIndex")] = lambda rt, b, a: b.columns.index(java_str(a[0]))
API[(_CUR, "getString")] = lambda rt, b, a: java_str(b.get(int(a[0])))
API[(_CUR, "getInt")] = lambda rt, b, a: int(b.get(int(a[0])))
API[(_CUR, "close")] = lambda rt, b, a: None

API[("android.media.MediaPlayer", "<init>")] = lambda rt, b, a: Rebind(object())


@register("android.media.MediaPlayer", "setDataSource")
def mp_set_source(rt, base, args):
    rt.send(RtRequest(method="GET", url=java_str(args[0])))
    return None


for _n in ("prepare", "prepareAsync", "start", "stop", "release"):
    API[("android.media.MediaPlayer", _n)] = lambda rt, b, a: None
API[("android.media.AudioRecord", "read")] = lambda rt, b, a: "pcm-audio-bytes"

API[("android.location.LocationManager", "getLastKnownLocation")] = (
    lambda rt, b, a: RtLocation()
)
API[("android.location.Location", "getLatitude")] = lambda rt, b, a: b.lat
API[("android.location.Location", "getLongitude")] = lambda rt, b, a: b.lon


@register("android.location.LocationManager", "requestLocationUpdates")
def loc_updates(rt, base, args):
    listener = next((x for x in args if isinstance(x, RtObject)), None)
    if listener is not None:
        rt.call_method(listener, "onLocationChanged", [RtLocation()])
    return None


for _c in ("android.widget.EditText", "android.widget.TextView"):
    API[(_c, "getText")] = lambda rt, b, a: rt.next_text_input()
API[("android.text.Editable", "toString")] = lambda rt, b, a: java_str(b)
API[("android.widget.Spinner", "getSelectedItem")] = lambda rt, b, a: rt.next_text_input()

API[("android.content.Intent", "<init>")] = lambda rt, b, a: Rebind(RtIntent())
API[("android.content.Intent", "putExtra")] = lambda rt, b, a: (
    b.extras.__setitem__(java_str(a[0]), a[1]), b
)[1]
API[("android.content.Intent", "getStringExtra")] = lambda rt, b, a: java_str(
    b.extras.get(java_str(a[0]), rt.intent_extra(java_str(a[0])))
) if isinstance(b, RtIntent) else rt.intent_extra(java_str(a[0]))
API[("android.provider.Settings$Secure", "getString")] = lambda rt, b, a: rt.android_id


for _c in ("android.widget.TextView", "android.webkit.WebView"):
    API[(_c, "setText")] = lambda rt, b, a: None
    API[(_c, "loadData")] = lambda rt, b, a: None


@register("android.webkit.WebView", "loadUrl")
def webview_load(rt, base, args):
    rt.send(RtRequest(method="GET", url=java_str(args[0])))
    return None


# ------------------------------------------------------------------------ async
API[("android.os.Handler", "<init>")] = lambda rt, b, a: Rebind(object())


@register("android.os.Handler", ("post", "postDelayed"))
def handler_post(rt, base, args):
    runnable = next((x for x in args if isinstance(x, RtObject)), None)
    delay = next((x for x in args if isinstance(x, (int, float))), 0)
    if runnable is not None:
        rt.schedule(runnable, "run", delay)
    return True


API[("java.util.Timer", "<init>")] = lambda rt, b, a: Rebind(object())


@register("java.util.Timer", ("schedule", "scheduleAtFixedRate"))
def timer_schedule(rt, base, args):
    task = next((x for x in args if isinstance(x, RtObject)), None)
    delay = next((x for x in args if isinstance(x, (int, float))), 0)
    if task is not None:
        rt.schedule(task, "run", delay)
    return None


@register_dispatch("android.os.AsyncTask", ("execute", "executeOnExecutor"))
def asynctask_execute(rt, base, args):
    result = rt.call_method(base, "doInBackground", list(args))
    rt.call_method(base, "onPostExecute", [result])
    return base


@register_dispatch("java.lang.Thread", "start")
def thread_start(rt, base, args):
    rt.call_method(base, "run", [])
    return None


for _c in ("java.util.concurrent.ExecutorService", "java.util.concurrent.Executor"):
    pass  # corpus uses AsyncTask/Thread/Handler/Timer


__all__ = ["API", "DISPATCH", "Rebind", "RtClassRef", "java_str"]
