"""Scripted origin servers.

Each corpus app ships a server script producing realistic responses so the
dynamic baselines generate traffic with genuine bodies — required for the
keyword and byte-level matching of Fig. 7 / Table 2.  Routes match on
(method, path regex); handlers may keep session state (login cookies,
pagination tokens), mirroring the stateful flows the paper fuzzes manually.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from .httpstack import HttpRequest, HttpResponse

Handler = Callable[[HttpRequest, dict], HttpResponse]


@dataclass
class Route:
    method: str
    pattern: "re.Pattern[str]"
    handler: Handler


class ScriptedServer:
    def __init__(self, host: str) -> None:
        self.host = host
        self.routes: list[Route] = []
        self.state: dict = {}

    def route(self, method: str, path_pattern: str):
        """Decorator: register a handler for ``method`` + path regex."""

        def deco(fn: Handler) -> Handler:
            self.routes.append(Route(method, re.compile(path_pattern + r"$"), fn))
            return fn

        return deco

    def add(self, method: str, path_pattern: str, handler: Handler) -> None:
        self.routes.append(Route(method, re.compile(path_pattern + r"$"), handler))

    def handle(self, request: HttpRequest) -> HttpResponse:
        for route in self.routes:
            if route.method == request.method and route.pattern.match(request.path):
                return route.handler(request, self.state)
        return HttpResponse(status=404, body="not found")


def static_json(payload) -> Handler:
    def handler(request: HttpRequest, state: dict) -> HttpResponse:
        return HttpResponse.json_response(payload)

    return handler


def static_xml(body: str) -> Handler:
    def handler(request: HttpRequest, state: dict) -> HttpResponse:
        return HttpResponse.xml_response(body)

    return handler


def static_binary(size: int = 4096) -> Handler:
    def handler(request: HttpRequest, state: dict) -> HttpResponse:
        return HttpResponse.binary(size)

    return handler


__all__ = ["Handler", "Route", "ScriptedServer", "static_binary", "static_json", "static_xml"]
