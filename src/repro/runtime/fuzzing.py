"""UI-fuzzing baselines (paper §5.1).

Two fuzzers drive the interpreted app and capture traffic:

* :class:`ManualUiFuzzer` — a careful human: signs up / logs in, drives
  standard *and* custom UI, triggers location updates by moving around.
  Still cannot fire timers, server pushes, or actions with real-world side
  effects (purchases, job applications).
* :class:`AutoUiFuzzer` — PUMA-like automation: clicks every *standard*
  clickable it can recognise, cannot log in, stops at custom UI, never
  waits for timers.

Extractocol's static analysis sees all of these paths, which is the source
of its coverage advantage in Table 1 / Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apk.model import Apk, EntryPoint, TriggerKind
from .httpstack import Network, TrafficTrace
from .interpreter import Runtime, RuntimeError_


@dataclass
class FuzzResult:
    trace: TrafficTrace
    fired: list[str] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)
    faults: list[str] = field(default_factory=list)

    @property
    def transactions(self):
        return self.trace.transactions


class _BaseFuzzer:
    manual: bool = False
    #: how long (ms) of scheduled-callback delay a fuzzing session tolerates
    session_patience_ms: float = 0.0

    def fuzz(self, apk: Apk, network: Network, *, seed: int = 7) -> FuzzResult:
        runtime = Runtime(apk, network, seed=seed)
        result = FuzzResult(trace=network.trace)
        did_login = self._try_login(apk, runtime, result)
        already_fired = set(result.fired)
        for ep in apk.entrypoints:
            if (ep.name or ep.method_id) in already_fired:
                continue  # the login flow already drove this entry point
            ok, reason = self._can_fire(ep, did_login)
            if not ok:
                result.skipped.append((ep.name or ep.method_id, reason))
                continue
            self._fire(runtime, ep, result)
        # a fuzzing session idles briefly; only near-immediate callbacks run
        # (drained to a fixpoint — posted runnables may post more)
        for _ in range(16):
            if not runtime.drain_scheduled(max_delay_ms=self.session_patience_ms):
                break
        return result

    # -- policy -----------------------------------------------------------
    def _try_login(self, apk: Apk, runtime: Runtime, result: FuzzResult) -> bool:
        if not self.manual:
            return False
        login_eps = [
            ep
            for ep in apk.entrypoints
            if "login" in (ep.name or "").lower() or "sign" in (ep.name or "").lower()
        ]
        for ep in login_eps:
            self._fire(runtime, ep, result)
        return bool(login_eps)

    def _can_fire(self, ep: EntryPoint, did_login: bool) -> tuple[bool, str]:
        if ep.side_effect:
            return False, "side-effect action (purchase/apply) — not fuzzable"
        if ep.kind in (TriggerKind.TIMER, TriggerKind.SERVER_PUSH):
            return False, f"{ep.kind.value}-triggered — no UI path"
        if self.manual:
            if ep.requires_login and not did_login:
                return False, "requires login and no login flow exists"
            return True, ""
        # automatic (PUMA-like)
        if ep.requires_login:
            return False, "requires login — automation cannot authenticate"
        if ep.custom_ui or ep.kind == TriggerKind.UI_CUSTOM:
            return False, "custom UI — automation fails to recognise it"
        if ep.kind == TriggerKind.LOCATION:
            return False, "location event — device does not move during automation"
        return True, ""

    def _fire(self, runtime: Runtime, ep: EntryPoint, result: FuzzResult) -> None:
        try:
            runtime.fire_entrypoint(ep)
            result.fired.append(ep.name or ep.method_id)
        except RuntimeError_ as exc:
            result.faults.append(f"{ep.name or ep.method_id}: {exc}")


class ManualUiFuzzer(_BaseFuzzer):
    manual = True
    session_patience_ms = 5_000.0


class AutoUiFuzzer(_BaseFuzzer):
    """PUMA substitute: 'the most advanced UI automation tool ... publicly
    available' — still blind to login walls, custom widgets and timers."""

    manual = False
    session_patience_ms = 0.0


def run_both(apk: Apk, network_factory) -> tuple[FuzzResult, FuzzResult]:
    """Run manual and auto fuzzing on fresh networks from ``network_factory``."""
    manual = ManualUiFuzzer().fuzz(apk, network_factory())
    auto = AutoUiFuzzer().fuzz(apk, network_factory())
    return manual, auto


__all__ = ["AutoUiFuzzer", "FuzzResult", "ManualUiFuzzer", "run_both"]
