"""Concrete IR interpreter — executes corpus apps for the dynamic baselines.

The interpreter runs the *same* Jimple-level programs the static pipeline
analyses, against the in-process HTTP stack, so UI fuzzing produces genuine
traffic traces to compare signatures with (paper §5.1's methodology:
"collect traffic traces of all HTTP(S) transactions using UI-fuzzing ...
then match the traffic traces with our regex signatures").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..apk.model import Apk, EntryPoint
from ..ir.method import Method
from ..ir.statements import (
    AssignStmt,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)
from ..ir.values import (
    ArrayRef,
    BinOpExpr,
    CastExpr,
    ClassConst,
    DoubleConst,
    InstanceFieldRef,
    InstanceOfExpr,
    IntConst,
    InvokeExpr,
    LengthExpr,
    Local,
    NewArrayExpr,
    NewExpr,
    NullConst,
    ParamRef,
    StaticFieldRef,
    StringConst,
    ThisRef,
    UnOpExpr,
    Value,
)
from .httpstack import HttpRequest, HttpResponse, Network
from .objects import RtDatabase, RtObject, RtRequest
from .stdlib import API, DISPATCH, Rebind, RtClassRef, java_str


class RuntimeError_(Exception):
    """Execution fault inside the interpreted app (missing key, bad route);
    fuzzers catch these and continue, like a crashed Activity."""


@dataclass
class ScheduledCall:
    target: RtObject
    method_name: str
    delay_ms: float


@dataclass
class RuntimeStats:
    steps: int = 0
    calls: int = 0
    faults: list[str] = field(default_factory=list)


class Runtime:
    """Executes one app instance against a network."""

    MAX_STEPS = 500_000
    MAX_DEPTH = 64

    def __init__(self, apk: Apk, network: Network, *, seed: int = 7) -> None:
        self.apk = apk
        self.program = apk.program
        self.network = network
        self.resources = apk.resources
        self.rng = random.Random(seed)
        self.statics: dict[tuple[str, str], object] = {}
        self.prefs: dict[str, str] = {}
        self.db = RtDatabase()
        self.pending: list[ScheduledCall] = []
        self.stats = RuntimeStats()
        self.current_call_name = ""
        self.android_id = "android-id-42"
        self.device_uuid = "00000000-0000-4000-8000-0000000000aa"
        self._clock = 1_480_000_000_000
        self._text_inputs = ["cats", "hiphop", "alice", "secret"]
        self._text_idx = 0
        self._intent_extras: dict[str, str] = {}
        self._instances: dict[str, RtObject] = {}

    # -- environment hooks ---------------------------------------------------
    def clock(self) -> int:
        self._clock += 13
        return self._clock

    def next_text_input(self) -> str:
        value = self._text_inputs[self._text_idx % len(self._text_inputs)]
        self._text_idx += 1
        return value

    def set_text_inputs(self, inputs: list[str]) -> None:
        self._text_inputs = list(inputs) or ["input"]
        self._text_idx = 0

    def intent_extra(self, key: str) -> str:
        return self._intent_extras.get(key, f"extra-{key}")

    def send(self, req: RtRequest) -> HttpResponse:
        request = HttpRequest(
            method=req.method,
            url=req.url,
            headers=dict(req.headers),
            body=req.body,
        )
        return self.network.send(request)

    def schedule(self, target: RtObject, method_name: str, delay_ms: float) -> None:
        self.pending.append(ScheduledCall(target, method_name, delay_ms))

    def drain_scheduled(self, *, max_delay_ms: float = 0.0) -> int:
        """Run scheduled callbacks with delay ≤ budget.  Fuzzing sessions are
        short: long-delay timers never fire during a fuzz run (§5.1)."""
        fired = 0
        pending, self.pending = self.pending, []
        remaining = []
        for call in pending:
            if call.delay_ms <= max_delay_ms:
                try:
                    self.call_method(call.target, call.method_name, [])
                except RuntimeError_ as exc:
                    self.stats.faults.append(f"scheduled {call.method_name}: {exc}")
                fired += 1
            else:
                remaining.append(call)
        # callbacks may have scheduled more work; keep both sets
        self.pending.extend(remaining)
        return fired

    # -- reflection (gson) -------------------------------------------------------
    def reflect_serialize(self, obj) -> object:
        if isinstance(obj, RtObject):
            out = {}
            cls = self.program.class_of(obj.class_name)
            while cls is not None:
                for fname, fsig in cls.fields.items():
                    out[fname] = self.reflect_serialize(obj.fields.get(fname))
                cls = self.program.class_of(cls.superclass) if cls.superclass else None
            return out
        return obj

    def reflect_bind(self, data, class_name: str):
        cls = self.program.class_of(class_name)
        if cls is None or not isinstance(data, dict):
            return data
        obj = RtObject(class_name)
        current = cls
        while current is not None:
            for fname, fsig in current.fields.items():
                value = data.get(fname)
                if self.program.has_class(fsig.type.name):
                    value = self.reflect_bind(value, fsig.type.name)
                obj.fields[fname] = value
            current = (
                self.program.class_of(current.superclass) if current.superclass else None
            )
        return obj

    # -- entry points ----------------------------------------------------------
    def singleton(self, class_name: str) -> RtObject:
        """App components are singletons across one runtime session so heap
        state (tokens, pagination cursors) persists between events."""
        obj = self._instances.get(class_name)
        if obj is None:
            obj = RtObject(class_name)
            self._instances[class_name] = obj
        return obj

    def fire_entrypoint(self, ep: EntryPoint) -> None:
        method = self.program.method_by_id(ep.method_id)
        this = None if method.is_static else self.singleton(method.class_name)
        args = [self._default_arg(p.name) for p in method.sig.param_types]
        self.call(method, this, args)

    def _default_arg(self, type_name: str) -> object:
        from .objects import RtLocation

        if type_name in ("int", "long", "short", "byte"):
            return 0
        if type_name in ("float", "double"):
            return 0.0
        if type_name == "boolean":
            return False
        if type_name == "java.lang.String":
            return self.next_text_input()
        if type_name == "android.location.Location":
            return RtLocation()
        if type_name == "org.json.JSONObject":
            return {}
        if self.program.has_class(type_name):
            return self.singleton(type_name)
        return None

    # -- calls -------------------------------------------------------------------
    def call_method(self, obj: RtObject, method_name: str, args: list) -> object:
        target = None
        for cname in self.program.superclasses(obj.class_name):
            cls = self.program.class_of(cname)
            if cls is None:
                break
            found = [m for m in cls.find_methods(method_name) if m.body is not None]
            if found:
                target = found[0]
                break
        if target is None:
            return None
        padded = list(args)[: len(target.sig.param_types)]
        while len(padded) < len(target.sig.param_types):
            padded.append(None)
        return self.call(target, obj, padded)

    def call(self, method: Method, this, args: list, depth: int = 0) -> object:
        if depth > self.MAX_DEPTH:
            raise RuntimeError_(f"call depth exceeded at {method.method_id}")
        body = method.body
        if body is None:
            return None
        self.stats.calls += 1
        env: dict[str, object] = {}
        pc = 0
        statements = body.statements
        while pc < len(statements):
            self.stats.steps += 1
            if self.stats.steps > self.MAX_STEPS:
                raise RuntimeError_("step budget exceeded")
            stmt = statements[pc]
            if isinstance(stmt, IdentityStmt):
                if isinstance(stmt.rhs, ThisRef):
                    env[stmt.target.name] = this
                elif isinstance(stmt.rhs, ParamRef):
                    env[stmt.target.name] = (
                        args[stmt.rhs.index] if stmt.rhs.index < len(args) else None
                    )
                pc += 1
            elif isinstance(stmt, AssignStmt):
                self._exec_assign(stmt, env, depth)
                pc += 1
            elif isinstance(stmt, InvokeStmt):
                self._eval_call(stmt.expr, env, depth)
                pc += 1
            elif isinstance(stmt, IfStmt):
                if self._truthy(self._eval(stmt.condition, env, depth)):
                    pc = body.label_index(stmt.target)
                else:
                    pc += 1
            elif isinstance(stmt, GotoStmt):
                pc = body.label_index(stmt.target)
            elif isinstance(stmt, ReturnStmt):
                if stmt.value is not None:
                    return self._eval(stmt.value, env, depth)
                return None
            elif isinstance(stmt, ThrowStmt):
                raise RuntimeError_(f"app threw at {method.method_id}#{stmt.index}")
            elif isinstance(stmt, NopStmt):
                pc += 1
            else:
                pc += 1
        return None

    # -- statement helpers -----------------------------------------------------
    def _exec_assign(self, stmt: AssignStmt, env: dict, depth: int) -> None:
        value = self._eval(stmt.rhs, env, depth)
        target = stmt.target
        if isinstance(target, Local):
            env[target.name] = value
        elif isinstance(target, InstanceFieldRef):
            base = self._eval(target.base, env, depth)
            if isinstance(base, RtObject):
                base.fields[target.field.name] = value
            elif base is None:
                raise RuntimeError_("null field store")
        elif isinstance(target, StaticFieldRef):
            self.statics[(target.field.class_name, target.field.name)] = value
        elif isinstance(target, ArrayRef):
            base = self._eval(target.base, env, depth)
            idx = int(self._eval(target.index, env, depth))
            if isinstance(base, list):
                while len(base) <= idx:
                    base.append(None)
                base[idx] = value

    @staticmethod
    def _truthy(value) -> bool:
        if value is None:
            return False
        if isinstance(value, (int, float, bool)):
            return bool(value)
        return True

    # -- value evaluation -----------------------------------------------------
    def _eval(self, value: Value, env: dict, depth: int):
        if isinstance(value, Local):
            return env.get(value.name)
        if isinstance(value, StringConst):
            return value.value
        if isinstance(value, IntConst):
            return value.value
        if isinstance(value, DoubleConst):
            return value.value
        if isinstance(value, NullConst):
            return None
        if isinstance(value, ClassConst):
            return RtClassRef(value.class_name)
        if isinstance(value, NewExpr):
            name = value.class_type.name
            if self.program.has_class(name):
                return RtObject(name)
            return ("uninit", name)
        if isinstance(value, NewArrayExpr):
            size = int(self._eval(value.size, env, depth))
            return [None] * size
        if isinstance(value, InvokeExpr):
            return self._eval_call(value, env, depth)
        if isinstance(value, InstanceFieldRef):
            base = self._eval(value.base, env, depth)
            if isinstance(base, RtObject):
                return base.fields.get(value.field.name)
            if base is None:
                raise RuntimeError_(f"null field read of {value.field.name}")
            return getattr(base, value.field.name, None)
        if isinstance(value, StaticFieldRef):
            return self.statics.get((value.field.class_name, value.field.name))
        if isinstance(value, ArrayRef):
            base = self._eval(value.base, env, depth)
            idx = int(self._eval(value.index, env, depth))
            return base[idx] if isinstance(base, list) and idx < len(base) else None
        if isinstance(value, BinOpExpr):
            return self._eval_binop(value, env, depth)
        if isinstance(value, UnOpExpr):
            inner = self._eval(value.operand, env, depth)
            if value.op == "!":
                return not self._truthy(inner)
            if value.op == "-":
                return -(inner or 0)
            return inner
        if isinstance(value, CastExpr):
            return self._eval(value.value, env, depth)
        if isinstance(value, InstanceOfExpr):
            inner = self._eval(value.value, env, depth)
            return isinstance(inner, RtObject) and value.check_type.name in set(
                self.program.superclasses(inner.class_name)
            )
        if isinstance(value, LengthExpr):
            inner = self._eval(value.array, env, depth)
            return len(inner) if isinstance(inner, (list, str)) else 0
        raise RuntimeError_(f"cannot evaluate {value!r}")

    def _eval_binop(self, expr: BinOpExpr, env: dict, depth: int):
        left = self._eval(expr.left, env, depth)
        right = self._eval(expr.right, env, depth)
        op = expr.op
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return java_str(left) + java_str(right)
            return (left or 0) + (right or 0)
        if op in ("-", "*", "/", "%"):
            l, r = left or 0, right or 0
            if op == "-":
                return l - r
            if op == "*":
                return l * r
            if op == "/":
                return l // r if isinstance(l, int) and isinstance(r, int) else l / r
            return l % r
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return (left or 0) < (right or 0)
        if op == "<=":
            return (left or 0) <= (right or 0)
        if op == ">":
            return (left or 0) > (right or 0)
        if op == ">=":
            return (left or 0) >= (right or 0)
        if op == "&&":
            return self._truthy(left) and self._truthy(right)
        if op == "||":
            return self._truthy(left) or self._truthy(right)
        raise RuntimeError_(f"bad operator {op}")

    # -- call dispatch --------------------------------------------------------------
    def _eval_call(self, expr: InvokeExpr, env: dict, depth: int):
        base = self._eval(expr.base, env, depth) if expr.base is not None else None
        args = [self._eval(a, env, depth) for a in expr.args]
        sig = expr.sig
        receiver = sig.class_name
        if isinstance(expr.base, Local):
            receiver = expr.base.type.name

        # 1) application dispatch
        if isinstance(base, RtObject):
            target = self.program.resolve_dispatch(base.class_name, sig)
            if target is not None:
                return self.call(target, base, args, depth + 1)
            # framework dispatch through library ancestors
            handler = self._lookup_dispatch(base.class_name, sig.name)
            if handler is not None:
                return self._apply(handler, expr, base, args, env)
        if expr.kind == "static":
            target = self.program.resolve_static(sig)
            if target is not None:
                return self.call(target, None, args, depth + 1)
        if sig.name == "<init>" and isinstance(base, RtObject):
            cls = self.program.class_of(base.class_name)
            target = self.program.resolve_dispatch(base.class_name, sig)
            if target is not None:
                return self.call(target, base, args, depth + 1)
            return None  # implicit default constructor

        # 2) library API
        for cls_name in (receiver, sig.class_name):
            handler = API.get((cls_name, sig.name))
            if handler is not None:
                return self._apply(handler, expr, base, args, env)

        # 3) unknown: record a fault but keep running (apps tolerate)
        self.stats.faults.append(f"unmodeled call {receiver}.{sig.name}")
        return None

    def _lookup_dispatch(self, class_name: str, method_name: str):
        for ancestor in self.program.library_ancestors(class_name):
            handler = DISPATCH.get((ancestor, method_name))
            if handler is not None:
                return handler
        return None

    def _apply(self, handler, expr: InvokeExpr, base, args, env):
        self.current_call_name = expr.sig.name
        try:
            outcome = handler(self, base, args)
        except (KeyError, IndexError, ValueError, TypeError, AttributeError) as exc:
            raise RuntimeError_(
                f"library fault in {expr.sig.qualified_name}: {exc}"
            ) from exc
        if isinstance(outcome, Rebind):
            if isinstance(expr.base, Local):
                env[expr.base.name] = outcome.value
            return outcome.result
        return outcome


__all__ = ["Runtime", "RuntimeError_", "RuntimeStats", "ScheduledCall"]
