"""In-process HTTP(S) stack for the dynamic baselines.

Replaces the paper's real network + mitmproxy: corpus apps run on the IR
interpreter, their HTTP calls route through a :class:`Network` to scripted
origin servers, and every transaction is captured decrypted in a
:class:`TrafficTrace` — the artefact UI fuzzing produces in §5.1.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit


@dataclass
class HttpRequest:
    method: str
    url: str
    headers: dict[str, str] = field(default_factory=dict)
    body: str | None = None

    @property
    def scheme(self) -> str:
        return urlsplit(self.url).scheme or "http"

    @property
    def host(self) -> str:
        return urlsplit(self.url).netloc

    @property
    def path(self) -> str:
        return urlsplit(self.url).path

    @property
    def query(self) -> dict[str, str]:
        return dict(parse_qsl(urlsplit(self.url).query, keep_blank_values=True))

    @property
    def query_string(self) -> str:
        return urlsplit(self.url).query

    def json(self):
        return json.loads(self.body) if self.body else None


@dataclass
class HttpResponse:
    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: str = ""

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    def json(self):
        return json.loads(self.body) if self.body else None

    @staticmethod
    def json_response(payload, status: int = 200) -> "HttpResponse":
        return HttpResponse(
            status=status,
            headers={"Content-Type": "application/json"},
            body=json.dumps(payload),
        )

    @staticmethod
    def xml_response(body: str, status: int = 200) -> "HttpResponse":
        return HttpResponse(
            status=status, headers={"Content-Type": "application/xml"}, body=body
        )

    @staticmethod
    def text(body: str, status: int = 200) -> "HttpResponse":
        return HttpResponse(
            status=status, headers={"Content-Type": "text/plain"}, body=body
        )

    @staticmethod
    def binary(size: int = 4096, status: int = 200) -> "HttpResponse":
        return HttpResponse(
            status=status,
            headers={"Content-Type": "application/octet-stream",
                     "Content-Length": str(size)},
            body="\x00" * min(size, 4096),
        )


@dataclass
class CapturedTransaction:
    request: HttpRequest
    response: HttpResponse

    def __str__(self) -> str:
        return f"{self.request.method} {self.request.url} -> {self.response.status}"


class TrafficTrace:
    """The mitmproxy substitute: every transaction, already decrypted."""

    def __init__(self) -> None:
        self.transactions: list[CapturedTransaction] = []

    def record(self, request: HttpRequest, response: HttpResponse) -> None:
        self.transactions.append(CapturedTransaction(request, response))

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self):
        return iter(self.transactions)

    def urls(self) -> list[str]:
        return [t.request.url for t in self.transactions]

    def unique_urls(self) -> set[str]:
        return set(self.urls())

    def by_method(self, method: str) -> list[CapturedTransaction]:
        return [t for t in self.transactions if t.request.method == method]


class Network:
    """Routes requests by host to registered server handlers and records
    everything on the trace."""

    def __init__(self, trace: TrafficTrace | None = None) -> None:
        self.trace = trace if trace is not None else TrafficTrace()
        self._servers: dict[str, object] = {}

    def register(self, host: str, server) -> None:
        self._servers[host] = server

    def send(self, request: HttpRequest) -> HttpResponse:
        server = self._servers.get(request.host)
        if server is None:
            response = HttpResponse(status=502, body="no route to host")
        else:
            response = server.handle(request)
        self.trace.record(request, response)
        return response


__all__ = [
    "CapturedTransaction",
    "HttpRequest",
    "HttpResponse",
    "Network",
    "TrafficTrace",
]
