"""Dynamic substrate: IR interpreter, in-process HTTP stack, scripted
servers, traffic capture and the UI-fuzzing baselines."""

from .fuzzing import AutoUiFuzzer, FuzzResult, ManualUiFuzzer, run_both
from .httpstack import (
    CapturedTransaction,
    HttpRequest,
    HttpResponse,
    Network,
    TrafficTrace,
)
from .interpreter import Runtime, RuntimeError_
from .objects import RtObject, RtRequest, RtResponse
from .server import ScriptedServer, static_binary, static_json, static_xml

__all__ = [name for name in dir() if not name.startswith("_")]
