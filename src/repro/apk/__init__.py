"""APK model: manifest, resources, entry points, loader, (de)obfuscation."""

from .deobfuscate import (
    DeobfuscationMap,
    apply_deobfuscation,
    build_deobfuscation_map,
)
from .loader import load_apk, save_apk
from .manifest import Manifest
from .model import Apk, EntryPoint, TriggerKind
from .obfuscator import FRAMEWORK_KEEP_NAMES, ObfuscationResult, obfuscate, plan_renames
from .resources import Resources
from .rewrite import RenameMap, rename_program

__all__ = [name for name in dir() if not name.startswith("_")]
