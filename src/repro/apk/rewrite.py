"""Whole-program renaming — the transformation substrate for the
ProGuard-like obfuscator and the de-obfuscation mapper.

The IR is immutable, so renaming rebuilds the program: every type, method
signature, field signature and value is mapped structurally.  Renames are
expressed as three maps:

* ``class_map``: old fully-qualified class name → new name,
* ``method_map``: old method name → new name (global, hierarchy-consistent),
* ``field_map``: old field name → new name (global).

Method/field renames only apply where the *declaring* (call-site static)
class is itself renamed, so library calls such as ``StringBuilder.append``
are never touched — matching how ProGuard keeps framework references intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.classes import ClassDef
from ..ir.method import Body, Method
from ..ir.program import Program
from ..ir.statements import (
    AssignStmt,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)
from ..ir.types import ArrayType, ClassType, Type, array_t, class_t
from ..ir.values import (
    ArrayRef,
    BinOpExpr,
    CastExpr,
    ClassConst,
    FieldSig,
    InstanceFieldRef,
    InstanceOfExpr,
    InvokeExpr,
    LengthExpr,
    Local,
    MethodSig,
    NewArrayExpr,
    NewExpr,
    ParamRef,
    StaticFieldRef,
    ThisRef,
    UnOpExpr,
    Value,
)


@dataclass
class RenameMap:
    class_map: dict[str, str] = field(default_factory=dict)
    method_map: dict[str, str] = field(default_factory=dict)
    field_map: dict[str, str] = field(default_factory=dict)

    def cls(self, name: str) -> str:
        return self.class_map.get(name, name)

    def method(self, class_name: str, name: str) -> str:
        if class_name in self.class_map:
            return self.method_map.get(name, name)
        return name

    def fld(self, class_name: str, name: str) -> str:
        if class_name in self.class_map:
            return self.field_map.get(name, name)
        return name

    def inverted(self) -> "RenameMap":
        return RenameMap(
            class_map={v: k for k, v in self.class_map.items()},
            method_map={v: k for k, v in self.method_map.items()},
            field_map={v: k for k, v in self.field_map.items()},
        )


class _Rewriter:
    def __init__(self, renames: RenameMap) -> None:
        self.r = renames
        self._locals: dict[tuple[str, str], Local] = {}

    # -- types ------------------------------------------------------------
    def type(self, t: Type) -> Type:
        if isinstance(t, ArrayType):
            return array_t(self.type(t.element))
        if isinstance(t, ClassType):
            return class_t(self.r.cls(t.name))
        return t

    def method_sig(self, sig: MethodSig) -> MethodSig:
        return MethodSig(
            self.r.cls(sig.class_name),
            self.r.method(sig.class_name, sig.name),
            tuple(self.type(p) for p in sig.param_types),
            self.type(sig.return_type),
        )

    def field_sig(self, sig: FieldSig) -> FieldSig:
        return FieldSig(
            self.r.cls(sig.class_name),
            self.r.fld(sig.class_name, sig.name),
            self.type(sig.type),
        )

    # -- values ------------------------------------------------------------
    def local(self, loc: Local) -> Local:
        key = (loc.name, loc.type.name)
        cached = self._locals.get(key)
        if cached is None:
            cached = Local(loc.name, self.type(loc.type))
            self._locals[key] = cached
        return cached

    def value(self, v: Value) -> Value:
        if isinstance(v, Local):
            return self.local(v)
        if isinstance(v, NewExpr):
            mapped = self.type(v.class_type)
            assert isinstance(mapped, ClassType)
            return NewExpr(mapped)
        if isinstance(v, NewArrayExpr):
            return NewArrayExpr(self.type(v.element_type), self.value(v.size))
        if isinstance(v, BinOpExpr):
            return BinOpExpr(v.op, self.value(v.left), self.value(v.right))
        if isinstance(v, UnOpExpr):
            return UnOpExpr(v.op, self.value(v.operand))
        if isinstance(v, CastExpr):
            return CastExpr(self.type(v.to_type), self.value(v.value))
        if isinstance(v, InstanceOfExpr):
            return InstanceOfExpr(self.value(v.value), self.type(v.check_type))
        if isinstance(v, LengthExpr):
            return LengthExpr(self.value(v.array))
        if isinstance(v, InstanceFieldRef):
            return InstanceFieldRef(self.value(v.base), self.field_sig(v.field))
        if isinstance(v, StaticFieldRef):
            return StaticFieldRef(self.field_sig(v.field))
        if isinstance(v, ArrayRef):
            return ArrayRef(self.value(v.base), self.value(v.index))
        if isinstance(v, InvokeExpr):
            base = self.value(v.base) if v.base is not None else None
            return InvokeExpr(
                v.kind,
                self.method_sig(v.sig),
                base,
                tuple(self.value(a) for a in v.args),
            )
        if isinstance(v, ThisRef):
            mapped = self.type(v.type)
            assert isinstance(mapped, ClassType)
            return ThisRef(mapped)
        if isinstance(v, ParamRef):
            return ParamRef(v.index, self.type(v.type))
        if isinstance(v, ClassConst):
            return ClassConst(self.r.cls(v.class_name))
        return v  # constants

    # -- statements --------------------------------------------------------
    def stmt(self, s: Stmt) -> Stmt:
        if isinstance(s, AssignStmt):
            return AssignStmt(self.value(s.target), self.value(s.rhs))  # type: ignore[arg-type]
        if isinstance(s, IdentityStmt):
            return IdentityStmt(self.value(s.target), self.value(s.rhs))  # type: ignore[arg-type]
        if isinstance(s, InvokeStmt):
            expr = self.value(s.expr)
            assert isinstance(expr, InvokeExpr)
            return InvokeStmt(expr)
        if isinstance(s, IfStmt):
            return IfStmt(self.value(s.condition), s.target)
        if isinstance(s, GotoStmt):
            return GotoStmt(s.target)
        if isinstance(s, ReturnStmt):
            return ReturnStmt(self.value(s.value) if s.value is not None else None)
        if isinstance(s, ThrowStmt):
            return ThrowStmt(self.value(s.value))
        if isinstance(s, NopStmt):
            return NopStmt()
        raise TypeError(f"unhandled statement type {type(s).__name__}")


def rename_program(program: Program, renames: RenameMap) -> Program:
    """Return a structurally identical program with identifiers renamed."""
    out = Program()
    for cls in program.classes.values():
        rw = _Rewriter(renames)
        superclass = renames.cls(cls.superclass) if cls.superclass else cls.superclass
        new_cls = ClassDef(
            renames.cls(cls.name),
            superclass=superclass,
            interfaces=tuple(renames.cls(i) for i in cls.interfaces),
            is_interface=cls.is_interface,
        )
        for fld in cls.fields.values():
            new_cls.add_field(renames.fld(cls.name, fld.name), rw.type(fld.type))
        for method in cls.methods():
            new_sig = rw.method_sig(method.sig)
            if method.body is None:
                new_cls.add_method(
                    Method(new_sig, is_static=method.is_static, is_abstract=True, body=None)
                )
                continue
            new_body = Body()
            for local in method.body.locals.values():
                new_body.declare_local(rw.local(local))
            new_method = Method(new_sig, is_static=method.is_static, body=new_body)
            for stmt in method.body:
                new_body.add(rw.stmt(stmt))
            new_body.labels = dict(method.body.labels)
            new_body._sealed = True
            new_method.param_locals = [rw.local(p) for p in method.param_locals]
            new_method.this_local = (
                rw.local(method.this_local) if method.this_local else None
            )
            new_cls.add_method(new_method)
        out.add_class(new_cls)
    return out


def rename_method_id(method_id: str, renames: RenameMap, program: Program) -> str:
    """Map a ``method_id`` string (``str(MethodSig)``) through the renames."""
    from ..ir.parser import _SIG_RE  # shared signature grammar
    from ..ir.types import parse_type

    m = _SIG_RE.match(method_id)
    if not m:
        raise ValueError(f"bad method id {method_id!r}")
    sig = MethodSig(
        m.group("cls"),
        m.group("name"),
        tuple(
            parse_type(p.strip())
            for p in m.group("params").split(",")
            if p.strip()
        ),
        parse_type(m.group("ret")),
    )
    return str(_Rewriter(renames).method_sig(sig))


__all__ = ["RenameMap", "rename_method_id", "rename_program"]
