"""Signature-similarity de-obfuscation of embedded library code (paper §3.4).

When an app ships a third-party HTTP/JSON library *inside* the APK and the
whole bundle is obfuscated, the semantic model's class/method names no
longer match.  Extractocol pre-processes the code to build a map between the
obfuscated identifiers and the originals by comparing *signature patterns*:
per-method structural fingerprints (parameter kinds, return kind, body
size, call fan-out) aggregated per class.  Ties are broken by comparing
the decompiled code — here, the statement-kind histogram.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..ir.classes import ClassDef
from ..ir.method import Method
from ..ir.program import Program
from ..ir.types import ArrayType, ClassType, PrimType, Type
from .rewrite import RenameMap


def _kind(t: Type, own_classes: set[str]) -> str:
    """Rename-invariant bucket for a type."""
    if isinstance(t, ArrayType):
        return _kind(t.element, own_classes) + "[]"
    if isinstance(t, PrimType):
        return t.name
    if isinstance(t, ClassType):
        if t.name in own_classes:
            return "@own"  # another class of the same library (renamed together)
        if t.name.startswith("java.") or t.name.startswith("android."):
            return t.name  # platform names survive obfuscation
        return "@ext"
    return "?"


def method_fingerprint(method: Method, own_classes: set[str]) -> tuple:
    """A structural fingerprint invariant under identifier renaming."""
    sig = method.sig
    params = tuple(sorted(_kind(p, own_classes) for p in sig.param_types))
    ret = _kind(sig.return_type, own_classes)
    size = len(method.body) if method.body is not None else 0
    calls = 0
    stmt_kinds: Counter[str] = Counter()
    if method.body is not None:
        for stmt in method.body:
            stmt_kinds[type(stmt).__name__] += 1
            if stmt.invoke is not None:
                calls += 1
    return (params, ret, method.is_static, size, calls, tuple(sorted(stmt_kinds.items())))


def class_fingerprint(cls: ClassDef, own_classes: set[str]) -> tuple:
    prints = sorted(method_fingerprint(m, own_classes) for m in cls.methods())
    return (len(cls.fields), tuple(prints))


@dataclass
class DeobfuscationMap:
    """Obfuscated → original identifier mapping plus match diagnostics."""

    renames: RenameMap = field(default_factory=RenameMap)
    matched_classes: int = 0
    ambiguous_classes: int = 0
    unmatched_classes: int = 0

    @property
    def rename_map(self) -> RenameMap:
        return self.renames


def build_deobfuscation_map(
    obfuscated: Program,
    reference: Program,
    *,
    candidate_classes: list[str] | None = None,
) -> DeobfuscationMap:
    """Match obfuscated classes against a reference library program.

    ``reference`` contains the original (unobfuscated) library classes —
    in practice the analyst has the library jar; here the corpus keeps the
    pre-obfuscation program.  ``candidate_classes`` restricts which
    obfuscated classes are considered (default: all).
    """
    result = DeobfuscationMap()
    ref_classes = set(reference.classes)
    ref_by_print: dict[tuple, list[ClassDef]] = {}
    for cls in reference.classes.values():
        ref_by_print.setdefault(class_fingerprint(cls, ref_classes), []).append(cls)

    names = candidate_classes if candidate_classes is not None else list(obfuscated.classes)
    obf_classes = set(names)
    for name in names:
        cls = obfuscated.classes[name]
        candidates = ref_by_print.get(class_fingerprint(cls, obf_classes), [])
        if not candidates:
            result.unmatched_classes += 1
            continue
        if len(candidates) > 1:
            # "When there are multiple methods with the same signature, we
            # look at the decompiled code and look for similarity" — ties
            # are broken by exact method-multiset comparison; if still
            # ambiguous, take the deterministic first and flag it.
            result.ambiguous_classes += 1
        original = sorted(candidates, key=lambda c: c.name)[0]
        result.matched_classes += 1
        if original.name != name:
            result.renames.class_map[name] = original.name
        _match_members(cls, original, obf_classes, ref_classes, result.renames)
    return result


def _match_members(
    obf: ClassDef,
    orig: ClassDef,
    obf_classes: set[str],
    ref_classes: set[str],
    renames: RenameMap,
) -> None:
    orig_by_print: dict[tuple, list[Method]] = {}
    for m in orig.methods():
        orig_by_print.setdefault(method_fingerprint(m, ref_classes), []).append(m)
    for pool in orig_by_print.values():
        pool.sort(key=lambda c: c.name)
    for m in sorted(obf.methods(), key=lambda c: c.name):
        candidates = orig_by_print.get(method_fingerprint(m, obf_classes), [])
        if candidates:
            # each original is assigned at most once, so fingerprint ties
            # (e.g. structurally identical helpers) stay injective
            target = candidates.pop(0)
            if target.name != m.name and m.name not in renames.method_map:
                renames.method_map[m.name] = target.name
    # Fields: match by rename-invariant type kind, deterministically.
    obf_fields = sorted(obf.fields.values(), key=lambda f: f.name)
    orig_fields = sorted(orig.fields.values(), key=lambda f: f.name)
    orig_by_kind: dict[str, list] = {}
    for f in orig_fields:
        orig_by_kind.setdefault(_kind(f.type, ref_classes), []).append(f)
    for f in obf_fields:
        pool = orig_by_kind.get(_kind(f.type, obf_classes))
        if pool:
            target = pool.pop(0)
            if target.name != f.name and f.name not in renames.field_map:
                renames.field_map[f.name] = target.name


def apply_deobfuscation(program: Program, mapping: DeobfuscationMap) -> Program:
    from .rewrite import rename_program

    return rename_program(program, mapping.renames)


__all__ = [
    "DeobfuscationMap",
    "apply_deobfuscation",
    "build_deobfuscation_map",
    "class_fingerprint",
    "method_fingerprint",
]
