"""Load/save ``.sapk`` bundles — the on-disk APK substitute.

A ``.sapk`` is a directory (or zip) containing:

* ``manifest.json``      — the :class:`~repro.apk.manifest.Manifest`,
* ``resources.json``     — string resources,
* ``entrypoints.json``   — framework entry points with trigger metadata,
* ``classes.jimple``     — the program in the textual IR format.

Corpus apps can be saved to ``.sapk`` and re-loaded, which exercises the
printer/parser round-trip on every corpus program.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path

from ..ir.parser import parse_program
from ..ir.printer import print_program
from .manifest import Manifest
from .model import Apk, EntryPoint, TriggerKind
from .resources import Resources

_FILES = ("manifest.json", "resources.json", "entrypoints.json", "classes.jimple")


def bundle_contents(apk: Apk) -> dict[str, str]:
    """The canonical ``.sapk`` file set for an APK model — the single
    source of truth for both on-disk bundles and content digests."""
    return {
        "manifest.json": json.dumps(apk.manifest.to_dict(), indent=2),
        "resources.json": json.dumps(apk.resources.to_dict(), indent=2),
        "entrypoints.json": json.dumps(
            [
                {
                    "method_id": ep.method_id,
                    "kind": ep.kind.value,
                    "name": ep.name,
                    "requires_login": ep.requires_login,
                    "side_effect": ep.side_effect,
                    "custom_ui": ep.custom_ui,
                }
                for ep in apk.entrypoints
            ],
            indent=2,
        ),
        "classes.jimple": print_program(apk.program),
    }


def apk_digest(apk: Apk) -> str:
    """Content address of an APK model: the SHA-256 over its canonical
    ``.sapk`` serialisation.  Loading a bundle and re-digesting yields the
    same value, so corpus keys, exported bundles and uploaded bundles all
    land on the same cache entries in the service result store."""
    contents = bundle_contents(apk)
    h = hashlib.sha256()
    for name in _FILES:
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(contents[name].encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def save_apk(apk: Apk, path: str | Path) -> Path:
    """Write an APK model to a ``.sapk`` directory (or ``.zip`` file)."""
    path = Path(path)
    contents = bundle_contents(apk)
    if path.suffix == ".zip":
        with zipfile.ZipFile(path, "w") as zf:
            for name, text in contents.items():
                zf.writestr(name, text)
    else:
        path.mkdir(parents=True, exist_ok=True)
        for name, text in contents.items():
            (path / name).write_text(text)
    return path


def load_apk(path: str | Path) -> Apk:
    """Load an APK model from a ``.sapk`` directory or zip."""
    path = Path(path)
    if path.is_file() and path.suffix == ".zip":
        with zipfile.ZipFile(path) as zf:
            raw = {name: zf.read(name).decode() for name in _FILES}
    elif path.is_dir():
        raw = {name: (path / name).read_text() for name in _FILES}
    else:
        raise FileNotFoundError(f"no .sapk bundle at {path}")

    manifest = Manifest.from_dict(json.loads(raw["manifest.json"]))
    resources = Resources.from_dict(json.loads(raw["resources.json"]))
    entrypoints = [
        EntryPoint(
            method_id=e["method_id"],
            kind=TriggerKind(e.get("kind", "ui")),
            name=e.get("name", ""),
            requires_login=e.get("requires_login", False),
            side_effect=e.get("side_effect", False),
            custom_ui=e.get("custom_ui", False),
        )
        for e in json.loads(raw["entrypoints.json"])
    ]
    program = parse_program(raw["classes.jimple"])
    return Apk(
        manifest=manifest,
        program=program,
        resources=resources,
        entrypoints=entrypoints,
    )


__all__ = ["apk_digest", "bundle_contents", "load_apk", "save_apk"]
