"""The APK model: the single input Extractocol takes.

An :class:`Apk` bundles the program (Jimple-level classes), the manifest,
the resource table, and the *entry points* — the event handlers the Android
framework may invoke.  Entry points carry trigger metadata used only by the
dynamic baselines (UI fuzzers); the static pipeline analyses every entry
point unconditionally, which is exactly why Extractocol's coverage beats
fuzzing in the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..ir.program import Program
from .manifest import Manifest
from .resources import Resources


class TriggerKind(str, Enum):
    """How an entry point gets invoked at runtime (paper §5.1's taxonomy)."""

    LIFECYCLE = "lifecycle"  # onCreate etc: fired on app launch
    UI = "ui"  # standard clickable; reachable by any fuzzer
    UI_CUSTOM = "ui_custom"  # custom widget; auto UI fuzzing (PUMA) fails
    TIMER = "timer"  # fired by timers (e.g. APK update checks)
    SERVER_PUSH = "server_push"  # triggered by server-sent content updates
    LOCATION = "location"  # location-service callback (async event chain)
    INTENT = "intent"  # inter-app intent; Extractocol does not model these


@dataclass(frozen=True)
class EntryPoint:
    """A framework-invoked method plus its runtime trigger conditions."""

    method_id: str
    kind: TriggerKind = TriggerKind.UI
    name: str = ""
    #: Only reachable after an authenticated session exists (sign-up/log-in).
    requires_login: bool = False
    #: Firing it has real-world side effects (purchase, job application, ...)
    #: — per §5.1 these are off-limits even to careful manual fuzzing.
    side_effect: bool = False
    #: The UI path to this handler goes through custom widgets that
    #: automatic UI fuzzers (PUMA) fail to recognise (§5.1).
    custom_ui: bool = False

    def describe(self) -> str:
        flags = []
        if self.requires_login:
            flags.append("login")
        if self.side_effect:
            flags.append("side-effect")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return f"{self.name or self.method_id} ({self.kind.value}){suffix}"


@dataclass
class Apk:
    """Everything Extractocol gets: the binary, nothing else."""

    manifest: Manifest
    program: Program
    resources: Resources = field(default_factory=Resources)
    entrypoints: list[EntryPoint] = field(default_factory=list)
    #: True when the app was run through the ProGuard-like obfuscator.
    obfuscated: bool = False

    @property
    def package(self) -> str:
        return self.manifest.package

    @property
    def name(self) -> str:
        return self.manifest.label

    def entrypoint_methods(self) -> list[str]:
        return [ep.method_id for ep in self.entrypoints]

    def lifecycle_entrypoints(self) -> list[EntryPoint]:
        return [ep for ep in self.entrypoints if ep.kind == TriggerKind.LIFECYCLE]

    def __repr__(self) -> str:
        return (
            f"Apk({self.package}, {len(self.program.classes)} classes, "
            f"{len(self.entrypoints)} entrypoints)"
        )


__all__ = ["Apk", "EntryPoint", "TriggerKind"]
