"""AndroidManifest model: package identity and declared components."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Manifest:
    package: str
    version_name: str = "1.0"
    label: str = ""
    activities: list[str] = field(default_factory=list)
    services: list[str] = field(default_factory=list)
    permissions: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.label:
            self.label = self.package.rsplit(".", 1)[-1]

    @property
    def uses_internet(self) -> bool:
        return "android.permission.INTERNET" in self.permissions

    def to_dict(self) -> dict:
        return {
            "package": self.package,
            "version_name": self.version_name,
            "label": self.label,
            "activities": list(self.activities),
            "services": list(self.services),
            "permissions": list(self.permissions),
        }

    @staticmethod
    def from_dict(data: dict) -> "Manifest":
        return Manifest(
            package=data["package"],
            version_name=data.get("version_name", "1.0"),
            label=data.get("label", ""),
            activities=list(data.get("activities", [])),
            services=list(data.get("services", [])),
            permissions=list(data.get("permissions", [])),
        )


__all__ = ["Manifest"]
