"""ProGuard-like identifier obfuscation.

Paper §5.1 validates Extractocol by obfuscating the open-source APKs with
ProGuard and checking that the analysis output is unchanged — identifier
renaming does not affect the taint/slicing machinery because demarcation
points and semantic models key on *library* names, which ProGuard keeps.

The obfuscator renames application classes, methods and fields to short
meaningless names (``o.a``, ``a``, ``b``, ...).  Names the Android framework
resolves reflectively — lifecycle/callback overrides, ``<init>`` — are kept,
as ProGuard's default Android rules do.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.program import Program
from .model import Apk
from .rewrite import RenameMap, rename_method_id, rename_program

#: Framework-invoked method names ProGuard keep-rules preserve.  These are
#: entry points or library overrides resolved by name at runtime.
FRAMEWORK_KEEP_NAMES = frozenset(
    {
        "<init>",
        "<clinit>",
        "main",
        "onCreate",
        "onStart",
        "onResume",
        "onPause",
        "onStop",
        "onDestroy",
        "onClick",
        "onItemClick",
        "onLocationChanged",
        "onReceive",
        "run",
        "call",
        "doInBackground",
        "onPreExecute",
        "onPostExecute",
        "onProgressUpdate",
        "onResponse",
        "onErrorResponse",
        "onFailure",
        "onSuccess",
        "compare",
        "equals",
        "hashCode",
        "toString",
    }
)


def _short_names() -> "itertools.chain[str]":
    import itertools
    import string

    letters = string.ascii_lowercase
    singles = iter(letters)
    doubles = (a + b for a in letters for b in letters)
    return itertools.chain(singles, doubles)


@dataclass
class ObfuscationResult:
    apk: Apk
    renames: RenameMap


def plan_renames(
    program: Program,
    *,
    keep_names: frozenset[str] = FRAMEWORK_KEEP_NAMES,
    keep_classes: frozenset[str] = frozenset(),
    rename_libraries: bool = False,
    library_prefixes: tuple[str, ...] = (),
) -> RenameMap:
    """Compute the rename maps for ``program``.

    ``library_prefixes`` marks embedded third-party library packages
    (classes shipped *inside* the APK).  By default those are kept — many
    real apps keep library code unobfuscated even when their own code is
    obfuscated (§3.4) — but ``rename_libraries=True`` obfuscates them too,
    which is the case requiring the de-obfuscation pre-pass.
    """
    renames = RenameMap()
    class_names = _short_names()
    for cls_name in sorted(program.classes):
        if cls_name in keep_classes:
            continue
        is_library = any(cls_name.startswith(p) for p in library_prefixes)
        if is_library and not rename_libraries:
            continue
        renames.class_map[cls_name] = f"o.{next(class_names)}"

    member_names = _short_names()
    method_names: set[str] = set()
    field_names: set[str] = set()
    for cls in program.classes.values():
        if cls.name not in renames.class_map:
            continue
        for method in cls.methods():
            if method.name not in keep_names:
                method_names.add(method.name)
        field_names.update(cls.fields)
    # Deterministic order keeps obfuscation reproducible across runs.
    for name in sorted(method_names):
        renames.method_map[name] = next(member_names)
    for i, name in enumerate(sorted(field_names)):
        renames.field_map[name] = f"f{i}"
    return renames


def obfuscate(apk: Apk, **plan_kwargs) -> ObfuscationResult:
    """Obfuscate an APK, remapping entry-point references consistently."""
    renames = plan_renames(apk.program, **plan_kwargs)
    new_program = rename_program(apk.program, renames)
    new_entrypoints = [
        type(ep)(
            method_id=rename_method_id(ep.method_id, renames, apk.program),
            kind=ep.kind,
            name=ep.name,
            requires_login=ep.requires_login,
            side_effect=ep.side_effect,
            custom_ui=ep.custom_ui,
        )
        for ep in apk.entrypoints
    ]
    new_apk = Apk(
        manifest=apk.manifest,
        program=new_program,
        resources=apk.resources,
        entrypoints=new_entrypoints,
        obfuscated=True,
    )
    return ObfuscationResult(new_apk, renames)


__all__ = ["FRAMEWORK_KEEP_NAMES", "ObfuscationResult", "obfuscate", "plan_renames"]
