"""Android resource table (``res/values/strings.xml`` and friends).

Paper §3.1 ("Object-aware augmentation") notes that Extractocol resolves
references to resource objects such as ``Android.R`` whose values live in
user-defined files inside the APK.  Corpus apps store API keys, base URLs
and city names here and read them via
``android.content.res.Resources.getString(int)``; the semantic model for
that API consults this table during signature building.
"""

from __future__ import annotations


class Resources:
    """String resource table with deterministic integer ids (like ``R.string``)."""

    #: Offset mimicking aapt's resource id space (0x7f0e0000 = string type).
    _BASE_ID = 0x7F0E0000

    def __init__(self) -> None:
        self._by_name: dict[str, str] = {}
        self._name_by_id: dict[int, str] = {}
        self._id_by_name: dict[str, int] = {}

    def add_string(self, name: str, value: str) -> int:
        """Register a string resource, returning its ``R.string`` id."""
        if name in self._by_name:
            if self._by_name[name] != value:
                raise ValueError(f"resource {name!r} redefined with a new value")
            return self._id_by_name[name]
        rid = self._BASE_ID + len(self._by_name)
        self._by_name[name] = value
        self._name_by_id[rid] = name
        self._id_by_name[name] = rid
        return rid

    def string_id(self, name: str) -> int:
        return self._id_by_name[name]

    def get_string(self, rid_or_name: int | str) -> str:
        if isinstance(rid_or_name, int):
            name = self._name_by_id.get(rid_or_name)
            if name is None:
                raise KeyError(f"unknown resource id {rid_or_name:#x}")
            return self._by_name[name]
        return self._by_name[rid_or_name]

    def has_id(self, rid: int) -> bool:
        return rid in self._name_by_id

    def names(self) -> list[str]:
        return list(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def to_dict(self) -> dict:
        return {"strings": dict(self._by_name)}

    @staticmethod
    def from_dict(data: dict) -> "Resources":
        res = Resources()
        for name, value in data.get("strings", {}).items():
            res.add_string(name, value)
        return res


__all__ = ["Resources"]
