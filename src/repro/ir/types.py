"""Type system for the Jimple-style intermediate representation.

Extractocol operates at the Jimple level (a typed three-address code used by
Soot), not on raw Dalvik bytecode.  This module provides the small type
lattice that the IR, the taint engine and the semantic models share:
primitive types, class (reference) types and array types.

Types are interned so they can be compared with ``==`` or ``is`` freely and
used as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """Base class for all IR types."""

    name: str

    def __str__(self) -> str:
        return self.name

    @property
    def is_reference(self) -> bool:
        return isinstance(self, (ClassType, ArrayType))

    @property
    def is_primitive(self) -> bool:
        return isinstance(self, PrimType)


@dataclass(frozen=True)
class PrimType(Type):
    """A JVM primitive type (``int``, ``boolean``, ...) or ``void``."""


@dataclass(frozen=True)
class ClassType(Type):
    """A reference type identified by its fully qualified class name."""

    @property
    def simple_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    @property
    def package(self) -> str:
        head, _, _ = self.name.rpartition(".")
        return head


@dataclass(frozen=True)
class ArrayType(Type):
    """An array type; ``element`` is the element type."""

    element: Type

    @property
    def dimensions(self) -> int:
        if isinstance(self.element, ArrayType):
            return 1 + self.element.dimensions
        return 1


VOID = PrimType("void")
INT = PrimType("int")
LONG = PrimType("long")
FLOAT = PrimType("float")
DOUBLE = PrimType("double")
BOOLEAN = PrimType("boolean")
CHAR = PrimType("char")
BYTE = PrimType("byte")
SHORT = PrimType("short")

_PRIMITIVES = {
    t.name: t
    for t in (VOID, INT, LONG, FLOAT, DOUBLE, BOOLEAN, CHAR, BYTE, SHORT)
}

_CLASS_CACHE: dict[str, ClassType] = {}
_ARRAY_CACHE: dict[str, ArrayType] = {}

OBJECT = "java.lang.Object"
STRING = "java.lang.String"


def class_t(name: str) -> ClassType:
    """Return the interned :class:`ClassType` for ``name``."""
    cached = _CLASS_CACHE.get(name)
    if cached is None:
        cached = ClassType(name)
        _CLASS_CACHE[name] = cached
    return cached


def array_t(element: Type | str) -> ArrayType:
    """Return the interned array type whose element type is ``element``."""
    elem = parse_type(element) if isinstance(element, str) else element
    name = elem.name + "[]"
    cached = _ARRAY_CACHE.get(name)
    if cached is None:
        cached = ArrayType(name, elem)
        _ARRAY_CACHE[name] = cached
    return cached


def parse_type(name: str | Type) -> Type:
    """Parse a type from its source-style name.

    Accepts primitive names (``int``), fully qualified class names
    (``java.lang.String``) and array suffixes (``byte[]``, ``int[][]``).
    A :class:`Type` instance passes through unchanged.
    """
    if isinstance(name, Type):
        return name
    name = name.strip()
    if name.endswith("[]"):
        return array_t(parse_type(name[:-2]))
    prim = _PRIMITIVES.get(name)
    if prim is not None:
        return prim
    if not name:
        raise ValueError("empty type name")
    return class_t(name)


OBJECT_T = class_t(OBJECT)
STRING_T = class_t(STRING)
