"""Methods and method bodies."""

from __future__ import annotations

from typing import Iterator

from .statements import Stmt, StmtRef
from .types import Type, parse_type
from .values import Local, MethodSig


class Body:
    """A method body: an ordered statement list plus a label table.

    Labels map symbolic names to statement indices; branch statements refer
    to labels, so bodies stay editable until :meth:`seal` freezes indices.
    """

    def __init__(self) -> None:
        self.statements: list[Stmt] = []
        self.labels: dict[str, int] = {}
        self.locals: dict[str, Local] = {}
        self._sealed = False

    def add(self, stmt: Stmt) -> Stmt:
        if self._sealed:
            raise RuntimeError("body is sealed")
        stmt.index = len(self.statements)
        self.statements.append(stmt)
        return stmt

    def mark_label(self, name: str) -> None:
        """Attach label ``name`` to the *next* statement added."""
        if name in self.labels:
            raise ValueError(f"duplicate label {name!r}")
        self.labels[name] = len(self.statements)

    def declare_local(self, local: Local) -> Local:
        existing = self.locals.get(local.name)
        if existing is not None and existing != local:
            raise ValueError(f"local {local.name!r} redeclared with another type")
        self.locals[local.name] = local
        return local

    def label_index(self, name: str) -> int:
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(f"undefined label {name!r}") from None

    def seal(self) -> None:
        """Freeze the body.  Dangling labels (pointing past the final
        statement) get a synthetic terminator so branches stay valid."""
        from .statements import NopStmt, ReturnStmt

        pending = [n for n, i in self.labels.items() if i >= len(self.statements)]
        if pending:
            self.add(NopStmt())
            self.add(ReturnStmt())
        elif not self.statements or self.statements[-1].falls_through:
            self.add(ReturnStmt())
        self._sealed = True

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.statements)


class Method:
    """A method definition: signature, modifiers and (optionally) a body.

    ``method_id`` — the string form of the signature — is the key used by
    :class:`~repro.ir.statements.StmtRef` and by every analysis artefact.
    """

    def __init__(
        self,
        sig: MethodSig,
        *,
        is_static: bool = False,
        is_abstract: bool = False,
        body: Body | None = None,
    ) -> None:
        self.sig = sig
        self._method_id: str | None = None
        self.is_static = is_static
        self.is_abstract = is_abstract
        self.body = body if body is not None else (None if is_abstract else Body())
        self.param_locals: list[Local] = []
        self.this_local: Local | None = None

    @property
    def method_id(self) -> str:
        # hot: every StmtRef and analysis artefact keys on this string, and
        # sig is never reassigned after construction
        mid = self._method_id
        if mid is None:
            mid = self._method_id = str(self.sig)
        return mid

    @property
    def class_name(self) -> str:
        return self.sig.class_name

    @property
    def name(self) -> str:
        return self.sig.name

    @property
    def return_type(self) -> Type:
        return self.sig.return_type

    @property
    def has_body(self) -> bool:
        return self.body is not None and len(self.body) > 0

    def stmt_ref(self, stmt: Stmt) -> StmtRef:
        return StmtRef(self.method_id, stmt.index)

    def stmt_at(self, index: int) -> Stmt:
        assert self.body is not None
        return self.body.statements[index]

    def __repr__(self) -> str:
        return f"Method({self.sig})"


def make_sig(
    class_name: str,
    name: str,
    params: list[str | Type] | tuple[str | Type, ...] = (),
    returns: str | Type = "void",
) -> MethodSig:
    return MethodSig(
        class_name,
        name,
        tuple(parse_type(p) for p in params),
        parse_type(returns),
    )


__all__ = ["Body", "Method", "make_sig"]
