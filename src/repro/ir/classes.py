"""Class definitions."""

from __future__ import annotations

from typing import Iterator

from .method import Method
from .types import OBJECT, Type, parse_type
from .values import FieldSig, MethodSig


class ClassDef:
    """A class (or interface) in the program under analysis."""

    def __init__(
        self,
        name: str,
        *,
        superclass: str | None = OBJECT,
        interfaces: tuple[str, ...] = (),
        is_interface: bool = False,
    ) -> None:
        self.name = name
        self.superclass = None if name == OBJECT else superclass
        self.interfaces = interfaces
        self.is_interface = is_interface
        self.fields: dict[str, FieldSig] = {}
        self._methods: dict[tuple[str, tuple[Type, ...]], Method] = {}

    # -- fields ------------------------------------------------------------
    def add_field(self, name: str, type_name: str | Type) -> FieldSig:
        if name in self.fields:
            raise ValueError(f"duplicate field {self.name}.{name}")
        sig = FieldSig(self.name, name, parse_type(type_name))
        self.fields[name] = sig
        return sig

    def field(self, name: str) -> FieldSig:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(f"no field {name!r} in {self.name}") from None

    # -- methods -----------------------------------------------------------
    def add_method(self, method: Method) -> Method:
        key = method.sig.subsignature
        if key in self._methods:
            raise ValueError(f"duplicate method {method.sig}")
        self._methods[key] = method
        return method

    def get_method(self, sig: MethodSig) -> Method | None:
        return self._methods.get(sig.subsignature)

    def find_methods(self, name: str) -> list[Method]:
        return [m for (n, _), m in self._methods.items() if n == name]

    def methods(self) -> Iterator[Method]:
        return iter(self._methods.values())

    def __repr__(self) -> str:
        return f"ClassDef({self.name})"


__all__ = ["ClassDef"]
