"""Jimple-style intermediate representation (the Soot/Dexpler substitute).

See DESIGN.md: Extractocol runs on Jimple, so the reproduction rebuilds the
Jimple level — typed three-address code with classes, fields, virtual
dispatch, branches and loops — plus a programmatic builder, pretty-printer,
textual parser and validator.
"""

from .builder import ClassBuilder, MethodBuilder, ProgramBuilder, as_value
from .classes import ClassDef
from .method import Body, Method, make_sig
from .program import Program
from .statements import (
    AssignStmt,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    Stmt,
    StmtRef,
    ThrowStmt,
)
from .types import (
    ArrayType,
    ClassType,
    PrimType,
    Type,
    array_t,
    class_t,
    parse_type,
)
from .values import (
    ArrayRef,
    BinOpExpr,
    CastExpr,
    ClassConst,
    Constant,
    DoubleConst,
    FieldSig,
    InstanceFieldRef,
    InstanceOfExpr,
    IntConst,
    InvokeExpr,
    LengthExpr,
    Local,
    MethodSig,
    NULL,
    NewArrayExpr,
    NewExpr,
    NullConst,
    ParamRef,
    StaticFieldRef,
    StringConst,
    ThisRef,
    UnOpExpr,
    Value,
    field_sig,
    walk_values,
)
from .validate import (
    assert_valid,
    superclass_cycles,
    validate_method,
    validate_program,
)

__all__ = [name for name in dir() if not name.startswith("_")]
