"""Parser for the Jimple-like textual IR emitted by :mod:`repro.ir.printer`.

The textual form is what ``.sapk`` bundles store; the parser and printer
round-trip (property-tested in ``tests/test_roundtrip.py``).  It is a small
hand-written recursive-descent parser over a regex tokenizer — the grammar
is line-oriented, so each statement parses independently.
"""

from __future__ import annotations

import ast
import re

from .classes import ClassDef
from .method import Body, Method, make_sig
from .program import Program
from .statements import (
    AssignStmt,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    InvokeStmt,
    NopStmt,
    ReturnStmt,
    ThrowStmt,
)
from .types import class_t, parse_type
from .values import (
    ArrayRef,
    BinOpExpr,
    CastExpr,
    ClassConst,
    DoubleConst,
    FieldSig,
    InstanceFieldRef,
    InstanceOfExpr,
    IntConst,
    InvokeExpr,
    LengthExpr,
    Local,
    MethodSig,
    NULL,
    NewArrayExpr,
    NewExpr,
    ParamRef,
    StaticFieldRef,
    StringConst,
    ThisRef,
    UnOpExpr,
    Value,
)


class ParseError(ValueError):
    def __init__(self, message: str, line_no: int | None = None) -> None:
        where = f" (line {line_no})" if line_no is not None else ""
        super().__init__(f"{message}{where}")


_IDENT = r"[A-Za-z_$][\w$]*"
_TYPE = rf"{_IDENT}(?:\.{_IDENT})*(?:\[\])*"

_CLASS_RE = re.compile(
    rf"^(class|interface)\s+(?P<name>{_TYPE})"
    rf"(?:\s+extends\s+(?P<super>{_TYPE}))?"
    rf"(?:\s+implements\s+(?P<ifaces>[\w.$,\s]+))?\s*\{{$"
)
_FIELD_RE = re.compile(rf"^(?P<type>{_TYPE})\s+(?P<name>{_IDENT});$")
_METHOD_RE = re.compile(
    rf"^(?P<static>static\s+)?(?P<ret>{_TYPE})\s+(?P<name><?init>?|{_IDENT})"
    rf"\((?P<params>[^)]*)\)\s*\{{$"
)
_LABEL_RE = re.compile(rf"^(?P<name>{_IDENT}):$")
_SIG_RE = re.compile(
    rf"^<(?P<cls>{_TYPE}):\s+(?P<ret>{_TYPE})\s+(?P<name><init>|{_IDENT})"
    rf"\((?P<params>[^)]*)\)>$"
)
_FIELDSIG_RE = re.compile(
    rf"^<(?P<cls>{_TYPE}):\s+(?P<type>{_TYPE})\s+(?P<name>{_IDENT})>$"
)

_BINOPS = ("==", "!=", "<=", ">=", "&&", "||", "+", "-", "*", "/", "%", "<", ">")


def _split_args(text: str) -> list[str]:
    """Split a comma-separated argument list, respecting quotes."""
    out: list[str] = []
    depth = 0
    quote: str | None = None
    current = ""
    i = 0
    while i < len(text):
        ch = text[i]
        if quote is not None:
            current += ch
            if ch == "\\":
                if i + 1 < len(text):
                    current += text[i + 1]
                    i += 1
            elif ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            current += ch
        elif ch in "(<[":
            depth += 1
            current += ch
        elif ch in ")>]":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            out.append(current.strip())
            current = ""
        else:
            current += ch
        i += 1
    if current.strip():
        out.append(current.strip())
    return out


class _MethodParser:
    """Parses values and statements of one method body."""

    def __init__(self, body: Body, line_no: int) -> None:
        self.body = body
        self.line_no = line_no

    def fail(self, message: str) -> ParseError:
        return ParseError(message, self.line_no)

    # -- values --------------------------------------------------------------
    def local(self, name: str) -> Local:
        loc = self.body.locals.get(name)
        if loc is None:
            raise self.fail(f"undeclared local {name!r}")
        return loc

    def atom(self, text: str) -> Value:
        """Parse a leaf value: constant or local."""
        text = text.strip()
        if text == "null":
            return NULL
        if text.startswith(("'", '"')):
            return StringConst(ast.literal_eval(text))
        if text.startswith("class "):
            return ClassConst(text[len("class "):].strip())
        if re.fullmatch(r"-?\d+", text):
            return IntConst(int(text))
        if re.fullmatch(r"-?\d*\.\d+(e-?\d+)?", text):
            return DoubleConst(float(text))
        if re.fullmatch(_IDENT, text):
            return self.local(text)
        raise self.fail(f"cannot parse value {text!r}")

    def value(self, text: str) -> Value:
        """Parse any right-hand-side value/expression."""
        text = text.strip()
        # invoke
        m = re.match(rf"^(virtual|special|static|interface)invoke\s+(.*)$", text)
        if m:
            return self.invoke_expr(m.group(1), m.group(2))
        # new array (before new object)
        m = re.match(rf"^new\s+(?P<type>{_TYPE})\[(?P<size>[^\]]+)\]$", text)
        if m:
            return NewArrayExpr(parse_type(m.group("type")), self.atom(m.group("size")))
        m = re.match(rf"^new\s+(?P<type>{_TYPE})$", text)
        if m:
            return NewExpr(class_t(m.group("type")))
        m = re.match(rf"^\((?P<type>{_TYPE})\)\s+(?P<v>.+)$", text)
        if m:
            return CastExpr(parse_type(m.group("type")), self.atom(m.group("v")))
        m = re.match(rf"^(?P<v>\S+)\s+instanceof\s+(?P<type>{_TYPE})$", text)
        if m:
            return InstanceOfExpr(self.atom(m.group("v")), parse_type(m.group("type")))
        m = re.match(r"^lengthof\s+(?P<v>.+)$", text)
        if m:
            return LengthExpr(self.atom(m.group("v")))
        ref = self.try_ref(text)
        if ref is not None:
            return ref
        # binary op: leaf op leaf (operands are flat in this IR)
        binop = self.try_binop(text)
        if binop is not None:
            return binop
        m = re.match(r"^(?P<op>[!\-~])(?P<v>[\w$'\".]+)$", text)
        if m and not re.fullmatch(r"-?\d+(\.\d+)?", text):
            return UnOpExpr(m.group("op"), self.atom(m.group("v")))
        return self.atom(text)

    def try_binop(self, text: str) -> BinOpExpr | None:
        # Operands are atoms (possibly quoted strings); find a top-level op.
        quote = None
        i = 0
        while i < len(text):
            ch = text[i]
            if quote:
                if ch == "\\":
                    i += 1
                elif ch == quote:
                    quote = None
            elif ch in "'\"":
                quote = ch
            elif ch == " ":
                rest = text[i + 1 :]
                for op in _BINOPS:
                    if rest.startswith(op + " "):
                        left = text[:i]
                        right = rest[len(op) + 1 :]
                        try:
                            return BinOpExpr(op, self.atom(left), self.atom(right))
                        except ParseError:
                            break
            i += 1
        return None

    def try_ref(self, text: str) -> Value | None:
        """Field/array references."""
        m = _FIELDSIG_RE.match(text)
        if m:
            return StaticFieldRef(
                FieldSig(m.group("cls"), m.group("name"), parse_type(m.group("type")))
            )
        m = re.match(rf"^(?P<base>{_IDENT})\.(?P<sig><.+>)$", text)
        if m:
            fm = _FIELDSIG_RE.match(m.group("sig"))
            if fm:
                return InstanceFieldRef(
                    self.local(m.group("base")),
                    FieldSig(
                        fm.group("cls"), fm.group("name"), parse_type(fm.group("type"))
                    ),
                )
        m = re.match(rf"^(?P<base>{_IDENT})\[(?P<idx>[^\]]+)\]$", text)
        if m:
            return ArrayRef(self.local(m.group("base")), self.atom(m.group("idx")))
        return None

    def invoke_expr(self, kind: str, rest: str) -> InvokeExpr:
        # forms: `<sig>(args)` (static) or `base.<sig>(args)`
        m = re.match(
            rf"^(?:(?P<base>{_IDENT})\.)?"
            rf"(?P<sig><{_TYPE}:\s+{_TYPE}\s+(?:<init>|{_IDENT})\([^)]*\)>)"
            rf"\((?P<args>.*)\)$",
            rest,
        )
        if not m:
            raise self.fail(f"cannot parse invoke {rest!r}")
        sm = _SIG_RE.match(m.group("sig"))
        if not sm:
            raise self.fail(f"cannot parse method signature {m.group('sig')!r}")
        params = tuple(
            parse_type(p) for p in _split_args(sm.group("params"))
        )
        sig = MethodSig(
            sm.group("cls"), sm.group("name"), params, parse_type(sm.group("ret"))
        )
        base = self.local(m.group("base")) if m.group("base") else None
        args = tuple(self.atom(a) for a in _split_args(m.group("args")))
        return InvokeExpr(kind, sig, base, args)

    # -- statements -------------------------------------------------------------
    def statement(self, text: str) -> None:
        body = self.body
        m = re.match(rf"^(?P<t>{_IDENT})\s+:=\s+@this:\s+(?P<type>{_TYPE})$", text)
        if m:
            body.add(
                IdentityStmt(self.local(m.group("t")), ThisRef(class_t(m.group("type"))))
            )
            return
        m = re.match(
            rf"^(?P<t>{_IDENT})\s+:=\s+@parameter(?P<i>\d+):\s+(?P<type>{_TYPE})$", text
        )
        if m:
            body.add(
                IdentityStmt(
                    self.local(m.group("t")),
                    ParamRef(int(m.group("i")), parse_type(m.group("type"))),
                )
            )
            return
        if text == "nop":
            body.add(NopStmt())
            return
        if text == "return":
            body.add(ReturnStmt())
            return
        if text.startswith("return "):
            body.add(ReturnStmt(self.atom(text[len("return "):])))
            return
        if text.startswith("throw "):
            body.add(ThrowStmt(self.atom(text[len("throw "):])))
            return
        if text.startswith("goto "):
            body.add(GotoStmt(text[len("goto "):].strip()))
            return
        m = re.match(rf"^if\s+(?P<cond>.+)\s+goto\s+(?P<label>{_IDENT})$", text)
        if m:
            cond = self.value(m.group("cond"))
            body.add(IfStmt(cond, m.group("label")))
            return
        m = re.match(r"^(virtual|special|static|interface)invoke\s+", text)
        if m:
            expr = self.value(text)
            assert isinstance(expr, InvokeExpr)
            body.add(InvokeStmt(expr))
            return
        # assignment: split on first top-level ` = ` (not `==`, not inside quotes)
        target_text, rhs_text = self._split_assign(text)
        target = self.try_ref(target_text)
        if target is None:
            target = self.local(target_text)
        rhs = self.value(rhs_text)
        body.add(AssignStmt(target, rhs))  # type: ignore[arg-type]

    def _split_assign(self, text: str) -> tuple[str, str]:
        quote = None
        i = 0
        while i < len(text):
            ch = text[i]
            if quote:
                if ch == "\\":
                    i += 1
                elif ch == quote:
                    quote = None
            elif ch in "'\"":
                quote = ch
            elif text.startswith(" = ", i):
                return text[:i].strip(), text[i + 3 :].strip()
            i += 1
        raise self.fail(f"cannot parse statement {text!r}")


def parse_program(text: str) -> Program:
    """Parse a whole program in the printer's textual format."""
    program = Program()
    lines = text.splitlines()
    i = 0
    n = len(lines)

    def skip_blank(idx: int) -> int:
        while idx < n and (not lines[idx].strip() or lines[idx].strip().startswith("//")):
            idx += 1
        return idx

    while True:
        i = skip_blank(i)
        if i >= n:
            break
        header = lines[i].strip()
        cm = _CLASS_RE.match(header)
        if not cm:
            raise ParseError(f"expected class header, got {header!r}", i + 1)
        interfaces = tuple(
            s.strip() for s in (cm.group("ifaces") or "").split(",") if s.strip()
        )
        cls = ClassDef(
            cm.group("name"),
            superclass=cm.group("super") or "java.lang.Object",
            interfaces=interfaces,
            is_interface=cm.group(1) == "interface",
        )
        program.add_class(cls)
        i += 1
        while True:
            i = skip_blank(i)
            if i >= n:
                raise ParseError("unterminated class body", i)
            line = lines[i].strip()
            if line == "}":
                i += 1
                break
            fm = _FIELD_RE.match(line)
            if fm:
                cls.add_field(fm.group("name"), fm.group("type"))
                i += 1
                continue
            mm = _METHOD_RE.match(line)
            if not mm:
                raise ParseError(f"expected field or method, got {line!r}", i + 1)
            params = [p for p in _split_args(mm.group("params"))]
            sig = make_sig(cls.name, mm.group("name"), params, mm.group("ret"))
            is_static = bool(mm.group("static"))
            i += 1
            # abstract body?
            if i < n and lines[i].strip() == "// abstract":
                method = Method(sig, is_static=is_static, is_abstract=True, body=None)
                cls.add_method(method)
                i += 1
                if lines[i].strip() != "}":
                    raise ParseError("expected '}' after abstract marker", i + 1)
                i += 1
                continue
            method = Method(sig, is_static=is_static)
            cls.add_method(method)
            body = method.body
            assert body is not None
            mp = _MethodParser(body, i)
            # local declarations, labels, statements until '}'
            while i < n:
                raw = lines[i].strip()
                mp.line_no = i + 1
                if raw == "}":
                    i += 1
                    break
                if not raw or raw.startswith("//"):
                    i += 1
                    continue
                lm = _LABEL_RE.match(raw)
                if lm:
                    body.mark_label(lm.group("name"))
                    i += 1
                    continue
                if raw.endswith(";"):
                    stmt_text = raw[:-1].strip()
                    dm = _FIELD_RE.match(raw)
                    reserved = {"goto", "return", "throw", "if", "nop", "new", "lengthof"}
                    if (
                        dm
                        and dm.group("type") not in reserved
                        and " = " not in raw
                        and ":=" not in raw
                    ):
                        local = Local(dm.group("name"), parse_type(dm.group("type")))
                        body.declare_local(local)
                    else:
                        mp.statement(stmt_text)
                    i += 1
                    continue
                raise ParseError(f"cannot parse line {raw!r}", i + 1)
            # restore param/this locals metadata
            _rebind_identities(method)
            body._sealed = True
    return program


def _rebind_identities(method: Method) -> None:
    body = method.body
    assert body is not None
    for stmt in body:
        if isinstance(stmt, IdentityStmt):
            if isinstance(stmt.rhs, ThisRef):
                method.this_local = stmt.target
            elif isinstance(stmt.rhs, ParamRef):
                while len(method.param_locals) <= stmt.rhs.index:
                    method.param_locals.append(stmt.target)
                method.param_locals[stmt.rhs.index] = stmt.target
        else:
            break


__all__ = ["ParseError", "parse_program"]
