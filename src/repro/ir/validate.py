"""Structural validation of IR programs.

Run after building a program (the corpus test-suite validates every app).
Catches the authoring mistakes that would otherwise surface as confusing
analysis results: dangling branch labels, use of undeclared locals,
fall-through off the end of a body, malformed identity statements.
"""

from __future__ import annotations

from dataclasses import dataclass

from .method import Method
from .program import Program
from .statements import GotoStmt, IdentityStmt, IfStmt
from .values import Local, ParamRef, ThisRef, walk_values


@dataclass(frozen=True)
class ValidationError:
    method_id: str
    index: int
    message: str

    def __str__(self) -> str:
        return f"{self.method_id}#{self.index}: {self.message}"


def validate_method(method: Method) -> list[ValidationError]:
    errors: list[ValidationError] = []
    body = method.body
    if body is None:
        return errors

    def err(index: int, message: str) -> None:
        errors.append(ValidationError(method.method_id, index, message))

    declared = set(body.locals.values())
    n = len(body.statements)
    if n == 0:
        err(-1, "empty body")
        return errors

    identities_done = False
    for stmt in body.statements:
        if isinstance(stmt, (IfStmt, GotoStmt)):
            for target in stmt.branch_targets():
                if target not in body.labels:
                    err(stmt.index, f"branch to undefined label {target!r}")
                elif body.labels[target] >= n:
                    err(stmt.index, f"label {target!r} points past end of body")
        if isinstance(stmt, IdentityStmt):
            if identities_done:
                err(stmt.index, "identity statement after ordinary statements")
            if not isinstance(stmt.rhs, (ParamRef, ThisRef)):
                err(stmt.index, "identity rhs must be @this or @parameter")
        else:
            identities_done = True
        for use in stmt.uses():
            for value in walk_values(use):
                if isinstance(value, Local) and value not in declared:
                    err(stmt.index, f"use of undeclared local {value.name!r}")
        for d in stmt.defs():
            for value in walk_values(d):
                if isinstance(value, Local) and value not in declared:
                    err(stmt.index, f"definition of undeclared local {value.name!r}")

    if body.statements[-1].falls_through:
        err(n - 1, "control falls off the end of the body")
    return errors


def superclass_cycles(program: Program) -> list[list[str]]:
    """Cycles in the superclass relation, each as the list of program
    classes on the cycle (entry class first, deterministic order).

    A cycle — ``A extends B extends A``, or ``A extends A`` — would loop
    :meth:`Program.superclasses` and everything built on it (CHA dispatch,
    dominator computation, event roots), so it must be caught before any
    analysis walks the hierarchy.  Chains ending at a library class (not
    present in the program) terminate and are fine.
    """
    state: dict[str, int] = {}  # 0/absent = unvisited, 1 = on stack, 2 = done
    cycles: list[list[str]] = []
    for start in sorted(program.classes):
        if state.get(start):
            continue
        chain: list[str] = []
        current: str | None = start
        while current is not None and current in program.classes:
            mark = state.get(current)
            if mark == 2:
                break
            if mark == 1:
                cycles.append(chain[chain.index(current):])
                break
            state[current] = 1
            chain.append(current)
            current = program.classes[current].superclass
        for name in chain:
            state[name] = 2
    return cycles


def validate_program(program: Program) -> list[ValidationError]:
    errors: list[ValidationError] = []
    for method in program.methods():
        errors.extend(validate_method(method))
    for cycle in superclass_cycles(program):
        if len(cycle) == 1:
            errors.append(ValidationError(cycle[0], -1, "class extends itself"))
            continue
        loop = " -> ".join(cycle + [cycle[0]])
        for name in cycle:
            errors.append(
                ValidationError(name, -1, f"superclass cycle: {loop}")
            )
    return errors


def assert_valid(program: Program) -> None:
    errors = validate_program(program)
    if errors:
        listing = "\n".join(str(e) for e in errors[:20])
        raise ValueError(f"invalid IR program ({len(errors)} errors):\n{listing}")


__all__ = [
    "ValidationError",
    "assert_valid",
    "superclass_cycles",
    "validate_method",
    "validate_program",
]
