"""Structural validation of IR programs.

Run after building a program (the corpus test-suite validates every app).
Catches the authoring mistakes that would otherwise surface as confusing
analysis results: dangling branch labels, use of undeclared locals,
fall-through off the end of a body, malformed identity statements.
"""

from __future__ import annotations

from dataclasses import dataclass

from .method import Method
from .program import Program
from .statements import GotoStmt, IdentityStmt, IfStmt
from .values import Local, ParamRef, ThisRef, walk_values


@dataclass(frozen=True)
class ValidationError:
    method_id: str
    index: int
    message: str

    def __str__(self) -> str:
        return f"{self.method_id}#{self.index}: {self.message}"


def validate_method(method: Method) -> list[ValidationError]:
    errors: list[ValidationError] = []
    body = method.body
    if body is None:
        return errors

    def err(index: int, message: str) -> None:
        errors.append(ValidationError(method.method_id, index, message))

    declared = set(body.locals.values())
    n = len(body.statements)
    if n == 0:
        err(-1, "empty body")
        return errors

    identities_done = False
    for stmt in body.statements:
        if isinstance(stmt, (IfStmt, GotoStmt)):
            for target in stmt.branch_targets():
                if target not in body.labels:
                    err(stmt.index, f"branch to undefined label {target!r}")
                elif body.labels[target] >= n:
                    err(stmt.index, f"label {target!r} points past end of body")
        if isinstance(stmt, IdentityStmt):
            if identities_done:
                err(stmt.index, "identity statement after ordinary statements")
            if not isinstance(stmt.rhs, (ParamRef, ThisRef)):
                err(stmt.index, "identity rhs must be @this or @parameter")
        else:
            identities_done = True
        for use in stmt.uses():
            for value in walk_values(use):
                if isinstance(value, Local) and value not in declared:
                    err(stmt.index, f"use of undeclared local {value.name!r}")
        for d in stmt.defs():
            for value in walk_values(d):
                if isinstance(value, Local) and value not in declared:
                    err(stmt.index, f"definition of undeclared local {value.name!r}")

    if body.statements[-1].falls_through:
        err(n - 1, "control falls off the end of the body")
    return errors


def validate_program(program: Program) -> list[ValidationError]:
    errors: list[ValidationError] = []
    for method in program.methods():
        errors.extend(validate_method(method))
    for cls in program.classes.values():
        if cls.superclass and cls.superclass == cls.name:
            errors.append(ValidationError(cls.name, -1, "class extends itself"))
    return errors


def assert_valid(program: Program) -> None:
    errors = validate_program(program)
    if errors:
        listing = "\n".join(str(e) for e in errors[:20])
        raise ValueError(f"invalid IR program ({len(errors)} errors):\n{listing}")


__all__ = ["ValidationError", "assert_valid", "validate_method", "validate_program"]
