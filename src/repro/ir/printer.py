"""Pretty-printer producing a Jimple-like textual form of the IR.

The output round-trips through :mod:`repro.ir.parser` and is what the
``.sapk`` on-disk bundle stores for each class.
"""

from __future__ import annotations

from .classes import ClassDef
from .method import Method
from .program import Program


def print_method(method: Method) -> str:
    lines: list[str] = []
    mods = "static " if method.is_static else ""
    params = ", ".join(str(p) for p in method.sig.param_types)
    lines.append(f"  {mods}{method.sig.return_type} {method.sig.name}({params}) {{")
    if method.body is None:
        lines.append("    // abstract")
    else:
        for local in sorted(method.body.locals.values(), key=lambda l: l.name):
            lines.append(f"    {local.type} {local.name};")
        by_index: dict[int, list[str]] = {}
        for name, idx in method.body.labels.items():
            by_index.setdefault(idx, []).append(name)
        for stmt in method.body:
            for label in by_index.get(stmt.index, ()):
                lines.append(f"   {label}:")
            lines.append(f"    {stmt};")
    lines.append("  }")
    return "\n".join(lines)


def print_class(cls: ClassDef) -> str:
    kind = "interface" if cls.is_interface else "class"
    header = f"{kind} {cls.name}"
    if cls.superclass:
        header += f" extends {cls.superclass}"
    if cls.interfaces:
        header += " implements " + ", ".join(cls.interfaces)
    lines = [header + " {"]
    for fld in cls.fields.values():
        lines.append(f"  {fld.type} {fld.name};")
    for method in cls.methods():
        lines.append("")
        lines.append(print_method(method))
    lines.append("}")
    return "\n".join(lines)


def print_program(program: Program) -> str:
    return "\n\n".join(print_class(c) for c in program.classes.values())


__all__ = ["print_class", "print_method", "print_program"]
