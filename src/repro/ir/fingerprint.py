"""Content-hashed IR fingerprints (the change detector behind ``repro.incr``).

A method fingerprint is a sha256 over everything that can change the
method's *contribution to a slice*:

* the printed instruction stream (:func:`~repro.ir.printer.print_method`,
  the same deterministic text the ``.sapk`` bundle stores),
* the resolved call targets of every call site — CHA dispatch plus the
  implicit edges the async model injects — so a hierarchy change that adds
  or removes an override dirties every dispatching caller without any
  whole-program diffing,
* the hierarchy slice of the declaring class and of every class type the
  method mentions (receiver-typed demarcation matching and implicit
  callback receiver recovery both consult superclass chains),
* the method's asynchronous-event roots and framework-linked return
  continuations (§3.4 model state), and whether it is an entry point.

Two programs assigning the same fingerprint to a method are guaranteed to
give the taint engine an identical view of that method's body, outgoing
edges and event context.  Fingerprints are namespace-sensitive by design —
class renames change them — so cross-release comparison under obfuscation
first maps the new program back into the old namespace with
:func:`repro.apk.rewrite.rename_program`.
"""

from __future__ import annotations

import hashlib

from .classes import ClassDef
from .method import Method
from .printer import print_class, print_method
from .program import Program
from .statements import StmtRef
from .types import ArrayType, ClassType, Type
from .values import FieldSig, InvokeExpr, walk_values


def _class_names_of(t: Type, out: set[str]) -> None:
    while isinstance(t, ArrayType):
        t = t.element
    if isinstance(t, ClassType):
        out.add(t.name)


def mentioned_classes(method: Method) -> set[str]:
    """Every class name whose hierarchy can influence how the engine treats
    ``method``: the declaring class, signature types, local/field types and
    static receiver classes of its invokes."""
    names: set[str] = {method.class_name}
    _class_names_of(method.sig.return_type, names)
    for p in method.sig.param_types:
        _class_names_of(p, names)
    if method.body is None:
        return names
    for local in method.body.locals.values():
        _class_names_of(local.type, names)
    for stmt in method.body:
        for top in (*stmt.defs(), *stmt.uses()):
            for value in walk_values(top):
                expr = value if isinstance(value, InvokeExpr) else None
                if expr is not None:
                    names.add(expr.sig.class_name)
                f = getattr(value, "field", None)
                if isinstance(f, FieldSig):
                    names.add(f.class_name)
                    _class_names_of(f.type, names)
    return names


def _hierarchy_line(program: Program, class_name: str) -> str:
    cls = program.class_of(class_name)
    chain = ",".join(program.superclasses(class_name))
    ifaces = ",".join(sorted(cls.interfaces)) if cls is not None else ""
    return f"{class_name}<{chain}|{ifaces}"


def fingerprint_method(
    method: Method,
    program: Program,
    callgraph,
    *,
    event_roots: dict[str, frozenset[str]] | None = None,
    linked_returns: dict[str, list[tuple[str, int]]] | None = None,
    entrypoint_ids: frozenset[str] | set[str] = frozenset(),
) -> str:
    """Deterministic sha256 fingerprint of one method (hex digest)."""
    mid = method.method_id
    h = hashlib.sha256()
    h.update(print_method(method).encode("utf-8"))
    h.update(b"\x00targets\x00")
    if method.body is not None:
        for idx, stmt in enumerate(method.body):
            if stmt.invoke is None:
                continue
            ref = StmtRef(mid, idx)
            targets = sorted(callgraph.callees_of(ref))
            lib = "L" if callgraph.is_library_call(ref) else "-"
            h.update(f"{idx}:{lib}:{';'.join(targets)}\n".encode("utf-8"))
    h.update(b"\x00hierarchy\x00")
    for name in sorted(mentioned_classes(method)):
        h.update(_hierarchy_line(program, name).encode("utf-8"))
        h.update(b"\n")
    h.update(b"\x00events\x00")
    roots = (event_roots or {}).get(mid)
    if roots:
        h.update(",".join(sorted(roots)).encode("utf-8"))
    h.update(b"\x00linked\x00")
    for succ, p_idx in (linked_returns or {}).get(mid, ()):
        h.update(f"{succ}#{p_idx}\n".encode("utf-8"))
    h.update(b"\x00entry\x00")
    h.update(b"1" if mid in entrypoint_ids else b"0")
    return h.hexdigest()


def fingerprint_class(cls: ClassDef, program: Program) -> str:
    """sha256 over the printed class plus its hierarchy slice."""
    h = hashlib.sha256()
    h.update(print_class(cls).encode("utf-8"))
    h.update(b"\x00")
    h.update(_hierarchy_line(program, cls.name).encode("utf-8"))
    return h.hexdigest()


def fingerprint_program(
    program: Program,
    callgraph,
    *,
    event_roots: dict[str, frozenset[str]] | None = None,
    linked_returns: dict[str, list[tuple[str, int]]] | None = None,
    entrypoint_ids: frozenset[str] | set[str] = frozenset(),
) -> tuple[dict[str, str], dict[str, str]]:
    """(method_id -> fingerprint, class name -> fingerprint) for a whole
    program.  Call *after* the async model and demarcation scan ran, so the
    call graph already carries its implicit edges."""
    entry = frozenset(entrypoint_ids)
    methods = {
        m.method_id: fingerprint_method(
            m,
            program,
            callgraph,
            event_roots=event_roots,
            linked_returns=linked_returns,
            entrypoint_ids=entry,
        )
        for m in program.methods()
    }
    classes = {
        c.name: fingerprint_class(c, program)
        for c in program.classes.values()
    }
    return methods, classes


__all__ = [
    "fingerprint_class",
    "fingerprint_method",
    "fingerprint_program",
    "mentioned_classes",
]
