"""Whole-program container and hierarchy queries.

A :class:`Program` holds the application classes extracted from an APK.
Library APIs (``java.lang.StringBuilder``, ``org.apache.http...``) are *not*
present as classes; call sites naming them stay unresolved and are handled
by the semantic models (static analysis) or the runtime stdlib (dynamic
execution) — mirroring how Extractocol models rather than analyses the
Android framework.
"""

from __future__ import annotations

from typing import Iterator

from .classes import ClassDef
from .method import Method
from .values import MethodSig


class Program:
    """The set of application classes plus hierarchy/resolution helpers."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassDef] = {}
        self._method_index: dict[str, Method] | None = None
        self._child_index: dict[str, set[str]] | None = None

    # -- construction -------------------------------------------------------
    def add_class(self, cls: ClassDef) -> ClassDef:
        if cls.name in self.classes:
            raise ValueError(f"duplicate class {cls.name}")
        self.classes[cls.name] = cls
        self._method_index = None
        self._child_index = None
        return cls

    # -- lookup ---------------------------------------------------------------
    def class_of(self, name: str) -> ClassDef | None:
        return self.classes.get(name)

    def has_class(self, name: str) -> bool:
        return name in self.classes

    def methods(self) -> Iterator[Method]:
        for cls in self.classes.values():
            yield from cls.methods()

    def method_by_id(self, method_id: str) -> Method:
        if self._method_index is None:
            self._method_index = {m.method_id: m for m in self.methods()}
        return self._method_index[method_id]

    # -- hierarchy ------------------------------------------------------------
    def superclasses(self, name: str) -> Iterator[str]:
        """Yield ``name`` and its superclass chain, innermost first.

        The chain stops at the first class not defined in the program (i.e.
        a library superclass such as ``android.os.AsyncTask``), after
        yielding its name so callers can detect the library boundary.
        """
        current: str | None = name
        while current is not None:
            yield current
            cls = self.classes.get(current)
            if cls is None:
                return
            current = cls.superclass

    def library_ancestors(self, name: str) -> set[str]:
        """Superclass and interface names that are *not* program classes."""
        out: set[str] = set()
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                if current != name:
                    out.add(current)
                continue
            if cls.superclass:
                stack.append(cls.superclass)
            stack.extend(cls.interfaces)
        return out

    def subclasses(self, name: str) -> set[str]:
        """All program classes that transitively extend/implement ``name``."""
        direct = self._child_index
        if direct is None:
            direct = {}
            for cls in self.classes.values():
                for parent in (
                    ((cls.superclass,) if cls.superclass else ()) + cls.interfaces
                ):
                    direct.setdefault(parent, set()).add(cls.name)
            self._child_index = direct
        out: set[str] = set()
        stack = [name]
        while stack:
            for child in direct.get(stack.pop(), ()):
                if child not in out:
                    out.add(child)
                    stack.append(child)
        return out

    def resolve_dispatch(self, receiver_class: str, sig: MethodSig) -> Method | None:
        """Resolve a virtual call on a receiver of dynamic type
        ``receiver_class`` by walking up the superclass chain."""
        for cname in self.superclasses(receiver_class):
            cls = self.classes.get(cname)
            if cls is None:
                return None
            found = cls.get_method(sig)
            if found is not None and not found.is_abstract:
                return found
        return None

    def resolve_static(self, sig: MethodSig) -> Method | None:
        """Resolve a call site against the static receiver type; returns
        ``None`` for library methods (handled by semantic models)."""
        return self.resolve_dispatch(sig.class_name, sig)

    def statement_count(self) -> int:
        return sum(len(m.body) for m in self.methods() if m.body is not None)

    def __repr__(self) -> str:
        return f"Program({len(self.classes)} classes)"


__all__ = ["Program"]
