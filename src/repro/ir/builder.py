"""Fluent builders for authoring IR programs.

The corpus apps (synthetic reproductions of the paper's evaluated apps) are
written against this API.  It keeps authoring close to the Java the paper
quotes: allocate objects, invoke methods on them, branch, loop.

Call sites are typed by inference: the receiver class comes from the base
local's declared type, parameter types from the argument values.  This is
what makes thirty-plus corpus apps tractable to write while still producing
fully typed Jimple-style IR.
"""

from __future__ import annotations

from .classes import ClassDef
from .method import Body, Method, make_sig
from .program import Program
from .statements import (
    AssignStmt,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    InvokeStmt,
    LValue,
    NopStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)
from .types import ClassType, Type, class_t, parse_type
from .values import (
    ArrayRef,
    BinOpExpr,
    CastExpr,
    ClassConst,
    DoubleConst,
    FieldSig,
    InstanceFieldRef,
    IntConst,
    InvokeExpr,
    LengthExpr,
    Local,
    MethodSig,
    NULL,
    NewArrayExpr,
    NewExpr,
    StaticFieldRef,
    StringConst,
    Value,
)

_STRING = "java.lang.String"


def as_value(v: Value | str | int | float | None) -> Value:
    """Lift Python literals into IR constants; pass values through."""
    if isinstance(v, Value):
        return v
    if v is None:
        return NULL
    if isinstance(v, bool):
        return IntConst(int(v))
    if isinstance(v, int):
        return IntConst(v)
    if isinstance(v, float):
        return DoubleConst(v)
    if isinstance(v, str):
        return StringConst(v)
    raise TypeError(f"cannot lift {v!r} into an IR value")


def static_type_of(v: Value) -> Type:
    """Best-effort static type of a value, for call-site signature inference."""
    if isinstance(v, Local):
        return v.type
    if isinstance(v, StringConst):
        return parse_type(_STRING)
    if isinstance(v, IntConst):
        return parse_type("int")
    if isinstance(v, DoubleConst):
        return parse_type("double")
    if isinstance(v, ClassConst):
        return parse_type("java.lang.Class")
    if isinstance(v, (InstanceFieldRef,)):
        return v.field.type
    if isinstance(v, StaticFieldRef):
        return v.field.type
    return parse_type("java.lang.Object")


class ProgramBuilder:
    """Builds a :class:`~repro.ir.program.Program` class by class."""

    def __init__(self) -> None:
        self.program = Program()

    def class_(
        self,
        name: str,
        *,
        superclass: str = "java.lang.Object",
        interfaces: tuple[str, ...] = (),
        is_interface: bool = False,
    ) -> "ClassBuilder":
        cls = ClassDef(
            name,
            superclass=superclass,
            interfaces=interfaces,
            is_interface=is_interface,
        )
        self.program.add_class(cls)
        return ClassBuilder(self, cls)

    def field_ref(self, class_name: str, field_name: str) -> FieldSig:
        """Look up a declared app field, or synthesise a library field sig."""
        cls = self.program.class_of(class_name)
        if cls is not None and field_name in cls.fields:
            return cls.fields[field_name]
        return FieldSig(class_name, field_name, parse_type("java.lang.Object"))

    def build(self) -> Program:
        for method in self.program.methods():
            if method.body is not None and not method.body._sealed:
                method.body.seal()
        return self.program


class ClassBuilder:
    def __init__(self, parent: ProgramBuilder, cls: ClassDef) -> None:
        self.parent = parent
        self.cls = cls

    @property
    def name(self) -> str:
        return self.cls.name

    def field(self, name: str, type_name: str | Type) -> FieldSig:
        return self.cls.add_field(name, type_name)

    def method(
        self,
        name: str,
        params: list[str | Type] | tuple[str | Type, ...] = (),
        returns: str | Type = "void",
        *,
        static: bool = False,
    ) -> "MethodBuilder":
        sig = make_sig(self.cls.name, name, params, returns)
        method = Method(sig, is_static=static)
        self.cls.add_method(method)
        return MethodBuilder(self.parent, self, method)

    def abstract_method(
        self,
        name: str,
        params: list[str | Type] | tuple[str | Type, ...] = (),
        returns: str | Type = "void",
    ) -> Method:
        sig = make_sig(self.cls.name, name, params, returns)
        method = Method(sig, is_abstract=True, body=None)
        self.cls.add_method(method)
        return method


class MethodBuilder:
    """Builds one method body statement by statement."""

    def __init__(
        self, pb: ProgramBuilder, cb: ClassBuilder, method: Method
    ) -> None:
        self.pb = pb
        self.cb = cb
        self.method = method
        self._temp_counter = 0
        body = method.body
        assert body is not None
        # Identity statements bind `this` and the parameters to locals.
        from .values import ParamRef, ThisRef

        if not method.is_static:
            this = body.declare_local(Local("this", class_t(cb.name)))
            body.add(IdentityStmt(this, ThisRef(class_t(cb.name))))
            method.this_local = this
        for i, ptype in enumerate(method.sig.param_types):
            p = body.declare_local(Local(f"p{i}", ptype))
            body.add(IdentityStmt(p, ParamRef(i, ptype)))
            method.param_locals.append(p)

    # -- locals & constants -------------------------------------------------
    @property
    def this(self) -> Local:
        assert self.method.this_local is not None, "static method has no this"
        return self.method.this_local

    def param(self, i: int) -> Local:
        return self.method.param_locals[i]

    def local(self, name: str, type_name: str | Type) -> Local:
        body = self.method.body
        assert body is not None
        return body.declare_local(Local(name, parse_type(type_name)))

    def fresh(self, type_name: str | Type, hint: str = "t") -> Local:
        self._temp_counter += 1
        return self.local(f"${hint}{self._temp_counter}", type_name)

    # -- raw statement emission ----------------------------------------------
    def emit(self, stmt: Stmt) -> Stmt:
        body = self.method.body
        assert body is not None
        return body.add(stmt)

    # -- assignments ----------------------------------------------------------
    def assign(self, target: LValue, rhs: Value | str | int | float | None) -> Stmt:
        return self.emit(AssignStmt(target, as_value(rhs)))

    def let(
        self,
        name: str,
        type_name: str | Type,
        rhs: Value | str | int | float | None,
    ) -> Local:
        loc = self.local(name, type_name)
        self.assign(loc, rhs)
        return loc

    # -- allocation -------------------------------------------------------------
    def new(
        self,
        class_name: str,
        args: list[Value | str | int | float | None] = (),
        *,
        into: str | None = None,
    ) -> Local:
        """``new C`` followed by the ``<init>`` call, returning the local."""
        ctype = class_t(class_name)
        loc = (
            self.local(into, ctype)
            if into is not None
            else self.fresh(ctype, ctype.simple_name.lower()[:4] or "o")
        )
        self.assign(loc, NewExpr(ctype))
        vals = tuple(as_value(a) for a in args)
        sig = MethodSig(
            class_name, "<init>", tuple(static_type_of(v) for v in vals), parse_type("void")
        )
        self.emit(InvokeStmt(InvokeExpr("special", sig, loc, vals)))
        return loc

    def new_array(
        self, elem_type: str | Type, size: Value | int, *, into: str | None = None
    ) -> Local:
        from .types import array_t

        atype = array_t(parse_type(elem_type))
        loc = self.local(into, atype) if into else self.fresh(atype, "arr")
        self.assign(loc, NewArrayExpr(parse_type(elem_type), as_value(size)))
        return loc

    # -- calls ---------------------------------------------------------------
    def _invoke(
        self,
        kind: str,
        class_name: str,
        name: str,
        base: Value | None,
        args: tuple[Value, ...],
        returns: str | Type,
        into: str | None,
    ) -> Local | None:
        ret = parse_type(returns)
        sig = MethodSig(class_name, name, tuple(static_type_of(a) for a in args), ret)
        expr = InvokeExpr(kind, sig, base, args)
        if ret.name == "void" and into is None:
            self.emit(InvokeStmt(expr))
            return None
        target_type = ret if ret.name != "void" else parse_type("java.lang.Object")
        loc = self.local(into, target_type) if into else self.fresh(target_type, name[:6])
        self.assign(loc, expr)
        return loc

    def vcall(
        self,
        base: Value,
        name: str,
        args: list[Value | str | int | float | None] = (),
        returns: str | Type = "void",
        *,
        on: str | None = None,
        into: str | None = None,
    ) -> Local | None:
        """Virtual call on ``base``.  The receiver class defaults to the
        base value's static type; pass ``on=`` to override (e.g. calling an
        interface method through a field typed as the interface)."""
        vals = tuple(as_value(a) for a in args)
        cname = on or static_type_of(base).name
        return self._invoke("virtual", cname, name, base, vals, returns, into)

    def scall(
        self,
        class_name: str,
        name: str,
        args: list[Value | str | int | float | None] = (),
        returns: str | Type = "void",
        *,
        into: str | None = None,
    ) -> Local | None:
        vals = tuple(as_value(a) for a in args)
        return self._invoke("static", class_name, name, None, vals, returns, into)

    def call_this(
        self,
        name: str,
        args: list[Value | str | int | float | None] = (),
        returns: str | Type = "void",
        *,
        into: str | None = None,
    ) -> Local | None:
        return self.vcall(self.this, name, args, returns, on=self.cb.name, into=into)

    # -- fields ---------------------------------------------------------------
    def getfield(
        self,
        base: Value,
        field_name: str,
        *,
        cls: str | None = None,
        into: str | None = None,
    ) -> Local:
        cname = cls or static_type_of(base).name
        fsig = self.pb.field_ref(cname, field_name)
        loc = self.local(into, fsig.type) if into else self.fresh(fsig.type, field_name[:8])
        self.assign(loc, InstanceFieldRef(base, fsig))
        return loc

    def putfield(
        self,
        base: Value,
        field_name: str,
        value: Value | str | int | float | None,
        *,
        cls: str | None = None,
    ) -> Stmt:
        cname = cls or static_type_of(base).name
        fsig = self.pb.field_ref(cname, field_name)
        return self.emit(AssignStmt(InstanceFieldRef(base, fsig), as_value(value)))

    def getstatic(
        self, class_name: str, field_name: str, *, into: str | None = None
    ) -> Local:
        fsig = self.pb.field_ref(class_name, field_name)
        loc = self.local(into, fsig.type) if into else self.fresh(fsig.type, field_name[:8])
        self.assign(loc, StaticFieldRef(fsig))
        return loc

    def putstatic(
        self, class_name: str, field_name: str, value: Value | str | int | float | None
    ) -> Stmt:
        fsig = self.pb.field_ref(class_name, field_name)
        return self.emit(AssignStmt(StaticFieldRef(fsig), as_value(value)))

    # -- arrays -----------------------------------------------------------------
    def aload(self, array: Value, index: Value | int, *, into: str | None = None) -> Local:
        from .types import ArrayType

        atype = static_type_of(array)
        etype = atype.element if isinstance(atype, ArrayType) else parse_type("java.lang.Object")
        loc = self.local(into, etype) if into else self.fresh(etype, "elem")
        self.assign(loc, ArrayRef(array, as_value(index)))
        return loc

    def astore(self, array: Value, index: Value | int, value: Value | str | int | float) -> Stmt:
        return self.emit(AssignStmt(ArrayRef(array, as_value(index)), as_value(value)))

    def length(self, array: Value, *, into: str | None = None) -> Local:
        loc = self.local(into, "int") if into else self.fresh("int", "len")
        self.assign(loc, LengthExpr(array))
        return loc

    # -- operators ---------------------------------------------------------------
    def binop(
        self,
        op: str,
        left: Value | str | int | float,
        right: Value | str | int | float,
        type_name: str | Type = "int",
        *,
        into: str | None = None,
    ) -> Local:
        loc = self.local(into, type_name) if into else self.fresh(type_name, "op")
        self.assign(loc, BinOpExpr(op, as_value(left), as_value(right)))
        return loc

    def concat(self, *parts: Value | str | int, into: str | None = None) -> Local:
        """String concatenation via chained ``+`` (untyped shorthand the
        semantic models understand as string concat)."""
        if not parts:
            raise ValueError("concat needs at least one part")
        acc = as_value(parts[0])
        for part in parts[1:]:
            loc = self.fresh(_STRING, "cat")
            self.assign(loc, BinOpExpr("+", acc, as_value(part)))
            acc = loc
        if isinstance(acc, Local) and into is None:
            return acc
        loc = self.local(into, _STRING) if into else self.fresh(_STRING, "cat")
        self.assign(loc, acc)
        return loc

    def cast(self, value: Value, to: str | Type, *, into: str | None = None) -> Local:
        loc = self.local(into, to) if into else self.fresh(to, "cast")
        self.assign(loc, CastExpr(parse_type(to), value))
        return loc

    # -- control flow ---------------------------------------------------------
    def label(self, name: str) -> None:
        body = self.method.body
        assert body is not None
        body.mark_label(name)

    def goto(self, label: str) -> None:
        self.emit(GotoStmt(label))

    def if_goto(
        self,
        left: Value | str | int,
        op: str,
        right: Value | str | int | None,
        label: str,
    ) -> None:
        cond = BinOpExpr(op, as_value(left), as_value(right))
        self.emit(IfStmt(cond, label))

    def if_truthy(self, value: Value, label: str) -> None:
        self.emit(IfStmt(BinOpExpr("!=", value, IntConst(0)), label))

    def nop(self) -> None:
        self.emit(NopStmt())

    def ret(self, value: Value | str | int | float | None = None) -> None:
        self.emit(ReturnStmt(None if value is None else as_value(value)))

    def ret_void(self) -> None:
        self.emit(ReturnStmt(None))

    def throw(self, value: Value) -> None:
        self.emit(ThrowStmt(value))


__all__ = [
    "ClassBuilder",
    "MethodBuilder",
    "ProgramBuilder",
    "as_value",
    "static_type_of",
]
