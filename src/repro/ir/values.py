"""Values and expressions of the IR.

The IR follows Jimple's shape: statements operate on *values*.  A value is
either a :class:`Local`, a constant, or a composite expression (invoke,
field/array reference, binary operation, allocation, ...).  Expressions are
flat — their operands are locals or constants, never nested expressions —
which keeps every later analysis (slicing, tainting, signature building)
a simple walk over statement operands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .types import ClassType, Type, class_t, parse_type


@dataclass(frozen=True)
class FieldSig:
    """A field reference: declaring class, field name and field type."""

    class_name: str
    name: str
    type: Type

    def __str__(self) -> str:
        return f"<{self.class_name}: {self.type} {self.name}>"


@dataclass(frozen=True)
class MethodSig:
    """A method signature used by invoke expressions and semantic models.

    ``class_name`` is the *static* receiver class of the call site; virtual
    dispatch resolves the actual target against the class hierarchy.
    """

    class_name: str
    name: str
    param_types: tuple[Type, ...]
    return_type: Type

    @staticmethod
    def of(
        class_name: str,
        name: str,
        params: tuple[str | Type, ...] | list[str | Type] = (),
        returns: str | Type = "void",
    ) -> "MethodSig":
        return MethodSig(
            class_name,
            name,
            tuple(parse_type(p) for p in params),
            parse_type(returns),
        )

    @property
    def subsignature(self) -> tuple[str, tuple[Type, ...]]:
        """Name + parameter types — the dispatch key within a class."""
        return (self.name, self.param_types)

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    def __str__(self) -> str:
        params = ",".join(str(p) for p in self.param_types)
        return f"<{self.class_name}: {self.return_type} {self.name}({params})>"


class Value:
    """Base class of all IR values."""

    __slots__ = ()

    def operands(self) -> Iterator["Value"]:
        """Direct sub-values read when this value is evaluated."""
        return iter(())


@dataclass(frozen=True)
class Local(Value):
    """A method-local variable (SSA is *not* required)."""

    name: str
    type: Type

    def __post_init__(self) -> None:
        # Locals are allocated once per body and hashed in every taint /
        # def-use set operation; hashing recurses through Type, so cache it.
        object.__setattr__(self, "_hash", hash((self.name, self.type)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.name


class Constant(Value):
    """Base class for literal constants."""

    __slots__ = ()


@dataclass(frozen=True)
class IntConst(Constant):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class DoubleConst(Constant):
    value: float

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class StringConst(Constant):
    value: str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class NullConst(Constant):
    def __str__(self) -> str:
        return "null"


NULL = NullConst()


@dataclass(frozen=True)
class ClassConst(Constant):
    """A ``Foo.class`` literal; used by reflection-based JSON binding."""

    class_name: str

    def __str__(self) -> str:
        return f"class {self.class_name}"


class Expr(Value):
    """Base class for composite right-hand-side expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class NewExpr(Expr):
    """Object allocation (``new C``); initialisation is a separate
    ``<init>`` invoke, exactly as in Jimple."""

    class_type: ClassType

    def __str__(self) -> str:
        return f"new {self.class_type}"


@dataclass(frozen=True)
class NewArrayExpr(Expr):
    element_type: Type
    size: Value

    def operands(self) -> Iterator[Value]:
        yield self.size

    def __str__(self) -> str:
        return f"new {self.element_type}[{self.size}]"


@dataclass(frozen=True)
class BinOpExpr(Expr):
    """Binary operation.  ``op`` is one of ``+ - * / % == != < <= > >= && ||``.

    String concatenation via ``+`` is legal and is the untyped shorthand the
    corpus frontend uses; the semantic models treat it as ``concat``.
    """

    op: str
    left: Value
    right: Value

    def operands(self) -> Iterator[Value]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class UnOpExpr(Expr):
    op: str
    operand: Value

    def operands(self) -> Iterator[Value]:
        yield self.operand

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class CastExpr(Expr):
    to_type: Type
    value: Value

    def operands(self) -> Iterator[Value]:
        yield self.value

    def __str__(self) -> str:
        return f"({self.to_type}) {self.value}"


@dataclass(frozen=True)
class InstanceOfExpr(Expr):
    value: Value
    check_type: Type

    def operands(self) -> Iterator[Value]:
        yield self.value

    def __str__(self) -> str:
        return f"{self.value} instanceof {self.check_type}"


@dataclass(frozen=True)
class LengthExpr(Expr):
    array: Value

    def operands(self) -> Iterator[Value]:
        yield self.array

    def __str__(self) -> str:
        return f"lengthof {self.array}"


@dataclass(frozen=True)
class InstanceFieldRef(Expr):
    base: Value
    field: FieldSig

    def operands(self) -> Iterator[Value]:
        yield self.base

    def __str__(self) -> str:
        return f"{self.base}.{self.field}"


@dataclass(frozen=True)
class StaticFieldRef(Expr):
    field: FieldSig

    def __str__(self) -> str:
        return str(self.field)


@dataclass(frozen=True)
class ArrayRef(Expr):
    base: Value
    index: Value

    def operands(self) -> Iterator[Value]:
        yield self.base
        yield self.index

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


INVOKE_KINDS = ("virtual", "special", "static", "interface")


@dataclass(frozen=True)
class InvokeExpr(Expr):
    """A method call.  ``base`` is ``None`` for static invokes."""

    kind: str
    sig: MethodSig
    base: Value | None
    args: tuple[Value, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in INVOKE_KINDS:
            raise ValueError(f"bad invoke kind {self.kind!r}")
        if (self.base is None) != (self.kind == "static"):
            raise ValueError("base must be present iff the invoke is non-static")

    def operands(self) -> Iterator[Value]:
        if self.base is not None:
            yield self.base
        yield from self.args

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        recv = f"{self.base}." if self.base is not None else ""
        return f"{self.kind}invoke {recv}{self.sig}({args})"


@dataclass(frozen=True)
class ParamRef(Expr):
    """Right-hand side of an identity statement binding parameter ``index``."""

    index: int
    type: Type

    def __str__(self) -> str:
        return f"@parameter{self.index}: {self.type}"


@dataclass(frozen=True)
class ThisRef(Expr):
    """Right-hand side of the identity statement binding ``this``."""

    type: ClassType

    def __str__(self) -> str:
        return f"@this: {self.type}"


def field_sig(class_name: str, name: str, type_name: str | Type) -> FieldSig:
    """Convenience constructor mirroring :meth:`MethodSig.of`."""
    return FieldSig(class_name, name, parse_type(type_name))


def walk_values(value: Value) -> Iterator[Value]:
    """Yield ``value`` and, recursively, every operand it reads."""
    yield value
    for op in value.operands():
        yield from walk_values(op)


__all__ = [
    "ArrayRef",
    "BinOpExpr",
    "CastExpr",
    "ClassConst",
    "Constant",
    "DoubleConst",
    "Expr",
    "FieldSig",
    "InstanceFieldRef",
    "InstanceOfExpr",
    "IntConst",
    "InvokeExpr",
    "LengthExpr",
    "Local",
    "MethodSig",
    "NULL",
    "NewArrayExpr",
    "NewExpr",
    "NullConst",
    "ParamRef",
    "StaticFieldRef",
    "StringConst",
    "ThisRef",
    "UnOpExpr",
    "Value",
    "field_sig",
    "walk_values",
]
