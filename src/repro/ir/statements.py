"""Statements of the IR.

A method body is a flat list of statements.  Control flow uses symbolic
labels resolved by the :class:`~repro.ir.method.Body`.  Every statement
exposes ``defs()``/``uses()`` so the taint engine and slicer can treat the
IR uniformly, and ``invoke`` for call-site handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .values import (
    ArrayRef,
    Expr,
    InstanceFieldRef,
    InvokeExpr,
    Local,
    StaticFieldRef,
    Value,
    walk_values,
)

#: Value kinds allowed on the left-hand side of an assignment.
LValue = Local | InstanceFieldRef | StaticFieldRef | ArrayRef


class Stmt:
    """Base class of all statements.

    ``index`` is the statement's position within its body; it is assigned by
    :class:`~repro.ir.method.Body` and doubles as the statement's identity
    within slices.
    """

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index: int = -1

    # -- generic accessors ------------------------------------------------
    def defs(self) -> Iterator[Value]:
        """Values (re)defined by this statement."""
        return iter(())

    def uses(self) -> Iterator[Value]:
        """Top-level values read by this statement."""
        return iter(())

    def all_used_values(self) -> Iterator[Value]:
        """``uses()`` expanded recursively into operands."""
        for use in self.uses():
            yield from walk_values(use)

    @property
    def invoke(self) -> InvokeExpr | None:
        """The call expression contained in this statement, if any."""
        return None

    def branch_targets(self) -> tuple[str, ...]:
        """Symbolic labels this statement may jump to."""
        return ()

    @property
    def falls_through(self) -> bool:
        """Whether control may continue to the next statement."""
        return True


class AssignStmt(Stmt):
    """``target = rhs``.

    ``target`` is a local, field ref or array ref; ``rhs`` is any value.
    Writes through a field/array target also *use* the base object.
    """

    __slots__ = ("target", "rhs")

    def __init__(self, target: LValue, rhs: Value) -> None:
        super().__init__()
        if not isinstance(target, (Local, InstanceFieldRef, StaticFieldRef, ArrayRef)):
            raise TypeError(f"bad assignment target: {target!r}")
        self.target = target
        self.rhs = rhs

    def defs(self) -> Iterator[Value]:
        yield self.target

    def uses(self) -> Iterator[Value]:
        yield self.rhs
        # The base object of a field/array store is read, not defined.
        if isinstance(self.target, (InstanceFieldRef, ArrayRef)):
            yield from self.target.operands()

    @property
    def invoke(self) -> InvokeExpr | None:
        return self.rhs if isinstance(self.rhs, InvokeExpr) else None

    def __str__(self) -> str:
        return f"{self.target} = {self.rhs}"


class IdentityStmt(Stmt):
    """Binds a parameter or ``this`` to a local (Jimple identity statement)."""

    __slots__ = ("target", "rhs")

    def __init__(self, target: Local, rhs: Expr) -> None:
        super().__init__()
        self.target = target
        self.rhs = rhs

    def defs(self) -> Iterator[Value]:
        yield self.target

    def uses(self) -> Iterator[Value]:
        yield self.rhs

    def __str__(self) -> str:
        return f"{self.target} := {self.rhs}"


class InvokeStmt(Stmt):
    """A call whose result (if any) is discarded."""

    __slots__ = ("expr",)

    def __init__(self, expr: InvokeExpr) -> None:
        super().__init__()
        self.expr = expr

    def uses(self) -> Iterator[Value]:
        yield self.expr

    @property
    def invoke(self) -> InvokeExpr | None:
        return self.expr

    def __str__(self) -> str:
        return str(self.expr)


class IfStmt(Stmt):
    """``if cond goto label`` — conditional branch; falls through otherwise."""

    __slots__ = ("condition", "target")

    def __init__(self, condition: Value, target: str) -> None:
        super().__init__()
        self.condition = condition
        self.target = target

    def uses(self) -> Iterator[Value]:
        yield self.condition

    def branch_targets(self) -> tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"if {self.condition} goto {self.target}"


class GotoStmt(Stmt):
    __slots__ = ("target",)

    def __init__(self, target: str) -> None:
        super().__init__()
        self.target = target

    def branch_targets(self) -> tuple[str, ...]:
        return (self.target,)

    @property
    def falls_through(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"goto {self.target}"


class ReturnStmt(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Value | None = None) -> None:
        super().__init__()
        self.value = value

    def uses(self) -> Iterator[Value]:
        if self.value is not None:
            yield self.value

    @property
    def falls_through(self) -> bool:
        return False

    def __str__(self) -> str:
        return "return" if self.value is None else f"return {self.value}"


class ThrowStmt(Stmt):
    """Raise an exception.  The reproduction does not model catch edges;
    a throw simply terminates the flow, which is sufficient for protocol
    slicing (exception paths never build messages in the corpus)."""

    __slots__ = ("value",)

    def __init__(self, value: Value) -> None:
        super().__init__()
        self.value = value

    def uses(self) -> Iterator[Value]:
        yield self.value

    @property
    def falls_through(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"throw {self.value}"


class NopStmt(Stmt):
    """No-op; label anchors and slice padding."""

    __slots__ = ()

    def __str__(self) -> str:
        return "nop"


@dataclass(frozen=True)
class StmtRef:
    """A globally unique reference to one statement: (method, index).

    Program slices, taint traces and dependency edges are sets of StmtRefs,
    which keeps them hashable and independent of object identity.
    """

    method_id: str
    index: int

    def __str__(self) -> str:
        return f"{self.method_id}#{self.index}"


__all__ = [
    "AssignStmt",
    "GotoStmt",
    "IdentityStmt",
    "IfStmt",
    "InvokeStmt",
    "LValue",
    "NopStmt",
    "ReturnStmt",
    "Stmt",
    "StmtRef",
    "ThrowStmt",
]
