"""Network-aware program slicing orchestration (paper §3.1).

For every demarcation point: run backward taint propagation from the
request seeds (request slice), forward propagation from the response seeds
(response slice), then apply *object-aware augmentation* so the forward
slice is self-contained — objects used while processing a response but
initialised before the demarcation point get their initialisation
statements pulled in from the request-side context.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cfg.callgraph import CallGraph
from ..ir.program import Program
from ..ir.statements import StmtRef
from ..ir.values import Local, walk_values
from ..obs.tracer import NULL_SPAN
from ..perf.index import ProgramIndex
from ..perf.parallel import (
    fanout_width,
    note_executor_fallback,
    resolve_executor,
    resolve_workers,
    thread_map,
)
from ..perf.procpool import PoolUnavailable, ProcPool
from ..taint.engine import TaintConfig, TaintEngine
from ..taint.slices import SliceResult
from .demarcation import DPInstance, DemarcationRegistry, scan_demarcation_points


@dataclass
class DPSlices:
    dp: DPInstance
    request: SliceResult
    response: SliceResult
    #: wall time spent slicing this demarcation point
    seconds: float = 0.0

    @property
    def all_stmts(self) -> set[StmtRef]:
        return self.request.stmts | self.response.stmts

    @property
    def methods(self) -> set[str]:
        return self.request.methods | self.response.methods


@dataclass
class SlicingReport:
    """Aggregate slicing output plus the coverage statistics Fig. 3 cites
    ("the resulting slices only contain 6.3% of all code")."""

    slices: list[DPSlices] = field(default_factory=list)
    total_statements: int = 0

    @property
    def sliced_statements(self) -> set[StmtRef]:
        out: set[StmtRef] = set()
        for s in self.slices:
            out |= s.all_stmts
        return out

    @property
    def slice_fraction(self) -> float:
        if not self.total_statements:
            return 0.0
        return len(self.sliced_statements) / self.total_statements

    @property
    def missed_async_flows(self) -> set[StmtRef]:
        out: set[StmtRef] = set()
        for s in self.slices:
            out |= s.request.missed_async_flows | s.response.missed_async_flows
        return out


class NetworkSlicer:
    def __init__(
        self,
        program: Program,
        callgraph: CallGraph,
        *,
        config: TaintConfig | None = None,
        registry: DemarcationRegistry | None = None,
        event_roots: dict[str, frozenset[str]] | None = None,
        linked_returns: dict[str, list[tuple[str, int]]] | None = None,
        index: ProgramIndex | None = None,
        workers: int = 1,
        executor: str = "auto",
        start_method: str | None = None,
    ) -> None:
        self.program = program
        self.callgraph = callgraph
        self.registry = registry or DemarcationRegistry()
        self.index = index
        self._stmt_tables: dict[str, list | None] = {}
        self.workers = workers
        self.executor = executor
        self.start_method = start_method
        #: persistent process pool — built at most once per slicer (i.e.
        #: once per ``Extractocol.analyze``); the whole slicer, ProgramIndex
        #: included, ships to the workers exactly once
        self._pool: ProcPool | None = None
        self.engine = TaintEngine(
            program,
            callgraph,
            config,
            event_roots=event_roots,
            linked_returns=linked_returns,
            index=index,
        )

    def scan(self) -> list[DPInstance]:
        return scan_demarcation_points(self.program, self.callgraph, self.registry)

    def slice_dp(self, dp: DPInstance) -> DPSlices:
        started = time.perf_counter()
        request = self.engine.backward_slice(dp.request_seeds)
        response = self.engine.forward_slice(dp.response_seeds)
        self._augment(response, request)
        return DPSlices(
            dp=dp,
            request=request,
            response=response,
            seconds=time.perf_counter() - started,
        )

    def slice_all(
        self, *, span=NULL_SPAN, dps: list[DPInstance] | None = None
    ) -> SlicingReport:
        """Slice every demarcation point; with ``workers > 1`` the points
        fan out over an executor.  Results are collected in scan order, so
        the report is identical to a serial run.  When ``span`` is a live
        span, one ``dp:<site>`` child per demarcation point is emitted —
        after collection, in scan order, so traces are deterministic.

        ``dps`` restricts slicing to an explicit subset (in the given
        order) instead of a fresh scan — the incremental engine passes only
        the dirtied demarcation points here and replays the rest from the
        manifest cache."""
        report = SlicingReport(total_statements=self.program.statement_count())
        if dps is None:
            dps = self.scan()
        workers = resolve_workers(self.workers)
        if workers > 1 and len(dps) > 1:
            if self.index is not None:
                # one shared build of the heap index instead of a race on
                # first use (the per-method artifacts stay lazy + locked)
                self.index.field_stores
            report.slices = self._slice_parallel(dps, workers, span)
        else:
            report.slices = [self.slice_dp(dp) for dp in dps]
        if span:
            span.set("demarcation_points", len(dps))
            for s in report.slices:
                child = span.child(f"dp:{s.dp.site}")
                child.seconds = s.seconds
                for name, amount in sorted(s.request.stats.items()):
                    child.count(f"request_{name}", amount)
                for name, amount in sorted(s.response.stats.items()):
                    child.count(f"response_{name}", amount)
        return report

    def _slice_parallel(
        self, dps: list[DPInstance], workers: int, span=NULL_SPAN
    ) -> list[DPSlices]:
        # one contiguous chunk per worker: per-DP tasks are too fine-grained
        # (executor queue churn dwarfs the work); concatenating the chunks
        # preserves scan order.
        engine = resolve_executor(self.executor)
        if engine == "process":
            pool = self._process_pool(workers, len(dps))
            if pool is not None:
                chunks = _chunked(dps, min(workers, len(dps)))
                nested = pool.map(_slice_chunk_task, chunks, span=span)
                return [s for chunk in nested for s in chunk]
            engine = "thread"  # fallback already noted by _process_pool
        if engine == "serial":
            return self._slice_chunk(dps)
        # Thread fan-out is clamped to the usable core count — extra
        # GIL-bound threads only add convoy overhead.
        width = fanout_width(workers)
        if width <= 1:
            return self._slice_chunk(dps)
        chunks = _chunked(dps, width)
        nested = thread_map(self._slice_chunk, chunks, workers=width, span=span)
        return [s for chunk in nested for s in chunk]

    def _process_pool(self, workers: int, n_items: int) -> ProcPool | None:
        """The slicer's persistent process pool, built on first parallel
        fan-out (fork workers inherit the slicer; spawn workers unpickle it
        once).  ``None`` — with the fallback metric bumped — when no pool
        can be built here."""
        if self._pool is None:
            try:
                self._pool = ProcPool(
                    self,
                    workers=min(workers, n_items),
                    start_method=self.start_method,
                )
            except PoolUnavailable as exc:
                note_executor_fallback(str(exc))
                return None
        return self._pool

    def close(self) -> None:
        """Release the process pool (no-op for thread/serial executors).
        ``Extractocol.analyze`` calls this when the pipeline finishes."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __getstate__(self) -> dict:
        """Ship everything but the live pool (children never own pools)."""
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def _slice_chunk(self, dps: list[DPInstance]) -> list[DPSlices]:
        return [self.slice_dp(dp) for dp in dps]

    # -- object-aware augmentation (paper §3.1) -------------------------------
    def _locals_at(self, ref: StmtRef) -> tuple[frozenset, frozenset] | None:
        """(defined, used) locals of the statement, via the shared index
        when available; None when the method is unknown."""
        if self.index is not None:
            table = self._stmt_tables.get(ref.method_id, False)
            if table is False:
                try:
                    method = self.program.method_by_id(ref.method_id)
                except KeyError:
                    table = None
                else:
                    table = self.index.stmt_locals(method)
                self._stmt_tables[ref.method_id] = table
            return table[ref.index] if table is not None else None
        try:
            method = self.program.method_by_id(ref.method_id)
        except KeyError:
            return None
        stmt = method.stmt_at(ref.index)
        defs = frozenset(d for d in stmt.defs() if isinstance(d, Local))
        uses = frozenset(
            v
            for use in stmt.uses()
            for v in walk_values(use)
            if isinstance(v, Local)
        )
        return (defs, uses)

    def _augment(self, response: SliceResult, request: SliceResult) -> None:
        """Pull statements the forward slice depends on but does not contain
        — initialisation of objects created before the demarcation point —
        from the request slice sharing the same DP.  Repeats until no
        statements are added."""
        changed = True
        while changed:
            changed = False
            needed = self._dangling_locals(response)
            # 1) prefer statements already in the request slice sharing the DP
            for ref in request.stmts:
                if ref in response.stmts:
                    continue
                located = self._locals_at(ref)
                if located is None:
                    continue
                if any((ref.method_id, v) in needed for v in located[0]):
                    response.stmts.add(ref)
                    changed = True
            # 2) objects initialised before the DP outside any slice: pull
            # their defining statements from the containing method directly
            # ("the complete context of objects contained within", §3.1)
            still_needed = self._dangling_locals(response)
            by_method: dict[str, set[Local]] = {}
            for method_id, local in still_needed:
                by_method.setdefault(method_id, set()).add(local)
            for method_id, locals_ in by_method.items():
                try:
                    method = self.program.method_by_id(method_id)
                except KeyError:
                    continue
                assert method.body is not None
                if self.index is not None:
                    per_stmt = self.index.stmt_locals(method)
                    for idx, (defs, _uses) in enumerate(per_stmt):
                        if defs & locals_:
                            ref = StmtRef(method.method_id, idx)
                            if ref not in response.stmts:
                                response.stmts.add(ref)
                                changed = True
                    continue
                for stmt in method.body:
                    if any(
                        isinstance(d, Local) and d in locals_
                        for d in stmt.defs()
                    ):
                        ref = method.stmt_ref(stmt)
                        if ref not in response.stmts:
                            response.stmts.add(ref)
                            changed = True

    def _dangling_locals(self, sl: SliceResult) -> set[tuple[str, Local]]:
        """Locals used in the slice whose definition is not in the slice."""
        defined: set[tuple[str, Local]] = set()
        used: set[tuple[str, Local]] = set()
        for ref in sl.stmts:
            located = self._locals_at(ref)
            if located is None:
                continue
            defs, uses = located
            mid = ref.method_id
            for d in defs:
                defined.add((mid, d))
            for v in uses:
                used.add((mid, v))
        return used - defined


def _chunked(items: list, parts: int) -> list[list]:
    """Split into at most ``parts`` contiguous, near-equal chunks."""
    parts = min(parts, len(items))
    size, extra = divmod(len(items), parts)
    out, start = [], 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def _slice_chunk_task(slicer: NetworkSlicer, chunk: list[DPInstance]) -> list[DPSlices]:
    """ProcPool task: the worker's inherited/unpickled slicer slices one
    contiguous chunk; picklable DPSlices results travel back."""
    return [slicer.slice_dp(dp) for dp in chunk]


__all__ = ["DPSlices", "NetworkSlicer", "SlicingReport"]
