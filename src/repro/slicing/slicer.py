"""Network-aware program slicing orchestration (paper §3.1).

For every demarcation point: run backward taint propagation from the
request seeds (request slice), forward propagation from the response seeds
(response slice), then apply *object-aware augmentation* so the forward
slice is self-contained — objects used while processing a response but
initialised before the demarcation point get their initialisation
statements pulled in from the request-side context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.callgraph import CallGraph
from ..ir.program import Program
from ..ir.statements import StmtRef
from ..ir.values import Local, walk_values
from ..taint.engine import TaintConfig, TaintEngine
from ..taint.slices import SliceResult
from .demarcation import DPInstance, DemarcationRegistry, scan_demarcation_points


@dataclass
class DPSlices:
    dp: DPInstance
    request: SliceResult
    response: SliceResult

    @property
    def all_stmts(self) -> set[StmtRef]:
        return self.request.stmts | self.response.stmts

    @property
    def methods(self) -> set[str]:
        return self.request.methods | self.response.methods


@dataclass
class SlicingReport:
    """Aggregate slicing output plus the coverage statistics Fig. 3 cites
    ("the resulting slices only contain 6.3% of all code")."""

    slices: list[DPSlices] = field(default_factory=list)
    total_statements: int = 0

    @property
    def sliced_statements(self) -> set[StmtRef]:
        out: set[StmtRef] = set()
        for s in self.slices:
            out |= s.all_stmts
        return out

    @property
    def slice_fraction(self) -> float:
        if not self.total_statements:
            return 0.0
        return len(self.sliced_statements) / self.total_statements

    @property
    def missed_async_flows(self) -> set[StmtRef]:
        out: set[StmtRef] = set()
        for s in self.slices:
            out |= s.request.missed_async_flows | s.response.missed_async_flows
        return out


class NetworkSlicer:
    def __init__(
        self,
        program: Program,
        callgraph: CallGraph,
        *,
        config: TaintConfig | None = None,
        registry: DemarcationRegistry | None = None,
        event_roots: dict[str, frozenset[str]] | None = None,
        linked_returns: dict[str, list[tuple[str, int]]] | None = None,
    ) -> None:
        self.program = program
        self.callgraph = callgraph
        self.registry = registry or DemarcationRegistry()
        self.engine = TaintEngine(
            program,
            callgraph,
            config,
            event_roots=event_roots,
            linked_returns=linked_returns,
        )

    def scan(self) -> list[DPInstance]:
        return scan_demarcation_points(self.program, self.callgraph, self.registry)

    def slice_dp(self, dp: DPInstance) -> DPSlices:
        request = self.engine.backward_slice(dp.request_seeds)
        response = self.engine.forward_slice(dp.response_seeds)
        self._augment(response, request)
        return DPSlices(dp=dp, request=request, response=response)

    def slice_all(self) -> SlicingReport:
        report = SlicingReport(total_statements=self.program.statement_count())
        for dp in self.scan():
            report.slices.append(self.slice_dp(dp))
        return report

    # -- object-aware augmentation (paper §3.1) -------------------------------
    def _augment(self, response: SliceResult, request: SliceResult) -> None:
        """Pull statements the forward slice depends on but does not contain
        — initialisation of objects created before the demarcation point —
        from the request slice sharing the same DP.  Repeats until no
        statements are added."""
        changed = True
        while changed:
            changed = False
            needed = self._dangling_locals(response)
            # 1) prefer statements already in the request slice sharing the DP
            for ref in request.stmts:
                if ref in response.stmts:
                    continue
                method = self.program.method_by_id(ref.method_id)
                stmt = method.stmt_at(ref.index)
                defines = {v for v in stmt.defs() if isinstance(v, Local)}
                if any((ref.method_id, v) in needed for v in defines):
                    response.stmts.add(ref)
                    changed = True
            # 2) objects initialised before the DP outside any slice: pull
            # their defining statements from the containing method directly
            # ("the complete context of objects contained within", §3.1)
            still_needed = self._dangling_locals(response)
            by_method: dict[str, set[Local]] = {}
            for method_id, local in still_needed:
                by_method.setdefault(method_id, set()).add(local)
            for method_id, locals_ in by_method.items():
                try:
                    method = self.program.method_by_id(method_id)
                except KeyError:
                    continue
                assert method.body is not None
                for stmt in method.body:
                    if any(
                        isinstance(d, Local) and d in locals_
                        for d in stmt.defs()
                    ):
                        ref = method.stmt_ref(stmt)
                        if ref not in response.stmts:
                            response.stmts.add(ref)
                            changed = True

    def _dangling_locals(self, sl: SliceResult) -> set[tuple[str, Local]]:
        """Locals used in the slice whose definition is not in the slice."""
        defined: set[tuple[str, Local]] = set()
        used: set[tuple[str, Local]] = set()
        for ref in sl.stmts:
            try:
                method = self.program.method_by_id(ref.method_id)
            except KeyError:
                continue
            stmt = method.stmt_at(ref.index)
            for d in stmt.defs():
                if isinstance(d, Local):
                    defined.add((ref.method_id, d))
            for use in stmt.uses():
                for v in walk_values(use):
                    if isinstance(v, Local):
                        used.add((ref.method_id, v))
        return used - defined


__all__ = ["DPSlices", "NetworkSlicer", "SlicingReport"]
