"""Network-aware program slicing: demarcation points, bidirectional slicer,
object-aware augmentation, disjoint sub-slices."""

from .demarcation import (
    DEFAULT_DEMARCATION_POINTS,
    DPInstance,
    DPSpec,
    DemarcationRegistry,
    scan_demarcation_points,
)
from .slicer import DPSlices, NetworkSlicer, SlicingReport

__all__ = [name for name in dir() if not name.startswith("_")]
