"""Demarcation points (DPs): the HTTP access functions where bidirectional
slicing starts (paper §3.1).

A DP separates the backward (request) slice from the forward (response)
slice.  The registry below mirrors the paper's implementation: "39
demarcation points from 16 classes and popular http libraries, including
org.apache.http, android.net.http, android.volley, java.net,
android.media, retrofit, BeeFramework and okhttp".

Three response-delivery shapes exist:

* ``return`` — synchronous APIs (``HttpClient.execute`` returns the response),
* ``base``   — connection-style APIs (``HttpURLConnection.getInputStream``),
* ``listener`` — callback APIs (Volley/OkHttp-async/Retrofit-async): the
  response arrives as a parameter of an app-defined callback method; the
  scanner resolves the listener object's static type to find it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.callgraph import CallGraph
from ..ir.program import Program
from ..ir.statements import StmtRef
from ..ir.values import InvokeExpr, Local, Value


@dataclass(frozen=True)
class DPSpec:
    """One registered demarcation point (a library method)."""

    class_name: str
    method_name: str
    #: where the request object is: "arg<i>", "base", or "none"
    request: str = "arg0"
    #: where the response is: "return", "base", "listener:<argi>", or "none"
    response: str = "return"
    #: HTTP method when the API pins it (MediaPlayer GETs, etc.)
    method_hint: str | None = None
    #: how the response is consumed when the API implies it
    consumer: str | None = None
    transport: str = "http"


#: Callback subsignatures searched on listener classes, per library family.
LISTENER_CALLBACKS: dict[str, tuple[str, int]] = {
    # family -> (callback method name, response parameter index)
    "volley": ("onResponse", 0),
    "okhttp": ("onResponse", 1),  # onResponse(Call, Response)
    "retrofit": ("onResponse", 1),  # onResponse(Call, Response)
    "bee": ("onSuccess", 0),
    "rx": ("call", 0),  # rx.functions.Action1<T>.call(T)
}


DEFAULT_DEMARCATION_POINTS: tuple[DPSpec, ...] = (
    # -- org.apache.http (4 classes) --------------------------------------
    DPSpec("org.apache.http.client.HttpClient", "execute"),
    DPSpec("org.apache.http.impl.client.DefaultHttpClient", "execute"),
    DPSpec("org.apache.http.impl.client.AbstractHttpClient", "execute"),
    DPSpec("android.net.http.AndroidHttpClient", "execute"),
    # -- java.net ----------------------------------------------------------
    DPSpec("java.net.URL", "openConnection", request="base", response="return"),
    DPSpec("java.net.URL", "openStream", request="base", response="return",
           method_hint="GET"),
    DPSpec("java.net.HttpURLConnection", "getInputStream", request="base",
           response="return"),
    DPSpec("java.net.HttpURLConnection", "getOutputStream", request="base",
           response="none"),
    DPSpec("java.net.URLConnection", "getInputStream", request="base",
           response="return"),
    # -- volley --------------------------------------------------------------
    DPSpec("com.android.volley.RequestQueue", "add", request="arg0",
           response="listener:volley"),
    # -- okhttp ----------------------------------------------------------------
    DPSpec("okhttp3.OkHttpClient", "newCall", request="arg0", response="return"),
    DPSpec("okhttp3.Call", "execute", request="base", response="return"),
    DPSpec("okhttp3.Call", "enqueue", request="base", response="listener:okhttp"),
    DPSpec("com.squareup.okhttp.OkHttpClient", "newCall", request="arg0",
           response="return"),
    DPSpec("com.squareup.okhttp.Call", "execute", request="base", response="return"),
    # -- retrofit -----------------------------------------------------------------
    DPSpec("retrofit2.Call", "execute", request="base", response="return"),
    DPSpec("retrofit2.Call", "enqueue", request="base", response="listener:retrofit"),
    # -- google-http-java-client ---------------------------------------------------
    DPSpec("com.google.api.client.http.HttpRequest", "execute", request="base",
           response="return"),
    # -- BeeFramework ---------------------------------------------------------------
    DPSpec("com.beeframework.model.BeeQuery", "sendRequest", request="base",
           response="listener:bee"),
    # -- rx.android style ----------------------------------------------------------
    DPSpec("rx.Observable", "subscribe", request="base", response="listener:rx"),
    # -- android.media: URL playback is an HTTP GET whose body feeds the player
    DPSpec("android.media.MediaPlayer", "setDataSource", request="arg0",
           response="none", method_hint="GET", consumer="media_player"),
    # -- direct sockets (§4 extension; modeled when model_sockets is on) ----------
    DPSpec("java.net.Socket", "getInputStream", request="base",
           response="return", transport="socket"),
    DPSpec("java.net.Socket", "getOutputStream", request="base",
           response="none", transport="socket"),
    # -- webview-style loads -----------------------------------------------------
    DPSpec("android.webkit.WebView", "loadUrl", request="arg0", response="none",
           method_hint="GET", consumer="webview"),
)


@dataclass
class DPInstance:
    """A demarcation point found at a concrete call site."""

    site: StmtRef
    spec: DPSpec
    #: (stmt, value) seeds for backward (request) slicing
    request_seeds: list[tuple[StmtRef, Value]] = field(default_factory=list)
    #: (stmt, value) seeds for forward (response) slicing
    response_seeds: list[tuple[StmtRef, Value]] = field(default_factory=list)
    #: listener class resolved for callback-style DPs (diagnostics)
    listener_class: str | None = None

    @property
    def key(self) -> str:
        return f"{self.spec.class_name}.{self.spec.method_name}@{self.site}"


class DemarcationRegistry:
    def __init__(self, specs: tuple[DPSpec, ...] = DEFAULT_DEMARCATION_POINTS) -> None:
        self.specs = specs
        self._index: dict[tuple[str, str], DPSpec] = {
            (s.class_name, s.method_name): s for s in specs
        }

    def lookup(self, class_name: str, method_name: str) -> DPSpec | None:
        return self._index.get((class_name, method_name))

    def class_count(self) -> int:
        return len({s.class_name for s in self.specs})

    def __len__(self) -> int:
        return len(self.specs)


def _resolve_seed(expr: InvokeExpr, where: str) -> Value | None:
    if where == "base":
        return expr.base
    if where.startswith("arg"):
        idx = int(where[3:])
        return expr.args[idx] if idx < len(expr.args) else None
    return None


def scan_demarcation_points(
    program: Program,
    callgraph: CallGraph,
    registry: DemarcationRegistry | None = None,
    *,
    only_sites: set[StmtRef] | None = None,
) -> list[DPInstance]:
    """Find every demarcation-point call site in the program.

    For listener-style DPs the scanner resolves the response seed by finding
    the app callback class:  it inspects the static types of values flowing
    into the request object's constructor and of the DP call's arguments,
    and picks program classes defining the family's callback subsignature.

    ``only_sites`` restricts matching to the given call sites — targeted
    mode passes its seed index here; matching and ordering are otherwise
    identical to the unrestricted scan.
    """
    registry = registry or DemarcationRegistry()
    instances: list[DPInstance] = []
    for ref, expr in sorted(
        callgraph.library_sites.items(), key=lambda kv: (kv[0].method_id, kv[0].index)
    ):
        if only_sites is not None and ref not in only_sites:
            continue
        receiver = expr.sig.class_name
        if isinstance(expr.base, Local):
            receiver = expr.base.type.name
        spec = registry.lookup(receiver, expr.sig.name) or registry.lookup(
            expr.sig.class_name, expr.sig.name
        )
        if spec is None:
            continue
        inst = DPInstance(site=ref, spec=spec)
        req_value = _resolve_seed(expr, spec.request)
        if req_value is not None:
            inst.request_seeds.append((ref, req_value))
        if spec.response == "return":
            method = program.method_by_id(ref.method_id)
            stmt = method.stmt_at(ref.index)
            result = next((d for d in stmt.defs() if isinstance(d, Local)), None)
            if result is not None:
                inst.response_seeds.append((ref, result))
        elif spec.response.startswith("listener:"):
            family = spec.response.split(":", 1)[1]
            _attach_listener_seeds(program, callgraph, inst, family)
        instances.append(inst)
    return instances


def _attach_listener_seeds(
    program: Program, callgraph: CallGraph, inst: DPInstance, family: str
) -> None:
    """Resolve callback-style responses to the app listener method's param."""
    callback_name, param_idx = LISTENER_CALLBACKS[family]
    candidates: set[str] = set()
    # Types of the DP call's own arguments (e.g. Call.enqueue(callback)).
    site_stmt = program.method_by_id(inst.site.method_id).stmt_at(inst.site.index)
    expr = site_stmt.invoke
    assert expr is not None
    for arg in expr.args:
        if isinstance(arg, Local) and program.has_class(arg.type.name):
            candidates.add(arg.type.name)
    # Types flowing into the request object's constructor, for APIs where the
    # listener is a constructor argument (Volley's JsonObjectRequest).
    req_value = expr.args[0] if expr.args else expr.base
    if isinstance(req_value, Local):
        caller = program.method_by_id(inst.site.method_id)
        assert caller.body is not None
        for stmt in caller.body:
            call = stmt.invoke
            if call is None or call.sig.name != "<init>" or call.base != req_value:
                continue
            for arg in call.args:
                if isinstance(arg, Local) and program.has_class(arg.type.name):
                    candidates.add(arg.type.name)
    for cls_name in sorted(candidates):
        cls = program.class_of(cls_name)
        if cls is None:
            continue
        for method in cls.find_methods(callback_name):
            if method.body is None or param_idx >= len(method.param_locals):
                continue
            param = method.param_locals[param_idx]
            # Seed at the identity statement that binds the parameter.
            for stmt in method.body:
                if param in set(stmt.defs()):
                    inst.response_seeds.append((method.stmt_ref(stmt), param))
                    break
            inst.listener_class = cls_name
            # Response also flows through the listener call edge; register it
            # so slices (and pairing) see the implicit control transfer.
            callgraph.add_implicit_edge(inst.site, method.method_id, f"{family}-listener")


__all__ = [
    "DEFAULT_DEMARCATION_POINTS",
    "DPInstance",
    "DPSpec",
    "DemarcationRegistry",
    "LISTENER_CALLBACKS",
    "scan_demarcation_points",
]
