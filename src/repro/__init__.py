"""Extractocol — automatic protocol behavior analysis for Android apps.

A full reproduction of *Enabling Automatic Protocol Behavior Analysis for
Android Applications* (CoNEXT 2016).  The public entry points:

``Extractocol``
    The analysis pipeline: program slicing → signature extraction →
    transaction reconstruction → inter-transaction dependency analysis.

``load_apk`` / ``repro.corpus``
    APK model loading and the synthetic app corpus used for evaluation.

Quickstart::

    from repro import Extractocol
    from repro.corpus import build_app

    apk = build_app("diode")
    report = Extractocol().analyze(apk)
    for txn in report.transactions:
        print(txn.request.method, txn.request.uri_regex)
"""

from typing import Any

__version__ = "1.0.0"

__all__ = ["AnalysisConfig", "AnalysisReport", "Extractocol", "__version__", "load_apk"]

_LAZY = {
    "AnalysisConfig": ("repro.core.config", "AnalysisConfig"),
    "AnalysisReport": ("repro.core.report", "AnalysisReport"),
    "Extractocol": ("repro.core.extractocol", "Extractocol"),
    "load_apk": ("repro.apk.loader", "load_apk"),
}


def __getattr__(name: str) -> Any:
    """Lazy re-exports keep ``import repro.ir`` cheap and dependency-free."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
