"""Generated version lineages: realistic v2/v3 rebuilds of corpus apps.

Protocol-evolution analysis (:mod:`repro.diff`) needs ground truth: pairs
of app versions whose protocol drift is *known*, including whether it is
breaking.  Real released APKs are out of reach here, so lineages are
derived from the shipped corpus the same way releases derive from a
codebase — targeted protocol edits on the :class:`~repro.corpus.generator
.GenApp` spec (new endpoints, added query keys, moved paths, a login
token flow cut over to a cached constant) plus whole-program identifier
renaming via :mod:`repro.apk.obfuscator` / :mod:`repro.apk.rewrite` (the
DexLego-style transformed rebuild).

Each :class:`LineageVersion` knows the diff verdict expected against its
predecessor (``expect_breaking`` + the exact breaking-change kinds), so
the evalx drift table and the CI smoke job can check the diff subsystem
against ground truth, not just against itself.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Callable

from ..apk.model import Apk
from ..core.config import AnalysisConfig
from .generator import GenApp, GenEndpoint, build_generated_app


@dataclass(frozen=True)
class BuiltVersion:
    """One materialised lineage version, ready to analyze."""

    apk: Apk
    config: AnalysisConfig
    #: identifier renames relative to the family's v1 (None = unrenamed)
    renames_from_base: object | None = None


@dataclass
class LineageVersion:
    """One version in a family; ``version`` 1 is the shipped corpus app."""

    family: str
    version: int
    description: str
    #: expected diff verdict vs the *previous* version
    expect_breaking: bool = False
    #: breaking-change kinds the diff vs the previous version must report
    #: (exactly — no more, no fewer distinct kinds)
    expected_breaking_kinds: tuple[str, ...] = ()
    _build: Callable[[], BuiltVersion] = field(default=None, repr=False)

    @property
    def label(self) -> str:
        return f"{self.family}@v{self.version}"

    def materialize(self) -> BuiltVersion:
        return self._build()


# ------------------------------------------------------------ spec edits
def _edit_endpoint(spec: GenApp, name: str, **changes) -> None:
    """Replace fields of the named endpoint in place (on a copied spec)."""
    for i, ep in enumerate(spec.endpoints):
        if ep.name == name:
            spec.endpoints[i] = replace(ep, **changes)
            return
    raise KeyError(f"no endpoint {name!r} in {spec.key}")


def _endpoint(spec: GenApp, name: str) -> GenEndpoint:
    for ep in spec.endpoints:
        if ep.name == name:
            return ep
    raise KeyError(f"no endpoint {name!r} in {spec.key}")


def _mutated(base: Callable[[], GenApp], *edits) -> Callable[[], BuiltVersion]:
    """A builder applying spec edits to a deep copy of the base GenApp."""

    def build() -> BuiltVersion:
        spec = copy.deepcopy(base())
        for edit in edits:
            edit(spec)
        app_spec = build_generated_app(spec)
        return BuiltVersion(
            apk=app_spec.build_apk(),
            config=AnalysisConfig(
                async_heuristic=(app_spec.kind == "closed"),
                scope_prefixes=app_spec.scope_prefixes,
            ),
        )

    return build


def _obfuscated(base: Callable[[], GenApp]) -> Callable[[], BuiltVersion]:
    """A builder renaming every app identifier (deterministically) while
    leaving the protocol untouched — the transformed-rebuild lineage."""

    def build() -> BuiltVersion:
        from ..apk.obfuscator import obfuscate

        app_spec = build_generated_app(base())
        result = obfuscate(app_spec.build_apk())
        return BuiltVersion(
            apk=result.apk,
            config=AnalysisConfig(
                async_heuristic=(app_spec.kind == "closed"),
                scope_prefixes=app_spec.scope_prefixes,
            ),
            renames_from_base=result.renames,
        )

    return build


def _base(factory: Callable[[], GenApp]) -> Callable[[], BuiltVersion]:
    return _mutated(factory)


# ---------------------------------------------------------- the lineages
def _reddinator_v2(spec: GenApp) -> None:
    """Compatible drift: an added optional query key, a new endpoint and
    a new request header."""
    _edit_endpoint(spec, "feed",
                   query=(("raw_json", "const:1"),))
    _edit_endpoint(spec, "save",
                   headers=(("User-Agent", "const:reddinator/2.0"),))
    spec.endpoints.append(GenEndpoint(
        name="trending",
        method="GET",
        path="/api/trending_subreddits.json",
        response={"subreddit_names": ["pics"]},
        reads=("subreddit_names",),
    ))


def _reddinator_v3(spec: GenApp) -> None:
    """Breaking drift on top of v2: the vote endpoint stops deriving its
    ``uh`` field from the login response — the removed-dependency-source
    class of change (the reddit ``modhash`` flow of paper Table 3)."""
    _reddinator_v2(spec)
    vote = _endpoint(spec, "vote")
    _edit_endpoint(spec, "vote", body=tuple(
        (key, "const:mh-cached" if key == "uh" else kind)
        for key, kind in vote.body
    ))


def _wallabag_v2(spec: GenApp) -> None:
    """Breaking drift: the feed token query key is renamed — old firewall
    rules keyed on ``token=`` no longer see it."""
    ep = _endpoint(spec, "unread_feed")
    _edit_endpoint(spec, "unread_feed", query=tuple(
        ("auth_token", kind) if key == "token" else (key, kind)
        for key, kind in ep.query
    ))


def _twister_v2(spec: GenApp) -> None:
    """Compatible drift: one more RPC endpoint, nothing removed."""
    spec.endpoints.append(GenEndpoint(
        name="getspamposts",
        method="POST",
        path="/rpc/getspamposts",
        body=(("method", "const:getspamposts"), ("params", "input")),
        body_format="form",
        response={"result": [{"userpost": {"msg": "promoted"}}]},
        reads=("result",),
    ))


def _lineage_defs() -> dict[str, list[LineageVersion]]:
    from .opensource.simple import reddinator, twister, tzm, wallabag

    return {
        "reddinator": [
            LineageVersion("reddinator", 1, "shipped corpus app",
                           _build=_base(reddinator)),
            LineageVersion(
                "reddinator", 2,
                "adds raw_json query key, trending endpoint, UA header",
                expect_breaking=False,
                _build=_mutated(reddinator, _reddinator_v2),
            ),
            LineageVersion(
                "reddinator", 3,
                "vote's uh field becomes a cached constant: the "
                "login->vote dependency edge disappears",
                expect_breaking=True,
                expected_breaking_kinds=("dependency-removed",),
                _build=_mutated(reddinator, _reddinator_v3),
            ),
        ],
        "wallabag": [
            LineageVersion("wallabag", 1, "shipped corpus app",
                           _build=_base(wallabag)),
            LineageVersion(
                "wallabag", 2,
                "feed auth query key renamed token -> auth_token",
                expect_breaking=True,
                expected_breaking_kinds=("query-key-removed",),
                _build=_mutated(wallabag, _wallabag_v2),
            ),
        ],
        "twister": [
            LineageVersion("twister", 1, "shipped corpus app",
                           _build=_base(twister)),
            LineageVersion(
                "twister", 2,
                "adds the getspamposts RPC",
                expect_breaking=False,
                _build=_mutated(twister, _twister_v2),
            ),
        ],
        "tzm": [
            LineageVersion("tzm", 1, "shipped corpus app",
                           _build=_base(tzm)),
            LineageVersion(
                "tzm", 2,
                "obfuscated rebuild: every identifier renamed, protocol "
                "identical (needs the RenameMap lineage to diff clean)",
                expect_breaking=False,
                _build=_obfuscated(tzm),
            ),
        ],
    }


_LINEAGES: dict[str, list[LineageVersion]] | None = None


def lineages() -> dict[str, list[LineageVersion]]:
    """All lineage families, keyed by family (corpus app) key."""
    global _LINEAGES
    if _LINEAGES is None:
        _LINEAGES = _lineage_defs()
    return _LINEAGES


def lineage_keys() -> list[str]:
    return sorted(lineages())


def lineage(family: str) -> list[LineageVersion]:
    if family.startswith("syn-"):
        from ..synth import synth_lineage

        return synth_lineage(family)
    try:
        return lineages()[family]
    except KeyError:
        raise KeyError(
            f"no lineage family {family!r}; available: {lineage_keys()}"
        ) from None


def build_version(label: str) -> BuiltVersion:
    """Materialise a lineage version from its ``family@vN`` label.

    Hand-written corpus lineages and synthesized (``syn-...``) lineages
    share one label grammar, so ``repro diff`` resolves both."""
    family, _, version = label.partition("@")
    if not version.startswith("v") or not version[1:].isdigit():
        raise LookupError(
            f"{label!r} is not a lineage version label (expected app@vN)"
        )
    wanted = int(version[1:])
    for lv in lineage(family):
        if lv.version == wanted:
            return lv.materialize()
    raise LookupError(
        f"{family!r} has no version {wanted}; versions: "
        f"{[lv.version for lv in lineage(family)]}"
    )


__all__ = [
    "BuiltVersion",
    "LineageVersion",
    "build_version",
    "lineage",
    "lineage_keys",
    "lineages",
]
