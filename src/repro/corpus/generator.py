"""Generate corpus apps from endpoint specifications.

Hand-writing thirty-four apps' worth of IR is error-prone; the generator
emits the same code shapes a hand-written app uses — StringBuilder URI
construction, Apache/Volley/URLConnection transports, JSON/XML parsing,
login token flows, timers, Handler-posted runnables and intent-fed ad
chains — from a compact :class:`GenEndpoint` list, together with the
matching scripted server and ground truth.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dc_field

from ..apk.manifest import Manifest
from ..apk.model import Apk, EntryPoint, TriggerKind
from ..apk.resources import Resources
from ..ir.builder import ClassBuilder, MethodBuilder, ProgramBuilder
from ..runtime.httpstack import HttpResponse, Network
from ..runtime.server import ScriptedServer
from .base import AppSpec, EndpointTruth, GroundTruth


@dataclass
class GenEndpoint:
    """One endpoint to generate.

    Value kinds for ``query`` / ``body`` / ``header`` values:
    ``const:<text>``, ``int:<n>``, ``input`` (user input), ``field:<name>``
    (app state, e.g. a login token), ``resource:<name>``, ``clock``,
    ``device``, ``random``.
    """

    name: str
    method: str = "GET"
    path: str = "/api/endpoint"
    host: str | None = None
    query: tuple[tuple[str, str], ...] = ()
    body: tuple[tuple[str, str], ...] = ()
    body_format: str | None = None  # "json" | "form"
    headers: tuple[tuple[str, str], ...] = ()
    #: server JSON payload (also defines what fuzzing traffic contains)
    response: dict | None = None
    response_xml: str | None = None
    binary_response: bool = False
    #: top-level JSON keys / XML tags the app reads from the response
    reads: tuple[str, ...] = ()
    xml_reads: tuple[str, ...] = ()
    #: plain-text response rendered into a TextView (a processed pair
    #: without structured format)
    display_text: bool = False
    text_response: str | None = None
    #: response key -> app field to store it in (e.g. {"token": "token"})
    store: dict[str, str] = dc_field(default_factory=dict)
    trigger: TriggerKind = TriggerKind.UI
    requires_login: bool = False
    side_effect: bool = False
    custom_ui: bool = False
    #: intent-fed, two-async-hop URL construction — Extractocol misses it
    via_intent: bool = False


@dataclass
class GenApp:
    key: str
    name: str
    kind: str  # "open" | "closed"
    package: str
    host: str
    https: bool = True
    protocol: str = "HTTPS"
    endpoints: list[GenEndpoint] = dc_field(default_factory=list)
    resources: dict[str, str] = dc_field(default_factory=dict)
    filler_methods: int = 12
    transport: str = "apache"  # "apache" | "volley" | "urlconn" | "okhttp"
    #: hand-written additions: receives the emitter, may add classes,
    #: methods, entry points and truth entries (Diode's Figure-3 method,
    #: Kayak's Table-6 signatures, ...)
    custom: object | None = None
    #: extra server routes: (host, method, path_regex, handler)
    extra_routes: tuple = ()
    scope_prefixes: tuple[str, ...] = ()
    notes: str = ""


_JSON_DEFAULT = {"status": "ok", "ts": 1480000000}


class _AppEmitter:
    def __init__(self, spec: GenApp) -> None:
        self.spec = spec
        self.pb = ProgramBuilder()
        self.main_cls = f"{spec.package}.MainActivity"
        self.cb = self.pb.class_(self.main_cls, superclass="android.app.Activity")
        self.resources = Resources()
        for rname, rvalue in spec.resources.items():
            self.resources.add_string(rname, rvalue)
        self.entrypoints: list[EntryPoint] = []
        self.truth = GroundTruth()
        self._fields: set[str] = set()
        self._runnable_count = 0

    # -- helpers -------------------------------------------------------------
    def _ensure_field(self, name: str) -> str:
        fname = f"f_{name}"
        if fname not in self._fields:
            self.cb.field(fname, "java.lang.String")
            self._fields.add(fname)
        return fname

    def _base_url(self, ep: GenEndpoint) -> str:
        scheme = "https" if self.spec.https else "http"
        host = ep.host or self.spec.host
        return f"{scheme}://{host}{ep.path}"

    def _value(self, m: MethodBuilder, kind: str, input_param):
        if kind.startswith("const:"):
            return kind[len("const:"):]
        if kind.startswith("int:"):
            return int(kind[len("int:"):])
        if kind == "input":
            return input_param
        if kind.startswith("field:"):
            fname = self._ensure_field(kind[len("field:"):])
            return m.getfield(m.this, fname, cls=self.main_cls)
        if kind.startswith("resource:"):
            rname = kind[len("resource:"):]
            rid = self.resources.string_id(rname)
            res = m.vcall(
                m.this, "getResources", [], returns="android.content.res.Resources",
                on="android.app.Activity",
            )
            return m.vcall(res, "getString", [rid], returns="java.lang.String")
        if kind == "clock":
            return m.scall("java.lang.System", "currentTimeMillis", [],
                           returns="long")
        if kind == "device":
            return m.scall("android.provider.Settings$Secure", "getString",
                           ["android_id"], returns="java.lang.String")
        if kind == "random":
            rnd = m.new("java.util.Random")
            return m.vcall(rnd, "nextInt", [1000000], returns="int")
        raise ValueError(f"unknown value kind {kind!r}")

    def _needs_input(self, ep: GenEndpoint) -> bool:
        kinds = [k for _, k in ep.query] + [k for _, k in ep.body]
        return "input" in kinds

    # -- endpoint emission -----------------------------------------------------
    def emit(self) -> None:
        seen: set[str] = set()
        for ep in self.spec.endpoints:
            if ep.name in seen:
                raise ValueError(
                    f"{self.spec.key}: duplicate endpoint name {ep.name!r} — "
                    f"each endpoint emits an ep_<name>/onAd_<name> method and "
                    f"an entry point; a second one would silently shadow the "
                    f"first"
                )
            seen.add(ep.name)
            if ep.via_intent:
                self._emit_intent_endpoint(ep)
            else:
                self._emit_plain_endpoint(ep)
            self._record_truth(ep)
        if self.spec.custom is not None:
            self.spec.custom(self)
        self._emit_filler()

    def _register_entrypoint(self, entry: EntryPoint) -> None:
        """Collision guard: entry-point names and method ids must be unique
        (duplicate names make reports/ground truth ambiguous; a duplicate
        method id means two endpoints emitted into one method)."""
        for existing in self.entrypoints:
            if existing.name == entry.name:
                raise ValueError(
                    f"{self.spec.key}: duplicate entry-point name "
                    f"{entry.name!r} (already bound to {existing.method_id})"
                )
            if existing.method_id == entry.method_id:
                raise ValueError(
                    f"{self.spec.key}: duplicate entry-point method "
                    f"{entry.method_id!r} (already registered as "
                    f"{existing.name!r})"
                )
        self.entrypoints.append(entry)

    def add_entrypoint(self, method_name: str, kind: TriggerKind, name: str,
                       *, cls: ClassBuilder | None = None, **flags) -> None:
        """Helper for custom hooks."""
        owner = cls or self.cb
        self._register_entrypoint(
            EntryPoint(
                method_id=str(owner.cls.find_methods(method_name)[0].sig),
                kind=kind,
                name=name,
                **flags,
            )
        )

    def _record_truth(self, ep: GenEndpoint) -> None:
        fuzzable = not (
            ep.side_effect
            or ep.trigger in (TriggerKind.TIMER, TriggerKind.SERVER_PUSH)
        )
        has_login = any("login" in (e.name or "").lower() for e in self.spec.endpoints)
        manual = fuzzable and (not ep.requires_login or has_login)
        auto = (
            fuzzable
            and not ep.requires_login
            and not ep.custom_ui
            and ep.trigger not in (TriggerKind.UI_CUSTOM, TriggerKind.LOCATION)
        )
        body_kind = None
        if ep.body_format == "json":
            body_kind = "json"
        elif ep.body:
            body_kind = "query"
        response_kind = None
        if ep.response is not None and ep.reads:
            response_kind = "json"
        elif ep.response_xml is not None and ep.xml_reads:
            response_kind = "xml"
        elif ep.display_text:
            response_kind = "text"
        self.truth.endpoints.append(
            EndpointTruth(
                name=ep.name,
                method=ep.method,
                request_body=body_kind,
                response_body=response_kind,
                static_visible=not ep.via_intent,
                manual_visible=manual,
                auto_visible=auto,
            )
        )

    def _emit_plain_endpoint(self, ep: GenEndpoint) -> None:
        params = ["java.lang.String"] if self._needs_input(ep) else []
        m = self.cb.method(f"ep_{ep.name}", params=params)
        input_param = m.param(0) if params else None
        url = self._build_url(m, ep, input_param)
        resp = self._emit_transport(m, ep, url, input_param)
        if resp is not None:
            self._emit_response_processing(m, ep, resp)
        m.ret_void()
        self._register_entrypoint(
            EntryPoint(
                method_id=str(
                    self.cb.cls.find_methods(f"ep_{ep.name}")[0].sig
                ),
                kind=ep.trigger,
                name=ep.name,
                requires_login=ep.requires_login,
                side_effect=ep.side_effect,
                custom_ui=ep.custom_ui,
            )
        )

    def _build_url(self, m: MethodBuilder, ep: GenEndpoint, input_param):
        base = self._base_url(ep)
        sb = m.new("java.lang.StringBuilder", [base + ("?" if ep.query else "")])
        first = True
        for key, kind in ep.query:
            prefix = ("" if first else "&") + key + "="
            first = False
            m.vcall(sb, "append", [prefix], returns="java.lang.StringBuilder")
            m.vcall(sb, "append", [self._value(m, kind, input_param)],
                    returns="java.lang.StringBuilder")
        return m.vcall(sb, "toString", [], returns="java.lang.String")

    def _emit_transport(self, m: MethodBuilder, ep: GenEndpoint, url, input_param):
        """Returns the body-string local (or None when no response read)."""
        transport = self.spec.transport
        if transport == "volley" and ep.method in ("GET", "POST"):
            return self._emit_volley(m, ep, url, input_param)
        if transport == "urlconn":
            return self._emit_urlconn(m, ep, url, input_param)
        return self._emit_apache(m, ep, url, input_param)

    def _request_body_value(self, m, ep: GenEndpoint, input_param):
        if not ep.body:
            return None, None
        if ep.body_format == "json":
            obj = m.new("org.json.JSONObject")
            for key, kind in ep.body:
                m.vcall(obj, "put", [key, self._value(m, kind, input_param)],
                        returns="org.json.JSONObject")
            return m.vcall(obj, "toString", [], returns="java.lang.String"), "json"
        # form body
        pairs = m.new("java.util.ArrayList")
        for key, kind in ep.body:
            pair = m.new(
                "org.apache.http.message.BasicNameValuePair",
                [key, self._value(m, kind, input_param)],
            )
            m.vcall(pairs, "add", [pair], returns="boolean")
        return pairs, "form"

    def _emit_apache(self, m: MethodBuilder, ep: GenEndpoint, url, input_param):
        method_cls = {
            "GET": "HttpGet",
            "POST": "HttpPost",
            "PUT": "HttpPut",
            "DELETE": "HttpDelete",
        }[ep.method]
        req = m.new(f"org.apache.http.client.methods.{method_cls}", [url])
        body_value, body_kind = self._request_body_value(m, ep, input_param)
        if body_value is not None:
            if body_kind == "json":
                entity = m.new("org.apache.http.entity.StringEntity", [body_value])
            else:
                entity = m.new(
                    "org.apache.http.client.entity.UrlEncodedFormEntity", [body_value]
                )
            m.vcall(req, "setEntity", [entity])
        for key, kind in ep.headers:
            m.vcall(req, "setHeader", [key, self._value(m, kind, input_param)])
        client = m.local(f"client", "org.apache.http.client.HttpClient")
        m.assign(client, None)
        resp = m.vcall(
            client, "execute", [req], returns="org.apache.http.HttpResponse",
            on="org.apache.http.client.HttpClient",
        )
        if not self._reads_response(ep):
            return None
        return m.scall(
            "org.apache.http.util.EntityUtils", "toString", [resp],
            returns="java.lang.String",
        )

    def _emit_urlconn(self, m: MethodBuilder, ep: GenEndpoint, url, input_param):
        u = m.new("java.net.URL", [url])
        conn = m.vcall(u, "openConnection", [],
                       returns="java.net.HttpURLConnection")
        if ep.method != "GET":
            m.vcall(conn, "setRequestMethod", [ep.method])
        for key, kind in ep.headers:
            m.vcall(conn, "setRequestProperty",
                    [key, self._value(m, kind, input_param)])
        body_value, body_kind = self._request_body_value(m, ep, input_param)
        if body_value is not None and body_kind == "json":
            m.vcall(conn, "setDoOutput", [1])
            out = m.vcall(conn, "getOutputStream", [],
                          returns="java.io.OutputStream")
            writer = m.new("java.io.OutputStreamWriter", [out])
            m.vcall(writer, "write", [body_value])
            m.vcall(writer, "flush", [])
        stream = m.vcall(conn, "getInputStream", [],
                         returns="java.io.InputStream")
        if not self._reads_response(ep):
            return None
        reader = m.new("java.io.BufferedReader", [stream])
        return m.vcall(reader, "readLine", [], returns="java.lang.String")

    def _emit_volley(self, m: MethodBuilder, ep: GenEndpoint, url, input_param):
        """Volley requests deliver the response to a listener class."""
        listener_cls_name = f"{self.spec.package}.Listener_{ep.name}"
        listener_cb = self.pb.class_(
            listener_cls_name,
            interfaces=("com.android.volley.Response$Listener",),
        )
        listener_cb.field("main", self.main_cls)
        lm = listener_cb.method("onResponse", params=["org.json.JSONObject"])
        self._emit_json_reads(lm, ep, lm.param(0), owner=listener_cls_name)
        lm.ret_void()

        method_code = {"GET": 0, "POST": 1, "PUT": 2, "DELETE": 3}[ep.method]
        listener = m.new(listener_cls_name)
        m.putfield(listener, "main", m.this, cls=listener_cls_name)
        args: list = [method_code, url]
        if ep.body and ep.body_format == "json":
            obj = m.new("org.json.JSONObject")
            for key, kind in ep.body:
                m.vcall(obj, "put", [key, self._value(m, kind, input_param)],
                        returns="org.json.JSONObject")
            args.append(obj)
        args.append(listener)
        req = m.new("com.android.volley.toolbox.JsonObjectRequest", args)
        queue = m.scall(
            "com.android.volley.toolbox.Volley", "newRequestQueue", [m.this],
            returns="com.android.volley.RequestQueue",
        )
        m.vcall(queue, "add", [req], returns="com.android.volley.Request")
        return None  # response handled in the listener

    def _reads_response(self, ep: GenEndpoint) -> bool:
        return bool(ep.reads or ep.xml_reads or ep.store or ep.display_text)

    def _emit_response_processing(self, m: MethodBuilder, ep: GenEndpoint, body):
        if ep.display_text:
            view = m.local("view", "android.widget.TextView")
            m.assign(view, None)
            m.vcall(view, "setText", [body])
            return
        if ep.xml_reads:
            dbf = m.scall("javax.xml.parsers.DocumentBuilderFactory", "newInstance",
                          [], returns="javax.xml.parsers.DocumentBuilderFactory")
            builder = m.vcall(dbf, "newDocumentBuilder", [],
                              returns="javax.xml.parsers.DocumentBuilder")
            doc = m.vcall(builder, "parse", [body], returns="org.w3c.dom.Document")
            for tag in ep.xml_reads:
                nl = m.vcall(doc, "getElementsByTagName", [tag],
                             returns="org.w3c.dom.NodeList")
                el = m.vcall(nl, "item", [0], returns="org.w3c.dom.Element")
                m.vcall(el, "getTextContent", [], returns="java.lang.String")
            return
        if ep.reads or ep.store:
            self._emit_json_reads(m, ep, None, body=body)

    def _emit_json_reads(self, m: MethodBuilder, ep: GenEndpoint, parsed,
                         *, body=None, owner: str | None = None):
        if parsed is None:
            parsed = m.new("org.json.JSONObject", [body])
        for key in ep.reads:
            m.vcall(parsed, "getString", [key], returns="java.lang.String")
        for key, fname in ep.store.items():
            value = m.vcall(parsed, "getString", [key], returns="java.lang.String")
            field_name = self._ensure_field(fname)
            if owner is None:
                m.putfield(m.this, field_name, value, cls=self.main_cls)
            else:
                # listener classes write through a reference to the activity
                main = m.getfield(m.this, "main", cls=owner)
                m.putfield(main, field_name, value, cls=self.main_cls)

    # -- intent-fed, two-hop ad endpoints (the §5.1 misses) --------------------
    def _emit_intent_endpoint(self, ep: GenEndpoint) -> None:
        f1 = self._ensure_field(f"{ep.name}_cfg1")
        f2 = self._ensure_field(f"{ep.name}_cfg2")
        f3 = self._ensure_field(f"{ep.name}_cfg3")

        method_cls = {
            "GET": "HttpGet",
            "POST": "HttpPost",
            "PUT": "HttpPut",
            "DELETE": "HttpDelete",
        }[ep.method]
        fetch = self.cb.method(f"adFetch_{ep.name}")
        url = fetch.getfield(fetch.this, f3, cls=self.main_cls)
        req = fetch.new(f"org.apache.http.client.methods.{method_cls}", [url])
        client = fetch.local("client", "org.apache.http.client.HttpClient")
        fetch.assign(client, None)
        fetch.vcall(client, "execute", [req],
                    returns="org.apache.http.HttpResponse",
                    on="org.apache.http.client.HttpClient")
        fetch.ret_void()

        self._runnable_count += 1
        r2_name = f"{self.spec.package}.AdHop2_{self._runnable_count}"
        r2 = self.pb.class_(r2_name, interfaces=("java.lang.Runnable",))
        r2.field("main", self.main_cls)
        r2m = r2.method("run")
        main2 = r2m.getfield(r2m.this, "main", cls=r2_name)
        v2 = r2m.getfield(main2, f2, cls=self.main_cls)
        r2m.putfield(main2, f3, v2, cls=self.main_cls)
        r2m.vcall(main2, f"adFetch_{ep.name}", [], on=self.main_cls)
        r2m.ret_void()

        r1_name = f"{self.spec.package}.AdHop1_{self._runnable_count}"
        r1 = self.pb.class_(r1_name, interfaces=("java.lang.Runnable",))
        r1.field("main", self.main_cls)
        r1m = r1.method("run")
        main1 = r1m.getfield(r1m.this, "main", cls=r1_name)
        v1 = r1m.getfield(main1, f1, cls=self.main_cls)
        r1m.putfield(main1, f2, v1, cls=self.main_cls)
        r2obj = r1m.new(r2_name)
        r1m.putfield(r2obj, "main", main1, cls=r2_name)
        handler = r1m.new("android.os.Handler")
        r1m.vcall(handler, "post", [r2obj], returns="boolean")
        r1m.ret_void()

        on_ad = self.cb.method(f"onAd_{ep.name}", params=["java.lang.String"])
        cfg = on_ad.concat(self._base_url(ep) + "?unit=", on_ad.param(0))
        on_ad.putfield(on_ad.this, f1, cfg, cls=self.main_cls)
        r1obj = on_ad.new(r1_name)
        on_ad.putfield(r1obj, "main", on_ad.this, cls=r1_name)
        handler2 = on_ad.new("android.os.Handler")
        on_ad.vcall(handler2, "post", [r1obj], returns="boolean")
        on_ad.ret_void()

        self._register_entrypoint(
            EntryPoint(
                method_id=str(self.cb.cls.find_methods(f"onAd_{ep.name}")[0].sig),
                kind=TriggerKind.INTENT,
                name=ep.name,
                requires_login=ep.requires_login,
                side_effect=ep.side_effect,
                custom_ui=ep.custom_ui,
            )
        )

    # -- filler code (realistic slice fractions, Fig. 3) ------------------------
    def _emit_filler(self) -> None:
        n = self.spec.filler_methods
        if n <= 0:
            return
        setup = self.cb.method("onCreateSetup")
        for i in range(n):
            setup.call_this(f"util_{i}", [i], returns="int")
        setup.ret_void()
        for i in range(n):
            m = self.cb.method(f"util_{i}", params=["int"], returns="int")
            acc = m.let(f"acc", "int", i)
            for j in range(6):
                nxt = m.binop("+", acc, j + 1)
                m.assign(acc, nxt)
            label = m.concat("item-", acc)
            m.vcall(label, "length", [], returns="int")
            m.ret(acc)
        self._register_entrypoint(
            EntryPoint(
                method_id=str(self.cb.cls.find_methods("onCreateSetup")[0].sig),
                kind=TriggerKind.LIFECYCLE,
                name="setup",
            )
        )


def build_network_for(spec: GenApp) -> Network:
    network = Network()
    servers: dict[str, ScriptedServer] = {}
    for ep in spec.endpoints:
        host = ep.host or spec.host
        server = servers.get(host)
        if server is None:
            server = ScriptedServer(host)
            servers[host] = server
            network.register(host, server)
        path_pattern = _escape_path(ep.path)
        if ep.binary_response:
            server.add(ep.method, path_pattern,
                       lambda req, state: HttpResponse.binary())
        elif ep.response_xml is not None:
            server.add(ep.method, path_pattern,
                       (lambda xml: lambda req, state: HttpResponse.xml_response(xml))(
                           ep.response_xml))
        elif ep.display_text:
            text = ep.text_response or f"rendered page for {ep.name}"
            server.add(ep.method, path_pattern,
                       (lambda t: lambda req, state: HttpResponse.text(t))(text))
        elif ep.response is not None and (ep.reads or ep.store):
            server.add(ep.method, path_pattern,
                       (lambda p: lambda req, state: HttpResponse.json_response(p))(
                           ep.response))
        else:
            # the app never parses this response: a plain page/ack suffices
            server.add(ep.method, path_pattern,
                       (lambda n: lambda req, state: HttpResponse.text(f"ok:{n}"))(
                           ep.name))
    for host, method, pattern, handler in spec.extra_routes:
        server = servers.get(host)
        if server is None:
            server = ScriptedServer(host)
            servers[host] = server
            network.register(host, server)
        server.add(method, pattern, handler)
    return network


def _escape_path(path: str) -> str:
    import re as _re

    return _re.escape(path)


def build_generated_app(spec: GenApp) -> AppSpec:
    """Materialise a :class:`GenApp` spec into a corpus :class:`AppSpec`."""

    def build_apk() -> Apk:
        emitter = _AppEmitter(spec)
        emitter.emit()
        program = emitter.pb.build()
        return Apk(
            manifest=Manifest(
                package=spec.package,
                label=spec.name,
                activities=[emitter.main_cls],
                permissions=["android.permission.INTERNET"],
            ),
            program=program,
            resources=emitter.resources,
            entrypoints=emitter.entrypoints,
        )

    # Probe build: runs the custom hook too, so hand-written endpoints
    # contribute their truth entries.
    probe = _AppEmitter(spec)
    probe.emit()

    return AppSpec(
        key=spec.key,
        name=spec.name,
        kind=spec.kind,
        protocol=spec.protocol,
        build_apk=build_apk,
        build_network=lambda: build_network_for(spec),
        truth=probe.truth,
        scope_prefixes=spec.scope_prefixes,
        notes=spec.notes,
    )


__all__ = ["GenApp", "GenEndpoint", "build_generated_app", "build_network_for"]
